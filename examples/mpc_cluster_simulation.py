#!/usr/bin/env python
"""Scenario: what would this cost on an actual MPC cluster?

Runs the Section 6 machine-level implementation under the simulator for a
range of local-memory exponents γ and reports the quantities the paper's
Theorem 1.1 is about: simulated rounds, machine counts, per-machine peak
loads (never exceeding O(n^γ)), and total communication volume.

Run:  python examples/mpc_cluster_simulation.py
"""

from repro.core import mpc_rounds_bound, stretch_bound
from repro.graphs import build_graph_from_spec, edge_stretch
from repro.mpc_impl import apsp_mpc, spanner_mpc


def main() -> None:
    g = build_graph_from_spec("er:800:0.04", weights="uniform", seed=11)
    k, t = 8, 3
    print(f"graph: n={g.n}, m={g.m};  spanner parameters k={k}, t={t}")
    print(f"stretch guarantee: {stretch_bound(k, t):.1f}\n")

    header = f"{'gamma':>6} {'machines':>9} {'S (words)':>10} {'peak load':>10} {'rounds':>7} {'bound':>7} {'messages':>10}"
    print(header)
    print("-" * len(header))
    for gamma in (0.3, 0.5, 0.7):
        res = spanner_mpc(g, k, t, gamma=gamma, rng=5)
        mpc = res.mpc_stats
        print(
            f"{gamma:>6} {mpc.num_machines:>9} {mpc.machine_memory:>10} "
            f"{mpc.peak_machine_load:>10} {mpc.rounds:>7} "
            f"{mpc_rounds_bound(k, t, gamma, constant=24.0):>7.0f} {mpc.total_messages:>10}"
        )

    res = spanner_mpc(g, k, t, gamma=0.5, rng=5)
    h = res.subgraph(g)
    rep = edge_stretch(g, h)
    print(
        f"\nspanner from the γ=0.5 run: {h.m} edges, measured stretch "
        f"{rep.max_stretch:.2f}"
    )

    apsp = apsp_mpc(g, rng=6)
    print(
        f"\nfull APSP pipeline (Corollary 1.4): k={apsp.k}, t={apsp.t}; "
        f"{apsp.rounds} rounds total of which {apsp.collection_rounds} to "
        f"collect the {apsp.spanner.m}-edge spanner onto one machine"
    )


if __name__ == "__main__":
    main()
