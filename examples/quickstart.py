#!/usr/bin/env python
"""Quickstart: build a spanner, check its guarantees, approximate distances.

Uses the unified entry points: graph specs (``repro.graphs.specs``) for the
workload and the algorithm registry (``repro.registry``) for the
construction — the same names the ``repro`` CLI and the sweep runner use.

Run:  python examples/quickstart.py
"""

from repro.core import stretch_bound
from repro.distances import SpannerDistanceOracle, measure_approximation
from repro.graphs import GraphSpec, verify_spanner
from repro.registry import get_algorithm


def main() -> None:
    # 1. A weighted random graph from a spec string: 1000 vertices, ~25k
    #    edges.  Same strings the CLI's --graph flag accepts (`repro list`
    #    shows every family).
    g = GraphSpec.parse("er:1000:0.05").build(weights="uniform", seed=42)
    print(f"input graph: n={g.n}, m={g.m}")

    # 2. Build a spanner with the paper's general tradeoff algorithm
    #    (Theorem 1.1), resolved by name from the registry.  k controls the
    #    size target n^{1+1/k}; t trades iterations for stretch.
    k, t = 6, 2
    algo = get_algorithm("general")
    print(f"algorithm: {algo.name} [{algo.model}] — {algo.description}")
    result = algo.run(g, k=k, t=t, rng=0)
    spanner = result.subgraph(g)
    print(
        f"spanner: {spanner.m} edges ({100 * spanner.m / g.m:.1f}% of input), "
        f"built in {result.iterations} logical iterations"
    )

    # 3. Verify the guarantee: stretch at most 2 k^s, s = log(2t+1)/log(t+1).
    bound = stretch_bound(k, t)
    report = verify_spanner(g, spanner, stretch_bound=bound)
    print(
        f"stretch: measured max {report.max_stretch:.2f} "
        f"(mean {report.mean_stretch:.3f}) <= bound {bound:.1f}"
    )

    # 4. Use the spanner as an all-pairs distance oracle (Corollary 1.4).
    oracle = SpannerDistanceOracle(g, k=k, t=t, rng=0)
    quality = measure_approximation(oracle, num_pairs=500, rng=1)
    print(
        f"distance oracle: d(0, 999) ~= {oracle.query(0, 999):.2f}; "
        f"approximation ratio max {quality.max_ratio:.2f} / "
        f"mean {quality.mean_ratio:.3f} over {quality.num_pairs} pairs"
    )


if __name__ == "__main__":
    main()
