#!/usr/bin/env python
"""Scenario: approximate distances in a social-network-like graph.

The paper's motivation: MapReduce-style clusters processing web/social
graphs whose edge sets dwarf any single machine's memory.  We model the
graph with preferential attachment (heavy-tailed degrees), sparsify it with
each of the paper's constructions, and compare the sparsification /
accuracy frontier they offer to the Baswana–Sen baseline.

Run:  python examples/social_network_distances.py
"""

from repro.core import (
    baswana_sen,
    cluster_merging,
    general_tradeoff,
    two_phase_contraction,
)
from repro.graphs import barabasi_albert, edge_stretch


def main() -> None:
    g = barabasi_albert(2000, 8, weights="exponential", rng=7)
    print(f"social graph: n={g.n}, m={g.m} (heavy-tailed degrees)")
    k = 8

    algorithms = [
        ("Baswana–Sen (baseline)", lambda: baswana_sen(g, k, rng=1)),
        ("cluster-merging  (t=1)", lambda: cluster_merging(g, k, rng=1)),
        ("two-phase     (t=sqrtk)", lambda: two_phase_contraction(g, k, rng=1)),
        ("general     (t=log k)", lambda: general_tradeoff(g, k, 3, rng=1)),
    ]

    print(f"\n{'algorithm':<24} {'iters':>5} {'edges':>7} {'kept':>6} {'max str':>8} {'mean str':>9}")
    for name, fn in algorithms:
        res = fn()
        h = res.subgraph(g)
        rep = edge_stretch(g, h)
        print(
            f"{name:<24} {res.iterations:>5} {h.m:>7} "
            f"{100 * h.m / g.m:>5.1f}% {rep.max_stretch:>8.2f} {rep.mean_stretch:>9.3f}"
        )

    print(
        "\nTakeaway: the accelerated constructions keep the spanner nearly as"
        "\nsparse and nearly as accurate while using a fraction of the"
        "\niterations — exactly the paper's round-complexity story."
    )


if __name__ == "__main__":
    main()
