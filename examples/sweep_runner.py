#!/usr/bin/env python
"""Sweep runner: drive many (algorithm x graph x seed) trials in one call.

Builds an :class:`~repro.runner.plan.ExperimentPlan` programmatically — the
same object ``repro sweep --plan plan.json`` loads from disk — runs it with
resume-capable artifacts, and summarizes the results table, demonstrating
how the paper's "one engine, many models" claim turns into a dataset.

Run:  python examples/sweep_runner.py
"""

import tempfile
from collections import defaultdict

from repro.runner import ExperimentPlan, run_plan


def main() -> None:
    plan = ExperimentPlan(
        name="models-on-one-workload",
        # One in-memory construction, the streaming pass algorithm, and the
        # machine-level MPC run — all on the same workloads.
        algorithms=["general", "streaming", "mpc"],
        graphs=["er:256:0.05", "cliques:16:10", "grid:16:16"],
        ks=[4],
        seeds=[0, 1],
        verify_pairs=64,
    )
    trials = plan.trials()
    print(f"plan {plan.name!r}: {len(trials)} trials")

    out_dir = tempfile.mkdtemp(prefix="repro_sweep_")
    result = run_plan(plan, jobs=2, out_dir=out_dir)
    print(
        f"executed {result.executed} trials in {result.wall_seconds:.2f}s "
        f"-> {result.out_dir}/results.csv"
    )

    # Aggregate: mean spanner size and worst sampled stretch per algorithm.
    by_algo = defaultdict(list)
    for record in result.records:
        by_algo[record["algorithm"]].append(record)
    print(f"{'algorithm':<12} {'mean edges':>10} {'max stretch':>12} {'mean s':>8}")
    for algo, records in sorted(by_algo.items()):
        edges = sum(r["num_edges"] for r in records) / len(records)
        stretch = max(r["max_stretch"] for r in records)
        elapsed = sum(r["elapsed_s"] for r in records) / len(records)
        print(f"{algo:<12} {edges:>10.1f} {stretch:>12.3f} {elapsed:>8.3f}")

    # Re-running the identical plan resumes from the artifacts: 0 executed.
    again = run_plan(plan, jobs=2, out_dir=out_dir)
    print(
        f"re-run: {again.executed} executed, {again.skipped} resumed "
        f"in {again.wall_seconds:.3f}s (content-hash keyed artifacts)"
    )


if __name__ == "__main__":
    main()
