#!/usr/bin/env python
"""Explore the paper's round/stretch/size tradeoff surface (Theorem 1.1).

Sweeps the growth parameter t for a fixed k and prints the predicted
frontier next to measured numbers — then prints the closed-form table for
a k you could not measure directly (k = log n for APSP).

Run:  python examples/tradeoff_explorer.py [k]
"""

import sys

from repro.core import general_tradeoff, stretch_bound, total_iterations, tradeoff_table
from repro.graphs import build_graph_from_spec, edge_stretch


def main() -> None:
    k = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    g = build_graph_from_spec("er:800:0.05", weights="uniform", seed=9)
    print(f"graph: n={g.n}, m={g.m};  k={k}\n")

    header = (
        f"{'t':>3} {'iters(pred)':>11} {'iters':>6} {'stretch bound':>13} "
        f"{'stretch':>8} {'size':>7} {'kept %':>7}"
    )
    print(header)
    print("-" * len(header))
    ts = sorted({1, 2, 3, 4, max(1, k // 4), max(1, k // 2), k - 1})
    for t in ts:
        res = general_tradeoff(g, k, t, rng=2)
        h = res.subgraph(g)
        rep = edge_stretch(g, h)
        print(
            f"{t:>3} {total_iterations(k, min(t, k - 1)):>11} {res.iterations:>6} "
            f"{stretch_bound(k, t):>13.1f} {rep.max_stretch:>8.2f} "
            f"{h.m:>7} {100 * h.m / g.m:>6.1f}%"
        )

    print("\nclosed-form Corollary 1.2 rows (no measurement):")
    for row in tradeoff_table(k):
        print(
            f"  t={row.t:<3} epochs={row.epochs:<3} iterations={row.iterations:<4} "
            f"stretch O(k^{row.stretch_exponent:.3f}) = {row.stretch:8.1f}   "
            f"size ~ n^(1+1/k) * {row.size_factor:.1f}   [{row.label}]"
        )


if __name__ == "__main__":
    main()
