#!/usr/bin/env python
"""Scenario: weighted APSP in a Congested Clique (Corollary 1.5).

Every node of an n-node clique learns an O(n log log n)-size spanner via
Lenzen routing after the Theorem 8.1 construction (O(log n) parallel
sampling repetitions upgrade the size guarantee to w.h.p. at constant round
overhead).  The whole pipeline is sublogarithmic in rounds — the first such
algorithm for weighted APSP in the model.

Run:  python examples/congested_clique_apsp.py
"""

import math

import numpy as np

from repro.cc_impl import apsp_cc, spanner_cc
from repro.graphs import apsp as exact_apsp
from repro.graphs import erdos_renyi


def main() -> None:
    # Integer weights: each fits one O(log n)-bit clique message.
    g = erdos_renyi(600, 0.05, weights="integer", rng=8, low=1, high=100)
    print(f"clique of n={g.n} nodes; input graph m={g.m}")

    res = spanner_cc(g, 8, 3, rng=0)
    print(
        f"\nTheorem 8.1 spanner: {res.num_edges} edges in "
        f"{res.extra['rounds']} rounds ({res.iterations} iterations, "
        f"{res.extra['repetitions']} sampling repetitions/iteration, "
        f"{res.extra['repetition_retries']} retries)"
    )

    pipeline = apsp_cc(g, rng=1)
    print(
        f"\nCorollary 1.5 APSP: k={pipeline.k}, t={pipeline.t}; "
        f"{pipeline.rounds} rounds total, {pipeline.collection_rounds} of "
        f"them to replicate the spanner to all nodes"
    )
    print(
        f"  vs the trivial lower bounds: log2(n) = {math.log2(g.n):.1f}; "
        "the round count is governed by log log n, not log n"
    )

    d = exact_apsp(g)
    a = pipeline.all_pairs()
    iu = np.triu_indices(g.n, k=1)
    base = d[iu]
    mask = np.isfinite(base) & (base > 0)
    ratios = a[iu][mask] / base[mask]
    print(
        f"\napproximation over all {mask.sum()} connected pairs: "
        f"max x{ratios.max():.2f}, mean x{ratios.mean():.3f} "
        f"(guarantee x{pipeline.guaranteed_stretch:.1f})"
    )


if __name__ == "__main__":
    main()
