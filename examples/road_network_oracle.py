#!/usr/bin/env python
"""Scenario: a distance oracle for a road-network-like graph.

Random geometric graphs with length-scaled weights are the standard
stand-in for road networks.  We build the Corollary 1.4 oracle (spanner
with k = log n, t = log log n, collected to "one machine") and measure
query accuracy against exact Dijkstra.

Run:  python examples/road_network_oracle.py
"""

import numpy as np

from repro.distances import SpannerDistanceOracle, measure_approximation
from repro.graphs import pairwise_distances, random_geometric


def main() -> None:
    g = random_geometric(1500, 0.06, weights="uniform", rng=3)
    print(f"road network: n={g.n}, m={g.m}")

    oracle = SpannerDistanceOracle(g, rng=0)  # paper defaults: k=log n
    print(
        f"oracle spanner: {oracle.spanner.m} edges "
        f"({100 * oracle.spanner.m / g.m:.1f}% of input); "
        f"guaranteed stretch {oracle.guaranteed_stretch:.1f}"
    )

    quality = measure_approximation(oracle, num_pairs=1000, rng=1)
    print(
        f"measured quality over {quality.num_pairs} random routes: "
        f"max ratio {quality.max_ratio:.3f}, mean ratio {quality.mean_ratio:.4f}"
    )

    # A few concrete routes.
    rng = np.random.default_rng(2)
    pairs = rng.integers(0, g.n, size=(5, 2))
    exact = pairwise_distances(g, pairs)
    print("\nsample routes (exact vs oracle):")
    for (a, b), d in zip(pairs, exact):
        approx = oracle.query(int(a), int(b))
        if np.isfinite(d) and d > 0:
            print(f"  {a:>4} -> {b:<4}  exact {d:8.3f}   oracle {approx:8.3f}   x{approx / d:.3f}")
        else:
            print(f"  {a:>4} -> {b:<4}  disconnected (both report inf: {np.isinf(approx)})")


if __name__ == "__main__":
    main()
