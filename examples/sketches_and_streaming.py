#!/usr/bin/env python
"""Scenario: the ecosystem around the spanners — sketches and streams.

Two applications the paper's related-work section motivates:

1. [DN19]-style **spanner-accelerated distance sketches**: preprocess a
   Thorup–Zwick sketch on a spanner instead of the full graph, trading
   query stretch for a large cut in the edges the (MPC) preprocessing has
   to touch.
2. The §2.4 **streaming view**: the t=1 contraction spanner needs only
   ``log2 k + 1`` passes over an edge stream — versus Baswana–Sen's ``k``
   — while handling weighted graphs (which [AGM12]'s dynamic-stream
   algorithm cannot).

Run:  python examples/sketches_and_streaming.py
"""

import math

import numpy as np

from repro.core import general_tradeoff
from repro.distances import DistanceSketch, sketch_on_spanner
from repro.graphs import apsp, edge_stretch, erdos_renyi
from repro.streaming import streaming_spanner


def main() -> None:
    g = erdos_renyi(700, 0.05, weights="uniform", rng=17)
    print(f"graph: n={g.n}, m={g.m}\n")

    # ---- 1. spanner-accelerated sketches --------------------------------
    exact = apsp(g)
    rng = np.random.default_rng(0)
    pairs = rng.integers(0, g.n, size=(600, 2))
    base = exact[pairs[:, 0], pairs[:, 1]]
    ok = np.isfinite(base) & (base > 0)

    print("Thorup–Zwick sketch preprocessing (k_sketch = 2):")
    print(f"{'preprocess on':<18} {'edges':>7} {'sketch words':>13} {'max ratio':>10} {'mean':>7}")
    plain = DistanceSketch(g, 2, rng=1)
    q = plain.query_many(pairs)[ok] / base[ok]
    print(f"{'full graph':<18} {g.m:>7} {plain.size_words:>13} {q.max():>10.2f} {q.mean():>7.3f}")
    for k_sp in (4, 8):
        res = general_tradeoff(g, k_sp, 2, rng=2)
        sk, acc = sketch_on_spanner(g, res, 2, rng=3)
        q = sk.query_many(pairs)[ok] / base[ok]
        print(
            f"{'spanner k=' + str(k_sp):<18} {acc['edges_in_spanner']:>7} "
            f"{acc['sketch_words']:>13} {q.max():>10.2f} {q.mean():>7.3f}"
        )

    # ---- 2. streaming passes ---------------------------------------------
    print("\nStreaming construction (passes over the edge stream):")
    print(f"{'k':>4} {'passes':>7} {'BS would need':>14} {'stretch':>8} {'size':>6}")
    for k in (4, 8, 16, 32):
        res = streaming_spanner(g, k, rng=4)
        h = res.subgraph(g)
        rep = edge_stretch(g, h)
        print(
            f"{k:>4} {res.extra['stream']['passes']:>7} {k - 1:>14} "
            f"{rep.max_stretch:>8.2f} {h.m:>6}"
        )
    print(
        "\npasses grow like log2(k) + 1, the pass-equivalent of the MPC round"
        "\nstory — and the stream algorithm handles weighted graphs throughout."
    )


if __name__ == "__main__":
    main()
