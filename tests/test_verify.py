"""Certification subsystem: claims, certificates, and violation detection.

The load-bearing tests here are the *negative* ones: a certifier that
cannot catch a broken algorithm certifies nothing.  We inject deliberately
broken spanners through the public registry API and assert each declared
bound kind (structure, stretch, size, rounds) is actually flagged.
"""

from __future__ import annotations

import contextlib
import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.registry as registry
from repro.core.results import SpannerResult
from repro.graphs.specs import GraphSpec
from repro.registry import (
    AlgorithmClaims,
    ClaimContext,
    algorithm_names,
    get_algorithm,
    iter_algorithms,
    register_spanner,
)
from repro.verify import BoundCheck, Certificate, certify, certify_result

from tests.strategies import scenarios


@contextlib.contextmanager
def temporary_algorithm(name, fn, **kwargs):
    """Register ``fn`` under ``name`` for the duration of a test."""
    register_spanner(name, loader=lambda: fn, **kwargs)
    try:
        yield get_algorithm(name)
    finally:
        registry._REGISTRY.pop(name, None)
        for alias in [a for a, tgt in registry.ALIASES.items() if tgt == name]:
            registry.ALIASES.pop(alias)


# ---------------------------------------------------------------------------
# declared claims
# ---------------------------------------------------------------------------


class TestClaims:
    def test_every_registered_algorithm_declares_claims(self):
        for spec in iter_algorithms():
            assert spec.claims is not None, f"{spec.name} has no claims"
            assert spec.claims.stretch is not None, f"{spec.name} claims no stretch"
            assert spec.claims.size is not None, f"{spec.name} claims no size"
            assert spec.claims.source, f"{spec.name} cites no theorem"

    def test_model_specific_budgets_declared(self):
        assert get_algorithm("streaming").claims.passes is not None
        for name in ("mpc", "mpc-nearlinear", "cc", "apsp-mpc", "apsp-cc"):
            assert get_algorithm(name).claims.rounds is not None, name
        assert get_algorithm("pram").claims.depth is not None

    def test_claim_context_t_eff(self):
        # None -> the paper default log2 k; always clamped into [1, k-1].
        assert ClaimContext(n=10, m=20, k=8, t=None).t_eff == 3
        assert ClaimContext(n=10, m=20, k=8, t=100).t_eff == 7
        assert ClaimContext(n=10, m=20, k=2, t=None).t_eff == 1
        assert ClaimContext(n=10, m=20, k=1, t=5).t_eff == 1

    def test_claims_match_theorem_constants(self):
        ctx = ClaimContext(n=100, m=500, k=4, t=None)
        assert get_algorithm("baswana-sen").claims.stretch(ctx) == 7.0
        assert get_algorithm("two-phase").claims.stretch(ctx) == 16.0
        assert get_algorithm("cluster-merging").claims.stretch(ctx) == pytest.approx(
            4.0 ** np.log2(3)
        )
        assert get_algorithm("streaming").claims.passes(ctx) == 3  # ceil(log2 4)+1

    def test_claim_names(self):
        assert get_algorithm("streaming").claims.names() == ["stretch", "size", "passes"]
        assert get_algorithm("pram").claims.names() == ["stretch", "size", "depth"]


# ---------------------------------------------------------------------------
# positive certification + JSON round-trip
# ---------------------------------------------------------------------------


class TestCertify:
    def test_baswana_sen_certifies(self):
        cert = certify("baswana-sen", "er:64:0.15", k=3, seed=0)
        assert cert.ok
        assert cert.algorithm == "baswana-sen"
        assert cert.kind == "spanner"
        assert {c.name for c in cert.checks} >= {
            "spanning-subgraph",
            "connectivity",
            "stretch",
            "size",
        }
        stretch = cert.check("stretch")
        assert stretch.bound == 5.0 and stretch.measured <= 5.0

    def test_alias_resolves(self):
        cert = certify("bs", "cycle:12", k=2, seed=1)
        assert cert.algorithm == "baswana-sen"
        assert cert.ok

    def test_streaming_includes_pass_budget(self):
        cert = certify("streaming", "er:64:0.15", k=4, seed=0)
        assert cert.ok
        passes = cert.check("passes")
        assert passes is not None and passes.measured <= passes.bound == 3

    def test_mpc_includes_round_budget(self):
        cert = certify("mpc", "er:64:0.15", k=4, t=2, seed=0)
        assert cert.ok
        assert cert.check("rounds") is not None

    def test_apsp_pipeline_certifies_with_default_parameters(self):
        cert = certify("apsp-mpc", "er:64:0.15", seed=0)
        assert cert.ok
        assert cert.kind == "apsp"
        assert cert.k >= 2  # the Section 7 default k = log2 n
        assert cert.check("rounds") is not None

    def test_unweighted_only_algorithm_forces_unit(self):
        cert = certify("unweighted", "er:48:0.2", k=3, seed=0, weights="uniform")
        assert cert.ok
        assert cert.weights == "unit"

    def test_certificate_json_round_trip(self):
        cert = certify("general", "grid:5:6", k=4, t=2, seed=3)
        data = cert.to_json()
        assert data["ok"] is True
        # JSON-serializable all the way down.
        text = json.dumps(data)
        back = Certificate.from_json(json.loads(text))
        assert back.ok == cert.ok
        assert back.algorithm == cert.algorithm
        assert back.checks == cert.checks
        assert back.graph == cert.graph
        assert back.slack == cert.slack

    def test_certificate_save_load(self, tmp_path):
        cert = certify("cluster-merging", "cliques:4:5", k=4, seed=2)
        path = tmp_path / "cert.json"
        cert.save(path)
        loaded = Certificate.load(path)
        assert loaded == cert

    def test_bound_check_round_trip_preserves_null_bound(self):
        check = BoundCheck(name="connectivity", passed=True, measured=1.0)
        assert BoundCheck.from_json(check.to_json()) == check


# ---------------------------------------------------------------------------
# violation detection: certifiers must catch broken algorithms
# ---------------------------------------------------------------------------


def _drop_heaviest_edge(g, k, t, rng):
    """A 'spanner' that silently discards the heaviest edge — on a cycle
    this preserves connectivity but blows the claimed stretch."""
    keep = np.argsort(g.edges_w, kind="stable")[: max(g.m - 1, 0)]
    return SpannerResult(
        edge_ids=np.sort(keep.astype(np.int64)),
        algorithm="broken-drop-heaviest",
        k=k,
        t=t,
        iterations=1,
    )


def _drop_half_edges(g, k, t, rng):
    """Discards half the edges — disconnects most graphs."""
    return SpannerResult(
        edge_ids=np.arange(g.m // 2, dtype=np.int64),
        algorithm="broken-drop-half",
        k=k,
        t=t,
        iterations=1,
    )


def _fake_rounds(g, k, t, rng):
    """Returns the whole graph but reports an absurd round count."""
    res = SpannerResult(
        edge_ids=np.arange(g.m, dtype=np.int64),
        algorithm="broken-rounds",
        k=k,
        t=t,
        iterations=1,
    )
    res.extra["rounds"] = 10**9
    return res


class TestViolationDetection:
    def test_stretch_violation_flagged(self):
        claims = AlgorithmClaims(
            stretch=lambda ctx: 2.0 * ctx.k - 1.0,
            size=lambda ctx: float(ctx.m),
            source="injected",
        )
        with temporary_algorithm("broken-stretch", _drop_heaviest_edge, claims=claims):
            # Unit-weight cycle: removing one edge turns the worst pair's
            # distance into n-1, far beyond 2k-1.
            cert = certify("broken-stretch", "cycle:16", k=2, seed=0, weights="unit")
        assert not cert.ok
        assert [c.name for c in cert.violations] == ["stretch"]
        assert cert.check("stretch").measured == 15.0  # the rerouted cycle edge

    def test_disconnection_flagged(self):
        claims = AlgorithmClaims(
            stretch=lambda ctx: 100.0, size=lambda ctx: float(ctx.m), source="injected"
        )
        with temporary_algorithm("broken-disconnect", _drop_half_edges, claims=claims):
            cert = certify("broken-disconnect", "cycle:12", k=3, seed=0)
        assert not cert.ok
        names = {c.name for c in cert.violations}
        assert "connectivity" in names
        assert "stretch" in names  # infinite measured stretch also fails

    def test_size_violation_flagged_via_slack(self):
        # The honest algorithm against an impossible size budget: proves the
        # slack knob actually tightens the check.
        claims = AlgorithmClaims(
            stretch=lambda ctx: 2.0 * ctx.k - 1.0,
            size=lambda ctx: 1.0,  # nothing real fits one edge
            source="injected",
        )

        def honest(g, k, t, rng):
            from repro.core import baswana_sen

            return baswana_sen(g, k, rng=rng)

        with temporary_algorithm("tiny-size-claim", honest, claims=claims):
            cert = certify("tiny-size-claim", "er:48:0.2", k=3, seed=0)
        assert not cert.ok
        assert [c.name for c in cert.violations] == ["size"]

    def test_rounds_violation_flagged(self):
        claims = AlgorithmClaims(
            stretch=lambda ctx: float("inf"),
            size=lambda ctx: float("inf"),
            rounds=lambda ctx: 10.0,
            source="injected",
        )
        with temporary_algorithm("broken-rounds", _fake_rounds, claims=claims):
            cert = certify("broken-rounds", "er:32:0.2", k=3, seed=0)
        assert not cert.ok
        rounds = cert.check("rounds")
        assert rounds is not None and not rounds.passed
        assert rounds.measured == 10**9 and rounds.bound == 10.0

    def test_violating_certificate_round_trips(self):
        claims = AlgorithmClaims(
            stretch=lambda ctx: 2.0 * ctx.k - 1.0,
            size=lambda ctx: float(ctx.m),
            source="injected",
        )
        with temporary_algorithm("broken-rt", _drop_heaviest_edge, claims=claims):
            cert = certify("broken-rt", "cycle:16", k=2, seed=0, weights="unit")
        back = Certificate.from_json(json.loads(json.dumps(cert.to_json())))
        assert not back.ok
        assert back.summary().startswith("VIOLATED")

    def test_certify_result_without_claims_still_checks_structure(self):
        with temporary_algorithm("no-claims", _drop_half_edges):
            spec = get_algorithm("no-claims")
            g = GraphSpec.parse("cycle:12").build(weights="unit", seed=0)
            res = spec.run(g, k=3, rng=0)
            cert = certify_result(spec, g, res, graph="cycle:12")
        assert {c.name for c in cert.checks} == {"spanning-subgraph", "connectivity"}
        assert not cert.ok


# ---------------------------------------------------------------------------
# the acceptance sweep: every registered algorithm certifies somewhere
# ---------------------------------------------------------------------------


def test_all_registered_algorithms_certify_on_er():
    for name in algorithm_names():
        cert = certify(name, "er:72:0.1", k=4, seed=0)
        assert cert.ok, f"{name}: {[c.name for c in cert.violations]}"


@given(st.data())
@settings(max_examples=10, deadline=None)
def test_general_certifies_across_shared_scenarios(data):
    """The certifier and the property tests speak one vocabulary: any
    scenario the shared strategy draws must certify the honest general
    algorithm (a counterexample replays as a `repro verify` command)."""
    graph, k, t, weights, seed = data.draw(scenarios(max_n=32))
    cert = certify("general", graph, k=k, t=t, seed=seed, weights=weights)
    assert cert.ok, (
        f"repro verify --algorithm general --graph {graph} -k {k} "
        f"--seed {seed} --weights {weights} failed: "
        f"{[c.name for c in cert.violations]}"
    )
