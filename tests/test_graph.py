"""Unit tests for repro.graphs.graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import WeightedGraph, canonical_edges, dedupe_edges


class TestCanonicalEdges:
    def test_orders_endpoints(self):
        lo, hi, w = canonical_edges(
            np.array([3, 1]), np.array([1, 2]), np.array([1.0, 2.0])
        )
        assert lo.tolist() == [1, 1]
        assert hi.tolist() == [3, 2]

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError, match="self loop"):
            canonical_edges(np.array([1]), np.array([1]), np.array([1.0]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="equal shapes"):
            canonical_edges(np.array([1, 2]), np.array([3]), np.array([1.0]))

    def test_empty(self):
        lo, hi, w = canonical_edges(np.array([]), np.array([]), np.array([]))
        assert lo.size == 0


class TestDedupeEdges:
    def test_keeps_min_weight(self):
        lo, hi, w = dedupe_edges(
            np.array([0, 1, 0]), np.array([1, 0, 1]), np.array([5.0, 2.0, 7.0])
        )
        assert lo.tolist() == [0]
        assert hi.tolist() == [1]
        assert w.tolist() == [2.0]

    def test_preserves_distinct(self):
        lo, hi, w = dedupe_edges(
            np.array([0, 1, 2]), np.array([1, 2, 3]), np.array([1.0, 2.0, 3.0])
        )
        assert lo.size == 3

    def test_idempotent(self):
        u = np.array([0, 2, 0, 3])
        v = np.array([1, 1, 1, 2])
        w = np.array([3.0, 1.0, 2.0, 5.0])
        once = dedupe_edges(u, v, w)
        twice = dedupe_edges(*once)
        for a, b in zip(once, twice):
            assert np.array_equal(a, b)


class TestWeightedGraphConstruction:
    def test_basic(self, small_weighted):
        assert small_weighted.n == 6
        assert small_weighted.m == 7

    def test_rejects_negative_n(self):
        z = np.zeros(0, dtype=np.int64)
        with pytest.raises(ValueError):
            WeightedGraph(-1, z, z, np.zeros(0))

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValueError, match="out of range"):
            WeightedGraph.from_edges(2, [(0, 5, 1.0)])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError, match="positive"):
            WeightedGraph.from_edges(3, [(0, 1, 0.0)])

    def test_rejects_infinite_weight(self):
        with pytest.raises(ValueError, match="positive"):
            WeightedGraph.from_edges(3, [(0, 1, float("inf"))])

    def test_collapses_parallel_edges(self):
        g = WeightedGraph.from_edges(3, [(0, 1, 5.0), (1, 0, 2.0)])
        assert g.m == 1
        assert g.edges_w[0] == 2.0

    def test_empty_graph(self):
        g = WeightedGraph.from_edges(5, [])
        assert g.n == 5 and g.m == 0
        assert g.degree(0) == 0

    def test_zero_vertices(self):
        g = WeightedGraph.from_edges(0, [])
        assert g.n == 0 and g.m == 0

    def test_unweighted_constructor(self):
        g = WeightedGraph.from_unweighted_edges(4, [(0, 1), (2, 3)])
        assert g.is_unweighted
        assert g.m == 2

    def test_equality(self, small_weighted):
        other = WeightedGraph(
            6,
            small_weighted.edges_u,
            small_weighted.edges_v,
            small_weighted.edges_w,
        )
        assert small_weighted == other
        assert small_weighted != WeightedGraph.from_edges(6, [(0, 1, 1.0)])


class TestAdjacency:
    def test_neighbors(self, small_weighted):
        assert sorted(small_weighted.neighbors(2).tolist()) == [0, 1, 3]

    def test_degree_array(self, small_weighted):
        degs = small_weighted.degree()
        assert degs.sum() == 2 * small_weighted.m
        assert degs[2] == 3

    def test_incident_weights_match_neighbors(self, small_weighted):
        nb = small_weighted.neighbors(0)
        ws = small_weighted.incident_weights(0)
        expect = {1: 1.0, 2: 2.5}
        assert {int(a): float(b) for a, b in zip(nb, ws)} == expect

    def test_incident_edge_ids_roundtrip(self, er_weighted):
        g = er_weighted
        for x in (0, 5, 17):
            for y, eid in zip(g.neighbors(x), g.incident_edge_ids(x)):
                a, b = g.edges_u[eid], g.edges_v[eid]
                assert {int(a), int(b)} == {x, int(y)}


class TestConversions:
    def test_scipy_symmetric(self, small_weighted):
        m = small_weighted.to_scipy()
        assert (m != m.T).nnz == 0

    def test_networkx_roundtrip(self, er_weighted):
        g2 = WeightedGraph.from_networkx(er_weighted.to_networkx())
        assert g2 == er_weighted

    def test_subgraph_from_edge_ids(self, small_weighted):
        h = small_weighted.subgraph_from_edge_ids([0, 3])
        assert h.n == small_weighted.n
        assert h.m == 2
        assert small_weighted.has_edge_subset(h)

    def test_subgraph_rejects_bad_id(self, small_weighted):
        with pytest.raises(ValueError):
            small_weighted.subgraph_from_edge_ids([100])

    def test_subgraph_dedupes_ids(self, small_weighted):
        h = small_weighted.subgraph_from_edge_ids([1, 1, 1])
        assert h.m == 1

    def test_edge_index_map(self, small_weighted):
        idx = small_weighted.edge_index_map()
        for i, (a, b, _) in enumerate(small_weighted.edge_tuples()):
            assert idx[(a, b)] == i

    def test_reweighted(self, small_weighted):
        w = np.full(small_weighted.m, 3.0)
        h = small_weighted.reweighted(w)
        assert np.all(h.edges_w == 3.0)
        assert h.m == small_weighted.m

    def test_reweighted_shape_check(self, small_weighted):
        with pytest.raises(ValueError):
            small_weighted.reweighted(np.ones(2))

    def test_total_weight(self, small_weighted):
        assert small_weighted.total_weight() == pytest.approx(21.0)
