"""Tests for graph persistence: hardened edge-list parsing + npz round trip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import erdos_renyi, read_edgelist, write_edgelist
from repro.graphs.io import GRAPH_NPZ_VERSION, read_graph_npz, write_graph_npz


@pytest.fixture
def g():
    return erdos_renyi(60, 0.15, weights="uniform", rng=3)


class TestEdgelistRoundTrip:
    def test_round_trip(self, g, tmp_path):
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        assert read_edgelist(path) == g

    def test_isolated_vertices_survive(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# n=9\n0 1 2.0\n")
        assert read_edgelist(path).n == 9

    def test_missing_header_infers_n(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1 2.0\n4 2 1.5\n")
        assert read_edgelist(path).n == 5

    def test_missing_weights_default_to_unit(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# n = 5\n0 1\n2 3\n")
        g2 = read_edgelist(path)
        assert g2.n == 5 and g2.m == 2 and g2.is_unweighted

    def test_header_spacing_tolerated(self, tmp_path):
        path = tmp_path / "g.edges"
        for header in ("#  n = 7", "# n  =  7", "# n =7", "#n=7"):
            path.write_text(f"{header}\n0 1 1.0\n")
            assert read_edgelist(path).n == 7, header

    def test_unrelated_comments_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# note: from somewhere\n# n=4\n0 1 1.0\n")
        assert read_edgelist(path).n == 4

    def test_empty_file(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("")
        assert read_edgelist(path).n == 0


class TestEdgelistRejections:
    """Malformed input fails here, with the offending line number —
    not deeper in WeightedGraph construction."""

    @pytest.mark.parametrize(
        "content, lineno, fragment",
        [
            ("0 1 1.0\n0 1 2 3\n", 2, "expected 'u v"),
            ("0 x 1.0\n", 1, "non-numeric"),
            ("0 1 abc\n", 1, "non-numeric"),
            ("-1 2 1.0\n", 1, "negative endpoint"),
            ("# n=3\n0 1 1.0\n1 7 1.0\n", 3, "out of range for header n=3"),
            ("0 1 nan\n", 1, "positive and finite"),
            ("0 1 inf\n", 1, "positive and finite"),
            ("0 1 -4.0\n", 1, "positive and finite"),
            ("0 1 0.0\n", 1, "positive and finite"),
            ("2 2 1.0\n", 1, "self loop"),
            ("# n=x\n", 1, "bad header"),
            ("# n = 1.5\n", 1, "bad header"),
            ("# n=-2\n", 1, ">= 0"),
        ],
    )
    def test_line_numbered_errors(self, tmp_path, content, lineno, fragment):
        path = tmp_path / "bad.edges"
        path.write_text(content)
        with pytest.raises(ValueError, match=fragment) as exc:
            read_edgelist(path)
        assert f":{lineno}:" in str(exc.value)


class TestGraphNpz:
    def test_round_trip_bit_exact(self, g, tmp_path):
        path = tmp_path / "g.npz"
        write_graph_npz(g, path)
        g2 = read_graph_npz(path)
        assert g2 == g
        assert np.array_equal(g2.edges_w, g.edges_w)

    def test_empty_graph(self, tmp_path):
        from repro.graphs import WeightedGraph

        path = tmp_path / "g.npz"
        write_graph_npz(WeightedGraph.from_edges(4, []), path)
        g2 = read_graph_npz(path)
        assert g2.n == 4 and g2.m == 0

    def test_mmap_round_trip_bit_exact(self, g, tmp_path):
        path = tmp_path / "g.npz"
        write_graph_npz(g, path)  # uncompressed default: members can memmap
        g2 = read_graph_npz(path, mmap_mode="r")
        assert g2 == g
        assert np.array_equal(g2.edges_w, g.edges_w)
        # The lazy path really is file-backed, not a materialized copy.
        assert any(
            isinstance(arr, np.memmap) or isinstance(arr.base, np.memmap)
            for arr in (g2.edges_u, g2.edges_v, g2.edges_w)
        )

    def test_mmap_of_compressed_npz_falls_back_to_eager(self, g, tmp_path):
        path = tmp_path / "g.npz"
        write_graph_npz(g, path, compressed=True)
        g2 = read_graph_npz(path, mmap_mode="r")  # deflated: no mmap possible
        assert g2 == g

    def test_foreign_payload_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.arange(3))
        with pytest.raises(ValueError, match="not a graph npz"):
            read_graph_npz(path)

    def test_future_version_rejected(self, g, tmp_path):
        path = tmp_path / "g.npz"
        np.savez(
            path,
            format_version=np.int64(GRAPH_NPZ_VERSION + 1),
            n=np.int64(g.n),
            u=g.edges_u,
            v=g.edges_v,
            w=g.edges_w,
        )
        with pytest.raises(ValueError, match="newer than the supported"):
            read_graph_npz(path)
