"""Violates shm-lifecycle: segment created with no cleanup path."""

from multiprocessing.shared_memory import SharedMemory


def stage(nbytes):
    shm = SharedMemory(create=True, size=nbytes)
    shm.buf[:nbytes] = bytes(nbytes)
    return shm.name
