"""Violates json-safety: CLI payload dumped without _json_safe."""

import json


def emit(payload):
    print(json.dumps(payload, indent=2))
