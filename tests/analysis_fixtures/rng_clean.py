"""Clean twin of rng_bad: the seed routes through coerce_rng."""

from repro.core.params import coerce_rng


def shuffled(order_seed):
    rng = coerce_rng(order_seed)
    return rng.permutation(8)
