"""Violates frozen-reference: a *_reference baseline with no pinned hash."""


def toy_sum_reference(xs):
    total = 0
    for x in xs:
        total = total + x
    return total
