"""Clean twin of async_bad: async sleep, solve via the executor."""

import asyncio
from functools import partial


async def handle(engine, pairs):
    await asyncio.sleep(0.05)
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, partial(engine.query_many, pairs))
