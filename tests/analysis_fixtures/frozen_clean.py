"""Clean twin of frozen_bad: not a frozen baseline, nothing to pin."""


def toy_sum(xs):
    return sum(xs)
