"""Violates memmap-copy: astype() without copy= on a memmap-visible path."""

import numpy as np


def normalize(arr):
    return arr.astype(np.int64)
