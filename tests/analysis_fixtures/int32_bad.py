"""Violates int32-widening: slot*n+vertex key indexing with no int64."""

import numpy as np


def mark_seen(seen, slots, n, src):
    seen[slots * n + src] = True
    return np.flatnonzero(seen)
