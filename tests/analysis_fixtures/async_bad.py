"""Violates async-blocking: sleep + direct engine solve on the loop."""

import time


async def handle(engine, pairs):
    time.sleep(0.05)
    return engine.query_many(pairs)
