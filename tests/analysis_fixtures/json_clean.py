"""Clean twin of json_bad: the payload routes through _json_safe."""

import json


def _json_safe(obj):
    return obj


def emit(payload):
    print(json.dumps(_json_safe(payload), indent=2))
