"""Clean twin of memmap_bad: the copy decision is explicit."""

import numpy as np


def normalize(arr):
    return arr.astype(np.int64, copy=False)
