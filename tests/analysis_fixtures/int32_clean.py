"""Clean twin of int32_bad: the multiplier carries an explicit int64."""

import numpy as np


def mark_seen(seen, slots, n, src):
    seen[slots * np.int64(n) + src] = True
    return np.flatnonzero(seen)
