"""Clean twin of shm_bad: close/unlink paired in a finally block."""

from multiprocessing.shared_memory import SharedMemory


def stage(nbytes):
    shm = SharedMemory(create=True, size=nbytes)
    try:
        shm.buf[:nbytes] = bytes(nbytes)
        return shm.name
    finally:
        shm.close()
        shm.unlink()
