"""Violates rng-discipline: bare default_rng bypasses coerce_rng."""

import numpy as np


def shuffled(order_seed):
    rng = np.random.default_rng(order_seed)
    return rng.permutation(8)
