"""Tests for the concurrent micro-batching query server (repro.service.server).

Covers the ISSUE 7 acceptance invariants: the micro-batch window's edge
cases (deadline flush of a single request, empty-window timer no-op,
max-batch overflow splitting), bounded admission control with explicit
overload rejections, graceful drain leaving /dev/shm clean, bit-identity
of served answers vs offline ``query_many``, the ``stats`` protocol verb,
malformed-line hardening on both the socket protocol and the legacy pipe
loop, and the ``repro serve --socket`` CLI end to end.

No pytest-asyncio in the image: async tests run via ``asyncio.run``
inside sync test functions.
"""

from __future__ import annotations

import asyncio
import io
import json
import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.distances import SpannerDistanceOracle
from repro.graphs import WeightedGraph, erdos_renyi
from repro.service import AsyncClient, QueryEngine, QueryServer, serve_pipe
from repro.service.server import latency_summary, parse_hostport
from repro.service.shm import shm_segments

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(180, 0.08, weights="uniform", rng=12)


@pytest.fixture(scope="module")
def oracle(g):
    return SpannerDistanceOracle(g, k=4, t=2, rng=0)


class SlowEngine:
    """Delegating engine wrapper whose solves block long enough for the
    event loop to coalesce (or overflow) the next micro-batch window."""

    def __init__(self, inner, delay: float = 0.05):
        self._inner = inner
        self.delay = delay
        self.batch_sizes: list[int] = []

    def query_many(self, pairs):
        time.sleep(self.delay)
        self.batch_sizes.append(len(pairs))
        return self._inner.query_many(pairs)

    def query(self, u, v):
        time.sleep(self.delay)
        return self._inner.query(u, v)

    def __getattr__(self, name):
        return getattr(self._inner, name)


async def _burst(server, payloads):
    """One connection, pipelined sends; returns replies in send order."""
    cli = await AsyncClient.connect(server.host, server.port)
    futs = [cli.send(p) for p in payloads]
    replies = [(await f)[0] for f in futs]
    await cli.close()
    return replies


class TestMicroBatchWindow:
    def test_deadline_flush_single_request(self, oracle):
        """One lone request must not wait for max_batch: the window
        deadline flushes a batch of exactly 1."""

        async def run():
            engine = QueryEngine(oracle)
            async with QueryServer(engine, max_batch=256, window_s=0.005) as server:
                cli = await AsyncClient.connect(server.host, server.port)
                d = await cli.query(0, 5)
                await cli.close()
                return d, dict(server.batch_size_hist)

        d, hist = asyncio.run(run())
        assert d == pytest.approx(oracle.query(0, 5))
        assert hist == {1: 1}

    def test_empty_window_timer_is_noop(self, oracle):
        """The deadline can legitimately fire over an empty queue (a
        max-batch flush already consumed it): no flush, no crash."""

        async def run():
            engine = QueryEngine(oracle)
            async with QueryServer(engine, window_s=0.001) as server:
                server._window_expired()
                assert server._flush_task is None
                await asyncio.sleep(0.005)
                return server.batches_flushed

        assert asyncio.run(run()) == 0

    def test_max_batch_overflow_splits(self, oracle):
        """A backlog larger than max_batch is split into consecutive
        solves, every one <= max_batch, nothing lost or reordered."""
        total, max_batch = 13, 4

        async def run():
            engine = SlowEngine(QueryEngine(oracle), delay=0.03)
            async with QueryServer(engine, max_batch=max_batch, window_s=0.001) as server:
                cli = await AsyncClient.connect(server.host, server.port)
                first = cli.send({"op": "query", "u": 0, "v": 1})
                await asyncio.sleep(0.01)  # first solve occupies the thread
                futs = [
                    cli.send({"op": "query", "u": i % engine.n, "v": (i * 7) % engine.n})
                    for i in range(1, total)
                ]
                replies = [(await first)[0]] + [(await f)[0] for f in futs]
                await cli.close()
                return replies, engine.batch_sizes, dict(server.batch_size_hist)

        replies, solver_batches, hist = asyncio.run(run())
        assert all("d" in r for r in replies)
        assert sum(solver_batches) == total
        assert max(solver_batches) <= max_batch
        assert len(solver_batches) >= 2  # the backlog really was split
        assert hist == {b: c for b, c in zip(*np.unique(solver_batches, return_counts=True))}
        expected = [float(oracle.query(0, 1))] + [
            float(oracle.query(i % oracle.spanner.n, (i * 7) % oracle.spanner.n))
            for i in range(1, total)
        ]
        assert [r["d"] for r in replies] == pytest.approx(expected)

    def test_overload_rejection(self, oracle):
        """Admission is bounded: beyond max_pending queued requests the
        server answers {"error": "overloaded"} instead of queueing."""
        max_pending, extra = 4, 6

        async def run():
            engine = SlowEngine(QueryEngine(oracle), delay=0.08)
            async with QueryServer(
                engine, max_batch=2, window_s=0.001, max_pending=max_pending
            ) as server:
                cli = await AsyncClient.connect(server.host, server.port)
                first = cli.send({"op": "query", "u": 0, "v": 1})
                await asyncio.sleep(0.02)  # solver busy; queue admits next
                futs = [
                    cli.send({"op": "query", "u": 2, "v": 3})
                    for _ in range(max_pending + extra)
                ]
                replies = [(await first)[0]] + [(await f)[0] for f in futs]
                rejected = server.rejected
                await cli.close()
                return replies, rejected

        replies, rejected = asyncio.run(run())
        errors = [r for r in replies if "error" in r]
        answered = [r for r in replies if "d" in r]
        assert len(errors) == extra and all(r["error"] == "overloaded" for r in errors)
        assert len(answered) == 1 + max_pending
        assert rejected == extra

    def test_bit_identity_vs_offline(self, oracle):
        """Every served answer equals offline query_many bit-for-bit."""
        rng = np.random.default_rng(5)
        pairs = rng.integers(0, oracle.spanner.n, size=(300, 2))
        offline = QueryEngine(oracle).query_many(pairs)

        async def run():
            engine = QueryEngine(oracle, cache_rows=16)
            async with QueryServer(engine, max_batch=32, window_s=0.002) as server:
                replies = await _burst(
                    server,
                    [{"op": "query", "u": int(u), "v": int(v)} for u, v in pairs],
                )
                return [r["d"] for r in replies]

        got = np.array([np.inf if d is None else d for d in asyncio.run(run())])
        assert np.array_equal(got, offline)

    def test_disconnected_pair_is_null(self):
        """JSON has no Infinity: unreachable pairs answer d=null."""

        async def run():
            engine = QueryEngine(WeightedGraph.from_edges(4, []))
            async with QueryServer(engine, window_s=0.001) as server:
                (reply,) = await _burst(server, [{"op": "query", "u": 0, "v": 3}])
                return reply

        assert asyncio.run(run())["d"] is None


class TestProtocol:
    def test_stats_and_ping_verbs(self, oracle):
        async def run():
            engine = QueryEngine(oracle)
            async with QueryServer(engine, window_s=0.001) as server:
                cli = await AsyncClient.connect(server.host, server.port)
                await cli.query(0, 5)
                pong = await cli.request({"op": "ping"})
                stats = await cli.stats()
                await cli.close()
                return pong, stats

        pong, stats = asyncio.run(run())
        assert pong["pong"] is True
        assert stats["mode"] == "micro_batch"
        assert stats["served"] == 1
        assert stats["batches_flushed"] == 1
        assert stats["latency_ms"]["count"] == 1
        assert stats["latency_ms"]["p99_ms"] >= 0
        assert stats["batch_size_hist"] == {"1": 1}
        assert "cache" in stats["engine"]  # engine accounting rides along

    def test_malformed_lines_get_line_numbered_errors(self, oracle):
        """Bad JSON, bad types, bad ranges, unknown ops: every one gets
        an error reply and the connection keeps serving."""

        async def run():
            engine = QueryEngine(oracle)
            async with QueryServer(engine, window_s=0.001) as server:
                cli = await AsyncClient.connect(server.host, server.port)
                cli.send_raw(b"this is not json\n")
                cli.send_raw(b'[1, 2, 3]\n')
                bad = [
                    await cli.request({"op": "query", "u": "zero", "v": 1}),
                    await cli.request({"op": "query", "u": 0, "v": 10**6}),
                    await cli.request({"op": "query", "u": True, "v": 1}),
                    await cli.request({"op": "query", "u": 0}),
                    await cli.request({"op": "warp", "u": 0, "v": 1}),
                ]
                good = await cli.query(0, 5)
                await asyncio.sleep(0.01)  # let the raw-line errors land
                unmatched = list(cli.unmatched)
                perrs = server.protocol_errors
                await cli.close()
                return bad, good, unmatched, perrs

        bad, good, unmatched, perrs = asyncio.run(run())
        assert all("error" in r and r["line"] >= 1 for r in bad)
        assert "integers" in bad[0]["error"]
        assert "out of range" in bad[1]["error"]
        assert "integers" in bad[2]["error"]  # bools are not vertex ids
        assert "integers" in bad[3]["error"]  # missing v
        assert "unknown op" in bad[4]["error"]
        assert good >= 0  # the connection survived all of it
        assert len(unmatched) == 2  # the id-less raw-line error replies
        assert all("error" in m and "line" in m for m in unmatched)
        assert perrs == 7

    def test_parse_hostport(self):
        assert parse_hostport("127.0.0.1:8123") == ("127.0.0.1", 8123)
        assert parse_hostport("8123") == ("127.0.0.1", 8123)
        assert parse_hostport(":8123") == ("127.0.0.1", 8123)
        assert parse_hostport("0.0.0.0:0") == ("0.0.0.0", 0)
        with pytest.raises(ValueError):
            parse_hostport("host:notaport")
        with pytest.raises(ValueError):
            parse_hostport("host:70000")

    def test_parse_hostport_bracketed_ipv6(self):
        # rpartition-on-":" used to leave the brackets in the host, which
        # asyncio.start_server then fails to resolve.
        assert parse_hostport("[::1]:9000") == ("::1", 9000)
        assert parse_hostport("[2001:db8::1]:80") == ("2001:db8::1", 80)
        assert parse_hostport("[]:8000") == ("127.0.0.1", 8000)
        with pytest.raises(ValueError):
            parse_hostport("[::1]:nope")

    def test_latency_summary(self):
        assert latency_summary([]) == {"count": 0}
        out = latency_summary([0.001, 0.002, 0.003])
        assert out["count"] == 3
        assert out["p50_ms"] == pytest.approx(2.0)
        assert out["max_ms"] == pytest.approx(3.0)

    def test_constructor_validation(self, oracle):
        engine = QueryEngine(oracle)
        with pytest.raises(ValueError):
            QueryServer(engine, max_batch=0)
        with pytest.raises(ValueError):
            QueryServer(engine, max_pending=0)
        with pytest.raises(ValueError):
            QueryServer(engine, window_s=-1.0)


class TestDrain:
    def test_drain_answers_in_flight_and_frees_shm(self, oracle, tmp_path):
        """aclose() mid-traffic: everything admitted is answered, late
        arrivals get {"error": "draining"}, and the sharded engine's
        /dev/shm segments are gone afterwards."""
        from repro.service import ArtifactStore

        before = shm_segments()
        store = ArtifactStore(tmp_path)
        key = store.save_oracle(oracle)

        async def run():
            engine = QueryEngine.from_store(store, key, cache_rows=32, shards=2)
            server = QueryServer(engine, max_batch=16, window_s=0.002)
            await server.start()
            cli = await AsyncClient.connect(server.host, server.port)
            futs = [cli.send({"op": "query", "u": i % 180, "v": (i * 3) % 180}) for i in range(64)]
            await asyncio.sleep(0.01)  # batches in flight
            await server.aclose()
            answered = rejected = lost = 0
            for f in futs:
                try:
                    msg, _ = await f
                except ConnectionError:
                    lost += 1
                    continue
                if "error" in msg:
                    assert msg["error"] == "draining"
                    rejected += 1
                else:
                    answered += 1
            late = await asyncio.gather(
                cli.send({"op": "query", "u": 0, "v": 1}), return_exceptions=True
            )
            await cli.close()
            await server.aclose()  # idempotent
            return answered, rejected, lost, late

        answered, rejected, lost, late = asyncio.run(run())
        assert lost == 0
        assert answered + rejected == 64 and answered > 0
        # Post-drain send either errors or is rejected; never answered.
        assert isinstance(late[0], (ConnectionError, Exception)) or "error" in late[0][0]
        assert shm_segments() == before


class TestServePipe:
    def test_malformed_lines_survive_with_json_errors(self, oracle):
        engine = QueryEngine(oracle)
        lines = [
            "0 5",          # 1: ok
            "bad",          # 2: arity
            "1 2 3",        # 3: arity
            "0 999999",     # 4: out of range
            "zero one",     # 5: non-integer
            "# comment",    # 6: skipped
            "",             # 7: skipped
            "3 9",          # 8: ok
        ]
        out = io.StringIO()
        result = serve_pipe(engine, lines, out)
        assert result["errors"] == 4
        assert result["stats"]["queries_served"] == 2
        got = out.getvalue().strip().splitlines()
        assert len(got) == 6
        assert float(got[0]) == pytest.approx(oracle.query(0, 5))
        assert float(got[5]) == pytest.approx(oracle.query(3, 9))
        errs = [json.loads(line) for line in got[1:5]]
        assert [e["line"] for e in errs] == [2, 3, 4, 5]
        assert "expected 'u v'" in errs[0]["error"]
        assert "non-integer" in errs[3]["error"]

    def test_clean_pipe_has_no_errors(self, oracle):
        engine = QueryEngine(oracle)
        out = io.StringIO()
        result = serve_pipe(engine, ["0 1", "2 3"], out)
        assert result["errors"] == 0
        assert len(out.getvalue().strip().splitlines()) == 2


class TestSocketCLI:
    def test_serve_socket_end_to_end(self, tmp_path):
        """repro serve --socket: build+serve, concurrent queries over a
        real socket, SIGTERM drain, stats on stderr, no shm leaks."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--store", str(tmp_path / "store"), "--build",
                "--graph", "er:64:0.1", "--algorithm", "general", "-k", "3",
                "--seed", "0", "--socket", "127.0.0.1:0", "--window-ms", "1",
            ],
            env=env,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            line = proc.stderr.readline()
            assert "serving artifact" in line
            port = int(line.split(" on ")[1].split()[0].rsplit(":", 1)[1])

            async def drive():
                clis = [await AsyncClient.connect("127.0.0.1", port) for _ in range(3)]
                futs = [
                    cli.send({"op": "query", "u": (i * 5) % 64, "v": (i * 11) % 64})
                    for i, cli in ((i, clis[i % 3]) for i in range(30))
                ]
                replies = [(await f)[0] for f in futs]
                stats = await clis[0].stats()
                for cli in clis:
                    await cli.close()
                return replies, stats

            replies, stats = asyncio.run(drive())
            assert all("d" in r for r in replies)
            assert stats["served"] >= 30
        finally:
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=30)
        assert proc.returncode == 0
        final = json.loads(err.strip().splitlines()[-1])
        assert final["drained"] is True and final["served"] >= 30


class TestBackendRouting:
    """The ``"backend"`` request field on a bundle-backed server: pinned
    queries split into per-backend micro-batches, answers stay
    bit-identical to the offline providers, and the ``stats`` verb reports
    per-backend served counters."""

    @pytest.fixture()
    def bundle(self, g):
        from repro.distances.sketches import DistanceSketch
        from repro.service import ProviderBundle

        return ProviderBundle(
            graph=g,
            spanner=g,
            k=3,
            t=2,
            t_effective=2,
            sketch=DistanceSketch(g, 3, rng=0),
        )

    def test_pinned_backends_served_and_counted(self, g, bundle):
        from repro.service import build_providers

        engine = QueryEngine(bundle)
        pairs = [((i * 7) % g.n, (i * 13) % g.n) for i in range(24)]
        payloads = [
            {"op": "query", "u": u, "v": v, "backend": b}
            for (u, v), b in zip(
                pairs, ["exact", "oracle", "sketch", None] * 6
            )
        ]
        for p in payloads:
            if p["backend"] is None:
                del p["backend"]

        async def run():
            async with QueryServer(engine, window_s=0.02, max_batch=64) as server:
                replies = await _burst(server, payloads)
                stats = server.stats()
                return replies, stats

        replies, stats = asyncio.run(run())
        engine.close()
        assert all("d" in r for r in replies)
        # Per-backend counters: 6 pinned each + 6 planner-routed.
        served = stats["backend_served"]
        assert served["exact"] == served["oracle"] == served["sketch"] == 6
        assert served["auto"] == 6
        # Served answers bit-identical to the offline providers.
        offline = build_providers(bundle)
        for backend in ("exact", "oracle", "sketch"):
            want = offline[backend].query_many(
                np.array([p for p, pay in zip(pairs, payloads)
                          if pay.get("backend") == backend])
            )
            got = np.array([
                np.inf if r["d"] is None else r["d"]
                for r, pay in zip(replies, payloads)
                if pay.get("backend") == backend
            ])
            assert np.array_equal(got, want), backend

    def test_unknown_backend_is_rejected(self, bundle):
        engine = QueryEngine(bundle)

        async def run():
            async with QueryServer(engine, window_s=0.005) as server:
                return await _burst(
                    server,
                    [
                        {"op": "query", "u": 0, "v": 1, "backend": "bogus"},
                        {"op": "query", "u": 0, "v": 1, "backend": 7},
                        {"op": "query", "u": 0, "v": 1, "backend": "exact"},
                    ],
                )

        bogus, nonstr, ok = asyncio.run(run())
        engine.close()
        assert "unknown backend 'bogus'" in bogus["error"]
        assert "must be a string" in nonstr["error"]
        assert "d" in ok

    def test_single_backend_server_rejects_backend(self, oracle):
        engine = QueryEngine(oracle)

        async def run():
            async with QueryServer(engine, window_s=0.005) as server:
                return await _burst(
                    server,
                    [{"op": "query", "u": 0, "v": 1, "backend": "sketch"}],
                )

        (reply,) = asyncio.run(run())
        engine.close()
        assert "single fixed backend" in reply["error"]
