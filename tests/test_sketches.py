"""Tests for Thorup–Zwick distance sketches (repro.distances.sketches)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import general_tradeoff, stretch_bound
from repro.distances import DistanceSketch, sketch_on_spanner
from repro.graphs import WeightedGraph, apsp, erdos_renyi, path_graph


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(150, 0.12, weights="uniform", rng=55)


@pytest.fixture(scope="module")
def exact(g):
    return apsp(g)


def _ratios(sk, g, exact, num=400, seed=0):
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, g.n, size=(num, 2))
    q = sk.query_many(pairs)
    e = exact[pairs[:, 0], pairs[:, 1]]
    mask = np.isfinite(e) & (e > 0)
    return q[mask] / e[mask]


class TestDistanceSketch:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_stretch_2k_minus_1(self, g, exact, k):
        sk = DistanceSketch(g, k, rng=k)
        r = _ratios(sk, g, exact)
        assert r.max() <= 2 * k - 1 + 1e-9
        assert r.min() >= 1 - 1e-9

    def test_k1_exact(self, g, exact):
        sk = DistanceSketch(g, 1, rng=0)
        r = _ratios(sk, g, exact)
        assert r.max() == pytest.approx(1.0)

    def test_self_distance_zero(self, g):
        sk = DistanceSketch(g, 3, rng=1)
        assert sk.query(7, 7) == 0.0

    def test_both_directions_within_bound(self, g, exact):
        # TZ query values are not symmetric (the pivot walk starts at u),
        # but both directions must respect the same guarantee.
        sk = DistanceSketch(g, 3, rng=2)
        for a, b in [(0, 5), (10, 99), (3, 77)]:
            d = exact[a, b]
            for q in (sk.query(a, b), sk.query(b, a)):
                assert d - 1e-9 <= q <= 5 * d + 1e-9

    def test_size_bound(self, g):
        for k in (2, 3, 4):
            sk = DistanceSketch(g, k, rng=3)
            assert sk.size_words <= sk.expected_size_bound()

    def test_size_shrinks_with_k(self, g):
        s2 = DistanceSketch(g, 2, rng=4).size_words
        s4 = DistanceSketch(g, 4, rng=4).size_words
        # Larger k -> sparser bunches (up to noise; allow slack).
        assert s4 <= 1.5 * s2

    def test_disconnected_inf(self):
        a = erdos_renyi(30, 0.3, weights="uniform", rng=5)
        u = np.concatenate([a.edges_u, a.edges_u + 30])
        v = np.concatenate([a.edges_v, a.edges_v + 30])
        w = np.concatenate([a.edges_w, a.edges_w])
        g2 = WeightedGraph(60, u, v, w)
        sk = DistanceSketch(g2, 3, rng=6)
        assert np.isinf(sk.query(0, 45))
        assert np.isfinite(sk.query(0, 15))

    def test_path_graph(self):
        g = path_graph(30, weights="uniform", rng=7)
        exact = apsp(g)
        sk = DistanceSketch(g, 2, rng=7)
        r = _ratios(sk, g, exact, num=200, seed=8)
        assert r.max() <= 3 + 1e-9

    def test_rejects_bad_k(self, g):
        with pytest.raises(ValueError):
            DistanceSketch(g, 0)

    def test_rejects_bad_vertex(self, g):
        sk = DistanceSketch(g, 2, rng=9)
        with pytest.raises(ValueError):
            sk.query(0, 10**6)

    def test_empty_graph(self):
        g0 = WeightedGraph.from_edges(4, [])
        sk = DistanceSketch(g0, 2, rng=0)
        assert np.isinf(sk.query(0, 1))
        assert sk.query(2, 2) == 0.0


class TestSketchOnSpanner:
    def test_composed_stretch(self, g, exact):
        k_sp, t = 4, 2
        res = general_tradeoff(g, k_sp, t, rng=10)
        sk, acc = sketch_on_spanner(g, res, 2, rng=11)
        r = _ratios(sk, g, exact)
        composed = 3 * stretch_bound(k_sp, t)  # (2*2-1) * spanner stretch
        assert r.max() <= composed + 1e-9
        assert r.min() >= 1 - 1e-9

    def test_preprocessing_touches_fewer_edges(self, g):
        res = general_tradeoff(g, 4, 2, rng=12)
        _, acc = sketch_on_spanner(g, res, 2, rng=13)
        assert acc["edges_in_spanner"] < acc["edges_in_g"]
        assert 0 < acc["preprocessing_edge_ratio"] < 1

    def test_accepts_graph_directly(self, g):
        res = general_tradeoff(g, 4, 2, rng=14)
        h = res.subgraph(g)
        sk, acc = sketch_on_spanner(g, h, 2, rng=15)
        assert acc["edges_in_spanner"] == h.m

    def test_rejects_wrong_vertex_set(self, g):
        other = WeightedGraph.from_edges(3, [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            sketch_on_spanner(g, other, 2)
