"""Tests for weight quantization (repro.graphs.weights)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import apsp, erdos_renyi, quantize_weights


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(120, 0.15, weights="exponential", rng=50)


class TestQuantization:
    def test_distortion_within_epsilon(self, g):
        for eps in (0.01, 0.1, 0.5):
            rep = quantize_weights(g, eps)
            assert rep.max_distortion <= 1 + eps + 1e-9
            assert np.all(rep.graph.edges_w >= g.edges_w - 1e-12)

    def test_distance_distortion(self, g):
        eps = 0.2
        rep = quantize_weights(g, eps)
        d0 = apsp(g)
        d1 = apsp(rep.graph)
        finite = np.isfinite(d0) & (d0 > 0)
        ratios = d1[finite] / d0[finite]
        assert ratios.max() <= 1 + eps + 1e-9
        assert ratios.min() >= 1 - 1e-9  # distances never shrink

    def test_weights_are_powers(self, g):
        rep = quantize_weights(g, 0.3)
        w_min = float(g.edges_w.min())
        recon = w_min * (1.3 ** rep.exponents.astype(float))
        assert np.allclose(recon, rep.graph.edges_w)

    def test_bits_shrink_with_larger_epsilon(self, g):
        fine = quantize_weights(g, 0.01)
        coarse = quantize_weights(g, 1.0)
        assert coarse.bits_per_word <= fine.bits_per_word

    def test_topology_unchanged(self, g):
        rep = quantize_weights(g, 0.5)
        assert rep.graph.m == g.m
        assert np.array_equal(rep.graph.edges_u, g.edges_u)

    def test_unit_weights_zero_exponents(self):
        g = erdos_renyi(50, 0.2, rng=1)
        rep = quantize_weights(g, 0.1)
        assert np.all(rep.exponents == 0)
        assert rep.max_distortion == pytest.approx(1.0)

    def test_rejects_bad_epsilon(self, g):
        with pytest.raises(ValueError):
            quantize_weights(g, 0.0)

    def test_rejects_empty_graph(self):
        from repro.graphs import WeightedGraph

        with pytest.raises(ValueError):
            quantize_weights(WeightedGraph.from_edges(3, []), 0.1)

    def test_spanner_on_quantized_graph(self, g):
        # The composition claim: sigma-spanner of the quantized graph is a
        # sigma(1+eps)-spanner of the original.
        from repro.core import baswana_sen
        from repro.graphs import edge_stretch

        eps = 0.25
        rep = quantize_weights(g, eps)
        res = baswana_sen(rep.graph, 3, rng=2)
        h = g.subgraph_from_edge_ids(res.edge_ids)  # same edge ids/topology
        assert edge_stretch(g, h).max_stretch <= 5 * (1 + eps) + 1e-9
