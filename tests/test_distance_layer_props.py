"""Property tests for the vectorized distance/sketch layer.

Every array-native fast path introduced by the distance-layer rework is
cross-checked here against an independently-written pure-Python reference:

* ``build_bunches_batched`` (level-batched numpy frontier relaxation) vs
  ``build_bunches_reference`` (per-center dict/heapq truncated Dijkstra) —
  bit-identical bunch sets *and* distances;
* batched ``pairwise_distances`` / ``batched_sssp`` vs ``sssp_reference``;
* the vectorized ``query_many`` vs scalar ``query``;
* the cached scipy CSR and vectorized edge-lookup helpers on
  ``WeightedGraph``.

Random seeds sweep several graph shapes, including disconnected graphs and
the k=1 edge case (full APSP bunches).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import DistanceSketch
from repro.distances.sketches import (
    build_bunches_batched,
    build_bunches_reference,
)
from repro.graphs import (
    WeightedGraph,
    batched_sssp,
    bfs_hops,
    erdos_renyi,
    k_hop_ball,
    pairwise_distances,
    sssp,
    sssp_reference,
)


def _random_graph(seed: int) -> WeightedGraph:
    """A varied workload: dense/sparse ER, sometimes disconnected."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(20, 120))
    p = float(rng.uniform(0.02, 0.2))
    g = erdos_renyi(n, p, weights="uniform", rng=seed)
    if seed % 3 == 0:
        # Two disjoint copies plus isolated vertices.
        u = np.concatenate([g.edges_u, g.edges_u + n])
        v = np.concatenate([g.edges_v, g.edges_v + n])
        w = np.concatenate([g.edges_w, g.edges_w])
        g = WeightedGraph(2 * n + 3, u, v, w)
    return g


class TestBunchBuilders:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_batched_matches_reference(self, seed, k):
        g = _random_graph(seed)
        sk = DistanceSketch(g, k, rng=seed)
        ref = build_bunches_reference(g, sk.levels, sk.pivot_dist)
        got = sk.bunch  # compatibility view over the CSR arrays
        assert len(got) == g.n
        for v in range(g.n):
            assert got[v] == ref[v]  # same centers, bit-identical distances

    def test_csr_arrays_consistent(self):
        g = _random_graph(1)
        sk = DistanceSketch(g, 3, rng=1)
        indptr, centers, dists = build_bunches_batched(
            g, sk.levels, sk.pivot_dist
        )
        assert np.array_equal(indptr, sk.bunch_indptr)
        assert np.array_equal(centers, sk.bunch_centers)
        assert np.array_equal(dists, sk.bunch_dists)
        assert indptr[0] == 0 and indptr[-1] == centers.size
        for v in range(g.n):
            span = centers[indptr[v] : indptr[v + 1]]
            # Centers are sorted per vertex (the query path searchsorts them).
            assert np.all(np.diff(span) > 0)
        # Every vertex's bunch contains itself with distance 0 (level 0).
        self_pos = np.searchsorted(
            sk._bunch_keys, np.arange(g.n) * np.int64(g.n) + np.arange(g.n)
        )
        assert np.all(sk.bunch_dists[self_pos] == 0.0)

    def test_query_many_matches_scalar_query(self):
        for seed in range(4):
            g = _random_graph(seed)
            sk = DistanceSketch(g, 3, rng=seed)
            rng = np.random.default_rng(seed + 100)
            pairs = rng.integers(0, g.n, size=(200, 2))
            batch = sk.query_many(pairs)
            scalar = np.array([sk.query(int(a), int(b)) for a, b in pairs])
            assert np.array_equal(batch, scalar)

    def test_disconnected_bunches_stay_local(self):
        g = _random_graph(3)  # seed % 3 == 0: disconnected by construction
        sk = DistanceSketch(g, 2, rng=3)
        ref = build_bunches_reference(g, sk.levels, sk.pivot_dist)
        for v in range(g.n):
            assert sk.bunch[v] == ref[v]
        # Isolated vertices (the last three) know only themselves.
        for v in range(g.n - 3, g.n):
            assert sk.bunch[v] == {v: 0.0}

    def test_k1_is_full_apsp(self):
        g = erdos_renyi(40, 0.3, weights="uniform", rng=9)
        sk = DistanceSketch(g, 1, rng=9)
        d = batched_sssp(g, np.arange(g.n))
        for v in range(g.n):
            finite = np.flatnonzero(np.isfinite(d[:, v]))
            assert sorted(sk.bunch[v]) == finite.tolist()
            for c in finite:
                assert sk.bunch[v][int(c)] == d[c, v]


class TestBatchedDistances:
    @pytest.mark.parametrize("seed", range(6))
    def test_pairwise_matches_reference_dijkstra(self, seed):
        g = _random_graph(seed)
        rng = np.random.default_rng(seed)
        pairs = rng.integers(0, g.n, size=(50, 2))
        got = pairwise_distances(g, pairs)
        for (a, b), val in zip(pairs, got):
            ref = sssp_reference(g, int(a))[b]
            assert val == pytest.approx(ref, abs=1e-12) or (
                np.isinf(val) and np.isinf(ref)
            )

    def test_batched_sssp_rows_match_sssp(self):
        g = _random_graph(2)
        sources = np.array([0, 3, g.n - 1])
        rows = batched_sssp(g, sources)
        for j, s in enumerate(sources):
            assert np.array_equal(rows[j], sssp(g, int(s)))

    def test_batched_sssp_chunking(self, monkeypatch):
        import repro.graphs.distances as dmod

        g = _random_graph(4)
        sources = np.arange(g.n)
        expect = batched_sssp(g, sources)
        # Force tiny chunks; results must be unchanged.
        monkeypatch.setattr(dmod, "_CHUNK_ENTRIES", 1)
        assert np.array_equal(dmod.batched_sssp(g, sources), expect)

    def test_batched_sssp_empty_graph(self):
        g = WeightedGraph.from_edges(5, [])
        rows = batched_sssp(g, np.array([1, 4]))
        assert rows[0, 1] == 0.0 and np.isinf(rows[0, 0])
        assert rows[1, 4] == 0.0 and np.isinf(rows[1, 2])

    def test_batched_sssp_rejects_bad_source(self):
        g = _random_graph(5)
        with pytest.raises(ValueError):
            batched_sssp(g, np.array([0, g.n]))

    def test_iter_sssp_chunks_covers_all_sources(self, monkeypatch):
        import repro.graphs.distances as dmod

        g = _random_graph(6)
        sources = np.arange(g.n)
        expect = batched_sssp(g, sources)
        monkeypatch.setattr(dmod, "_CHUNK_ENTRIES", 1)  # one source per block
        offsets = []
        for lo, rows in dmod.iter_sssp_chunks(g, sources):
            offsets.append((lo, rows.shape[0]))
            assert np.array_equal(rows, expect[lo : lo + rows.shape[0]])
        assert sum(c for _, c in offsets) == g.n

    def test_oracle_query_many_survives_mid_call_eviction(self):
        from repro.distances import SpannerDistanceOracle

        g = erdos_renyi(60, 0.15, weights="uniform", rng=21)
        # Capacity 1: caching the rows for sources 6..9 inside query_many
        # evicts source 5's row while the same call still needs it.
        o = SpannerDistanceOracle(g, rng=21, cache_rows=1)
        before = o.query(5, 7)
        got = o.query_many([[5, 7], [6, 8], [7, 9], [8, 1], [9, 2], [5, 8]])
        assert got[0] == before
        assert got[1] == o.query(6, 8)
        assert got[5] == o.query(5, 8)
        assert len(o._cache) == 1  # the bound held throughout


class TestGraphLookups:
    def test_edge_ids_for_roundtrip(self):
        g = _random_graph(6)
        ids = g.edge_ids_for(g.edges_u, g.edges_v)
        assert np.array_equal(ids, np.arange(g.m))
        # Swapped endpoints canonicalize to the same ids.
        ids_swapped = g.edge_ids_for(g.edges_v, g.edges_u)
        assert np.array_equal(ids_swapped, np.arange(g.m))

    def test_edge_ids_for_missing(self):
        g = WeightedGraph.from_edges(4, [(0, 1, 1.0), (2, 3, 2.0)])
        ids = g.edge_ids_for([0, 0, 2], [1, 2, 3])
        assert ids.tolist() == [0, -1, 1]

    def test_edge_ids_for_matches_dict_map(self):
        g = _random_graph(7)
        idx = g.edge_index_map()
        us = g.edges_u
        vs = g.edges_v
        ids = g.edge_ids_for(us, vs)
        for a, b, i in zip(us.tolist(), vs.tolist(), ids.tolist()):
            assert idx[(a, b)] == i

    def test_to_scipy_cached(self):
        g = _random_graph(8)
        assert g.to_scipy() is g.to_scipy()

    def test_has_edge_subset_weight_mismatch(self):
        g = WeightedGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
        h_ok = WeightedGraph.from_edges(3, [(0, 1, 1.0)])
        h_bad = WeightedGraph.from_edges(3, [(0, 1, 1.5)])
        assert g.has_edge_subset(h_ok)
        assert not g.has_edge_subset(h_bad)
        assert g.has_edge_subset(WeightedGraph.from_edges(3, []))


class TestFrontierGathers:
    @pytest.mark.parametrize("seed", range(4))
    def test_bfs_hops_matches_reference(self, seed):
        g = _random_graph(seed)
        csr = g.csr
        for s in (0, g.n // 2):
            got = bfs_hops(g, s)
            # Simple reference BFS.
            ref = np.full(g.n, -1, dtype=np.int64)
            ref[s] = 0
            frontier = [s]
            level = 0
            while frontier:
                level += 1
                nxt = []
                for x in frontier:
                    for y in csr.indices[csr.indptr[x] : csr.indptr[x + 1]]:
                        if ref[y] == -1:
                            ref[y] = level
                            nxt.append(int(y))
                frontier = nxt
            assert np.array_equal(got, ref)

    def test_k_hop_ball_order_matches_reference(self):
        for seed in range(4):
            g = _random_graph(seed)
            csr = g.csr
            for hops in (0, 1, 3):
                got = k_hop_ball(g, 0, hops).tolist()
                seen = {0}
                order = [0]
                frontier = [0]
                for _ in range(hops):
                    nxt = []
                    for x in frontier:
                        for y in csr.indices[csr.indptr[x] : csr.indptr[x + 1]]:
                            y = int(y)
                            if y not in seen:
                                seen.add(y)
                                order.append(y)
                                nxt.append(y)
                    if not nxt:
                        break
                    frontier = nxt
                assert got == order

    def test_k_hop_ball_cap_exact(self):
        g = erdos_renyi(60, 0.2, rng=3)
        ball = k_hop_ball(g, 0, 10, cap=7)
        assert ball.size == 7
        # No duplicates under the cap.
        assert len(set(ball.tolist())) == 7
