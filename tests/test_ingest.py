"""Tests for the real-ingest path: streaming edge-list reader, the
``graph`` artifact kind, and the ``repro ingest`` CLI verb.

The chain under test is the one a million-node road network takes:
SNAP-style text file -> :func:`read_edgelist_streaming` (chunked numpy
parse, self-loop dropping, duplicate merging, optional id relabeling) ->
``ArtifactStore.save_graph`` (int32-downcast ``.npy`` arrays) ->
``load_graph`` / ``QueryEngine.from_store`` serving exact answers
bit-identical to the in-memory graph.
"""

from __future__ import annotations

import gzip
import json

import numpy as np
import pytest

from repro.graphs import erdos_renyi, read_edgelist, write_edgelist
from repro.graphs.distances import pairwise_distances
from repro.graphs.io import read_edgelist_streaming


class TestStreamingReader:
    def test_matches_line_parser(self, tmp_path):
        g = erdos_renyi(80, 0.1, weights="uniform", rng=0)
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        got, report = read_edgelist_streaming(path, num_nodes=g.n)
        assert got == read_edgelist(path)
        assert report["edges"] == g.m and report["weighted"]

    def test_snap_style_comments_and_tabs(self, tmp_path):
        path = tmp_path / "snap.txt"
        path.write_text(
            "# Directed graph (each unordered pair once)\n"
            "# Nodes: 4 Edges: 3\n"
            "0\t1\n2\t3\n1\t3\n"
        )
        g, report = read_edgelist_streaming(path)
        assert g.n == 4 and g.m == 3 and g.is_unweighted
        assert not report["weighted"]

    def test_self_loops_dropped_and_counted(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("0 1\n1 1\n2 2\n1 2\n")
        g, report = read_edgelist_streaming(path)
        assert g.m == 2
        assert report["self_loops_dropped"] == 2

    def test_duplicates_merged_min_weight(self, tmp_path):
        path = tmp_path / "dups.txt"
        path.write_text("0 1 2.5\n1 0 1.25\n0 1 9.0\n")
        g, report = read_edgelist_streaming(path)
        assert g.m == 1 and g.edges_w[0] == 1.25
        assert report["duplicates_merged"] == 2

    def test_chunked_parse_bit_identical(self, tmp_path):
        g = erdos_renyi(60, 0.15, weights="uniform", rng=1)
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        one, _ = read_edgelist_streaming(path, num_nodes=g.n)
        tiny, report = read_edgelist_streaming(path, num_nodes=g.n, chunk_lines=1)
        assert one == tiny
        assert report["chunks"] == g.m

    def test_budget_sizes_default_chunk(self, tmp_path, monkeypatch):
        from repro.core import membudget

        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 3\n3 4\n")
        monkeypatch.setenv(membudget.ENV_VAR, str(2 * 80))  # 2 lines/chunk
        g, report = read_edgelist_streaming(path)
        assert report["chunk_lines"] == 2 and report["chunks"] == 2
        assert g.m == 4

    def test_relabel_sparse_ids(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("100 900\n900 1000000007\n")
        g, report = read_edgelist_streaming(path, relabel=True)
        assert g.n == 3 and g.m == 2 and report["relabeled"]
        # First appearance in sorted-id order: 100->0, 900->1, 1000000007->2.
        assert sorted(zip(g.edges_u, g.edges_v)) == [(0, 1), (1, 2)]

    def test_relabel_respects_num_nodes(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("5 17\n")
        g, _ = read_edgelist_streaming(path, relabel=True, num_nodes=10)
        assert g.n == 10
        with pytest.raises(ValueError, match="below the"):
            read_edgelist_streaming(path, relabel=True, num_nodes=1)

    def test_sparse_ids_without_relabel_rejected(self, tmp_path):
        path = tmp_path / "sparse.txt"
        path.write_text("0 99\n")
        with pytest.raises(ValueError, match="relabel=True"):
            read_edgelist_streaming(path, num_nodes=10)

    def test_gzip_transparent(self, tmp_path):
        path = tmp_path / "g.txt.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("0 1 2.0\n1 2 3.0\n")
        g, _ = read_edgelist_streaming(path)
        assert g.n == 3 and g.m == 2

    def test_empty_and_comment_only_files(self, tmp_path):
        for body in ("", "# nothing here\n# move along\n"):
            path = tmp_path / "empty.txt"
            path.write_text(body)
            g, report = read_edgelist_streaming(path)
            assert g.n == 0 and g.m == 0 and report["lines"] == 0

    @pytest.mark.parametrize(
        ("body", "match"),
        [
            ("0 1 2.0 9\n", "columns"),
            ("0 1 1.0\n2 3\n", None),  # inconsistent columns (chunked)
            ("0 1.5\n", "non-integer"),
            ("0 -1\n", "negative"),
            ("0 1 -2.0\n", "positive and finite"),
            ("0 1 nan\n", "positive and finite"),
            ("0 1 inf\n", "positive and finite"),
        ],
    )
    def test_malformed_rejected(self, tmp_path, body, match):
        path = tmp_path / "bad.txt"
        path.write_text(body)
        with pytest.raises(ValueError, match=match):
            # chunk_lines=1 exercises the cross-chunk consistency checks.
            read_edgelist_streaming(path, chunk_lines=1)


class TestGraphArtifactKind:
    def _graph(self):
        return erdos_renyi(70, 0.12, weights="uniform", rng=2)

    def test_save_load_roundtrip(self, tmp_path):
        from repro.service import ArtifactStore

        g = self._graph()
        store = ArtifactStore(tmp_path / "store")
        key = store.save_graph(g, meta={"source": "test"})
        info = store.info(key)
        assert info.kind == "graph"
        assert info.meta["n"] == g.n and info.meta["graph_edges"] == g.m
        loaded = store.load_graph(key)
        assert loaded == g

    def test_generic_load_dispatches(self, tmp_path):
        from repro.graphs import WeightedGraph
        from repro.service import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        key = store.save_graph(self._graph())
        assert isinstance(store.load(key), WeightedGraph)

    def test_load_graph_rejects_other_kinds(self, tmp_path):
        from repro.distances import SpannerDistanceOracle
        from repro.service import ArtifactStore

        g = self._graph()
        store = ArtifactStore(tmp_path / "store")
        okey = store.save_oracle(SpannerDistanceOracle(g, 3, 2, rng=2))
        with pytest.raises(ValueError, match="not a graph"):
            store.load_graph(okey)
        gkey = store.save_graph(g)
        with pytest.raises(ValueError, match="not an oracle"):
            store.load_oracle(gkey)

    def test_engine_serves_graph_artifact_exactly(self, tmp_path):
        from repro.service import ArtifactStore, QueryEngine

        g = self._graph()
        store = ArtifactStore(tmp_path / "store")
        key = store.save_graph(g)
        engine = QueryEngine.from_store(store, key)
        rng = np.random.default_rng(3)
        pairs = rng.integers(0, g.n, size=(64, 2))
        assert np.array_equal(
            engine.query_many(pairs), pairwise_distances(g, pairs)
        )


class TestIngestCli:
    def _write_edges(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("# comment\n0 1 2.0\n1 2 1.0\n2 2 5.0\n1 0 1.5\n")
        return path

    def test_ingest_json_record(self, tmp_path, capsys):
        from repro.cli import main
        from repro.service import ArtifactStore

        path = self._write_edges(tmp_path)
        store_path = str(tmp_path / "store")
        rc = main(
            ["ingest", str(path), "--store", store_path, "--key", "toy", "--json"]
        )
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["key"] == "toy"
        assert record["n"] == 3 and record["edges"] == 2
        assert record["self_loops_dropped"] == 1
        assert record["duplicates_merged"] == 1
        g = ArtifactStore(store_path).load_graph("toy")
        assert g.m == 2 and g.edges_w[g.edge_ids_for([0], [1])[0]] == 1.5

    def test_ingest_human_output(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_edges(tmp_path)
        rc = main(["ingest", str(path), "--store", str(tmp_path / "store")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "self loops dropped" in out and "repro query --store" in out

    def test_ingest_missing_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="ingest:"):
            main(
                ["ingest", str(tmp_path / "nope.txt"),
                 "--store", str(tmp_path / "store")]
            )

    def test_ingest_relabel_flag(self, tmp_path, capsys):
        from repro.cli import main
        from repro.service import ArtifactStore

        path = tmp_path / "sparse.txt"
        path.write_text("10 70\n70 5000\n")
        store_path = str(tmp_path / "store")
        rc = main(
            ["ingest", str(path), "--store", store_path, "--key", "s",
             "--relabel", "--json"]
        )
        assert rc == 0
        assert ArtifactStore(store_path).load_graph("s").n == 3
