"""int32 index mode: downcast artifacts answer bit-identically to int64.

The store downcasts index arrays (endpoints, CSR offsets, pivot/bunch
tables) to int32 at save time whenever the values fit — halving the index
footprint for every ``n < 2**31`` graph.  The contract pinned here is
*bit-identity*: index dtype never touches the float Dijkstra/pivot-walk
arithmetic, so an int32-indexed ``batched_sssp`` / sketch ``query_many``
must agree with int64 to the last bit — across the shared scenario
vocabulary (hypothesis) and at ``n >= 2**15``, where the flattened
``v * n + w`` key arithmetic would overflow int32 if any code path forgot
to widen.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import DistanceSketch, SpannerDistanceOracle
from repro.graphs import WeightedGraph
from repro.graphs.distances import batched_capped_bfs, batched_sssp
from repro.cli import build_graph
from repro.service import ArtifactStore

from tests.strategies import graph_spec_strings


def _as_int32(g: WeightedGraph) -> WeightedGraph:
    """The graph the store's downcast path produces: same edges, int32
    endpoints (preserved through canonicalization)."""
    return WeightedGraph.from_canonical(
        g.n,
        g.edges_u.astype(np.int32),
        g.edges_v.astype(np.int32),
        g.edges_w,
    )


class TestInt32GraphConstruction:
    def test_int32_endpoints_preserved(self):
        g = _as_int32(build_graph("er:40:0.2", weights="uniform", seed=1))
        assert g.edges_u.dtype == np.int32 and g.edges_v.dtype == np.int32
        assert g.csr.indices.dtype == np.int32
        assert g.csr.indptr.dtype == np.int32
        assert g.to_scipy().indices.dtype == np.int32

    def test_constructor_roundtrip_keeps_int32(self):
        # Through the validating constructor too (dedupe + canonicalize).
        u = np.array([3, 0, 1], dtype=np.int32)
        v = np.array([1, 2, 3], dtype=np.int32)
        g = WeightedGraph(5, u, v, np.ones(3))
        assert g.edges_u.dtype == np.int32
        assert g == WeightedGraph(5, u.astype(np.int64), v.astype(np.int64), np.ones(3))

    def test_edge_keys_widened_to_int64(self):
        # n**2 > 2**31: the sorted (u * n + v) edge-key encoding must not
        # wrap. n=65536 puts u*n+v right at 2**31+ for u >= 32768.
        n = 65536
        u = np.array([0, 40000], dtype=np.int32)
        v = np.array([1, 65535], dtype=np.int32)
        g = WeightedGraph.from_canonical(n, u, v, np.ones(2))
        assert g._sorted_edge_keys().dtype == np.int64
        assert np.array_equal(g.edge_ids_for(u, v), [0, 1])


@settings(max_examples=25, deadline=None)
@given(spec=graph_spec_strings(max_n=48), seed=st.integers(0, 10**6))
def test_batched_sssp_bit_identical_across_index_dtypes(spec, seed):
    g = build_graph(spec, weights="uniform", seed=seed)
    g32 = _as_int32(g)
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, g.n, size=min(8, g.n))
    assert np.array_equal(batched_sssp(g, sources), batched_sssp(g32, sources))


@settings(max_examples=15, deadline=None)
@given(spec=graph_spec_strings(max_n=40), seed=st.integers(0, 10**6))
def test_sketch_query_many_bit_identical_across_index_dtypes(spec, seed):
    g = build_graph(spec, weights="uniform", seed=seed)
    sk = DistanceSketch(g, k=3, rng=seed)
    sk32 = DistanceSketch.from_arrays(
        _as_int32(g),
        sk.k,
        [lv.astype(np.int32) for lv in sk.levels],
        sk.pivot.astype(np.int32),
        sk.pivot_dist,
        sk.bunch_indptr.astype(np.int32),
        sk.bunch_centers.astype(np.int32),
        sk.bunch_dists,
    )
    rng = np.random.default_rng(seed + 1)
    pairs = rng.integers(0, g.n, size=(200, 2))
    assert np.array_equal(sk.query_many(pairs), sk32.query_many(pairs))
    for u, v in pairs[:10].tolist():
        assert sk.query(u, v) == sk32.query(u, v)


@settings(max_examples=15, deadline=None)
@given(spec=graph_spec_strings(max_n=40), seed=st.integers(0, 10**6))
def test_capped_bfs_bit_identical_across_index_dtypes(spec, seed):
    g = build_graph(spec, weights="unit", seed=seed)
    g32 = _as_int32(g)
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, g.n, size=min(6, g.n))
    a = batched_capped_bfs(g, sources, hops=3, cap=9)
    b = batched_capped_bfs(g32, sources, hops=3, cap=9)
    for x, y in zip(a, b):
        assert np.array_equal(x, y)


class TestBigN:
    """Explicit n >= 2**15 spot checks: int32-downcast structures where the
    flat (vertex, vertex) key arithmetic exceeds int32 range."""

    def test_batched_sssp_on_grid_65536(self):
        g = build_graph("grid:256:256", weights="uniform", seed=0)  # n = 2**16
        g32 = _as_int32(g)
        sources = np.array([0, 32767, 65535])
        assert np.array_equal(batched_sssp(g, sources), batched_sssp(g32, sources))

    def test_sketch_store_roundtrip_at_n_70000(self, tmp_path):
        # n**2 ~ 4.9e9 > 2**31: every bunch key v * n + w with v >= 30680
        # overflows int32 unless widened. Hand-build a small sketch over a
        # path graph (real bunches there would be O(n^1.5)), save through
        # the downcasting store, and pin loaded == original bitwise.
        n = 70_000
        us = np.arange(n - 1, dtype=np.int64)
        g = WeightedGraph.from_canonical(n, us, us + 1, np.ones(n - 1))
        k = 2
        a1 = np.array([10, n - 7], dtype=np.int64)
        pivot = np.full((k + 1, n), -1, dtype=np.int64)
        pivot_dist = np.full((k + 1, n), np.inf)
        pivot[0] = np.arange(n)
        pivot_dist[0] = 0.0
        verts = np.arange(n)
        d1 = np.minimum(np.abs(verts - a1[0]), np.abs(verts - a1[1]))
        pivot[1] = np.where(np.abs(verts - a1[0]) <= np.abs(verts - a1[1]), a1[0], a1[1])
        pivot_dist[1] = d1.astype(np.float64)
        # Bunch of v: itself plus both A_1 centers (ids near n, so keys
        # v * n + center live far beyond int32 range).
        centers = np.sort(
            np.stack([verts, np.full(n, a1[0]), np.full(n, a1[1])], axis=1), axis=1
        )
        dists = np.abs(centers - verts[:, None]).astype(np.float64)
        bunch_indptr = np.arange(0, 3 * n + 1, 3, dtype=np.int64)
        sk = DistanceSketch.from_arrays(
            g, k, [np.arange(n, dtype=np.int64), a1],
            pivot, pivot_dist, bunch_indptr, centers.ravel(), dists.ravel(),
        )
        store = ArtifactStore(tmp_path)
        key = store.save_sketch(sk)
        loaded = store.load_sketch(key)
        assert loaded.bunch_centers.dtype == np.int32  # downcast really happened
        assert loaded._bunch_keys.dtype == np.int64  # keys widened back
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, n, size=(500, 2))
        # Include pairs pinned at the high end, where overflow would bite.
        pairs = np.vstack([pairs, [[n - 1, n - 2], [n - 3, 10], [69_999, 35_000]]])
        assert np.array_equal(sk.query_many(pairs), loaded.query_many(pairs))
        for u, v in pairs[:8].tolist():
            assert sk.query(u, v) == loaded.query(u, v)

    def test_oracle_store_downcasts_and_roundtrips(self, tmp_path):
        g = build_graph("er:300:0.04", weights="uniform", seed=3)
        oracle = SpannerDistanceOracle(g, k=3, t=2, rng=0)
        store = ArtifactStore(tmp_path)
        key = store.save_oracle(oracle)
        loaded = store.load_oracle(key)
        assert loaded.spanner.edges_u.dtype == np.int32
        rng = np.random.default_rng(1)
        pairs = rng.integers(0, g.n, size=(400, 2))
        assert np.array_equal(oracle.query_many(pairs), loaded.query_many(pairs))
