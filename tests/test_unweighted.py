"""Tests for the Appendix B unweighted O(k)-spanner (Theorem 1.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import unweighted_spanner
from repro.graphs import (
    edge_stretch,
    erdos_renyi,
    grid_graph,
    same_components,
    star_graph,
    verify_spanner,
)


def _stretch_budget(k: int, gamma: float) -> float:
    # Sparse side: 2k-1.  Dense side: two ball paths (<= 4k each) per
    # auxiliary hop, (4/gamma)-stretch auxiliary spanner.  O(k/gamma) total;
    # this is the constant the construction actually guarantees.
    return (8 * k + 2) * (4.0 / gamma + 1)


@pytest.mark.parametrize("k", [2, 3, 4])
def test_stretch_linear_in_k(er_unweighted, k):
    res = unweighted_spanner(er_unweighted, k, rng=70 + k)
    rep = edge_stretch(er_unweighted, res.subgraph(er_unweighted))
    assert rep.max_stretch <= _stretch_budget(k, 0.5)


def test_is_spanning_subgraph(er_unweighted):
    res = unweighted_spanner(er_unweighted, 3, rng=1)
    verify_spanner(er_unweighted, res.subgraph(er_unweighted))


def test_rejects_weighted_graph(er_weighted):
    with pytest.raises(ValueError, match="unweighted"):
        unweighted_spanner(er_weighted, 3)


def test_rejects_bad_gamma(er_unweighted):
    with pytest.raises(ValueError, match="gamma"):
        unweighted_spanner(er_unweighted, 3, gamma=0.0)


def test_k1_everything(er_unweighted):
    res = unweighted_spanner(er_unweighted, 1, rng=0)
    assert res.num_edges == er_unweighted.m


def test_sparse_dense_split_reacts_to_cap(er_unweighted):
    dense_run = unweighted_spanner(er_unweighted, 3, rng=2, ball_cap=4)
    sparse_run = unweighted_spanner(er_unweighted, 3, rng=2, ball_cap=10**6)
    assert dense_run.extra["num_dense"] > 0
    assert sparse_run.extra["num_dense"] == 0
    assert sparse_run.extra["num_sparse"] == er_unweighted.n


def test_all_sparse_equals_bs_restriction(er_unweighted):
    # With an unbounded cap everything is sparse and the result is exactly
    # the shared-randomness Baswana-Sen edge set.
    from repro.core import baswana_sen

    rng_a = np.random.default_rng(33)
    res = unweighted_spanner(er_unweighted, 3, rng=rng_a, ball_cap=10**6)
    rng_b = np.random.default_rng(33)
    bs = baswana_sen(er_unweighted, 3, rng=rng_b)
    assert np.array_equal(res.edge_ids, bs.edge_ids)


def test_star_graph_dense_center():
    # The Appendix B.2.1 example: star center becomes dense immediately.
    g = star_graph(300)
    res = unweighted_spanner(g, 2, rng=3, ball_cap=8)
    # The star is a tree: spanner must keep all edges.
    assert res.num_edges == g.m


def test_grid_high_girth():
    g = grid_graph(12, 12)
    res = unweighted_spanner(g, 3, rng=4)
    rep = edge_stretch(g, res.subgraph(g))
    assert rep.max_stretch <= _stretch_budget(3, 0.5)


def test_size_reasonable(er_unweighted):
    # O(k n^{1+1/k}) + O(kn) path edges + O(n) auxiliary: generous cap.
    k = 3
    res = unweighted_spanner(er_unweighted, k, rng=5)
    n = er_unweighted.n
    assert res.num_edges <= 4 * k * n ** (1 + 1.0 / k) + 4 * k * n


def test_preserves_components():
    a = erdos_renyi(60, 0.2, rng=6)
    b = erdos_renyi(60, 0.2, rng=7)
    u = np.concatenate([a.edges_u, b.edges_u + 60])
    v = np.concatenate([a.edges_v, b.edges_v + 60])
    from repro.graphs import WeightedGraph

    g = WeightedGraph(120, u, v, np.ones(u.size))
    res = unweighted_spanner(g, 3, rng=8)
    assert same_components(g, res.subgraph(g))


def test_extra_accounting_fields(er_unweighted):
    res = unweighted_spanner(er_unweighted, 3, rng=9)
    extra = res.extra
    assert extra["num_sparse"] + extra["num_dense"] == er_unweighted.n
    assert extra["analytic_rounds"] > 0
    assert extra["total_memory_words"] >= er_unweighted.m


def test_mpc_accounted_ball_growing(er_unweighted):
    res = unweighted_spanner(er_unweighted, 3, rng=10, account_mpc=True)
    acct = res.extra["mpc_ball_growing"]
    assert acct["rounds"] > 0
    assert acct["total_words"] <= acct["memory_budget"]
