"""Tests for the experiment runner: plans, execution, resume, artifacts."""

from __future__ import annotations

import csv
import json

import pytest

from repro.runner import ExperimentPlan, PlanResult, TrialSpec, run_plan, run_trial


def small_plan(**overrides) -> ExperimentPlan:
    base = dict(
        algorithms=["general", "streaming"],
        graphs=["er:64:0.15", "grid:6:6"],
        ks=[3],
        seeds=[0, 1],
        verify_pairs=16,
        name="test-plan",
    )
    base.update(overrides)
    return ExperimentPlan(**base)


class TestPlan:
    def test_cartesian_expansion(self):
        trials = small_plan().trials()
        assert len(trials) == 2 * 2 * 2
        assert len({t.trial_id for t in trials}) == len(trials)

    def test_trial_id_content_hash(self):
        a = TrialSpec("general", "er:64:0.15", 3, None, 0)
        b = TrialSpec("general", "er:64:0.15", 3, None, 0)
        c = TrialSpec("general", "er:64:0.15", 3, None, 1)
        assert a.trial_id == b.trial_id
        assert a.trial_id != c.trial_id

    def test_aliases_normalized_into_ids(self):
        # Same trial through an alias hashes identically -> resume-safe.
        t1 = small_plan(algorithms=["general"]).trials()
        t2 = small_plan(algorithms=["general-tradeoff"]).trials()
        assert [t.trial_id for t in t1] == [t.trial_id for t in t2]

    def test_unweighted_algorithm_forces_unit(self):
        trials = small_plan(algorithms=["unweighted"], weights=["uniform"]).trials()
        assert all(t.weights == "unit" for t in trials)

    def test_t_axis_collapsed_for_t_free_algorithms(self):
        trials = small_plan(algorithms=["streaming"], ts=[1, 2, 3]).trials()
        assert len(trials) == 2 * 2  # graphs x seeds; t axis ignored

    def test_t_axis_expands_for_t_algorithms(self):
        trials = small_plan(algorithms=["general"], ts=[1, 2]).trials()
        assert len(trials) == 2 * 2 * 2

    def test_json_round_trip(self, tmp_path):
        plan = small_plan()
        path = tmp_path / "plan.json"
        plan.save(path)
        loaded = ExperimentPlan.load(path)
        assert loaded == plan
        assert [t.trial_id for t in loaded.trials()] == [
            t.trial_id for t in plan.trials()
        ]

    def test_validate_rejects_bad_plans(self):
        with pytest.raises(ValueError, match="no algorithms"):
            ExperimentPlan(graphs=["er:10:0.5"]).trials()
        with pytest.raises(ValueError, match="no graphs"):
            ExperimentPlan(algorithms=["general"]).trials()
        with pytest.raises(KeyError, match="unknown algorithm"):
            small_plan(algorithms=["nope"]).trials()
        with pytest.raises(ValueError):
            small_plan(graphs=["hypercube:4"]).trials()
        with pytest.raises(ValueError, match="concrete k"):
            small_plan(ks=[None]).trials()


class TestRunTrial:
    def test_spanner_record(self):
        record = run_trial(
            TrialSpec("general", "er:64:0.15", 3, None, 0, "uniform", verify_pairs=16)
        )
        assert "error" not in record
        assert record["algorithm"] == "general"
        assert record["graph_n"] == 64
        assert record["num_edges"] > 0
        assert record["max_stretch"] >= 1.0
        assert record["elapsed_s"] >= 0
        json.dumps(record)

    def test_apsp_record(self):
        record = run_trial(TrialSpec("apsp-mpc", "er:48:0.2", None, None, 0))
        assert "error" not in record
        assert record["rounds"] > record["collection_rounds"] >= 1
        assert record["guaranteed_stretch"] > 1

    def test_error_captured_not_raised(self):
        # cycle:2 parses arity-wise but cannot build.
        record = run_trial(TrialSpec("general", "cycle:2", 3, None, 0))
        assert "error" in record and "cannot build" in record["error"]


class TestRunPlan:
    def test_serial_run_writes_artifacts(self, tmp_path):
        out = tmp_path / "results"
        result = run_plan(small_plan(), jobs=1, out_dir=out)
        assert isinstance(result, PlanResult)
        assert result.executed == 8 and result.skipped == 0
        assert (out / "plan.json").exists()
        assert len(list((out / "trials").glob("*.json"))) == 8

        payload = json.loads((out / "results.json").read_text())
        assert payload["num_trials"] == 8
        assert payload["plan"]["name"] == "test-plan"

        with (out / "results.csv").open() as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 8
        assert {r["algorithm"] for r in rows} == {"general", "streaming"}
        assert all(float(r["max_stretch"]) >= 1.0 for r in rows)

    def test_resume_skips_everything(self, tmp_path):
        out = tmp_path / "results"
        plan = small_plan()
        first = run_plan(plan, jobs=1, out_dir=out)
        again = run_plan(plan, jobs=1, out_dir=out)
        assert first.executed == 8
        assert again.executed == 0 and again.skipped == 8
        assert len(again.records) == 8

    def test_partial_resume(self, tmp_path):
        out = tmp_path / "results"
        plan = small_plan()
        run_plan(plan, jobs=1, out_dir=out)
        # Drop two artifacts; only those re-run.
        victims = sorted((out / "trials").glob("*.json"))[:2]
        for victim in victims:
            victim.unlink()
        again = run_plan(plan, jobs=1, out_dir=out)
        assert again.executed == 2 and again.skipped == 6

    def test_no_resume_flag(self, tmp_path):
        out = tmp_path / "results"
        plan = small_plan()
        run_plan(plan, jobs=1, out_dir=out)
        again = run_plan(plan, jobs=1, out_dir=out, resume=False)
        assert again.executed == 8 and again.skipped == 0

    def test_parallel_matches_serial_records(self, tmp_path):
        plan = small_plan()
        serial = run_plan(plan, jobs=1, out_dir=tmp_path / "a")
        parallel = run_plan(plan, jobs=2, out_dir=tmp_path / "b")
        key = lambda r: r["trial_id"]  # noqa: E731
        s = {key(r): r["num_edges"] for r in serial.records}
        p = {key(r): r["num_edges"] for r in parallel.records}
        assert s == p  # per-trial seeds -> identical results regardless of jobs

    def test_in_memory_run(self):
        result = run_plan(small_plan(), jobs=1)
        assert result.out_dir is None
        assert result.executed == 8

    def test_progress_callback(self, tmp_path):
        seen = []
        run_plan(
            small_plan(),
            jobs=1,
            out_dir=tmp_path / "r",
            progress=lambda rec, done, total: seen.append((done, total)),
        )
        assert seen[-1] == (8, 8)
        assert [d for d, _ in seen] == list(range(1, 9))

    def test_corrupt_artifact_reruns(self, tmp_path):
        out = tmp_path / "results"
        plan = small_plan()
        run_plan(plan, jobs=1, out_dir=out)
        victim = sorted((out / "trials").glob("*.json"))[0]
        victim.write_text("{not json")
        again = run_plan(plan, jobs=1, out_dir=out)
        assert again.executed == 1 and again.skipped == 7


class TestResumeEdgeCases:
    """Damaged artifact directories must degrade to re-execution, never to
    a crash or to inconsistent aggregates."""

    def _completed_run(self, tmp_path):
        out = tmp_path / "results"
        plan = small_plan()
        run_plan(plan, jobs=1, out_dir=out)
        return plan, out

    def test_truncated_artifact_reruns(self, tmp_path):
        plan, out = self._completed_run(tmp_path)
        victim = sorted((out / "trials").glob("*.json"))[0]
        # Simulate a crash mid-write: a valid JSON prefix, cut off.
        victim.write_text(victim.read_text()[: len(victim.read_text()) // 2])
        again = run_plan(plan, jobs=1, out_dir=out)
        assert again.executed == 1 and again.skipped == 7
        # The artifact is healed in place.
        assert "trial_id" in json.loads(victim.read_text())

    def test_empty_artifact_reruns(self, tmp_path):
        plan, out = self._completed_run(tmp_path)
        victim = sorted((out / "trials").glob("*.json"))[0]
        victim.write_text("")
        again = run_plan(plan, jobs=1, out_dir=out)
        assert again.executed == 1 and again.skipped == 7

    def test_foreign_json_artifact_reruns(self, tmp_path):
        # Parses fine but is not a trial record (wrong shape / wrong id):
        # must be re-executed, not trusted into the aggregates.
        plan, out = self._completed_run(tmp_path)
        victims = sorted((out / "trials").glob("*.json"))[:2]
        victims[0].write_text("[1, 2, 3]\n")
        victims[1].write_text(json.dumps({"trial_id": "deadbeef"}) + "\n")
        again = run_plan(plan, jobs=1, out_dir=out)
        assert again.executed == 2 and again.skipped == 6

    def test_error_record_artifact_reruns(self, tmp_path):
        plan, out = self._completed_run(tmp_path)
        victim = sorted((out / "trials").glob("*.json"))[0]
        record = json.loads(victim.read_text())
        record["error"] = "RuntimeError: injected"
        victim.write_text(json.dumps(record))
        again = run_plan(plan, jobs=1, out_dir=out)
        assert again.executed == 1 and again.skipped == 7
        assert "error" not in json.loads(victim.read_text())

    def test_aggregates_consistent_after_partial_resume(self, tmp_path):
        plan, out = self._completed_run(tmp_path)
        trials = plan.trials()
        artifacts = sorted((out / "trials").glob("*.json"))
        artifacts[0].unlink()                  # missing
        artifacts[1].write_text("{truncat")    # corrupt
        again = run_plan(plan, jobs=1, out_dir=out)
        assert again.executed == 2 and again.skipped == 6

        # results.csv: exactly one row per planned trial, in plan order.
        with (out / "results.csv").open() as fh:
            rows = list(csv.DictReader(fh))
        assert [r["trial_id"] for r in rows] == [t.trial_id for t in trials]
        assert all(r["num_edges"] for r in rows)

        # results.json agrees with the csv.
        payload = json.loads((out / "results.json").read_text())
        assert payload["num_trials"] == len(trials)
        assert [r["trial_id"] for r in payload["records"]] == [
            t.trial_id for t in trials
        ]

    def test_damaged_certified_run_heals_certificates(self, tmp_path):
        # Same degradation story with certification enabled: the re-run
        # cell gets a fresh certificate.
        out = tmp_path / "certified"
        plan = small_plan(
            algorithms=["baswana-sen"], graphs=["er:48:0.2"], seeds=[0, 1],
            verify_pairs=0, certify=True,
        )
        run_plan(plan, jobs=1, out_dir=out)
        victim = sorted((out / "trials").glob("*.json"))[0]
        victim.write_text("garbage")
        again = run_plan(plan, jobs=1, out_dir=out)
        assert again.executed == 1 and again.skipped == 1
        healed = json.loads(victim.read_text())
        assert healed["cert_ok"] is True
        assert healed["certificate"]["checks"]
