"""Tests for the PRAM substrate and accounting (Section 6 PRAM claim)."""

from __future__ import annotations

import pytest

from repro.core import general_tradeoff
from repro.graphs import erdos_renyi, verify_spanner
from repro.pram import PRAMTracker, log_star, spanner_pram


class TestLogStar:
    @pytest.mark.parametrize(
        "n,expect",
        [(1, 0), (2, 1), (4, 2), (16, 3), (65536, 4), (10**9, 4), (float(2**1000), 4)],
    )
    def test_values(self, n, expect):
        assert log_star(n) == expect

    def test_zero(self):
        assert log_star(0) == 0


class TestTracker:
    def test_depth_charges(self):
        t = PRAMTracker(65536)
        t.charge("semisort", items=100)
        assert t.depth == 4  # log*(65536)
        t.charge("pointer_merge", items=10)
        assert t.depth == 5

    def test_work_accumulates(self):
        t = PRAMTracker(100)
        t.charge("hash", items=50)
        t.charge("local", items=7)
        assert t.work == 57

    def test_unknown_primitive(self):
        t = PRAMTracker(10)
        with pytest.raises(KeyError):
            t.charge("quantum", items=1)

    def test_negative_items(self):
        t = PRAMTracker(10)
        with pytest.raises(ValueError):
            t.charge("hash", items=-1)

    def test_summary(self):
        t = PRAMTracker(16)
        t.charge("find_min", items=3)
        s = t.summary()
        assert s["log_star_n"] == 3
        assert s["primitive_calls"] == 1


class TestSpannerPRAM:
    def test_valid_spanner_and_depth(self):
        g = erdos_renyi(200, 0.15, weights="uniform", rng=95)
        res = spanner_pram(g, 8, 3, rng=1)
        verify_spanner(g, res.subgraph(g))
        pram = res.extra["pram"]
        # Depth is Theta(iterations * log* n): three log*-charged primitives
        # plus two unit charges per iteration, plus the phase-2 pair.
        ls = pram["log_star_n"]
        expect = res.iterations * (3 * ls + 2) + 2 * ls
        assert pram["depth"] == expect

    def test_work_near_linear(self):
        g = erdos_renyi(200, 0.15, weights="uniform", rng=96)
        res = spanner_pram(g, 4, 2, rng=2)
        # Each iteration touches O(m) items; total work O(m * iterations).
        assert res.extra["pram"]["work"] <= 8 * g.m * max(res.iterations, 1)

    def test_matches_logical_algorithm(self):
        g = erdos_renyi(150, 0.15, weights="uniform", rng=97)
        import numpy as np

        a = spanner_pram(g, 4, 2, rng=7)
        b = general_tradeoff(g, 4, 2, rng=7)
        assert np.array_equal(a.edge_ids, b.edge_ids)
