"""Tests for the Congested Clique substrate and the Section 8 algorithms."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cc_impl import apsp_cc, spanner_cc
from repro.congest import CongestedClique, schedule_rounds, two_phase_schedule
from repro.core import size_bound, stretch_bound
from repro.graphs import erdos_renyi, verify_spanner


class TestCliqueAccounting:
    def test_route_rounds_scale_with_load(self):
        cc = CongestedClique(100)
        r1 = cc.charge_route(max_send=50, max_recv=50, total_words=500)
        r2 = cc.charge_route(max_send=500, max_recv=500, total_words=5000)
        assert r2 > r1

    def test_broadcast_word_one_round(self):
        cc = CongestedClique(64)
        assert cc.charge_broadcast_word() == 1
        assert cc.rounds == 1

    def test_all_learn_scales_with_words_over_n(self):
        cc = CongestedClique(100)
        r_small = cc.charge_all_learn(99)
        r_big = cc.charge_all_learn(100 * 99)
        assert r_small == 2  # one Lenzen phase pair
        assert r_big >= 100 * r_small / 2

    def test_aggregate(self):
        cc = CongestedClique(10)
        assert cc.charge_aggregate() == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CongestedClique(0)
        cc = CongestedClique(5)
        with pytest.raises(ValueError):
            cc.charge_route(max_send=-1, max_recv=0, total_words=0)

    def test_summary(self):
        cc = CongestedClique(8)
        cc.charge_broadcast_word()
        s = cc.summary()
        assert s["rounds"] == 1 and s["steps"] == 1


class TestLenzenRouting:
    def test_balanced_batch_constant_congestion(self):
        # Each node sends exactly n words: congestion per phase stays O(1).
        n = 40
        src = np.repeat(np.arange(n), n)
        rng = np.random.default_rng(0)
        dst = rng.permuted(np.repeat(np.arange(n), n))
        _, c1, c2 = two_phase_schedule(n, src, dst)
        assert c1 <= 2
        # Phase 2 congestion depends on receiver balance; here each node
        # receives ~n words so it stays small.
        assert c2 <= 6

    def test_all_to_one_congestion(self):
        # Worst case: everyone sends to node 0; phase 2 funnels through
        # n intermediaries, so per-pair congestion = words per intermediary.
        n = 30
        src = np.arange(n)
        dst = np.zeros(n, dtype=np.int64)
        _, c1, c2 = two_phase_schedule(n, src, dst)
        assert c1 == 1
        assert c2 <= 2

    def test_schedule_rounds_positive(self):
        assert schedule_rounds(10, np.array([1, 2]), np.array([3, 4])) >= 2

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            two_phase_schedule(5, np.array([7]), np.array([0]))

    def test_empty_batch(self):
        _, c1, c2 = two_phase_schedule(5, np.zeros(0, dtype=int), np.zeros(0, dtype=int))
        assert c1 == 0 and c2 == 0


@pytest.fixture(scope="module")
def g_cc():
    return erdos_renyi(250, 0.12, weights="integer", rng=91, low=1, high=64)


class TestSpannerCC:
    def test_valid_spanner(self, g_cc):
        res = spanner_cc(g_cc, 4, 2, rng=1)
        verify_spanner(g_cc, res.subgraph(g_cc), stretch_bound=stretch_bound(4, 2))

    def test_whp_size_bound(self, g_cc):
        # Theorem 8.1 upgrades expectation to w.h.p. via repetition; with
        # acceptance tests in place every accepted iteration respects its
        # cap, so the total is deterministic-once-accepted.
        for seed in range(4):
            res = spanner_cc(g_cc, 4, 2, rng=seed)
            assert res.num_edges <= size_bound(g_cc.n, 4, 2, constant=8.0)

    def test_rounds_constant_per_iteration(self, g_cc):
        res = spanner_cc(g_cc, 8, 3, rng=2)
        assert res.iterations > 0
        # broadcast + aggregate + apply + contraction rounds: small constant
        # per iteration.
        assert res.extra["rounds"] <= 8 * res.iterations + 8

    def test_repetitions_default_logn(self, g_cc):
        res = spanner_cc(g_cc, 4, 2, rng=3)
        assert res.extra["repetitions"] == math.ceil(math.log2(g_cc.n))

    def test_k1(self, g_cc):
        assert spanner_cc(g_cc, 1, rng=0).num_edges == g_cc.m


class TestApspCC:
    def test_stretch_and_rounds(self, g_cc):
        res = apsp_cc(g_cc, rng=4)
        from repro.graphs import apsp as exact_apsp

        d = exact_apsp(g_cc)
        a = res.all_pairs()
        iu = np.triu_indices(g_cc.n, k=1)
        base = d[iu]
        mask = np.isfinite(base) & (base > 0)
        ratios = a[iu][mask] / base[mask]
        assert ratios.max() <= res.guaranteed_stretch + 1e-9
        assert res.rounds > res.collection_rounds > 0

    def test_collection_rounds_scale_with_size(self, g_cc):
        res = apsp_cc(g_cc, rng=5)
        expect = 2 * max(1, math.ceil(3 * res.spanner.m / (g_cc.n - 1)))
        assert res.collection_rounds == expect

    def test_distances_from(self, g_cc):
        res = apsp_cc(g_cc, rng=6)
        row = res.distances_from(3)
        assert row[3] == 0.0


class TestQuantizedApspCC:
    """Model-strict mode: quantize weights to O(log n)-bit words first."""

    def test_quantized_pipeline_within_composed_bound(self, g_cc):
        res = apsp_cc(g_cc, quantize_eps=0.25, rng=7)
        from repro.graphs import apsp as exact_apsp

        d = exact_apsp(g_cc)
        a = res.all_pairs()
        iu = np.triu_indices(g_cc.n, k=1)
        base = d[iu]
        mask = np.isfinite(base) & (base > 0)
        ratios = a[iu][mask] / base[mask]
        assert ratios.max() <= res.guaranteed_stretch + 1e-9
        assert res.stretch_factor == pytest.approx(1.25)

    def test_quantized_never_underestimates(self, g_cc):
        res = apsp_cc(g_cc, quantize_eps=0.5, rng=8)
        from repro.graphs import apsp as exact_apsp

        d = exact_apsp(g_cc)
        a = res.all_pairs()
        assert np.all(a + 1e-9 >= d)

    def test_spanner_carries_original_weights(self, g_cc):
        res = apsp_cc(g_cc, quantize_eps=0.25, rng=9)
        assert g_cc.has_edge_subset(res.spanner)
