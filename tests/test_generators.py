"""Unit tests for repro.graphs.generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    barabasi_albert,
    complete_graph,
    connected_components,
    cycle_graph,
    double_cycle,
    draw_weights,
    erdos_renyi,
    gnm_random,
    grid_graph,
    hard_girth_instance,
    path_graph,
    random_geometric,
    random_tree,
    ring_of_cliques,
    star_graph,
    torus_graph,
)


class TestDrawWeights:
    @pytest.mark.parametrize("model", ["unit", "uniform", "exponential", "powerlaw", "integer"])
    def test_positive_finite(self, model):
        w = draw_weights(500, model, rng=0)
        assert w.shape == (500,)
        assert np.all(w > 0) and np.all(np.isfinite(w))

    def test_unit_is_ones(self):
        assert np.all(draw_weights(10, "unit") == 1.0)

    def test_uniform_range(self):
        w = draw_weights(1000, "uniform", rng=1, low=2.0, high=3.0)
        assert w.min() >= 2.0 and w.max() <= 3.0

    def test_integer_values(self):
        w = draw_weights(100, "integer", rng=2, low=1, high=5)
        assert np.all(w == np.round(w))
        assert w.min() >= 1 and w.max() <= 5

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            draw_weights(3, "nope")  # type: ignore[arg-type]


class TestErdosRenyi:
    def test_determinism(self):
        assert erdos_renyi(50, 0.2, rng=3) == erdos_renyi(50, 0.2, rng=3)

    def test_p_zero_and_one(self):
        assert erdos_renyi(20, 0.0, rng=0).m == 0
        assert erdos_renyi(20, 1.0, rng=0).m == 190

    def test_rejects_bad_p(self):
        with pytest.raises(ValueError):
            erdos_renyi(10, 1.5)

    def test_expected_density(self):
        g = erdos_renyi(200, 0.1, rng=4)
        expect = 0.1 * 200 * 199 / 2
        assert 0.8 * expect < g.m < 1.2 * expect


class TestGnm:
    def test_exact_edge_count(self):
        g = gnm_random(60, 200, rng=5)
        assert g.m == 200

    def test_edges_valid(self):
        g = gnm_random(30, 100, rng=6)
        assert g.edges_u.min() >= 0 and g.edges_v.max() < 30
        assert np.all(g.edges_u < g.edges_v)

    def test_rejects_too_many(self):
        with pytest.raises(ValueError):
            gnm_random(5, 100)


class TestStructured:
    def test_grid_counts(self):
        g = grid_graph(4, 7)
        assert g.n == 28
        assert g.m == 4 * 6 + 3 * 7  # horizontal + vertical

    def test_torus_regular(self):
        g = torus_graph(5, 6)
        assert g.n == 30
        assert np.all(g.degree() == 4)

    def test_ring_of_cliques(self):
        g = ring_of_cliques(4, 5)
        assert g.n == 20
        assert g.m == 4 * 10 + 4  # 4 K5s + 4 bridges
        assert connected_components(g).max() == 0

    def test_complete(self):
        g = complete_graph(7)
        assert g.m == 21

    def test_cycle(self):
        g = cycle_graph(9)
        assert g.m == 9
        assert np.all(g.degree() == 2)

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)

    def test_double_cycle_components(self):
        g = double_cycle(20)
        labels = connected_components(g)
        assert len(set(labels.tolist())) == 2

    def test_double_cycle_validation(self):
        with pytest.raises(ValueError):
            double_cycle(7)

    def test_path(self):
        g = path_graph(5)
        assert g.m == 4

    def test_star(self):
        g = star_graph(11)
        assert g.degree(0) == 10

    def test_random_tree_is_tree(self):
        g = random_tree(40, rng=7)
        assert g.m == 39
        assert connected_components(g).max() == 0

    def test_random_tree_singleton(self):
        assert random_tree(1).m == 0


class TestBarabasiAlbert:
    def test_size(self):
        g = barabasi_albert(80, 3, rng=8)
        assert g.n == 80
        assert g.m >= 77  # at least a connected backbone

    def test_connected(self):
        g = barabasi_albert(60, 2, rng=9)
        assert connected_components(g).max() == 0

    def test_rejects_bad_attach(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, 0)
        with pytest.raises(ValueError):
            barabasi_albert(10, 10)

    def test_skewed_degrees(self):
        g = barabasi_albert(300, 2, rng=10)
        degs = np.sort(g.degree())[::-1]
        assert degs[0] > 4 * np.median(degs)


class TestGeometric:
    def test_radius_zero(self):
        assert random_geometric(30, 0.0, rng=11).m == 0

    def test_radius_full(self):
        g = random_geometric(20, 2.0, rng=12)
        assert g.m == 190

    def test_weighted_by_length(self):
        g = random_geometric(50, 0.4, weights="uniform", rng=13)
        assert np.all(g.edges_w > 0)


class TestHardGirth:
    def test_density_scales_with_k(self):
        g2 = hard_girth_instance(200, 2, rng=14)
        g6 = hard_girth_instance(200, 6, rng=14)
        assert g2.m > g6.m  # smaller k => denser target n^{1+1/k}

    def test_at_least_tree_density(self):
        g = hard_girth_instance(100, 10, rng=15)
        assert g.m >= 99
