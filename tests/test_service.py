"""Tests for the persist-then-serve query subsystem (repro.service).

Covers the ISSUE 5 acceptance invariants: artifact save/load round trips
answer queries bit-identically, sharded and serial engines agree exactly,
sweep output doubles as a loadable artifact store, and the CLI front ends
drive the build -> persist -> load -> query flow.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.distances import DistanceSketch, SpannerDistanceOracle
from repro.graphs import erdos_renyi
from repro.service import ArtifactStore, QueryEngine, config_key
from repro.service.store import STORE_FORMAT_VERSION


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(180, 0.08, weights="uniform", rng=12)


@pytest.fixture(scope="module")
def oracle(g):
    return SpannerDistanceOracle(g, k=4, t=2, rng=0)


@pytest.fixture(scope="module")
def sketch(g):
    return DistanceSketch(g, k=3, rng=1)


@pytest.fixture(scope="module")
def pairs(g):
    rng = np.random.default_rng(7)
    return rng.integers(0, g.n, size=(600, 2))


class TestArtifactStore:
    def test_oracle_round_trip_bit_identical(self, oracle, pairs, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.save_oracle(oracle, meta={"origin": "test"})
        loaded = store.load_oracle(key)
        assert np.array_equal(oracle.query_many(pairs), loaded.query_many(pairs))
        assert loaded.guaranteed_stretch == oracle.guaranteed_stretch
        assert loaded.spanner == oracle.spanner

    def test_sketch_round_trip_bit_identical(self, sketch, pairs, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.save_sketch(sketch)
        loaded = store.load_sketch(key)
        assert np.array_equal(sketch.query_many(pairs), loaded.query_many(pairs))
        for u, v in pairs[:20].tolist():
            assert sketch.query(u, v) == loaded.query(u, v)
        assert loaded.size_words == sketch.size_words

    def test_listing_and_info(self, oracle, sketch, tmp_path):
        store = ArtifactStore(tmp_path)
        ko = store.save_oracle(oracle)
        ks = store.save_sketch(sketch)
        assert sorted(store.keys()) == sorted([ko, ks])
        assert ko in store and "nope" not in store
        assert store.info(ko).kind == "oracle"
        assert store.info(ks).kind == "sketch"
        assert store.info(ko).meta["k"] == oracle.k
        store.delete(ko)
        assert ko not in store

    def test_explicit_key_and_overwrite(self, oracle, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.save_oracle(oracle, key="my-key") == "my-key"
        assert store.save_oracle(oracle, key="my-key") == "my-key"  # idempotent
        assert store.keys() == ["my-key"]

    def test_stale_tmp_scratch_dirs_not_listed(self, oracle, tmp_path):
        """A writer killed mid-save leaves a `.tmp-*` directory holding a
        manifest; listing must never advertise it as a loadable key."""
        store = ArtifactStore(tmp_path)
        key = store.save_oracle(oracle)
        stale = tmp_path / ".tmp-dead-123"
        stale.mkdir()
        (stale / "manifest.json").write_text("{}")
        assert store.keys() == [key]
        for k in store.keys():  # every listed key is loadable
            store.info(k)

    def test_missing_key_raises(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(KeyError):
            store.info("absent")
        with pytest.raises(ValueError):
            store._dir("../escape")

    def test_kind_mismatch_rejected(self, oracle, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.save_oracle(oracle)
        with pytest.raises(ValueError, match="not a sketch"):
            store.load_sketch(key)

    def test_future_format_version_rejected(self, oracle, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.save_oracle(oracle)
        manifest_path = tmp_path / key / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = STORE_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="unsupported"):
            store.info(key)

    def test_mmap_load_is_file_backed_and_identical(self, oracle, pairs, tmp_path):
        """The default load hands back memmap views (one physical copy per
        artifact across processes); eager load stays available and both
        answer bit-identically."""
        store = ArtifactStore(tmp_path)
        key = store.save_oracle(oracle)
        lazy = store.load_oracle(key)  # mmap=True default
        eager = store.load_oracle(key, mmap=False)

        def file_backed(arr):
            import mmap as mmap_mod

            base = arr
            while isinstance(base, np.ndarray):
                if isinstance(base, np.memmap):
                    return True
                base = base.base
            return isinstance(base, mmap_mod.mmap)

        assert file_backed(lazy.spanner.edges_u)
        assert not file_backed(eager.spanner.edges_u)
        assert eager.spanner.edges_u.flags.writeable
        got = lazy.query_many(pairs)
        assert np.array_equal(got, eager.query_many(pairs))
        assert np.array_equal(got, oracle.query_many(pairs))

    def test_index_arrays_downcast_to_int32(self, oracle, sketch, tmp_path):
        """Save-time downcast: every index array of a small-n artifact is
        stored (and served) as int32; float payloads stay float64."""
        store = ArtifactStore(tmp_path)
        ko = store.save_oracle(oracle)
        ks = store.save_sketch(sketch)
        assert np.load(tmp_path / ko / "arrays" / "u.npy").dtype == np.int32
        assert np.load(tmp_path / ko / "arrays" / "w.npy").dtype == np.float64
        assert np.load(tmp_path / ks / "arrays" / "bunch_centers.npy").dtype == np.int32
        loaded = store.load_sketch(ks)
        assert loaded.bunch_centers.dtype == np.int32
        assert loaded.pivot.dtype == np.int32
        assert loaded.g.edges_u.dtype == np.int32

    def test_v1_npz_artifact_still_loads(self, oracle, pairs, tmp_path):
        """Artifacts written by the v1 (compressed arrays.npz) layout load
        transparently and answer bit-identically."""
        store = ArtifactStore(tmp_path)
        key = store.save_oracle(oracle)
        # Rewrite the artifact in the legacy layout by hand.
        adir = tmp_path / key / "arrays"
        arrays = {p.stem: np.load(p) for p in adir.glob("*.npy")}
        arrays = {
            name: a.astype(np.int64) if a.dtype == np.int32 else a
            for name, a in arrays.items()
        }
        import shutil

        shutil.rmtree(adir)
        with (tmp_path / key / "arrays.npz").open("wb") as fh:
            np.savez_compressed(fh, **arrays)
        manifest_path = tmp_path / key / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        manifest["arrays"] = "arrays.npz"
        manifest.pop("array_names", None)
        manifest_path.write_text(json.dumps(manifest))
        loaded = store.load_oracle(key)
        assert np.array_equal(oracle.query_many(pairs), loaded.query_many(pairs))

    def test_config_key_deterministic(self):
        a = config_key({"algorithm": "general", "k": 4, "graph": "er:64:0.2"})
        b = config_key({"graph": "er:64:0.2", "k": 4, "algorithm": "general"})
        assert a == b and len(a) == 16
        assert a != config_key({"algorithm": "general", "k": 5, "graph": "er:64:0.2"})

    def test_config_key_matches_trial_id(self):
        """Store keys and runner trial ids share one hash recipe, so sweep
        artifacts are addressable from the serving side."""
        from dataclasses import asdict

        from repro.runner import TrialSpec

        trial = TrialSpec(algorithm="general", graph="er:64:0.2", k=4, t=2, seed=0)
        assert config_key(asdict(trial)) == trial.trial_id


class TestQueryEngine:
    def test_matches_oracle(self, oracle, pairs):
        engine = QueryEngine(oracle)
        assert np.array_equal(engine.query_many(pairs), oracle.query_many(pairs))
        u, v = map(int, pairs[0])
        assert engine.query(u, v) == oracle.query(u, v)

    def test_batched_planning_populates_cache(self, oracle, pairs):
        engine = QueryEngine(oracle, cache_rows=1024)
        engine.query_many(pairs)
        rows_after_batch = engine.rows_solved
        # Every source in the batch is now cached: single queries are hits.
        u, v = map(int, pairs[0])
        engine.query(u, v)
        assert engine.rows_solved == rows_after_batch
        assert engine.stats()["cache"]["hits"] >= 1

    def test_timing_stats_accumulate(self, oracle, pairs):
        """The cumulative latency/batch accounting behind the server's
        SLO report: per-call wall time, rows per query_many call, and the
        batch-size histogram — with every pre-existing key unchanged."""
        engine = QueryEngine(oracle, cache_rows=64)
        base_keys = set(engine.stats())
        assert {"backend", "n", "m", "shards", "queries_served", "batches",
                "rows_solved", "cache"} <= base_keys
        engine.query_many(pairs[:100])
        engine.query_many(pairs[100:250])
        stats = engine.stats()
        assert set(stats) == base_keys  # new keys present from the start
        timing = stats["timing"]
        assert timing["query_many_wall_s"] > 0
        assert 0 < timing["solve_wall_s"] <= timing["query_many_wall_s"]
        assert timing["batch_rows_solved"] == stats["rows_solved"]
        assert timing["rows_per_call_mean"] == pytest.approx(
            stats["rows_solved"] / stats["batches"], abs=1e-3
        )
        assert timing["pairs_per_call_mean"] == pytest.approx(250 / 2, abs=1e-3)
        assert stats["batch_sizes"] == {"100": 1, "150": 1}
        assert len(engine.call_log) == 2
        call = engine.call_log[0]
        assert call["pairs"] == 100 and call["wall_s"] >= call["solve_s"] >= 0

    def test_lru_bound_respected(self, oracle, pairs):
        engine = QueryEngine(oracle, cache_rows=4)
        engine.query_many(pairs)
        stats = engine.stats()["cache"]
        assert stats["entries"] <= 4 and stats["evictions"] > 0
        # Answers stay correct under heavy eviction.
        assert np.array_equal(engine.query_many(pairs), oracle.query_many(pairs))

    def test_sharded_matches_serial(self, oracle, pairs):
        serial = QueryEngine(oracle, cache_rows=64)
        with QueryEngine(oracle, cache_rows=64, shards=2) as sharded:
            out_sharded = sharded.query_many(pairs)
            single = sharded.query(3, 11)
        out_serial = serial.query_many(pairs)
        assert np.array_equal(out_serial, out_sharded)
        assert single == serial.query(3, 11)

    def test_sketch_backend(self, sketch, pairs):
        engine = QueryEngine(sketch)
        assert np.array_equal(engine.query_many(pairs), sketch.query_many(pairs))
        assert engine.stats()["backend"] == "sketch"
        assert engine.rows_solved == 0

    def test_from_store_both_kinds(self, oracle, sketch, pairs, tmp_path):
        store = ArtifactStore(tmp_path)
        ko = store.save_oracle(oracle)
        ks = store.save_sketch(sketch)
        eo = QueryEngine.from_store(tmp_path, ko)  # path form
        es = QueryEngine.from_store(store, ks)  # store form
        assert np.array_equal(eo.query_many(pairs), oracle.query_many(pairs))
        assert np.array_equal(es.query_many(pairs), sketch.query_many(pairs))
        assert eo.meta["artifact_kind"] == "oracle"
        assert es.meta["artifact_kind"] == "sketch"

    def test_mmap_sharded_from_store_matches_serial(self, oracle, pairs, tmp_path):
        """The full zero-copy stack — memmapped int32 artifact, serial
        parent, shared-memory shard workers — answers bit-identically to
        the freshly built oracle."""
        store = ArtifactStore(tmp_path)
        key = store.save_oracle(oracle)
        expected = oracle.query_many(pairs)
        with QueryEngine.from_store(store, key, shards=2) as sharded:
            assert np.array_equal(sharded.query_many(pairs), expected)
        eager_serial = QueryEngine.from_store(store, key, mmap=False)
        assert np.array_equal(eager_serial.query_many(pairs), expected)

    def test_input_validation(self, oracle):
        engine = QueryEngine(oracle)
        with pytest.raises(ValueError):
            engine.query(-1, 0)
        with pytest.raises(ValueError):
            engine.query_many(np.asarray([[0, 10**6]]))
        with pytest.raises(TypeError):
            QueryEngine(object())
        with pytest.raises(ValueError):
            QueryEngine(oracle, shards=-1)
        assert engine.query_many(np.zeros((0, 2), dtype=np.int64)).size == 0

    def test_empty_graph_backend(self):
        from repro.graphs import WeightedGraph

        engine = QueryEngine(WeightedGraph.from_edges(4, []))
        assert np.isinf(engine.query(0, 3))
        assert engine.query(2, 2) == 0.0


class TestRunnerPersist:
    def test_sweep_store_is_loadable(self, tmp_path):
        from repro.runner import ExperimentPlan, run_plan

        plan = ExperimentPlan(
            algorithms=["general", "baswana-sen"],
            graphs=["er:96:0.1"],
            ks=[3],
            seeds=[0],
            name="persist-test",
        )
        out = tmp_path / "sweep"
        result = run_plan(plan, out_dir=out, persist=True)
        store = ArtifactStore(out / "store")
        assert len(store.keys()) == len(result.records) == 2
        for record in result.records:
            assert record["artifact_key"] == record["trial_id"]
            info = store.info(record["trial_id"])
            assert info.meta["algorithm"] == record["algorithm"]
            engine = QueryEngine.from_store(store, record["trial_id"])
            assert np.isfinite(engine.query_many([[0, 1], [5, 9]])).all()

    def test_resume_backfills_missing_artifacts(self, tmp_path):
        """Adding --persist to an already-finished sweep re-executes the
        trials whose artifacts are missing, so the store ends up complete."""
        from repro.runner import ExperimentPlan, run_plan

        plan = ExperimentPlan(
            algorithms=["general"], graphs=["er:96:0.1"], ks=[3], seeds=[0, 1]
        )
        out = tmp_path / "sweep"
        run_plan(plan, out_dir=out)  # no persist: store stays absent
        result = run_plan(plan, out_dir=out, persist=True)
        assert result.executed == 2  # resumed records lacked artifacts
        assert len(ArtifactStore(out / "store").keys()) == 2
        # A second persisting resume now skips everything.
        result = run_plan(plan, out_dir=out, persist=True)
        assert result.executed == 0 and result.skipped == 2

    def test_persist_requires_out_dir(self):
        from repro.runner import ExperimentPlan, run_plan

        plan = ExperimentPlan(algorithms=["general"], graphs=["er:64:0.1"], ks=[3])
        with pytest.raises(ValueError, match="out_dir"):
            run_plan(plan, persist=True)


class TestServiceCLI:
    GRAPH = "er:96:0.1"

    def _query(self, store, extra, capsys):
        rc = main(
            [
                "query",
                "--store",
                str(store),
                "--graph",
                self.GRAPH,
                "--algorithm",
                "general",
                "-k",
                "3",
                "--json",
                *extra,
            ]
        )
        out = json.loads(capsys.readouterr().out)
        return rc, out

    def test_build_then_load_identical(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc, first = self._query(
            store, ["--build", "--num-pairs", "12", "--zipf", "1.3"], capsys
        )
        assert rc == 0 and first["built"] is True
        rc, second = self._query(store, ["--num-pairs", "12", "--zipf", "1.3"], capsys)
        assert rc == 0 and second["built"] is False
        assert second["key"] == first["key"]
        assert second["answers"] == first["answers"]  # loaded == freshly built

    def test_missing_without_build_fails(self, tmp_path, capsys):
        with pytest.raises(SystemExit, match="--build"):
            self._query(tmp_path / "store", ["--num-pairs", "4"], capsys)

    def test_explicit_pairs_and_kind_sketch(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc, out = self._query(
            store, ["--kind", "sketch", "--build", "--pairs", "0:5,3:9,7:7"], capsys
        )
        assert rc == 0
        assert out["num_pairs"] == 3
        assert out["answers"][2] == 0.0
        assert out["stats"]["backend"] == "sketch"

    def test_serve_pipe(self, tmp_path, capsys, monkeypatch):
        import io

        store = tmp_path / "store"
        self._query(store, ["--build", "--num-pairs", "2"], capsys)
        monkeypatch.setattr("sys.stdin", io.StringIO("0 5\n# comment\n3 9\n\n"))
        rc = main(
            [
                "serve",
                "--store",
                str(store),
                "--graph",
                self.GRAPH,
                "--algorithm",
                "general",
                "-k",
                "3",
            ]
        )
        captured = capsys.readouterr()
        assert rc == 0
        lines = captured.out.strip().splitlines()
        assert len(lines) == 2 and all(float(x) >= 0 for x in lines)
        assert "serving artifact" in captured.err

    def test_sweep_persist_flag(self, tmp_path, capsys):
        plan = {
            "name": "cli-persist",
            "algorithms": ["general"],
            "graphs": ["er:64:0.1"],
            "ks": [3],
            "seeds": [0],
        }
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(json.dumps(plan))
        out = tmp_path / "out"
        rc = main(
            ["sweep", "--plan", str(plan_path), "--out", str(out), "--persist", "--json"]
        )
        assert rc == 0
        store = ArtifactStore(out / "store")
        assert len(store.keys()) == 1

    def test_sweep_persist_requires_out(self, tmp_path):
        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            json.dumps({"algorithms": ["general"], "graphs": ["er:64:0.1"], "ks": [3]})
        )
        with pytest.raises(SystemExit, match="--out"):
            main(["sweep", "--plan", str(plan_path), "--persist"])


class TestBundleCLI:
    """The ``--kind bundle`` artifact and the planner flags on ``repro
    query``: per-backend routing, declarative targets, and the guard that
    routing flags require a bundle."""

    GRAPH = "er:96:0.1"

    def _query(self, store, extra, capsys):
        rc = main(
            [
                "query", "--store", str(store), "--graph", self.GRAPH,
                "--algorithm", "general", "-k", "3", "--kind", "bundle",
                "--json", *extra,
            ]
        )
        return rc, json.loads(capsys.readouterr().out)

    def test_backends_share_one_artifact(self, tmp_path, capsys):
        store = tmp_path / "store"
        pairs = ["--pairs", "0:5,3:9,7:7"]
        rc, exact = self._query(
            store, ["--build", "--backend", "exact", *pairs], capsys
        )
        assert rc == 0 and exact["built"] is True
        assert exact["stats"]["backend"] == "planned"
        assert exact["stats"]["planner"]["routed"]["exact"] == 3
        assert exact["answers"][2] == 0.0  # self-pair

        rc, sketch = self._query(store, ["--backend", "sketch", *pairs], capsys)
        assert rc == 0 and sketch["built"] is False
        assert sketch["key"] == exact["key"]  # one bundle serves both
        assert sketch["stats"]["planner"]["routed"]["sketch"] == 3
        for s, e in zip(sketch["answers"], exact["answers"]):
            if s is None or e is None:  # unreachable agrees
                assert s is None and e is None
            else:
                assert s >= e - 1e-9  # sketch upper-bounds exact

    def test_stretch_target_routes_within_bound(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc, out = self._query(
            store, ["--build", "--stretch", "1.0", "--num-pairs", "8"], capsys
        )
        assert rc == 0
        planner = out["stats"]["planner"]
        assert "stretch<=1" in planner["target"]
        # Only exact declares stretch <= 1: everything routes there.
        assert planner["routed"]["exact"] == 8
        assert sum(planner["routed"].values()) == 8

    def test_routing_flags_require_bundle_artifact(self, tmp_path, capsys):
        store = tmp_path / "store"
        rc = main(
            [
                "query", "--store", str(store), "--graph", self.GRAPH,
                "--algorithm", "general", "-k", "3", "--build",
                "--num-pairs", "4", "--json",
            ]
        )
        capsys.readouterr()
        assert rc == 0  # plain oracle artifact
        with pytest.raises(SystemExit, match="bundle"):
            main(
                [
                    "query", "--store", str(store), "--graph", self.GRAPH,
                    "--algorithm", "general", "-k", "3",
                    "--backend", "exact", "--num-pairs", "4",
                ]
            )

    def test_invalid_target_flags_exit_cleanly(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", "--store", str(tmp_path / "s"), "--graph", self.GRAPH,
                    "--algorithm", "general", "-k", "3", "--kind", "bundle",
                    "--build", "--stretch", "0.5", "--num-pairs", "2",
                ]
            )
