"""Tests for the MPC simulator substrate (config, tables, primitives)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpc import (
    DistributedTable,
    MPCConfig,
    MPCSimulator,
    MPCViolation,
    find_min_by_group,
    join_lookup,
    reduce_by_key,
    segment_broadcast,
    sort_table,
)


@pytest.fixture
def sim():
    return MPCSimulator(MPCConfig(n=1000, gamma=0.5, total_words=5000))


def _table(sim, **cols):
    return DistributedTable(sim, {k: np.asarray(v) for k, v in cols.items()})


class TestConfig:
    def test_machine_memory_scales(self):
        c1 = MPCConfig(n=10**4, gamma=0.5, total_words=10**5)
        c2 = MPCConfig(n=10**4, gamma=0.25, total_words=10**5)
        assert c1.machine_memory > c2.machine_memory

    def test_num_machines_cover_input(self):
        c = MPCConfig(n=100, gamma=0.5, total_words=10**6)
        assert c.num_machines * c.machine_memory >= 10**6

    def test_tree_levels_grow_as_gamma_shrinks(self):
        levels = [
            MPCConfig(n=10**4, gamma=g, total_words=10**6).tree_levels()
            for g in (0.8, 0.4, 0.2)
        ]
        assert levels[0] <= levels[1] <= levels[2]

    def test_rounds_for_map_free(self):
        c = MPCConfig(n=100, gamma=0.5, total_words=1000)
        assert c.rounds_for("map") == 0
        assert c.rounds_for("sort") >= 2
        with pytest.raises(KeyError):
            c.rounds_for("teleport")

    def test_validation(self):
        with pytest.raises(ValueError):
            MPCConfig(n=0, gamma=0.5, total_words=10)
        with pytest.raises(ValueError):
            MPCConfig(n=10, gamma=1.5, total_words=10)


class TestDistributedTable:
    def test_even_partition(self, sim):
        t = _table(sim, x=np.arange(100))
        loads = t.machine_loads()
        assert loads.max() <= sim.config.machine_memory

    def test_memory_violation_detected(self):
        # Tiny machines, bulky table on one machine -> violation.
        sim = MPCSimulator(MPCConfig(n=4, gamma=0.5, total_words=64, memory_constant=1.0))
        with pytest.raises(MPCViolation):
            DistributedTable(
                sim,
                {"x": np.arange(1000)},
                machine_of=np.zeros(1000, dtype=np.int64),
            )

    def test_column_length_mismatch(self, sim):
        with pytest.raises(ValueError):
            _table(sim, a=np.arange(5), b=np.arange(6))

    def test_with_columns_budget(self, sim):
        t = DistributedTable(sim, {"a": np.arange(10)}, words_per_record=2)
        t2 = t.with_columns(b=np.arange(10))
        assert len(t2) == 10
        with pytest.raises(ValueError, match="budget"):
            t2.with_columns(c=np.arange(10), d=np.arange(10))

    def test_select_is_free(self, sim):
        t = _table(sim, x=np.arange(50))
        before = sim.rounds
        t2 = t.select(t["x"] % 2 == 0)
        assert len(t2) == 25
        assert sim.rounds == before


class TestPrimitives:
    def test_sort_correct_and_charged(self, sim):
        t = _table(sim, k=np.array([3, 1, 2, 1]), v=np.array([9, 8, 7, 6]))
        before = sim.rounds
        s = sort_table(t, ["k", "v"])
        assert s["k"].tolist() == [1, 1, 2, 3]
        assert s["v"].tolist() == [6, 8, 7, 9]
        assert sim.rounds > before

    def test_find_min_by_group(self, sim):
        t = _table(
            sim,
            g=np.array([0, 0, 1, 1, 1]),
            w=np.array([5.0, 2.0, 9.0, 1.0, 1.0]),
            tag=np.array([10, 20, 30, 40, 50]),
        )
        out = find_min_by_group(t, ["g"], "w", tie_key="tag")
        assert out["g"].tolist() == [0, 1]
        assert out["w"].tolist() == [2.0, 1.0]
        assert out["tag"].tolist() == [20, 40]  # tie broken by tag

    @pytest.mark.parametrize(
        "op,expect",
        [("sum", [7.0, 11.0]), ("min", [2.0, 1.0]), ("max", [5.0, 9.0]), ("count", [2, 3])],
    )
    def test_reduce_by_key(self, sim, op, expect):
        t = _table(
            sim,
            g=np.array([0, 0, 1, 1, 1]),
            v=np.array([5.0, 2.0, 9.0, 1.0, 1.0]),
        )
        out = reduce_by_key(t, ["g"], "v", op)
        assert out["value"].tolist() == pytest.approx(expect)

    def test_reduce_unknown_op(self, sim):
        t = _table(sim, g=np.array([0]), v=np.array([1.0]))
        with pytest.raises(ValueError):
            reduce_by_key(t, ["g"], "v", "median")

    def test_segment_broadcast(self, sim):
        t = DistributedTable(
            sim,
            {
                "g": np.array([1, 0, 1, 0]),
                "v": np.array([10, 20, 30, 40]),
            },
            words_per_record=3,
        )
        out = segment_broadcast(t, ["g"], "v", "lead")
        # sorted by g: group 0 leader value 20, group 1 leader value 10
        got = {(int(a), int(b)) for a, b in zip(out["g"], out["lead"])}
        assert got == {(0, 20), (1, 10)}

    def test_join_lookup(self, sim):
        t = DistributedTable(sim, {"k": np.array([5, 3, 9])}, words_per_record=2)
        out = join_lookup(t, "k", np.array([3, 5]), np.array([30, 50]), "val")
        assert out["val"].tolist() == [50, 30, -1]

    def test_join_lookup_empty_lookup(self, sim):
        t = DistributedTable(sim, {"k": np.array([1, 2])}, words_per_record=2)
        out = join_lookup(t, "k", np.zeros(0, dtype=np.int64), np.zeros(0), "val", default=7)
        assert out["val"].tolist() == [7, 7]

    def test_round_accounting_accumulates(self, sim):
        t = _table(sim, k=np.arange(20))
        r0 = sim.rounds
        sort_table(t, ["k"])
        r1 = sim.rounds
        sort_table(t, ["k"])
        assert r1 - r0 == sim.rounds - r1  # constant per call
        assert len(sim.log) == 2
        assert sim.summary()["rounds"] == sim.rounds
