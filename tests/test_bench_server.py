"""Tier-1 smoke wiring for the open-loop server benchmark.

Runs ``benchmarks/bench_server.py`` in smoke mode on every test run: the
bench asserts the server's correctness invariants (every served answer
bit-identical to offline ``query_many``, graceful drain losing nothing
and leaving /dev/shm clean) at tiny scale, so a protocol or batching
regression fails the suite before anyone reads throughput numbers.

The >= 5x micro-vs-naive speedup gate is timing-dependent and full-scale
only (``scripts/bench_snapshot.py --suite server``); here it is exercised
as pure logic on synthetic records, including the explicit smoke skip and
the scale-mismatch skip of the baseline gate.
"""

from __future__ import annotations

import os
import sys

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

from bench_server import (  # noqa: E402
    SPEEDUP_GATE,
    baseline_gate,
    drain_gate,
    format_table,
    identity_gate,
    run_server_bench,
    speedup_gate,
)


def test_server_bench_smoke():
    record = run_server_bench(smoke=True)
    ok, reasons = identity_gate(record)
    assert ok, reasons
    ok, reasons = drain_gate(record)
    assert ok, reasons
    # Structure: one sweep point per configured rate, duel both modes.
    assert len(record["sweep"]) == len(record["config"]["rates"])
    for point in record["sweep"]:
        assert point["completed"] > 0 and point["errors"] == 0
        assert point["latency_ms"]["p50_ms"] <= point["latency_ms"]["p99_ms"]
        assert "answers" not in point  # stripped before the record returns
    assert record["duel"]["micro_qps"] > 0 and record["duel"]["naive_qps"] > 0
    # Smoke-scale timings never gate; the skip reason is explicit.
    ok, reason = speedup_gate(record)
    assert ok and "skipped" in reason
    assert "server bench" in format_table(record)


def test_speedup_gate_logic():
    passing = {
        "smoke": False,
        "duel": {"speedup": SPEEDUP_GATE + 1, "micro_qps": 12.0, "naive_qps": 2.0},
    }
    ok, reason = speedup_gate(passing)
    assert ok and "meets" in reason
    failing = {"smoke": False, "duel": {"speedup": SPEEDUP_GATE - 1}}
    ok, reason = speedup_gate(failing)
    assert not ok and "below" in reason


def test_drain_gate_logic():
    ok, reasons = drain_gate(
        {"drain": {"shm_clean": True, "lost": 0, "answered": 9, "rejected_during_drain": 1}}
    )
    assert ok
    ok, reasons = drain_gate({"drain": {"shm_clean": False, "lost": 2}})
    assert not ok
    assert any("LOST" in r for r in reasons)
    assert any("leaked" in r for r in reasons)


def test_identity_gate_logic():
    ok, reasons = identity_gate({"identity": {"rate_1000": True, "duel_micro": False}})
    assert not ok
    assert any("duel_micro: FAILED" in r for r in reasons)
    ok, _ = identity_gate({})
    assert not ok  # no checks recorded is a failure, not a pass


def test_baseline_gate_logic():
    full = {"smoke": False, "sweep": [{"achieved_qps": 1000.0}]}
    # Scale mismatch (CI smoke vs committed full record) skips explicitly.
    ok, reason = baseline_gate({"smoke": True, "sweep": []}, full)
    assert ok and "scale mismatch" in reason
    # Full vs full: a big regression fails, parity passes.
    slow = {"smoke": False, "sweep": [{"achieved_qps": 100.0}]}
    ok, reason = baseline_gate(slow, full)
    assert not ok and "regressed" in reason
    ok, _ = baseline_gate(full, slow)  # faster than baseline is fine
    assert ok
