"""Tests for the static-analysis subsystem (``repro.analysis``).

Per-rule coverage comes from ``tests/analysis_fixtures/``: each rule has
a violating snippet (the rule must fire), a clean twin (it must not), and
the violating snippet with ``# repro: allow(...)`` appended to every
flagged line (it must go quiet).  The acceptance tests assert the real
tree is lint-clean and that reverting a baseline fix re-fails the gate.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro import cli
from repro.analysis import (
    FROZEN_HASHES,
    all_rules,
    check_source,
    compute_frozen_hashes,
    lint_paths,
    module_relpath,
)
from repro.analysis.framework import parse_suppressions

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
SRC = Path(__file__).resolve().parents[1] / "src"

# (rule id, fixture stem, virtual package path the snippet is checked under)
CASES = [
    ("memmap-copy", "memmap", "service/fixture.py"),
    ("rng-discipline", "rng", "streaming/fixture.py"),
    ("int32-widening", "int32", "graphs/fixture.py"),
    ("shm-lifecycle", "shm", "service/fixture.py"),
    ("async-blocking", "async", "service/fixture.py"),
    ("json-safety", "json", "cli.py"),
    ("frozen-reference", "frozen", "fixture.py"),
]


def _rule(rule_id: str):
    return [r for r in all_rules() if r.id == rule_id]


def _with_allow(source: str, findings, rule_id: str) -> str:
    lines = source.splitlines()
    for f in findings:
        lines[f.line - 1] += f"  # repro: allow({rule_id})"
    return "\n".join(lines) + "\n"


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id,stem,rel", CASES, ids=[c[0] for c in CASES])
    def test_fires_on_violation(self, rule_id, stem, rel):
        source = (FIXTURES / f"{stem}_bad.py").read_text()
        findings = check_source(source, _rule(rule_id), rel=rel)
        assert findings, f"{rule_id} did not fire on {stem}_bad.py"
        assert all(f.rule == rule_id for f in findings)
        assert all(f.line >= 1 and f.message and f.hint for f in findings)

    @pytest.mark.parametrize("rule_id,stem,rel", CASES, ids=[c[0] for c in CASES])
    def test_quiet_on_clean_twin(self, rule_id, stem, rel):
        source = (FIXTURES / f"{stem}_clean.py").read_text()
        assert check_source(source, _rule(rule_id), rel=rel) == []

    @pytest.mark.parametrize("rule_id,stem,rel", CASES, ids=[c[0] for c in CASES])
    def test_inline_allow_suppresses(self, rule_id, stem, rel):
        source = (FIXTURES / f"{stem}_bad.py").read_text()
        findings = check_source(source, _rule(rule_id), rel=rel)
        suppressed = _with_allow(source, findings, rule_id)
        assert check_source(suppressed, _rule(rule_id), rel=rel) == []

    def test_async_bad_flags_both_sleep_and_solve(self):
        source = (FIXTURES / "async_bad.py").read_text()
        messages = [
            f.message
            for f in check_source(source, _rule("async-blocking"), rel="service/f.py")
        ]
        assert any("time.sleep" in m for m in messages)
        assert any("query_many" in m for m in messages)


class TestPathScoping:
    def test_memmap_rule_only_on_memmap_visible_paths(self):
        source = (FIXTURES / "memmap_bad.py").read_text()
        assert check_source(source, _rule("memmap-copy"), rel="core/unweighted.py") == []
        assert check_source(source, _rule("memmap-copy"), rel="service/store.py")

    def test_rng_rule_excluded_in_its_own_definition_module(self):
        source = (FIXTURES / "rng_bad.py").read_text()
        assert check_source(source, _rule("rng-discipline"), rel="core/params.py") == []

    def test_json_rule_scoped_to_cli(self):
        source = (FIXTURES / "json_bad.py").read_text()
        assert check_source(source, _rule("json-safety"), rel="runner/plan.py") == []
        assert check_source(source, _rule("json-safety"), rel="cli.py")


class TestFramework:
    def test_module_relpath(self):
        assert module_relpath("src/repro/service/server.py") == "service/server.py"
        assert module_relpath("src/repro/cli.py") == "cli.py"
        assert module_relpath("elsewhere/thing.py") == "thing.py"
        assert module_relpath("a/repro/b/repro/c.py") == "c.py"

    def test_parse_suppressions_multiple_ids(self):
        sup = parse_suppressions("x = 1  # repro: allow(a, b)\ny = 2\n")
        assert sup == {1: {"a", "b"}}

    def test_finding_format_and_json_round_trip(self):
        source = (FIXTURES / "rng_bad.py").read_text()
        (finding,) = check_source(source, _rule("rng-discipline"), rel="x.py")
        assert finding.format().startswith(f"x.py:{finding.line}:{finding.col}:")
        assert "[rng-discipline]" in finding.format()
        assert json.loads(json.dumps(finding.to_json()))["rule"] == "rng-discipline"

    def test_unknown_rule_id_raises(self):
        with pytest.raises(KeyError, match="no-such-rule"):
            lint_paths([str(FIXTURES / "rng_bad.py")], rule_ids=["no-such-rule"])

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            lint_paths(["tests/definitely/not/here"])

    def test_syntax_error_becomes_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        findings = lint_paths([str(broken)])
        assert [f.rule for f in findings] == ["syntax-error"]

    def test_rule_metadata_complete(self):
        rules = all_rules()
        assert len({r.id for r in rules}) == len(rules) == 7
        for rule in rules:
            assert rule.id and rule.description and rule.hint


class TestFrozenReferences:
    def test_manifest_matches_tree(self):
        root = Path(repro.__file__).resolve().parent
        assert compute_frozen_hashes(root) == FROZEN_HASHES

    def test_detects_drift_in_pinned_reference(self):
        source = (SRC / "repro/graphs/distances.py").read_text()
        rel = "graphs/distances.py"
        assert check_source(source, _rule("frozen-reference"), rel=rel) == []
        drifted = source.replace("dist[source] = 0.0", "dist[source] = -0.0")
        assert drifted != source
        findings = check_source(drifted, _rule("frozen-reference"), rel=rel)
        assert any("drifted" in f.message for f in findings)

    def test_detects_removed_reference(self):
        source = (SRC / "repro/graphs/distances.py").read_text()
        rel = "graphs/distances.py"
        renamed = source.replace("sssp_reference", "sssp_reference2")
        findings = check_source(renamed, _rule("frozen-reference"), rel=rel)
        assert any("missing" in f.message for f in findings)


class TestBaselineRegression:
    """Reverting a PR-10 baseline fix must re-fail the lint gate."""

    def test_reverting_stream_rng_fix_fails_lint(self):
        source = (SRC / "repro/streaming/stream.py").read_text()
        rel = "streaming/stream.py"
        assert "coerce_rng(order_seed)" in source
        assert check_source(source, _rule("rng-discipline"), rel=rel) == []
        reverted = source.replace(
            "rng = coerce_rng(order_seed)",
            "rng = np.random.default_rng(order_seed)",
        )
        assert reverted != source
        findings = check_source(reverted, _rule("rng-discipline"), rel=rel)
        assert [f.rule for f in findings] == ["rng-discipline"]

    def test_adding_astype_copy_in_service_fails_lint(self):
        source = (SRC / "repro/service/store.py").read_text()
        rel = "service/store.py"
        assert check_source(source, _rule("memmap-copy"), rel=rel) == []
        reverted = source.replace(
            ".astype(np.int32, copy=False)", ".astype(np.int32)"
        )
        assert reverted != source
        findings = check_source(reverted, _rule("memmap-copy"), rel=rel)
        assert findings and all(f.rule == "memmap-copy" for f in findings)


class TestAcceptance:
    def test_repo_src_is_lint_clean(self):
        assert lint_paths([str(SRC)]) == []

    def test_cli_lint_strict_exits_zero_on_repo(self, capsys):
        assert cli.main(["lint", str(SRC), "--strict"]) == 0
        assert "clean" in capsys.readouterr().out


class TestCli:
    def test_strict_flips_exit_code_on_findings(self, capsys):
        bad = str(FIXTURES / "rng_bad.py")
        assert cli.main(["lint", bad]) == 0
        capsys.readouterr()
        assert cli.main(["lint", bad, "--strict"]) == 1

    def test_json_output_parses(self, capsys):
        bad = str(FIXTURES / "rng_bad.py")
        assert cli.main(["lint", bad, "--strict", "--json"]) == 1
        findings = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in findings] == ["rng-discipline"]
        assert findings[0]["hint"]

    def test_rule_filter(self, capsys):
        bad = str(FIXTURES / "rng_bad.py")
        assert cli.main(["lint", bad, "--strict", "--rule", "json-safety"]) == 0
        assert (
            cli.main(["lint", bad, "--strict", "--rule", "rng-discipline"]) == 1
        )

    def test_unknown_rule_exits_with_message(self):
        with pytest.raises(SystemExit, match="unknown rule"):
            cli.main(["lint", str(FIXTURES), "--rule", "nope"])

    def test_list_rules_names_every_rule(self, capsys):
        assert cli.main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.id in out
