"""Tests for the memory-budget resolver and the budgeted chunk paths.

Covers :mod:`repro.core.membudget` itself (size parsing, the resolution
chain, chunk sizing, the per-site accounting ledger), the boundary cases
of the budget-autotuned ``iter_sssp_chunks`` (chunk larger than the
source set, exactly one row per chunk, empty source list), the
hypothesis bit-identity invariant — *any* chunk size yields the same
rows as the unchunked reference — and the satellites that hang off the
budget: the ``all_pairs`` dense guard, ``EdgeStream``'s budgeted default
chunk, and the ``QueryEngine.stats()`` surfacing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.graphs.distances as dmod
from repro.core import membudget
from repro.graphs import WeightedGraph, erdos_renyi, batched_sssp


@pytest.fixture(autouse=True)
def _clean_ledger():
    membudget.reset_accounting()
    yield
    membudget.reset_accounting()


class TestParseBytes:
    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("1024", 1024),
            ("1k", 1024),
            ("1K", 1024),
            ("512M", 512 * 2**20),
            ("2G", 2 * 2**30),
            ("2GiB", 2 * 2**30),
            ("1.5g", int(1.5 * 2**30)),
            ("3gb", 3 * 2**30),
            ("1t", 2**40),
            (" 64 M ", 64 * 2**20),
            (4096, 4096),
            (4096.7, 4096),
        ],
    )
    def test_valid(self, text, expected):
        assert membudget.parse_bytes(text) == expected

    @pytest.mark.parametrize("text", ["", "junk", "12X", "G", "-5", "1..5M", "0"])
    def test_invalid(self, text):
        with pytest.raises(ValueError):
            membudget.parse_bytes(text)

    def test_nonpositive_numeric(self):
        with pytest.raises(ValueError):
            membudget.parse_bytes(0)
        with pytest.raises(ValueError):
            membudget.parse_bytes(-1)


class TestResolveBudget:
    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(membudget.ENV_VAR, "1G")
        assert membudget.resolve_budget(12345) == 12345

    def test_env_honoured_verbatim(self, monkeypatch):
        # No MIN_AUTO_BUDGET floor on explicit/env budgets: tests rely on
        # tiny budgets to force chunking.
        monkeypatch.setenv(membudget.ENV_VAR, "4k")
        assert membudget.resolve_budget() == 4096

    def test_env_junk_raises(self, monkeypatch):
        monkeypatch.setenv(membudget.ENV_VAR, "lots")
        with pytest.raises(ValueError):
            membudget.resolve_budget()

    def test_auto_floor(self, monkeypatch):
        monkeypatch.delenv(membudget.ENV_VAR, raising=False)
        assert membudget.resolve_budget() >= membudget.MIN_AUTO_BUDGET

    def test_auto_tracks_available(self, monkeypatch):
        monkeypatch.delenv(membudget.ENV_VAR, raising=False)
        avail = membudget.available_bytes()
        if avail is None:  # pragma: no cover - non-Linux
            pytest.skip("no /proc/meminfo")
        got = membudget.resolve_budget()
        assert got == max(
            membudget.MIN_AUTO_BUDGET, int(avail * membudget.DEFAULT_FRACTION)
        ) or got >= membudget.MIN_AUTO_BUDGET  # MemAvailable moves between reads


class TestChunkSizing:
    def test_chunk_rows(self):
        # 1000 vertices, 8-byte entries, 80 kB budget -> 10 rows.
        assert membudget.chunk_rows(1000, budget=80_000) == 10

    def test_chunk_rows_floor_one(self):
        assert membudget.chunk_rows(10**9, budget=1) == 1

    def test_chunk_rows_entry_bytes(self):
        assert membudget.chunk_rows(1000, budget=80_000, entry_bytes=1) == 80

    def test_chunk_edges(self):
        assert membudget.chunk_edges(budget=6400, entry_bytes=64) == 100
        assert membudget.chunk_edges(budget=1, entry_bytes=64) == 1


class TestAccounting:
    def test_peak_and_calls(self):
        membudget.note("site.a", 100)
        membudget.note("site.a", 700)
        membudget.note("site.a", 300)
        membudget.note("site.b", 50)
        acc = membudget.accounting()
        assert acc["site.a"] == {"peak_bytes": 700, "calls": 3}
        assert acc["site.b"] == {"peak_bytes": 50, "calls": 1}

    def test_reset(self):
        membudget.note("site.a", 1)
        membudget.reset_accounting()
        assert membudget.accounting() == {}

    def test_snapshot_is_a_copy(self):
        membudget.note("site.a", 1)
        acc = membudget.accounting()
        acc["site.a"]["peak_bytes"] = 999
        assert membudget.accounting()["site.a"]["peak_bytes"] == 1


class TestIterSsspChunkBoundaries:
    """Satellite: boundary cases of the budget-autotuned chunked solver."""

    def test_chunk_larger_than_source_set(self, monkeypatch):
        # A huge budget makes the chunk dwarf the source set: one block.
        g = erdos_renyi(50, 0.2, weights="uniform", rng=0)
        monkeypatch.setenv(membudget.ENV_VAR, "1G")
        blocks = list(dmod.iter_sssp_chunks(g, np.arange(5)))
        assert len(blocks) == 1
        lo, rows = blocks[0]
        assert lo == 0 and rows.shape == (5, g.n)
        assert np.array_equal(rows, batched_sssp(g, np.arange(5)))

    def test_exactly_one_row_per_chunk_at_large_n(self, monkeypatch):
        # Budget = 8 * n bytes: one float64 row of the (rows, n) block per
        # chunk — the degenerate floor a 10^6-vertex graph hits on a
        # starved budget, at a testable n.
        g = erdos_renyi(400, 0.02, weights="uniform", rng=1)
        sources = np.array([7, 0, 399, 20])
        expect = batched_sssp(g, sources)
        monkeypatch.setenv(membudget.ENV_VAR, str(8 * g.n))
        blocks = list(dmod.iter_sssp_chunks(g, sources))
        assert [lo for lo, _ in blocks] == [0, 1, 2, 3]
        assert all(rows.shape == (1, g.n) for _, rows in blocks)
        assert np.array_equal(np.vstack([r for _, r in blocks]), expect)

    def test_empty_source_list(self):
        g = erdos_renyi(30, 0.2, weights="uniform", rng=2)
        assert list(dmod.iter_sssp_chunks(g, np.zeros(0, dtype=np.int64))) == []
        rows = batched_sssp(g, np.zeros(0, dtype=np.int64))
        assert rows.shape == (0, g.n)

    def test_budget_chunks_noted_in_ledger(self, monkeypatch):
        g = erdos_renyi(60, 0.2, weights="uniform", rng=3)
        monkeypatch.setenv(membudget.ENV_VAR, str(8 * g.n))
        batched_sssp(g, np.arange(4))
        acc = membudget.accounting()
        site = "graphs.distances.iter_sssp_chunks"
        assert acc[site]["calls"] == 4  # one per single-row block
        assert acc[site]["peak_bytes"] == 8 * g.n

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 50),
        chunk_entries=st.integers(1, 5000),
        num_sources=st.integers(0, 12),
    )
    def test_bit_identity_across_chunk_sizes(
        self, seed, chunk_entries, num_sources
    ):
        """Chunk size moves batching granularity, never values."""
        g = erdos_renyi(40, 0.15, weights="uniform", rng=seed)
        rng = np.random.default_rng(seed)
        sources = rng.integers(0, g.n, size=num_sources)
        expect = batched_sssp(g, sources)  # autotuned (single block at n=40)
        saved = dmod._CHUNK_ENTRIES
        try:
            dmod._CHUNK_ENTRIES = chunk_entries
            got = dmod.batched_sssp(g, sources)
        finally:
            dmod._CHUNK_ENTRIES = saved
        assert np.array_equal(got, expect)


class TestAllPairsDenseGuard:
    """Satellite: the oracle's O(n^2) matrix is budget-guarded."""

    def _oracle(self, n=48, seed=7):
        from repro.distances import SpannerDistanceOracle

        g = erdos_renyi(n, 0.2, weights="uniform", rng=seed)
        return SpannerDistanceOracle(g, 3, 2, rng=seed)

    def test_raises_above_budget(self, monkeypatch):
        o = self._oracle()
        monkeypatch.setenv(membudget.ENV_VAR, str(8 * o.g.n * o.g.n - 1))
        with pytest.raises(MemoryError, match="allow_dense"):
            o.all_pairs()

    def test_allow_dense_overrides(self, monkeypatch):
        o = self._oracle()
        monkeypatch.setenv(membudget.ENV_VAR, "1k")
        d = o.all_pairs(allow_dense=True)
        assert d.shape == (o.g.n, o.g.n)

    def test_within_budget_unchanged(self, monkeypatch):
        o = self._oracle()
        monkeypatch.setenv(membudget.ENV_VAR, "1G")
        d = o.all_pairs()
        assert np.all(np.diag(d) == 0.0)
        pairs = np.array([[0, 5], [3, 40], [17, 2]])
        assert np.array_equal(d[pairs[:, 0], pairs[:, 1]], o.query_many(pairs))

    def test_forced_dense_matches_guarded(self, monkeypatch):
        o = self._oracle()
        monkeypatch.setenv(membudget.ENV_VAR, "1G")
        within = o.all_pairs()
        monkeypatch.setenv(membudget.ENV_VAR, "1k")
        assert np.array_equal(o.all_pairs(allow_dense=True), within)

    def test_error_names_knobs(self, monkeypatch):
        o = self._oracle()
        monkeypatch.setenv(membudget.ENV_VAR, "1k")
        with pytest.raises(MemoryError) as exc:
            o.all_pairs()
        msg = str(exc.value)
        assert membudget.ENV_VAR in msg and "query_many" in msg


class TestEdgeStreamBudgetDefault:
    """Satellite: EdgeStream's default chunk resolves through the budget."""

    def _graph(self):
        return erdos_renyi(60, 0.2, weights="uniform", rng=4)

    def test_default_chunk_from_budget(self, monkeypatch):
        from repro.streaming.stream import _EDGE_BYTES, EdgeStream

        monkeypatch.setenv(membudget.ENV_VAR, str(37 * _EDGE_BYTES))
        s = EdgeStream(self._graph())
        assert s.chunk == 37

    def test_explicit_chunk_untouched(self, monkeypatch):
        from repro.streaming.stream import EdgeStream

        monkeypatch.setenv(membudget.ENV_VAR, "1k")
        assert EdgeStream(self._graph(), chunk=123).chunk == 123

    def test_passes_chunked_identical_any_budget(self, monkeypatch):
        from repro.streaming.stream import _EDGE_BYTES, EdgeStream

        g = self._graph()
        explicit = [
            tuple(a.copy() for a in chunk)
            for chunk in EdgeStream(g, chunk=7).passes_chunked()
        ]
        monkeypatch.setenv(membudget.ENV_VAR, str(7 * _EDGE_BYTES))
        budgeted = list(EdgeStream(g).passes_chunked())
        assert len(explicit) == len(budgeted)
        for c_exp, c_got in zip(explicit, budgeted):
            for a_exp, a_got in zip(c_exp, c_got):
                assert np.array_equal(a_exp, a_got)

    def test_passes_note_site(self):
        from repro.streaming.stream import EdgeStream

        for _chunk in EdgeStream(self._graph(), chunk=8).passes_chunked():
            pass
        assert "streaming.EdgeStream.passes_chunked" in membudget.accounting()


class TestEngineStatsSurface:
    def test_stats_exposes_budget_and_sites(self):
        from repro.service import QueryEngine

        g = erdos_renyi(40, 0.2, weights="uniform", rng=5)
        engine = QueryEngine(g)
        engine.query_many(np.array([[0, 1], [2, 3]]))
        stats = engine.stats()["membudget"]
        assert stats["budget_bytes"] == membudget.resolve_budget()
        assert "graphs.distances.iter_sssp_chunks" in stats["sites"]
