"""Tests for the Baswana–Sen baseline: the exact (2k-1) stretch guarantee,
the O(k n^{1+1/k}) size guarantee, and edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import baswana_sen, bs_size_bound, bs_stretch_bound
from repro.graphs import (
    complete_graph,
    cycle_graph,
    edge_stretch,
    erdos_renyi,
    is_spanning_subgraph,
    random_tree,
    same_components,
    verify_spanner,
)


@pytest.mark.parametrize("k", [2, 3, 4, 6])
def test_stretch_guarantee_er(er_weighted, k):
    res = baswana_sen(er_weighted, k, rng=100 + k)
    h = res.subgraph(er_weighted)
    verify_spanner(er_weighted, h, stretch_bound=bs_stretch_bound(k))


@pytest.mark.parametrize("k", [2, 3, 5])
def test_stretch_guarantee_other_families(ba_graph, grid, cliques, k):
    for g in (ba_graph, grid, cliques):
        res = baswana_sen(g, k, rng=k)
        verify_spanner(g, res.subgraph(g), stretch_bound=bs_stretch_bound(k))


def test_size_guarantee(er_weighted):
    # Expected size O(k n^{1+1/k}); generous constant, fixed seeds.
    for k in (2, 3, 4):
        res = baswana_sen(er_weighted, k, rng=k)
        assert res.num_edges <= bs_size_bound(er_weighted.n, k)


def test_iteration_count(er_weighted):
    for k in (2, 5, 8):
        res = baswana_sen(er_weighted, k, rng=0)
        assert res.iterations == k - 1
        assert len(res.stats) == k - 1


def test_k1_returns_everything(er_weighted):
    res = baswana_sen(er_weighted, 1, rng=0)
    assert res.num_edges == er_weighted.m
    assert edge_stretch(er_weighted, res.subgraph(er_weighted)).max_stretch == 1.0


def test_k0_rejected(er_weighted):
    with pytest.raises(ValueError):
        baswana_sen(er_weighted, 0)


def test_empty_graph():
    from repro.graphs import WeightedGraph

    g = WeightedGraph.from_edges(10, [])
    res = baswana_sen(g, 3, rng=0)
    assert res.num_edges == 0


def test_tree_input_keeps_tree():
    # A tree is its only spanner: nothing can be discarded without
    # disconnecting, so the result must contain every tree edge.
    g = random_tree(60, weights="uniform", rng=21)
    res = baswana_sen(g, 4, rng=21)
    assert res.num_edges == g.m


def test_preserves_components(disconnected):
    res = baswana_sen(disconnected, 3, rng=5)
    assert same_components(disconnected, res.subgraph(disconnected))


def test_complete_graph_sparsifies():
    g = complete_graph(80, weights="uniform", rng=22)
    res = baswana_sen(g, 3, rng=22)
    assert res.num_edges < g.m / 2  # K80 has 3160 edges; spanner far smaller
    verify_spanner(g, res.subgraph(g), stretch_bound=5.0)


def test_cycle_graph_k2():
    g = cycle_graph(50, weights="uniform", rng=23)
    res = baswana_sen(g, 2, rng=23)
    # A cycle is near-tree: at most one edge can be dropped, and only if
    # the stretch bound allows it.
    assert res.num_edges >= g.m - 1
    verify_spanner(g, res.subgraph(g), stretch_bound=3.0)


def test_result_is_subgraph_with_sorted_ids(er_weighted):
    res = baswana_sen(er_weighted, 3, rng=9)
    assert is_spanning_subgraph(er_weighted, res.subgraph(er_weighted))
    assert np.all(np.diff(res.edge_ids) > 0)  # sorted unique


def test_determinism_same_seed(er_weighted):
    a = baswana_sen(er_weighted, 4, rng=77)
    b = baswana_sen(er_weighted, 4, rng=77)
    assert np.array_equal(a.edge_ids, b.edge_ids)


def test_different_seeds_differ(er_weighted):
    a = baswana_sen(er_weighted, 4, rng=1)
    b = baswana_sen(er_weighted, 4, rng=2)
    # Overwhelmingly likely to differ on a 150-vertex graph.
    assert not np.array_equal(a.edge_ids, b.edge_ids)


def test_weighted_stretch_uses_weights():
    # Heavy edge must be spanned by light path: classic weighted case.
    from repro.graphs import WeightedGraph

    g = WeightedGraph.from_edges(
        4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 3, 100.0)]
    )
    res = baswana_sen(g, 2, rng=0)
    h = res.subgraph(g)
    rep = edge_stretch(g, h)
    assert rep.max_stretch <= 3.0
