"""Tier-1 smoke wiring for the scale (memory-footprint) benchmark.

Runs ``benchmarks/bench_scale.py`` in smoke mode on every test run: the
bench asserts the zero-copy serving invariants — sharded == serial,
mmap == eager loads, loaded == freshly built — *and* the worker
shared-memory gate (combined worker private bytes beyond the baseline
heap stay under ``SCALE_GATE`` x one graph footprint after the fixed
per-worker allowance), so a memory regression fails the suite before
anyone reads BENCH_scale.json.  Gate logic is also exercised as pure
functions on synthetic records.
"""

from __future__ import annotations

import os
import sys

import numpy as np

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

import pytest  # noqa: E402

from bench_scale import (  # noqa: E402
    SCALE_GATE,
    THROUGHPUT_GATE,
    budget_gate,
    format_table,
    graph_footprint,
    identity_gate,
    probe_pairs,
    run_scale_bench,
    scale_gate,
    throughput_gate,
)


def test_scale_bench_smoke():
    # Just the pool-protocol point: the budget-gated million cell builds a
    # real n=10^6 graph (~30s) and runs in the CI scale job instead.
    record = run_scale_bench(smoke=True, points=["scale"])
    ok, reasons = identity_gate(record)
    assert ok, reasons
    # The memory gate is not timing-based, so it holds at smoke scale too
    # (it skips itself with a reason where smaps_rollup is unavailable).
    ok, reasons = scale_gate(record)
    assert ok, reasons
    point = record["points"]["scale"]
    assert point["graph"]["endpoint_dtype"] == "int32"  # store downcast
    assert point["save"]["store_bytes"] > 0
    assert point["build"]["peak_rss_bytes"] > 0
    assert "scale bench" in format_table(record)


def test_scale_gate_logic():
    def rec(ratio, legacy=None):
        return {
            "points": {
                "p": {"memory": {"overhead_ratio": ratio, "legacy_overhead_ratio": legacy}}
            }
        }

    ok, reasons = scale_gate(rec(SCALE_GATE / 2, legacy=4.0))
    assert ok and "meets" in reasons[0] and "legacy" in reasons[0]
    ok, reasons = scale_gate(rec(SCALE_GATE * 2))
    assert not ok and "EXCEEDS" in reasons[0]
    ok, reasons = scale_gate(rec(None))  # non-Linux: no private-bytes accounting
    assert ok and "skipped" in reasons[0]


def test_identity_gate_logic():
    bad = {
        "points": {
            "p": {
                "serve": {"sharded_identical": True},
                "load": {"mmap_eager_identical": False, "loaded_matches_built": True},
            }
        }
    }
    ok, reasons = identity_gate(bad)
    assert not ok
    assert any("p.mmap_eager_identical: FAILED" in r for r in reasons)


def test_identity_gate_budget_point_checks():
    ok, reasons = identity_gate(
        {"points": {"million": {"identity": {"chunked_matches_unchunked": True}}}}
    )
    assert ok and "million.chunked_matches_unchunked: ok" in reasons
    ok, _ = identity_gate(
        {"points": {"million": {"identity": {"chunked_matches_unchunked": False}}}}
    )
    assert not ok
    # A point that recorded no checks at all is a failure, not a skip.
    ok, reasons = identity_gate({"points": {"empty": {}}})
    assert not ok and any("no identity checks" in r for r in reasons)


def test_budget_gate_logic():
    def rec(peak, budget):
        return {"points": {"million": {"build": {
            "peak_rss_bytes": peak, "budget_bytes": budget}}}}

    ok, reasons = budget_gate(rec(2**30, 4 * 2**30))
    assert ok and "under budget" in reasons[0]
    ok, reasons = budget_gate(rec(5 * 2**30, 4 * 2**30))
    assert not ok and "OVER BUDGET" in reasons[0]
    # Points without a declared budget are skipped entirely.
    ok, reasons = budget_gate({"points": {"scale": {"build": {"oracle_s": 1.0}}}})
    assert ok and "skipped" in reasons[0]


def test_throughput_gate_logic():
    def rec(ref, big, smoke=False):
        return {
            "smoke": smoke,
            "points": {
                "scale": {"build": {"edges_per_s": ref}},
                "million": {"build": {"edges_per_s": big}},
            },
        }

    ok, reasons = throughput_gate(rec(100_000, 60_000))
    assert ok and "ok" in reasons[0]
    ok, reasons = throughput_gate(rec(100_000, 100_000 * THROUGHPUT_GATE - 1))
    assert not ok and "BELOW GATE" in reasons[0]
    # Smoke runs record the ratio without enforcing it.
    ok, reasons = throughput_gate(rec(100_000, 1_000, smoke=True))
    assert ok and "not enforced in smoke" in reasons[0]
    # Missing either point: skip.
    ok, reasons = throughput_gate({"points": {}})
    assert ok and "skipped" in reasons[0]


def test_point_selector_rejects_unknown():
    with pytest.raises(ValueError, match="unknown point"):
        run_scale_bench(smoke=True, points=["nope"])


def test_probe_pairs_bounded_sources_and_deterministic():
    pairs = probe_pairs(10_000, 500, 8, 3)
    assert pairs.shape == (500, 2)
    assert np.unique(pairs[:, 0]).size <= 8  # bounded row volume
    assert np.array_equal(pairs, probe_pairs(10_000, 500, 8, 3))


def test_graph_footprint_matches_shared_segment():
    from repro.graphs import erdos_renyi
    from repro.service import SharedGraphBuffers

    g = erdos_renyi(120, 0.1, weights="uniform", rng=0)
    buf = SharedGraphBuffers.create(g)
    try:
        assert graph_footprint(g) == buf.nbytes
    finally:
        buf.destroy()
