"""Tests for the machine-level MPC implementations (Section 6 / 7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import general_tradeoff, mpc_rounds_bound, size_bound, stretch_bound
from repro.graphs import erdos_renyi, same_components, verify_spanner
from repro.mpc import MPCViolation
from repro.mpc_impl import apsp_mpc, spanner_mpc


@pytest.fixture(scope="module")
def g300():
    return erdos_renyi(300, 0.12, weights="uniform", rng=90)


class TestSpannerMPC:
    @pytest.mark.parametrize("k,t", [(4, 2), (8, 3)])
    def test_valid_spanner(self, g300, k, t):
        res = spanner_mpc(g300, k, t, rng=1)
        verify_spanner(g300, res.subgraph(g300), stretch_bound=stretch_bound(k, t))

    def test_size_bound(self, g300):
        res = spanner_mpc(g300, 4, 2, rng=2)
        assert res.num_edges <= size_bound(g300.n, 4, 2)

    def test_rounds_within_theorem_bound(self, g300):
        for gamma in (0.4, 0.6):
            res = spanner_mpc(g300, 8, 3, gamma=gamma, rng=3)
            assert res.extra["rounds"] <= mpc_rounds_bound(8, 3, gamma, constant=16.0)

    def test_rounds_grow_as_gamma_shrinks(self, g300):
        hi = spanner_mpc(g300, 8, 3, gamma=0.8, rng=4).extra["rounds"]
        lo = spanner_mpc(g300, 8, 3, gamma=0.3, rng=4).extra["rounds"]
        assert lo >= hi

    def test_memory_never_exceeded(self, g300):
        # Completing without MPCViolation *is* the memory certificate; also
        # sanity-check the recorded peak.
        res = spanner_mpc(g300, 4, 2, gamma=0.5, rng=5)
        mpc = res.extra["mpc"]
        assert mpc["peak_machine_load"] <= mpc["machine_memory"]

    def test_smaller_memory_constant_means_more_machines(self, g300):
        # The simulator provisions Θ(N/S) machines, so shrinking S must
        # grow the fleet (and can only grow the tree depth / rounds).
        big = spanner_mpc(g300, 4, 2, gamma=0.5, rng=6, memory_constant=64.0)
        small = spanner_mpc(g300, 4, 2, gamma=0.5, rng=6, memory_constant=8.0)
        assert small.extra["mpc"]["num_machines"] > big.extra["mpc"]["num_machines"]
        assert small.extra["mpc"]["machine_memory"] < big.extra["mpc"]["machine_memory"]
        assert small.extra["rounds"] >= big.extra["rounds"]

    def test_matches_logical_size_statistically(self, g300):
        mpc_sizes = [spanner_mpc(g300, 4, 2, rng=s).num_edges for s in range(3)]
        log_sizes = [general_tradeoff(g300, 4, 2, rng=s).num_edges for s in range(3)]
        a, b = np.mean(mpc_sizes), np.mean(log_sizes)
        assert abs(a - b) / max(a, b) < 0.3

    def test_iteration_count_matches_logical(self, g300):
        mpc = spanner_mpc(g300, 8, 2, rng=7)
        log = general_tradeoff(g300, 8, 2, rng=7)
        assert mpc.iterations == log.iterations

    def test_preserves_components(self, disconnected):
        res = spanner_mpc(disconnected, 4, 2, rng=8)
        assert same_components(disconnected, res.subgraph(disconnected))

    def test_k1(self, g300):
        res = spanner_mpc(g300, 1, rng=0)
        assert res.num_edges == g300.m
        assert res.extra["rounds"] == 0


class TestApspMPC:
    def test_stretch_within_bound(self, g300):
        res = apsp_mpc(g300, rng=10)
        from repro.graphs import apsp as exact_apsp

        d_exact = exact_apsp(g300)
        d_approx = res.all_pairs()
        iu = np.triu_indices(g300.n, k=1)
        base = d_exact[iu]
        mask = np.isfinite(base) & (base > 0)
        ratios = d_approx[iu][mask] / base[mask]
        assert ratios.max() <= res.guaranteed_stretch + 1e-9
        assert np.all(ratios >= 1 - 1e-9)  # spanner never shortens

    def test_rounds_include_collection(self, g300):
        res = apsp_mpc(g300, rng=11)
        assert res.rounds > res.collection_rounds > 0

    def test_spanner_near_linear_size(self, g300):
        # Section 7: k = log n gives size O(n log log n).
        res = apsp_mpc(g300, rng=12)
        import math

        assert res.spanner.m <= 8 * g300.n * max(math.log2(math.log2(g300.n)), 1)

    def test_distances_from_row(self, g300):
        res = apsp_mpc(g300, rng=13)
        row = res.distances_from(0)
        assert row[0] == 0.0
        full = res.all_pairs()
        assert np.allclose(row, full[0])

    def test_parameter_overrides(self, g300):
        res = apsp_mpc(g300, k=3, t=2, rng=14)
        assert res.k == 3 and res.t == 2


class TestNearLinearRegime:
    """Section 6's first paragraph: Θ(n) memory per machine, O(1) rounds
    per iteration (no 1/γ factor)."""

    def test_same_spanner_as_logical(self, g300):
        from repro.mpc_impl import spanner_mpc_nearlinear

        a = spanner_mpc_nearlinear(g300, 8, 3, rng=21)
        b = general_tradeoff(g300, 8, 3, rng=21)
        assert np.array_equal(a.edge_ids, b.edge_ids)

    def test_constant_rounds_per_iteration(self, g300):
        from repro.mpc_impl import spanner_mpc_nearlinear

        res = spanner_mpc_nearlinear(g300, 8, 3, rng=22)
        assert res.extra["rounds"] <= 4 * res.iterations + 4

    def test_fewer_rounds_than_sublinear(self, g300):
        from repro.mpc_impl import spanner_mpc_nearlinear

        near = spanner_mpc_nearlinear(g300, 8, 3, rng=23)
        sub = spanner_mpc(g300, 8, 3, gamma=0.5, rng=23)
        assert near.extra["rounds"] < sub.extra["rounds"]

    def test_layout_fits(self, g300):
        from repro.mpc_impl import spanner_mpc_nearlinear

        res = spanner_mpc_nearlinear(g300, 4, 2, rng=24)
        acct = res.extra["mpc_nearlinear"]
        assert acct["peak_machine_load"] <= acct["machine_memory_words"]
        assert acct["num_machines"] == g300.n

    def test_rejects_undersized_machines(self, g300):
        from repro.mpc_impl import spanner_mpc_nearlinear

        with pytest.raises(ValueError, match="does not fit"):
            spanner_mpc_nearlinear(g300, 4, 2, rng=25, memory_constant=0.001)
