"""Property-based tests (hypothesis) on core invariants.

These draw random scenarios from :mod:`tests.strategies` — the vocabulary
shared with the certification subsystem — and assert the *deterministic*
guarantees of each construction (subgraph property, stretch bound,
component preservation) plus data-structure invariants (dedup idempotence,
union-find/quotient consistency, routing deliverability).
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.congest import two_phase_schedule
from repro.core import (
    baswana_sen,
    cluster_merging,
    general_tradeoff,
    stretch_bound,
    two_phase_contraction,
)
from repro.graphs import (
    UnionFind,
    connected_components,
    dedupe_edges,
    edge_stretch,
    is_spanning_subgraph,
    quotient_edges,
    same_components,
)
from repro.graphs.specs import GraphSpec

from tests.strategies import graph_spec_strings, random_graph, seeds, spanner_ks

# ---------------------------------------------------------------------------
# data-structure properties
# ---------------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(0, 15), st.integers(0, 15), st.floats(0.1, 100.0)
        ).filter(lambda e: e[0] != e[1]),
        max_size=60,
    )
)
def test_dedupe_idempotent_and_minimal(edges):
    u = np.array([e[0] for e in edges], dtype=np.int64)
    v = np.array([e[1] for e in edges], dtype=np.int64)
    w = np.array([e[2] for e in edges])
    once = dedupe_edges(u, v, w)
    twice = dedupe_edges(*once)
    for a, b in zip(once, twice):
        assert np.array_equal(a, b)
    # minimal weight retained per pair
    best: dict[tuple[int, int], float] = {}
    for a, b, c in edges:
        key = (min(a, b), max(a, b))
        best[key] = min(best.get(key, math.inf), c)
    got = {(int(a), int(b)): float(c) for a, b, c in zip(*once)}
    assert got == {k: best[k] for k in got}
    assert set(got) == set(best)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_union_find_matches_components(data):
    g = data.draw(random_graph(max_n=25, max_m=60))
    uf = UnionFind(g.n)
    uf.union_edges(g.edges_u, g.edges_v)
    labels_uf = uf.labels(compact=True)
    labels_cc = connected_components(g)
    # same partition
    mapping: dict[int, int] = {}
    for a, b in zip(labels_uf.tolist(), labels_cc.tolist()):
        assert mapping.setdefault(a, b) == b
    assert uf.num_sets == len(set(labels_cc.tolist()))


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_quotient_provenance_valid(data):
    g = data.draw(random_graph(max_n=25, max_m=80))
    k = data.draw(st.integers(1, 5))
    labels = np.arange(g.n) % k
    q = quotient_edges(labels, g.edges_u, g.edges_v, g.edges_w)
    for a, b, w, r in zip(q.u, q.v, q.w, q.rep_edge_id):
        # provenance edge must realize the super-edge with that weight
        assert g.edges_w[r] == w
        la, lb = labels[g.edges_u[r]], labels[g.edges_v[r]]
        assert {int(la), int(lb)} == {int(a), int(b)}
        assert a != b


@given(
    st.integers(2, 30),
    st.integers(0, 100),
    st.integers(0, 2**31 - 1),
)
def test_lenzen_schedule_delivers(n, m, seed):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    inter, c1, c2 = two_phase_schedule(n, src, dst)
    assert inter.shape == src.shape
    if m:
        assert inter.min() >= 0 and inter.max() < n
    # congestion bounds: phase 1 load per pair <= ceil(max send / n)
    max_send = 0
    if m:
        _, counts = np.unique(src, return_counts=True)
        max_send = counts.max()
    assert c1 <= max(1, math.ceil(max_send / n)) if m else c1 == 0


# ---------------------------------------------------------------------------
# algorithm guarantees as properties
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_baswana_sen_guarantees(data):
    g = data.draw(random_graph())
    k = data.draw(st.integers(1, 5))
    seed = data.draw(st.integers(0, 1000))
    res = baswana_sen(g, k, rng=seed)
    h = res.subgraph(g)
    assert is_spanning_subgraph(g, h)
    assert same_components(g, h)
    rep = edge_stretch(g, h)
    assert rep.max_stretch <= 2 * k - 1 + 1e-9


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_general_tradeoff_guarantees(data):
    g = data.draw(random_graph())
    k = data.draw(spanner_ks)
    t = data.draw(st.integers(1, 4))
    seed = data.draw(st.integers(0, 1000))
    res = general_tradeoff(g, k, t, rng=seed)
    h = res.subgraph(g)
    assert is_spanning_subgraph(g, h)
    assert same_components(g, h)
    rep = edge_stretch(g, h)
    assert rep.max_stretch <= stretch_bound(k, t) + 1e-9


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_cluster_merging_guarantees(data):
    g = data.draw(random_graph())
    k = data.draw(spanner_ks)
    seed = data.draw(st.integers(0, 1000))
    res = cluster_merging(g, k, rng=seed)
    h = res.subgraph(g)
    assert is_spanning_subgraph(g, h)
    assert same_components(g, h)
    rep = edge_stretch(g, h)
    assert rep.max_stretch <= k ** math.log2(3) + 1e-9


@given(st.data())
@settings(max_examples=10, deadline=None)
def test_two_phase_guarantees(data):
    g = data.draw(random_graph())
    k = data.draw(st.integers(2, 9))
    seed = data.draw(st.integers(0, 1000))
    res = two_phase_contraction(g, k, rng=seed)
    h = res.subgraph(g)
    assert is_spanning_subgraph(g, h)
    assert same_components(g, h)
    rep = edge_stretch(g, h)
    assert rep.max_stretch <= 4 * k + 1e-9


# ---------------------------------------------------------------------------
# the shared spec vocabulary itself
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=25, deadline=None)
def test_spec_vocabulary_round_trips_and_builds(data):
    """Every scenario the shared strategy can draw parses canonically and
    builds — the precondition for the certifier speaking the same
    vocabulary as these tests."""
    text = data.draw(graph_spec_strings())
    seed = data.draw(seeds)
    spec = GraphSpec.parse(text)
    assert spec.format() == text
    g = spec.build(weights="uniform", seed=seed)
    assert g.n >= 1


@given(st.data())
@settings(max_examples=10, deadline=None)
def test_guarantees_hold_across_spec_families(data):
    """Baswana–Sen's deterministic guarantee on generator-family scenarios
    (not just direct edge scatters) — each counterexample is replayable as
    ``repro verify --algorithm baswana-sen --graph <spec>``."""
    text = data.draw(graph_spec_strings(max_n=32))
    k = data.draw(spanner_ks)
    seed = data.draw(st.integers(0, 1000))
    g = GraphSpec.parse(text).build(weights="uniform", seed=seed)
    res = baswana_sen(g, k, rng=seed)
    h = res.subgraph(g)
    assert is_spanning_subgraph(g, h)
    assert same_components(g, h)
    assert edge_stretch(g, h).max_stretch <= 2 * k - 1 + 1e-9
