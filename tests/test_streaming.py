"""Tests for the streaming substrate and streaming spanner."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import stretch_bound
from repro.graphs import erdos_renyi, same_components, verify_spanner
from repro.streaming import EdgeStream, streaming_spanner


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(200, 0.15, weights="uniform", rng=56)


class TestEdgeStream:
    def test_full_coverage_per_pass(self, g):
        s = EdgeStream(g, chunk=64, order_seed=1)
        seen = []
        for _, _, _, eid in s.passes():
            seen.extend(eid.tolist())
        assert sorted(seen) == list(range(g.m))
        s.end_pass(10)
        assert s.stats.passes == 1
        assert s.stats.edges_streamed == g.m

    def test_same_order_every_pass(self, g):
        s = EdgeStream(g, chunk=50, order_seed=2)
        a = [eid.tolist() for *_, eid in s.passes()]
        b = [eid.tolist() for *_, eid in s.passes()]
        assert a == b

    def test_peak_working_recorded(self, g):
        s = EdgeStream(g)
        for _ in s.passes():
            pass
        s.end_pass(5)
        for _ in s.passes():
            pass
        s.end_pass(99)
        assert s.stats.peak_working_records == 99
        assert s.stats.per_pass_working == [5, 99]

    def test_rejects_bad_chunk(self, g):
        with pytest.raises(ValueError):
            EdgeStream(g, chunk=0)


class TestStreamingSpanner:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_guarantees(self, g, k):
        res = streaming_spanner(g, k, rng=60 + k)
        h = res.subgraph(g)
        verify_spanner(g, h, stretch_bound=stretch_bound(k, 1))
        assert same_components(g, h)

    def test_pass_count_log_k(self, g):
        for k in (2, 4, 8, 16):
            res = streaming_spanner(g, k, rng=1)
            assert res.extra["stream"]["passes"] <= math.ceil(math.log2(k)) + 1

    def test_fewer_passes_than_bs_iterations(self, g):
        # The Section 2.4 comparison: log k passes vs [BS07]'s k.
        k = 16
        res = streaming_spanner(g, k, rng=2)
        assert res.extra["stream"]["passes"] < k - 1

    def test_k1_everything(self, g):
        res = streaming_spanner(g, 1, rng=0)
        assert res.num_edges == g.m

    def test_working_set_shrinks_over_passes(self, g):
        res = streaming_spanner(g, 16, rng=3)
        work = res.extra["stream"]["per_pass_working"]
        assert work[-1] <= work[0]

    def test_insensitive_to_stream_order(self, g):
        # Different arbitrary orders still give valid spanners (edge ids
        # may differ; the guarantee may not).
        for order_seed in (0, 1, 2):
            res = streaming_spanner(g, 4, rng=4, order_seed=order_seed)
            verify_spanner(g, res.subgraph(g), stretch_bound=stretch_bound(4, 1))

    def test_chunk_size_invariance(self, g):
        a = streaming_spanner(g, 4, rng=5, chunk=16)
        b = streaming_spanner(g, 4, rng=5, chunk=10**6)
        assert np.array_equal(a.edge_ids, b.edge_ids)

    def test_comparable_to_in_memory_t1(self, g):
        # Same algorithm family: sizes within a factor 2 of the in-memory
        # general t=1 implementation.
        from repro.core import general_tradeoff

        a = streaming_spanner(g, 8, rng=6).num_edges
        b = general_tradeoff(g, 8, 1, rng=6).num_edges
        assert 0.5 <= a / b <= 2.0
