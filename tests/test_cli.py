"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_graph, main
from repro.registry import algorithm_names


class TestBuildGraph:
    def test_er(self):
        g = build_graph("er:50:0.2", seed=1)
        assert g.n == 50

    def test_ba(self):
        g = build_graph("ba:40:2", seed=1)
        assert g.n == 40

    def test_grid(self):
        assert build_graph("grid:4:5").n == 20

    def test_geo(self):
        assert build_graph("geo:30:0.5", seed=2).n == 30

    def test_cliques(self):
        assert build_graph("cliques:4:5").n == 20

    def test_new_families_reachable(self):
        assert build_graph("torus:4:5").n == 20
        assert build_graph("complete:10").n == 10
        assert build_graph("tree:15", seed=1).n == 15

    def test_bad_family(self):
        with pytest.raises(SystemExit):
            build_graph("hypercube:4")

    def test_bad_args(self):
        with pytest.raises(SystemExit):
            build_graph("er:notanint:0.5")


class TestSpanner:
    def test_spanner_all_registered_algorithms(self, capsys):
        for algo in algorithm_names("spanner"):
            rc = main(
                ["spanner", "--graph", "er:80:0.2", "--algorithm", algo, "-k", "3", "--seed", "1"]
            )
            assert rc == 0
            out = capsys.readouterr().out
            assert "stretch: max" in out, algo

    def test_spanner_accepts_alias(self, capsys):
        rc = main(["spanner", "--graph", "er:60:0.2", "--algorithm", "spanner-mpc", "-k", "3"])
        assert rc == 0
        assert "simulated rounds:" in capsys.readouterr().out

    def test_spanner_unweighted(self, capsys):
        rc = main(["spanner", "--graph", "er:60:0.2", "--algorithm", "unweighted", "-k", "2"])
        assert rc == 0
        assert "spanner:" in capsys.readouterr().out

    def test_spanner_json(self, capsys):
        rc = main(
            ["spanner", "--graph", "grid:6:6", "--algorithm", "streaming", "-k", "4", "--json"]
        )
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["algorithm"] == "streaming"
        assert record["graph_n"] == 36
        assert record["max_stretch"] >= 1.0
        assert record["stream_passes"] >= 1

    def test_spanner_from_file_spec(self, capsys, tmp_path):
        from repro.graphs import erdos_renyi, write_edgelist

        path = tmp_path / "g.edges"
        write_edgelist(erdos_renyi(40, 0.3, weights="uniform", rng=0), path)
        rc = main(["spanner", "--graph", f"file:{path}", "--algorithm", "general", "-k", "3"])
        assert rc == 0
        assert "spanner:" in capsys.readouterr().out


class TestApsp:
    def test_apsp_mpc(self, capsys):
        rc = main(["apsp", "--graph", "er:60:0.2", "--model", "mpc"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rounds:" in out and "approximation" in out

    def test_apsp_cc(self, capsys):
        rc = main(["apsp", "--graph", "er:60:0.2", "--model", "cc", "--weights", "integer"])
        assert rc == 0
        assert "rounds:" in capsys.readouterr().out

    def test_apsp_json(self, capsys):
        rc = main(["apsp", "--graph", "er:60:0.2", "--model", "mpc", "--json"])
        assert rc == 0
        record = json.loads(capsys.readouterr().out)
        assert record["model"] == "mpc"
        assert record["rounds"] > record["collection_rounds"]
        assert record["max_approximation"] >= 1.0


class TestTradeoff:
    def test_tradeoff(self, capsys):
        rc = main(["tradeoff", "-k", "9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "t=1" in out and "k^" in out


class TestMpc:
    def test_mpc(self, capsys):
        rc = main(["mpc", "--graph", "er:80:0.15", "-k", "4", "-t", "2", "--gamma", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "machines:" in out and "simulated rounds:" in out


class TestList:
    def test_list_shows_everything(self, capsys):
        rc = main(["list"])
        assert rc == 0
        out = capsys.readouterr().out
        from repro.graphs import graph_family_names

        for name in algorithm_names():
            assert name in out
        for fam in graph_family_names():
            assert f"{fam}:" in out or f"  {fam}" in out
        assert "aliases:" in out

    def test_list_json(self, capsys):
        rc = main(["list", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert {a["name"] for a in payload["algorithms"]} == set(algorithm_names())
        assert {f["name"] for f in payload["graph_families"]} >= {"er", "file", "torus"}
        assert payload["aliases"]["spanner-mpc"] == "mpc"


class TestSweep:
    @pytest.fixture
    def plan_file(self, tmp_path):
        plan = {
            "name": "cli-test",
            "algorithms": ["general", "streaming"],
            "graphs": ["er:48:0.2"],
            "ks": [3],
            "seeds": [0, 1],
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        return path

    def test_sweep_runs_and_resumes(self, capsys, tmp_path, plan_file):
        out_dir = tmp_path / "results"
        rc = main(["sweep", "--plan", str(plan_file), "--out", str(out_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 trials (4 executed" in out
        assert (out_dir / "results.csv").exists()

        rc = main(["sweep", "--plan", str(plan_file), "--out", str(out_dir), "--json"])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["executed"] == 0 and summary["skipped"] == 4

    def test_sweep_dry_run(self, capsys, plan_file):
        rc = main(["sweep", "--plan", str(plan_file), "--dry-run"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "4 trials" in out and "general" in out

    def test_sweep_missing_plan(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load plan"):
            main(["sweep", "--plan", str(tmp_path / "nope.json")])

    def test_sweep_bad_plan(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"algorithms": ["nope"], "graphs": ["er:10:0.5"]}))
        with pytest.raises(SystemExit, match="bad plan"):
            main(["sweep", "--plan", str(path)])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestVerify:
    def test_verify_single_run(self, capsys):
        rc = main(
            ["verify", "--algorithm", "baswana-sen", "--graph", "er:48:0.2", "-k", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "certified" in out
        assert "stretch" in out and "size" in out

    def test_verify_json_and_out(self, capsys, tmp_path):
        path = tmp_path / "cert.json"
        rc = main(
            [
                "verify", "--algorithm", "streaming", "--graph", "er:48:0.2",
                "-k", "4", "--json", "--out", str(path),
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert any(c["name"] == "passes" for c in payload["checks"])
        assert json.loads(path.read_text()) == payload

    def test_verify_requires_algorithm_without_matrix(self):
        with pytest.raises(SystemExit, match="--algorithm"):
            main(["verify", "--graph", "er:16:0.3"])

    def test_verify_unknown_algorithm(self):
        with pytest.raises(SystemExit, match="unknown algorithm"):
            main(["verify", "--algorithm", "nope", "--graph", "er:16:0.3", "-k", "2"])

    def test_verify_matrix(self, capsys, tmp_path):
        out = tmp_path / "conf"
        rc = main(
            [
                "verify", "--matrix",
                "--algorithms", "baswana-sen,streaming",
                "--graphs", "er:40:0.2,grid:5:5",
                "--ks", "3", "--out", str(out),
            ]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "4/4 cells certified" in text
        assert (out / "matrix.json").exists()
        assert (out / "matrix.md").exists()

    def test_verify_matrix_json(self, capsys):
        rc = main(
            [
                "verify", "--matrix", "--json",
                "--algorithms", "baswana-sen",
                "--graphs", "er:32:0.2",
                "--ks", "2,3", "--seeds", "0,1",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["num_cells"] == 4

    def test_verify_spanner_without_k_exits_cleanly(self):
        with pytest.raises(SystemExit, match="requires k"):
            main(["verify", "--algorithm", "baswana-sen", "--graph", "er:16:0.3"])

    def test_verify_matrix_respects_singular_flags(self, capsys):
        rc = main(
            [
                "verify", "--matrix", "--json",
                "--algorithms", "baswana-sen",
                "--graph", "grid:4:4", "--seed", "3", "-k", "2",
                "--weights", "unit",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["num_cells"] == 1
        (cell,) = payload["cells"]
        assert cell["graph"] == "grid:4:4"
        assert cell["seed"] == 3 and cell["k"] == 2
        assert payload["plan"]["weights"] == ["unit"]

    def test_verify_matrix_bad_plan_exits_cleanly(self):
        with pytest.raises(SystemExit, match="bad matrix plan"):
            main(["verify", "--matrix", "--algorithms", "nope"])
        with pytest.raises(SystemExit, match="bad matrix plan"):
            main(["verify", "--matrix", "--graphs", "er:x:0.1"])

    def test_verify_out_accepts_directory(self, capsys, tmp_path):
        rc = main(
            [
                "verify", "--algorithm", "baswana-sen", "--graph", "er:24:0.2",
                "-k", "3", "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        saved = json.loads((tmp_path / "certificate.json").read_text())
        assert saved["ok"] is True

    def test_verify_matrix_recertifies_by_default(self, capsys, tmp_path):
        out = tmp_path / "conf"
        argv = [
            "verify", "--matrix", "--json", "--algorithms", "baswana-sen",
            "--graph", "er:24:0.2", "-k", "2", "--out", str(out),
        ]
        assert main(argv) == 0
        fresh = json.loads(capsys.readouterr().out)
        assert main(argv) == 0  # default: stale certificates are recomputed
        again = json.loads(capsys.readouterr().out)
        assert fresh["num_cells"] == again["num_cells"] == 1
        assert main(argv + ["--resume"]) == 0  # opt-in reuse for interruptions
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["ok"] is True


class TestFailedCheckOutput:
    """A failing bound check must read as a failure: the table marks the
    row ``FAIL`` (not the old ``XXX`` placeholder) and the process exits
    nonzero."""

    def test_fail_marker_and_nonzero_exit(self, capsys):
        from repro.registry import AlgorithmClaims

        from tests.test_verify import _drop_heaviest_edge, temporary_algorithm

        claims = AlgorithmClaims(
            stretch=lambda ctx: 2.0 * ctx.k - 1.0,
            size=lambda ctx: float(ctx.m),
            source="injected",
        )
        with temporary_algorithm("broken-cli-stretch", _drop_heaviest_edge, claims=claims):
            rc = main(
                [
                    "verify", "--algorithm", "broken-cli-stretch",
                    "--graph", "cycle:16", "-k", "2", "--weights", "unit",
                ]
            )
        out = capsys.readouterr().out
        assert rc == 1
        assert "[FAIL] stretch" in out
        assert "XXX" not in out

    def test_passing_rows_still_marked_ok(self, capsys):
        rc = main(
            ["verify", "--algorithm", "baswana-sen", "--graph", "er:48:0.2", "-k", "3"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "[ok  ]" in out and "FAIL" not in out


class TestJsonSafety:
    """CLI JSON must be spec-valid: non-finite floats serialize as null,
    never as the bare ``Infinity``/``NaN`` tokens json.dumps emits."""

    def test_json_safe_helper(self):
        import math

        from repro.cli import _json_safe

        out = _json_safe(
            {
                "inf": math.inf,
                "ninf": -math.inf,
                "nan": math.nan,
                "nested": [math.inf, {"deep": (1.5, math.nan)}],
                "fine": [0, 1.5, "inf", None, True],
            }
        )
        assert out["inf"] is None and out["ninf"] is None and out["nan"] is None
        assert out["nested"] == [None, {"deep": [1.5, None]}]
        assert out["fine"] == [0, 1.5, "inf", None, True]
        assert "Infinity" not in json.dumps(out)

    def test_verify_json_with_infinite_stretch_is_parseable(self, capsys):
        # Disconnecting spanners measure infinite stretch; the --json body
        # must still parse (measured -> null), where it used to emit the
        # invalid bare Infinity token.
        from repro.registry import AlgorithmClaims

        from tests.test_verify import _drop_half_edges, temporary_algorithm

        claims = AlgorithmClaims(
            stretch=lambda ctx: 100.0,
            size=lambda ctx: float(ctx.m),
            source="injected",
        )
        with temporary_algorithm("broken-cli-disconnect", _drop_half_edges, claims=claims):
            rc = main(
                [
                    "verify", "--algorithm", "broken-cli-disconnect",
                    "--graph", "cycle:12", "-k", "3", "--json",
                ]
            )
        raw = capsys.readouterr().out
        assert rc == 1
        assert "Infinity" not in raw
        payload = json.loads(raw)  # would raise on bare Infinity
        assert payload["ok"] is False
        stretch = next(c for c in payload["checks"] if c["name"] == "stretch")
        assert stretch["measured"] is None
