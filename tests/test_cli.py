"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_graph, main


class TestBuildGraph:
    def test_er(self):
        g = build_graph("er:50:0.2", seed=1)
        assert g.n == 50

    def test_ba(self):
        g = build_graph("ba:40:2", seed=1)
        assert g.n == 40

    def test_grid(self):
        assert build_graph("grid:4:5").n == 20

    def test_geo(self):
        assert build_graph("geo:30:0.5", seed=2).n == 30

    def test_cliques(self):
        assert build_graph("cliques:4:5").n == 20

    def test_bad_family(self):
        with pytest.raises(SystemExit):
            build_graph("hypercube:4")

    def test_bad_args(self):
        with pytest.raises(SystemExit):
            build_graph("er:notanint:0.5")


class TestCommands:
    def test_spanner_all_algorithms(self, capsys):
        for algo in ("baswana-sen", "cluster-merging", "two-phase", "general", "streaming"):
            rc = main(
                ["spanner", "--graph", "er:80:0.2", "--algorithm", algo, "-k", "3", "--seed", "1"]
            )
            assert rc == 0
            out = capsys.readouterr().out
            assert "stretch: max" in out

    def test_spanner_unweighted(self, capsys):
        rc = main(["spanner", "--graph", "er:60:0.2", "--algorithm", "unweighted", "-k", "2"])
        assert rc == 0
        assert "spanner:" in capsys.readouterr().out

    def test_apsp_mpc(self, capsys):
        rc = main(["apsp", "--graph", "er:60:0.2", "--model", "mpc"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "rounds:" in out and "approximation" in out

    def test_apsp_cc(self, capsys):
        rc = main(["apsp", "--graph", "er:60:0.2", "--model", "cc", "--weights", "integer"])
        assert rc == 0
        assert "rounds:" in capsys.readouterr().out

    def test_tradeoff(self, capsys):
        rc = main(["tradeoff", "-k", "9"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "t=1" in out and "k^" in out

    def test_mpc(self, capsys):
        rc = main(["mpc", "--graph", "er:80:0.15", "-k", "4", "-t", "2", "--gamma", "0.5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "machines:" in out and "simulated rounds:" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
