"""Tier-1 smoke wiring for the service (query-throughput) benchmark.

Runs ``benchmarks/bench_service.py`` in smoke mode on every test run: the
bench asserts the subsystem's bit-identity invariants (sharded == serial,
loaded-from-disk == freshly built) at tiny scale, so a serialization or
sharding regression fails the suite before anyone reads timing numbers.

The >= 5x thrash gate itself is timing-dependent and full-scale only
(``scripts/bench_snapshot.py --suite service``); here it is exercised as
pure logic on synthetic records, including the explicit smoke skip.
"""

from __future__ import annotations

import os
import sys

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

from bench_service import (  # noqa: E402
    THRASH_GATE,
    format_table,
    identity_gate,
    run_service_bench,
    thrash_gate,
    zipf_sources,
)


def test_service_bench_smoke():
    record = run_service_bench(smoke=True)
    ok, reasons = identity_gate(record)
    assert ok, reasons
    assert record["thrash"]["lru_rows"] <= record["thrash"]["clear_evict_rows"]
    assert record["batched"]["matches_single"]
    # Smoke-scale timings never gate; the skip reason is explicit.
    ok, reason = thrash_gate(record)
    assert ok and "skipped" in reason
    assert "service bench" in format_table(record)


def test_thrash_gate_logic():
    passing = {"smoke": False, "thrash": {"speedup": THRASH_GATE + 1}}
    ok, reason = thrash_gate(passing)
    assert ok and "meets" in reason
    failing = {"smoke": False, "thrash": {"speedup": THRASH_GATE - 1}}
    ok, reason = thrash_gate(failing)
    assert not ok and "below" in reason


def test_identity_gate_logic():
    bad = {
        "equivalence": {
            "sharded_identical": True,
            "oracle_roundtrip_identical": False,
            "sketch_roundtrip_identical": True,
        }
    }
    ok, reasons = identity_gate(bad)
    assert not ok
    assert any("oracle_roundtrip_identical: FAILED" in r for r in reasons)


def test_zipf_sources_shape_and_mix():
    import numpy as np

    src = zipf_sources(100, 5000, 1.05, 0, hot_ranks=10, uniform_mix=0.0)
    assert src.shape == (5000,)
    assert np.unique(src).size <= 10  # folded onto the hot window
    mixed = zipf_sources(100, 5000, 1.05, 0, hot_ranks=10, uniform_mix=0.5)
    assert np.unique(mixed).size > 10  # cold traffic escapes the window
    again = zipf_sources(100, 5000, 1.05, 0, hot_ranks=10, uniform_mix=0.5)
    assert np.array_equal(mixed, again)  # seed-deterministic
