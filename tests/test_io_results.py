"""Tests for graph IO and the SpannerResult record."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import baswana_sen, general_tradeoff
from repro.core.results import IterationStats, SpannerResult
from repro.graphs import WeightedGraph, erdos_renyi
from repro.graphs.io import read_edgelist, write_edgelist


class TestEdgelistIO:
    def test_roundtrip(self, tmp_path, er_weighted):
        p = tmp_path / "g.edges"
        write_edgelist(er_weighted, p)
        g2 = read_edgelist(p)
        assert g2 == er_weighted

    def test_roundtrip_preserves_isolated_vertices(self, tmp_path):
        g = WeightedGraph.from_edges(10, [(0, 1, 2.5)])
        p = tmp_path / "g.edges"
        write_edgelist(g, p)
        assert read_edgelist(p).n == 10

    def test_reads_headerless_unweighted(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("0 1\n1 2\n")
        g = read_edgelist(p)
        assert g.n == 3 and g.m == 2 and g.is_unweighted

    def test_rejects_malformed_line(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("0 1 2.0 extra\n")
        with pytest.raises(ValueError, match="expected"):
            read_edgelist(p)

    def test_rejects_non_numeric(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("a b\n")
        with pytest.raises(ValueError, match="non-numeric"):
            read_edgelist(p)

    def test_rejects_bad_header(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("# n=lots\n0 1\n")
        with pytest.raises(ValueError, match="bad header"):
            read_edgelist(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "g.edges"
        p.write_text("")
        g = read_edgelist(p)
        assert g.n == 0 and g.m == 0

    def test_exact_weights_roundtrip(self, tmp_path):
        # repr-based writing keeps float64 weights bit-exact.
        g = erdos_renyi(40, 0.3, weights="exponential", rng=3)
        p = tmp_path / "g.edges"
        write_edgelist(g, p)
        g2 = read_edgelist(p)
        assert np.array_equal(g.edges_w, g2.edges_w)


class TestSpannerResult:
    @pytest.fixture(scope="class")
    def res(self):
        g = erdos_renyi(120, 0.2, weights="uniform", rng=4)
        return g, general_tradeoff(g, 8, 2, rng=4)

    def test_num_edges(self, res):
        g, r = res
        assert r.num_edges == r.edge_ids.size

    def test_epochs_executed(self, res):
        _, r = res
        assert r.epochs_executed() == len({s.epoch for s in r.stats})

    def test_cluster_trajectory_shape(self, res):
        _, r = res
        traj = r.cluster_trajectory()
        assert len(traj) == len(r.stats)
        assert all(len(t) == 3 for t in traj)

    def test_subgraph_matches_ids(self, res):
        g, r = res
        h = r.subgraph(g)
        assert h.m == r.num_edges

    def test_stats_fields(self, res):
        _, r = res
        for s in r.stats:
            assert isinstance(s, IterationStats)
            assert s.num_sampled <= s.num_clusters
            assert 0.0 <= s.sampling_probability <= 1.0

    def test_empty_result(self):
        r = SpannerResult(
            edge_ids=np.zeros(0, dtype=np.int64),
            algorithm="x",
            k=2,
            t=1,
            iterations=0,
        )
        assert r.num_edges == 0
        assert r.epochs_executed() == 0
