"""Shared-memory lifecycle tests for the sharded query engine.

The zero-copy sharding refactor attaches every shard worker to one named
``/dev/shm`` segment (:class:`repro.service.shm.SharedGraphBuffers`).
The contract pinned here: :meth:`QueryEngine.close` — and interpreter
exit, via the atexit hook — unlinks every segment the engine created; no
segment leaks across repeated open/close cycles, across the exception
path where a worker dies mid-solve, or across an unclean exit that never
called ``close()``; and none of it produces resource-tracker noise on
stderr.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.distances import SpannerDistanceOracle
from repro.graphs import erdos_renyi
from repro.service import QueryEngine, SharedGraphBuffers
from repro.service.shm import shm_segments


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(150, 0.08, weights="uniform", rng=5)


@pytest.fixture(scope="module")
def pairs(g):
    return np.random.default_rng(3).integers(0, g.n, size=(300, 2))


class TestSharedGraphBuffers:
    def test_attach_graph_is_zero_copy(self, g):
        buf = SharedGraphBuffers.create(g)
        try:
            peer = SharedGraphBuffers.attach(buf.descriptor())
            h = peer.graph()
            assert h == g
            # The rebuilt graph's scipy CSR is the shared triplet, not a
            # private rebuild — this is where O(shards x graph) used to go.
            mat = h.to_scipy()
            views = peer._views()
            assert np.shares_memory(mat.data, views["csr_data"])
            assert np.shares_memory(mat.indices, views["csr_indices"])
            assert np.shares_memory(mat.indptr, views["csr_indptr"])
            assert np.shares_memory(h.edges_u, views["u"])
            peer.close()
        finally:
            buf.destroy()
        assert buf.name not in shm_segments()

    def test_nbytes_counts_payload(self, g):
        buf = SharedGraphBuffers.create(g)
        try:
            mat = g.to_scipy()
            expected = sum(
                a.nbytes
                for a in (
                    g.edges_u, g.edges_v, g.edges_w,
                    mat.data, mat.indices, mat.indptr,
                )
            )
            assert buf.nbytes == expected
        finally:
            buf.destroy()

    def test_destroy_idempotent(self, g):
        buf = SharedGraphBuffers.create(g)
        buf.destroy()
        buf.destroy()
        assert buf.name not in shm_segments()

    def test_edgeless_graph_supported(self):
        from repro.graphs import WeightedGraph

        empty = WeightedGraph.from_edges(7, [])
        buf = SharedGraphBuffers.create(empty)
        try:
            assert SharedGraphBuffers.attach(buf.descriptor()).graph() == empty
        finally:
            buf.destroy()


class TestEngineLifecycle:
    def test_repeated_open_close_cycles_leak_nothing(self, g, pairs):
        before = shm_segments()
        expected = None
        for _ in range(3):
            with QueryEngine(SpannerDistanceOracle(g, k=4, t=2, rng=0), shards=2) as e:
                got = e.query_many(pairs)
                if expected is None:
                    expected = got
                assert np.array_equal(got, expected)
            assert shm_segments() == before
        assert shm_segments() == before

    def test_close_idempotent_and_serial_afterwards(self, g, pairs):
        e = QueryEngine(g, shards=2)
        sharded = e.query_many(pairs)
        e.close()
        e.close()
        # unlink removes the name; this process's mapping stays valid, so
        # the engine keeps answering (serially, and bit-identically).
        assert np.array_equal(e.query_many(pairs), sharded)

    def test_worker_death_mid_solve_still_unlinks(self, g, pairs):
        before = shm_segments()
        e = QueryEngine(g, shards=2)
        e.query_many(pairs[:50])
        assert len(shm_segments()) == len(before) + 1
        e._pool.submit(os._exit, 3)
        with pytest.raises(BrokenProcessPool):
            # Retry loop: the pool may break on the probe task or on the
            # first real submit after the worker dies.
            for seed in range(10):
                fresh = np.random.default_rng(seed).integers(0, g.n, size=(80, 2))
                e.query_many(fresh)
        e.close()
        assert shm_segments() == before
        # And a fresh engine comes back with a new pool + segment.
        expected = QueryEngine(g).query_many(pairs)  # serial: no segment
        e2 = QueryEngine(g, shards=2)
        try:
            assert np.array_equal(e2.query_many(pairs), expected)
        finally:
            e2.close()
        assert shm_segments() == before

    def test_worker_memstats_one_snapshot_per_worker(self, g, pairs):
        with QueryEngine(g, shards=2) as e:
            e.query_many(pairs)
            stats = e.worker_memstats()
            assert 1 <= len(stats) <= 2
            assert all(s["pid"] != os.getpid() for s in stats)
            assert all(s["peak_rss_bytes"] > 0 for s in stats)
        assert QueryEngine(g).worker_memstats() == []  # serial: no pool


class TestInterpreterExit:
    def test_exit_without_close_unlinks_and_stays_quiet(self, tmp_path):
        """A process that never calls close() must still leave /dev/shm
        clean (atexit) and emit no resource-tracker warnings."""
        script = textwrap.dedent(
            """
            import numpy as np
            from repro.graphs import erdos_renyi
            from repro.service import QueryEngine
            from repro.service.shm import shm_segments

            g = erdos_renyi(120, 0.1, weights="uniform", rng=0)
            engine = QueryEngine(g, shards=2)
            pairs = np.random.default_rng(0).integers(0, g.n, size=(60, 2))
            engine.query_many(pairs)
            print("LIVE", len(shm_segments()))
            # no close(): atexit owns the cleanup
            """
        )
        before = shm_segments()
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "LIVE 1" in proc.stdout
        assert shm_segments() == before
        for noise in ("resource_tracker", "leaked", "Traceback"):
            assert noise not in proc.stderr, proc.stderr
