"""Unit tests for the shared growth-iteration engine (repro.core.engine).

These tests pin down the Baswana–Sen iteration semantics that all four
algorithms share: simultaneous processing, the strictly-closer rule, the
invariant that alive edges always join distinct live clusters (Lemmas 3.2 /
4.7 / 5.6), and the behaviour at the probability extremes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EdgeSet, phase2_edges, run_growth_iterations
from repro.graphs import WeightedGraph, erdos_renyi


def _edges_from_graph(g: WeightedGraph) -> EdgeSet:
    return EdgeSet.from_arrays(g.n, g.edges_u, g.edges_v, g.edges_w)


def _check_invariant(edges: EdgeSet, labels: np.ndarray) -> None:
    """Every alive edge joins two distinct live clusters."""
    eu, ev, _, _ = edges.alive_view()
    assert np.all(labels[eu] >= 0)
    assert np.all(labels[ev] >= 0)
    assert np.all(labels[eu] != labels[ev])


class TestEdgeSet:
    def test_alive_view_shrinks(self, er_weighted):
        es = _edges_from_graph(er_weighted)
        es.kill(np.arange(10))
        assert es.num_alive == er_weighted.m - 10
        assert es.alive_view()[0].size == er_weighted.m - 10

    def test_kill_idempotent_and_cached_count(self, er_weighted):
        es = _edges_from_graph(er_weighted)
        es.kill(np.array([3, 3, 5]))
        assert es.num_alive == er_weighted.m - 2
        es.kill(np.array([3, 5]))  # already dead: count unchanged
        assert es.num_alive == er_weighted.m - 2
        assert es.num_alive == int(es.alive.sum())
        es.kill_all()
        assert es.num_alive == 0 and not es.alive.any()

    def test_refresh_after_direct_write(self, er_weighted):
        es = _edges_from_graph(er_weighted)
        es.alive[:7] = False
        es.refresh_alive_count()
        assert es.num_alive == er_weighted.m - 7

    def test_default_eids_positional(self, small_weighted):
        es = _edges_from_graph(small_weighted)
        assert es.eid.tolist() == list(range(small_weighted.m))


class TestProbabilityExtremes:
    def test_p_one_everything_stays_clustered(self, er_weighted):
        es = _edges_from_graph(er_weighted)
        out = run_growth_iterations(
            es, iterations=1, probability=1.0, rng=np.random.default_rng(0)
        )
        # All singleton clusters sampled: nobody processes, nothing added.
        assert np.array_equal(out.labels, np.arange(er_weighted.n))
        assert out.spanner_eids.size == 0
        assert es.num_alive == er_weighted.m

    def test_p_zero_one_iteration_adds_min_per_neighbor(self):
        # Star: center 0, leaves 1..4. With p=0 everybody retires and each
        # vertex adds the min edge to each neighboring singleton cluster =
        # every star edge.
        g = WeightedGraph.from_edges(5, [(0, i, float(i)) for i in range(1, 5)])
        es = _edges_from_graph(g)
        out = run_growth_iterations(
            es, iterations=1, probability=0.0, rng=np.random.default_rng(0)
        )
        assert np.all(out.labels == -1)
        assert set(out.spanner_eids.tolist()) == set(range(4))
        assert es.num_alive == 0

    def test_p_zero_triangle_keeps_all(self):
        # In a triangle of singletons with p=0, every vertex connects to
        # both neighbor clusters: the whole triangle enters the spanner.
        g = WeightedGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)])
        es = _edges_from_graph(g)
        out = run_growth_iterations(
            es, iterations=1, probability=0.0, rng=np.random.default_rng(0)
        )
        assert out.spanner_eids.size == 3

    def test_bad_probability_raises(self, small_weighted):
        es = _edges_from_graph(small_weighted)
        with pytest.raises(ValueError):
            run_growth_iterations(
                es, iterations=1, probability=1.5, rng=np.random.default_rng(0)
            )


class TestJoinSemantics:
    def test_joins_closest_sampled_cluster(self):
        # Vertex 2 adjacent to clusters {0} (w=5) and {1} (w=1); force both
        # sampled via p=1 after seeding... instead drive sampling manually:
        # use start_labels and p chosen so rng samples both 0 and 1.
        g = WeightedGraph.from_edges(3, [(0, 2, 5.0), (1, 2, 1.0)])
        es = _edges_from_graph(g)
        # With p=0.9 and seed 1 both clusters 0,1 and 2 likely sampled; use
        # a deterministic trick: probability callable that returns 1.0 means
        # nobody processes. We want 0 and 1 sampled but not 2 — craft rng.
        class FakeRng:
            def __init__(self):
                self.calls = 0

            def random(self, size):
                # clusters enumerated as sorted unique labels [0, 1, 2]
                return np.array([0.0, 0.0, 0.99])[:size]

        out = run_growth_iterations(
            es, iterations=1, probability=0.5, rng=FakeRng()  # type: ignore[arg-type]
        )
        # Vertex 2 joins cluster 1 (closer), adding edge (1,2).
        assert out.labels[2] == 1
        eid_12 = 1 if g.edges_w[1] == 1.0 else 0
        assert eid_12 in out.spanner_eids.tolist()

    def test_strictly_closer_rule(self):
        # v=3 adjacent to sampled cluster {0} with w=2, unsampled {1} w=1,
        # unsampled {2} w=3.  v joins 0; must also connect to {1} (strictly
        # closer) but NOT to {2}.  Vertex 2 is given its own cheap edge to
        # the sampled cluster so it joins rather than retiring (a retiring
        # vertex would add (2,3) from its own side).
        g = WeightedGraph.from_edges(
            4, [(0, 3, 2.0), (1, 3, 1.0), (2, 3, 3.0), (0, 2, 0.5)]
        )
        es = _edges_from_graph(g)

        class FakeRng:
            def random(self, size):
                # clusters sorted: [0,1,2,3]; only 0 sampled
                return np.array([0.0, 0.99, 0.99, 0.99])[:size]

        out = run_growth_iterations(es, iterations=1, probability=0.5, rng=FakeRng())  # type: ignore[arg-type]
        idx = g.edge_index_map()
        added = set(out.spanner_eids.tolist())
        assert idx[(0, 3)] in added
        assert idx[(1, 3)] in added  # strictly closer than the join edge
        assert idx[(0, 2)] in added  # vertex 2's join edge
        assert idx[(2, 3)] not in added  # not closer from either side
        # 2 and 3 both joined cluster 0, so (2,3) died as intra-cluster.
        assert out.labels[2] == 0 and out.labels[3] == 0
        assert not es.alive[idx[(2, 3)]]

    def test_invariant_after_each_iteration(self, er_weighted):
        rng = np.random.default_rng(5)
        es = _edges_from_graph(er_weighted)
        labels = None
        radius = None
        p = er_weighted.n ** (-1.0 / 4)
        for _ in range(3):
            out = run_growth_iterations(
                es,
                iterations=1,
                probability=p,
                rng=rng,
                start_labels=labels,
                node_radius=radius,
            )
            labels = out.labels
            radius = out.radius_bound
            _check_invariant(es, labels)

    def test_multi_iteration_equals_chained_single(self, er_weighted):
        # Same rng stream => identical outcomes whether we ask for 3
        # iterations at once or chain 3 single-iteration calls.
        p = er_weighted.n ** (-1.0 / 4)
        es1 = _edges_from_graph(er_weighted)
        out1 = run_growth_iterations(
            es1, iterations=3, probability=p, rng=np.random.default_rng(9)
        )
        es2 = _edges_from_graph(er_weighted)
        rng = np.random.default_rng(9)
        labels = None
        for _ in range(3):
            out2 = run_growth_iterations(
                es2, iterations=1, probability=p, rng=rng, start_labels=labels
            )
            labels = out2.labels
        assert np.array_equal(out1.labels, labels)
        assert np.array_equal(es1.alive, es2.alive)

    def test_stats_recorded(self, er_weighted):
        es = _edges_from_graph(er_weighted)
        out = run_growth_iterations(
            es, iterations=2, probability=0.5, rng=np.random.default_rng(3), epoch=7
        )
        assert len(out.stats) == 2
        assert all(s.epoch == 7 for s in out.stats)
        assert out.stats[0].num_clusters == er_weighted.n

    def test_radius_bound_monotone(self, er_weighted):
        es = _edges_from_graph(er_weighted)
        out = run_growth_iterations(
            es, iterations=4, probability=0.3, rng=np.random.default_rng(4)
        )
        bounds = [s.max_radius_bound for s in out.stats]
        assert all(b2 >= b1 for b1, b2 in zip(bounds, bounds[1:]))


class TestPhase2:
    def test_groups_min_edge(self):
        # Two clusters {0,1} and {2,3}; three inter edges; each endpoint
        # adds the min edge toward the other cluster.
        g = WeightedGraph.from_edges(
            4, [(0, 2, 3.0), (0, 3, 1.0), (1, 2, 2.0)]
        )
        es = _edges_from_graph(g)
        labels = np.array([0, 0, 2, 2])
        got = set(phase2_edges(es, labels).tolist())
        idx = g.edge_index_map()
        # vertex 0 -> cluster 2: min is (0,3); vertex 1 -> (1,2);
        # vertex 2 -> cluster 0: min is (1,2); vertex 3 -> (0,3).
        assert got == {idx[(0, 3)], idx[(1, 2)]}
        assert es.num_alive == 0

    def test_rejects_unclustered_endpoint(self, small_weighted):
        es = _edges_from_graph(small_weighted)
        labels = np.full(small_weighted.n, -1, dtype=np.int64)
        with pytest.raises(AssertionError, match="Lemma 5.6"):
            phase2_edges(es, labels)

    def test_empty_ok(self, small_weighted):
        es = _edges_from_graph(small_weighted)
        es.kill_all()
        out = phase2_edges(es, np.zeros(small_weighted.n, dtype=np.int64))
        assert out.size == 0
