"""Tests for the typed instrumentation records over ``SpannerResult.extra``."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import MPCRunStats, RoundStats, SpannerResult, StreamStats
from repro.graphs import erdos_renyi


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(80, 0.15, weights="uniform", rng=2)


def _bare_result(**extra) -> SpannerResult:
    return SpannerResult(
        edge_ids=np.arange(5, dtype=np.int64),
        algorithm="test",
        k=4,
        t=2,
        iterations=3,
        extra=extra,
    )


class TestJsonRoundTrip:
    def test_mpc(self):
        stats = MPCRunStats(
            rounds=7, primitive_calls=3, total_messages=100,
            peak_machine_load=50, num_machines=4, machine_memory=256, gamma=0.5,
        )
        data = stats.to_json()
        json.dumps(data)  # must be JSON-serializable as-is
        assert MPCRunStats.from_json(data) == stats

    def test_stream(self):
        stats = StreamStats(passes=3, peak_working_records=11,
                            per_pass_working=[4, 11, 2], edges_streamed=300)
        assert StreamStats.from_json(stats.to_json()) == stats

    def test_rounds(self):
        stats = RoundStats(rounds=10, collection_rounds=4)
        assert RoundStats.from_json(stats.to_json()) == stats
        assert stats.total == 14

    def test_unknown_keys_ignored(self):
        stats = MPCRunStats.from_json({"rounds": 5, "future_field": "x"})
        assert stats.rounds == 5


class TestAccessors:
    def test_absent_is_none(self):
        res = _bare_result()
        assert res.mpc_stats is None
        assert res.stream_stats is None
        assert res.round_stats is None

    def test_setter_stores_plain_dict(self):
        res = _bare_result()
        res.mpc_stats = MPCRunStats(rounds=9, num_machines=2)
        assert isinstance(res.extra["mpc"], dict)  # legacy consumers see a dict
        assert res.extra["mpc"]["rounds"] == 9
        assert res.mpc_stats.num_machines == 2

    def test_round_setter_stores_scalar(self):
        res = _bare_result()
        res.round_stats = RoundStats(rounds=17)
        assert res.extra["rounds"] == 17  # legacy key shape preserved
        assert res.round_stats.rounds == 17

    def test_round_collection_round_trips(self):
        res = _bare_result()
        res.round_stats = RoundStats(rounds=10, collection_rounds=3)
        assert res.extra["rounds"] == 10
        assert res.round_stats.collection_rounds == 3
        assert res.round_stats.total == 13


class TestProducersExposeTyped:
    """Every model's result is readable through both the typed accessors
    and the legacy ``extra`` dict keys."""

    def test_spanner_mpc(self, g):
        from repro.mpc_impl import spanner_mpc

        res = spanner_mpc(g, 4, 2, rng=0)
        assert res.mpc_stats.rounds == res.extra["mpc"]["rounds"]
        assert res.round_stats.rounds == res.extra["rounds"]
        assert res.mpc_stats.num_machines == res.extra["mpc"]["num_machines"]
        assert res.mpc_stats.rounds > 0

    def test_streaming(self, g):
        from repro.streaming import streaming_spanner

        res = streaming_spanner(g, 4, rng=0)
        assert res.stream_stats.passes == res.extra["stream"]["passes"]
        assert res.stream_stats.peak_working_records >= 0
        assert len(res.stream_stats.per_pass_working) == res.stream_stats.passes

    def test_streaming_trivial_k(self, g):
        from repro.streaming import streaming_spanner

        res = streaming_spanner(g, 1, rng=0)
        assert res.stream_stats.passes == 1

    def test_spanner_cc(self, g):
        from repro.cc_impl import spanner_cc

        res = spanner_cc(g, 4, 2, rng=0)
        assert res.round_stats.rounds == res.extra["rounds"] > 0

    def test_nearlinear(self, g):
        from repro.mpc_impl import spanner_mpc_nearlinear

        res = spanner_mpc_nearlinear(g, 4, 2, rng=0)
        assert res.round_stats.rounds == res.extra["rounds"] > 0


class TestToRecord:
    def test_base_fields(self, g):
        from repro.core import general_tradeoff

        res = general_tradeoff(g, 4, 2, rng=0)
        record = res.to_record()
        assert record["algorithm"] == res.algorithm
        assert record["num_edges"] == res.num_edges
        assert record["iterations"] == res.iterations
        assert record["epochs"] == res.epochs_executed()

    def test_nested_extras_flattened_one_level(self, g):
        from repro.mpc_impl import spanner_mpc

        record = spanner_mpc(g, 4, 2, rng=0).to_record()
        assert record["mpc_rounds"] == record["rounds"]
        assert "mpc_peak_machine_load" in record

    def test_non_scalar_extras_dropped(self):
        res = _bare_result(
            rounds=3,
            forest=object(),
            stream={"passes": 2, "per_pass_working": [1, 2]},
        )
        record = res.to_record()
        assert record["rounds"] == 3
        assert record["stream_passes"] == 2
        assert "forest" not in record
        assert "stream_per_pass_working" not in record

    def test_record_is_json_serializable(self, g):
        from repro.streaming import streaming_spanner

        json.dumps(streaming_spanner(g, 4, rng=0).to_record())
