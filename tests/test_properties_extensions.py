"""Property-based tests for the extension modules and the engine invariant."""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import EdgeSet, run_growth_iterations, stretch_bound
from repro.distances import DistanceSketch
from repro.graphs import (
    apsp,
    edge_stretch,
    is_spanning_subgraph,
    quantize_weights,
    same_components,
)
from repro.streaming import streaming_spanner

from tests.strategies import random_graph, spanner_ks  # the shared vocabulary


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_engine_invariant_alive_edges_inter_cluster(data):
    """Lemma 5.6 as a fuzzed invariant: after any number of iterations at
    any probability, alive edges join two distinct live clusters."""
    g = data.draw(random_graph(max_n=30, max_m=120))
    p = data.draw(st.floats(0.0, 1.0))
    iters = data.draw(st.integers(1, 4))
    seed = data.draw(st.integers(0, 10**6))
    es = EdgeSet.from_arrays(g.n, g.edges_u, g.edges_v, g.edges_w)
    out = run_growth_iterations(
        es, iterations=iters, probability=p, rng=np.random.default_rng(seed)
    )
    eu, ev, _, _ = es.alive_view()
    labels = out.labels
    assert np.all(labels[eu] >= 0)
    assert np.all(labels[ev] >= 0)
    assert np.all(labels[eu] != labels[ev])


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_streaming_spanner_guarantees(data):
    g = data.draw(random_graph(max_n=30, max_m=120))
    k = data.draw(spanner_ks)
    seed = data.draw(st.integers(0, 1000))
    res = streaming_spanner(g, k, rng=seed, order_seed=seed)
    h = res.subgraph(g)
    assert is_spanning_subgraph(g, h)
    assert same_components(g, h)
    assert edge_stretch(g, h).max_stretch <= stretch_bound(k, 1) + 1e-9
    assert res.extra["stream"]["passes"] <= math.ceil(math.log2(k)) + 1


@given(st.data())
@settings(max_examples=15, deadline=None)
def test_quantization_properties(data):
    g = data.draw(random_graph(max_n=25, max_m=80))
    if g.m == 0:
        return
    eps = data.draw(st.floats(0.01, 2.0))
    rep = quantize_weights(g, eps)
    # per-edge: never below, at most (1+eps) above
    assert np.all(rep.graph.edges_w >= g.edges_w - 1e-12)
    assert rep.max_distortion <= 1 + eps + 1e-9
    # weights are exact powers of (1+eps) over w_min
    w_min = float(g.edges_w.min())
    recon = w_min * (1 + eps) ** rep.exponents.astype(float)
    assert np.allclose(recon, rep.graph.edges_w, rtol=1e-10)


@given(st.data())
@settings(max_examples=8, deadline=None)
def test_sketch_guarantees_fuzzed(data):
    g = data.draw(random_graph(max_n=25, max_m=80))
    k = data.draw(st.integers(1, 3))
    seed = data.draw(st.integers(0, 1000))
    sk = DistanceSketch(g, k, rng=seed)
    d = apsp(g)
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, g.n, size=(50, 2))
    q = sk.query_many(pairs)
    e = d[pairs[:, 0], pairs[:, 1]]
    mask = np.isfinite(e) & (e > 0)
    if mask.any():
        r = q[mask] / e[mask]
        assert r.max() <= 2 * k - 1 + 1e-9
        assert r.min() >= 1 - 1e-9
    # infinite iff disconnected
    inf_mask = ~np.isfinite(e) & (pairs[:, 0] != pairs[:, 1])
    assert np.all(~np.isfinite(q[inf_mask]))
