"""Tests for the paper's three accelerated constructions:

* Section 4 cluster-merging (t=1),
* Section 3 two-phase contraction (t=sqrt(k)),
* Section 5 general tradeoff (arbitrary t),

checking the stretch/size/iteration guarantees of Theorems 3.1/3.4, 4.14
and 5.15 on multiple graph families.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    cluster_merging,
    general_tradeoff,
    num_epochs,
    size_bound,
    stretch_bound,
    two_phase_contraction,
)
from repro.graphs import (
    edge_stretch,
    erdos_renyi,
    same_components,
    verify_spanner,
)


class TestClusterMerging:
    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_stretch_klog3(self, er_weighted, k):
        res = cluster_merging(er_weighted, k, rng=30 + k)
        bound = k ** math.log2(3)
        verify_spanner(er_weighted, res.subgraph(er_weighted), stretch_bound=bound)

    def test_epoch_count_logk(self, er_weighted):
        for k in (2, 4, 8, 16):
            res = cluster_merging(er_weighted, k, rng=1)
            assert res.iterations <= max(1, math.ceil(math.log2(k)))

    def test_size_bound(self, er_weighted):
        for k in (3, 6):
            res = cluster_merging(er_weighted, k, rng=2)
            assert res.num_edges <= size_bound(er_weighted.n, k, 1)

    def test_cluster_decay_doubly_exponential(self):
        # Lemma 4.12: |C^{(i)}| ~ n^{1-(2^i - 1)/k}; check the trajectory is
        # decreasing and faster than geometric once i >= 2.
        g = erdos_renyi(400, 0.1, weights="uniform", rng=3)
        res = cluster_merging(g, 16, rng=3)
        counts = [s.num_clusters for s in res.stats]
        assert all(b <= a for a, b in zip(counts, counts[1:]))
        assert counts[-1] < counts[0] / 4

    def test_other_families(self, ba_graph, grid, cliques):
        for g in (ba_graph, grid, cliques):
            res = cluster_merging(g, 4, rng=4)
            verify_spanner(g, res.subgraph(g), stretch_bound=4 ** math.log2(3))

    def test_preserves_components(self, disconnected):
        res = cluster_merging(disconnected, 4, rng=5)
        assert same_components(disconnected, res.subgraph(disconnected))

    def test_k1_all_edges(self, er_weighted):
        assert cluster_merging(er_weighted, 1, rng=0).num_edges == er_weighted.m

    def test_determinism(self, er_weighted):
        a = cluster_merging(er_weighted, 6, rng=42)
        b = cluster_merging(er_weighted, 6, rng=42)
        assert np.array_equal(a.edge_ids, b.edge_ids)

    def test_radius_bound_within_theorem(self, er_weighted):
        # Theorem 4.8: weighted-stretch radius after epoch i is (3^i - 1)/2.
        res = cluster_merging(er_weighted, 8, rng=6)
        for s in res.stats:
            assert s.max_radius_bound <= (3.0**s.epoch - 1) / 2 + 1e-9


class TestTwoPhase:
    @pytest.mark.parametrize("k", [4, 9, 16])
    def test_stretch_linear_in_k(self, er_weighted, k):
        res = two_phase_contraction(er_weighted, k, rng=40 + k)
        rep = edge_stretch(er_weighted, res.subgraph(er_weighted))
        assert rep.max_stretch <= 4 * k  # O(k) with the proofs' constant

    def test_iterations_sqrt_k(self, er_weighted):
        for k in (4, 9, 16, 25):
            res = two_phase_contraction(er_weighted, k, rng=7)
            # t1 + (t2 - 1) iterations, both ceil(sqrt(k)) up to constants.
            assert res.iterations <= 2 * math.ceil(math.sqrt(k)) + 1

    def test_size_bound(self, er_weighted):
        for k in (4, 9):
            res = two_phase_contraction(er_weighted, k, rng=8)
            bound = 4 * math.sqrt(k) * er_weighted.n ** (1 + 1.0 / k)
            assert res.num_edges <= bound

    def test_super_graph_shrinks(self, er_weighted):
        res = two_phase_contraction(er_weighted, 9, rng=9)
        assert res.extra["super_nodes"] < er_weighted.n

    def test_unweighted_input(self, er_unweighted):
        res = two_phase_contraction(er_unweighted, 9, rng=10)
        rep = edge_stretch(er_unweighted, res.subgraph(er_unweighted))
        assert rep.max_stretch <= 4 * 9

    def test_preserves_components(self, disconnected):
        res = two_phase_contraction(disconnected, 4, rng=11)
        assert same_components(disconnected, res.subgraph(disconnected))

    def test_k1_all_edges(self, er_weighted):
        assert two_phase_contraction(er_weighted, 1, rng=0).num_edges == er_weighted.m


class TestGeneralTradeoff:
    @pytest.mark.parametrize("k,t", [(4, 1), (4, 2), (8, 2), (8, 3), (16, 4), (8, 7)])
    def test_stretch_bound(self, er_weighted, k, t):
        res = general_tradeoff(er_weighted, k, t, rng=50 + k + t)
        verify_spanner(
            er_weighted, res.subgraph(er_weighted), stretch_bound=stretch_bound(k, t)
        )

    def test_iteration_formula(self, er_weighted):
        for k, t in [(8, 1), (8, 2), (16, 3), (16, 15)]:
            res = general_tradeoff(er_weighted, k, t, rng=0)
            t_eff = min(t, k - 1)
            assert res.iterations <= num_epochs(k, t_eff) * t_eff

    def test_size_bound(self, er_weighted):
        for k, t in [(4, 2), (8, 3)]:
            res = general_tradeoff(er_weighted, k, t, rng=1)
            assert res.num_edges <= size_bound(er_weighted.n, k, t)

    def test_t_equals_k_minus_1_single_epoch(self, er_weighted):
        # One epoch with p = n^{-1/k}: Baswana-Sen's growth phase.  The
        # clean-up keeps one edge per super-node pair (coarser than BS's
        # per-vertex phase 2), so the guarantee is 2 k^s = 2(2k-1), not
        # 2k-1 — see stretch_bound's docstring.
        k = 5
        res = general_tradeoff(er_weighted, k, k - 1, rng=2)
        verify_spanner(
            er_weighted, res.subgraph(er_weighted), stretch_bound=stretch_bound(k, k - 1)
        )
        assert res.iterations == k - 1

    def test_default_t_is_log_k(self, er_weighted):
        res = general_tradeoff(er_weighted, 16, rng=3)
        assert res.t == 4  # log2(16)

    def test_oversized_t_clamped(self, er_weighted):
        res = general_tradeoff(er_weighted, 4, 100, rng=4)
        assert res.extra["t_effective"] == 3

    def test_super_node_shrinkage(self):
        # Corollary 5.13: final super-node count ~ n^{1/k}.
        g = erdos_renyi(400, 0.15, weights="uniform", rng=5)
        res = general_tradeoff(g, 4, 2, rng=5)
        contractions = res.extra["epoch_contractions"]
        sizes = [c[1] for c in contractions]
        assert all(b <= a for a, b in zip(sizes, sizes[1:]))

    def test_preserves_components(self, disconnected):
        res = general_tradeoff(disconnected, 6, 2, rng=6)
        assert same_components(disconnected, res.subgraph(disconnected))

    def test_k1_all_edges(self, er_weighted):
        assert general_tradeoff(er_weighted, 1, 1, rng=0).num_edges == er_weighted.m

    def test_rejects_bad_params(self, er_weighted):
        with pytest.raises(ValueError):
            general_tradeoff(er_weighted, 0, 1)
        with pytest.raises(ValueError):
            general_tradeoff(er_weighted, 4, 0)

    def test_determinism(self, er_weighted):
        a = general_tradeoff(er_weighted, 8, 3, rng=9)
        b = general_tradeoff(er_weighted, 8, 3, rng=9)
        assert np.array_equal(a.edge_ids, b.edge_ids)

    def test_all_families(self, ba_graph, grid, cliques):
        for g in (ba_graph, grid, cliques):
            res = general_tradeoff(g, 6, 2, rng=10)
            verify_spanner(g, res.subgraph(g), stretch_bound=stretch_bound(6, 2))


class TestCrossValidation:
    """The same algorithm implemented twice (Section 4 directly vs Section 5
    with t=1) must exhibit the same guarantees and similar sizes."""

    def test_t1_vs_cluster_merging_sizes_comparable(self):
        # The two code paths differ only in Phase 2 granularity (Section 4
        # cleans up per original vertex, Section 5 per contracted
        # super-node), so sizes agree up to that additive term and both
        # respect the same O(n^{1+1/k} log k) bound.
        g = erdos_renyi(300, 0.15, weights="uniform", rng=60)
        sizes_cm, sizes_gt = [], []
        for seed in range(5):
            sizes_cm.append(cluster_merging(g, 8, rng=seed).num_edges)
            sizes_gt.append(general_tradeoff(g, 8, 1, rng=seed).num_edges)
        a, b = np.mean(sizes_cm), np.mean(sizes_gt)
        assert abs(a - b) / max(a, b) < 0.5
        bound = size_bound(g.n, 8, 1)
        assert max(sizes_cm) <= bound and max(sizes_gt) <= bound

    def test_t1_vs_cluster_merging_iterations(self, er_weighted):
        for k in (4, 8, 16):
            cm = cluster_merging(er_weighted, k, rng=1)
            gt = general_tradeoff(er_weighted, k, 1, rng=1)
            assert cm.extra["epochs"] == num_epochs(k, 1)
            assert gt.iterations <= cm.extra["epochs"]
