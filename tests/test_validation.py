"""Unit tests for spanner validation (repro.graphs.validation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    WeightedGraph,
    edge_stretch,
    erdos_renyi,
    is_spanning_subgraph,
    pair_stretch,
    sampled_pair_stretch,
    verify_spanner,
)


@pytest.fixture
def g_and_tree(er_weighted):
    """A graph and a shortest-path-tree-ish spanning subgraph of it."""
    import networkx as nx

    t = nx.minimum_spanning_tree(er_weighted.to_networkx())
    idx = er_weighted.edge_index_map()
    ids = [idx[(min(a, b), max(a, b))] for a, b in t.edges()]
    return er_weighted, er_weighted.subgraph_from_edge_ids(ids)


class TestSubgraphCheck:
    def test_self_subgraph(self, er_weighted):
        assert is_spanning_subgraph(er_weighted, er_weighted)

    def test_tree_subgraph(self, g_and_tree):
        g, h = g_and_tree
        assert is_spanning_subgraph(g, h)

    def test_rejects_different_n(self, er_weighted):
        other = WeightedGraph.from_edges(3, [(0, 1, 1.0)])
        assert not is_spanning_subgraph(er_weighted, other)

    def test_rejects_foreign_edge(self, small_weighted):
        h = WeightedGraph.from_edges(6, [(0, 5, 1.0)])
        assert not is_spanning_subgraph(small_weighted, h)


class TestEdgeStretch:
    def test_identity_stretch_one(self, er_weighted):
        rep = edge_stretch(er_weighted, er_weighted)
        assert rep.max_stretch == 1.0
        assert rep.num_checked == er_weighted.m

    def test_agrees_with_pair_stretch(self, g_and_tree):
        g, h = g_and_tree
        # Edge-sufficiency lemma: max over edges equals max over all pairs.
        re = edge_stretch(g, h)
        rp = pair_stretch(g, h)
        assert re.max_stretch == pytest.approx(rp.max_stretch, rel=1e-9)

    def test_detects_disconnection(self, small_weighted):
        h = WeightedGraph.from_edges(6, [(0, 1, 1.0)])
        rep = edge_stretch(small_weighted, h)
        assert np.isinf(rep.max_stretch)

    def test_hand_computed(self):
        # Triangle with the heavy edge dropped: stretch of (0,2) is 3/2.
        g = WeightedGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 0.5), (0, 2, 1.0)])
        idx = g.edge_index_map()
        h = g.subgraph_from_edge_ids([idx[(0, 1)], idx[(1, 2)]])
        rep = edge_stretch(g, h)
        assert rep.max_stretch == pytest.approx(1.5)

    def test_empty_graph(self):
        g = WeightedGraph.from_edges(4, [])
        rep = edge_stretch(g, g)
        assert rep.max_stretch == 1.0 and rep.num_checked == 0


class TestSampledStretch:
    def test_bounded_by_exact(self, g_and_tree):
        g, h = g_and_tree
        exact = pair_stretch(g, h)
        sampled = sampled_pair_stretch(g, h, 300, rng=0)
        assert sampled.max_stretch <= exact.max_stretch + 1e-9
        assert sampled.method == "sampled-pairs"

    def test_tiny_graph(self):
        g = WeightedGraph.from_edges(1, [])
        rep = sampled_pair_stretch(g, g, 10, rng=0)
        assert rep.num_checked == 0


class TestVerifySpanner:
    def test_passes_valid(self, g_and_tree):
        g, h = g_and_tree
        rep = verify_spanner(g, h)
        assert rep.max_stretch >= 1.0

    def test_raises_on_stretch_violation(self, g_and_tree):
        g, h = g_and_tree
        with pytest.raises(AssertionError, match="stretch"):
            verify_spanner(g, h, stretch_bound=1.0 + 1e-12)

    def test_raises_on_size_violation(self, er_weighted):
        with pytest.raises(AssertionError, match="size"):
            verify_spanner(er_weighted, er_weighted, size_bound=1)

    def test_raises_on_non_subgraph(self, small_weighted):
        h = WeightedGraph.from_edges(6, [(0, 5, 1.0)])
        with pytest.raises(AssertionError, match="subgraph"):
            verify_spanner(small_weighted, h)

    def test_raises_on_disconnect(self, small_weighted):
        h = small_weighted.subgraph_from_edge_ids([0])
        with pytest.raises(AssertionError, match="disconnect"):
            verify_spanner(small_weighted, h)

    def test_within_helper(self, er_weighted):
        rep = edge_stretch(er_weighted, er_weighted)
        assert rep.within(1.0)
        assert rep.within(10.0)
