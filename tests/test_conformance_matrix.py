"""Conformance matrix: plan shape, end-to-end runs, artifacts, resume.

The final test is the PR's acceptance criterion executed directly: every
registered algorithm (all spanner constructions and both APSP pipelines)
certifies on 4+ representative graph families with zero bound violations.
"""

from __future__ import annotations

import json

import numpy as np

import repro.registry as registry
from repro.core.results import SpannerResult
from repro.registry import AlgorithmClaims, algorithm_names, register_spanner
from repro.verify import (
    DEFAULT_MATRIX_GRAPHS,
    MatrixResult,
    conformance_plan,
    format_matrix_markdown,
    run_matrix,
)


class TestConformancePlan:
    def test_default_plan_covers_everything(self):
        plan = conformance_plan()
        assert plan.certify
        assert set(plan.algorithms) == set(algorithm_names())
        assert len(plan.graphs) >= 4
        families = {g.split(":")[0] for g in plan.graphs}
        assert len(families) >= 4  # distinct *families*, not just sizes

    def test_plan_is_runner_compatible(self):
        plan = conformance_plan(graphs=["er:32:0.2"], ks=[3])
        trials = plan.trials()
        assert all(t.certify for t in trials)
        # One trial per (algorithm, graph, k, seed); t-axis collapsed for
        # t-free algorithms, so count equals the algorithm count here.
        assert len(trials) == len(algorithm_names())

    def test_slack_rides_into_trials(self):
        plan = conformance_plan(graphs=["er:32:0.2"], slack=2.5)
        assert all(t.cert_slack == 2.5 for t in plan.trials())

    def test_plan_json_round_trip_preserves_certify(self):
        from repro.runner import ExperimentPlan

        plan = conformance_plan(graphs=["er:32:0.2"], slack=1.5)
        back = ExperimentPlan.from_json(plan.to_json())
        assert back.certify and back.cert_slack == 1.5
        assert [t.trial_id for t in back.trials()] == [
            t.trial_id for t in plan.trials()
        ]


class TestRunMatrix:
    def test_small_matrix_end_to_end_with_artifacts(self, tmp_path):
        plan = conformance_plan(
            algorithms=["baswana-sen", "streaming", "apsp-mpc"],
            graphs=["er:48:0.15", "grid:5:6"],
            ks=[3],
            name="small-matrix",
        )
        result = run_matrix(plan, out_dir=tmp_path / "out")
        assert result.ok
        assert result.num_cells == 6
        assert result.num_certified == 6

        # Per-cell artifacts embed the full certificate.
        trial_files = list((tmp_path / "out" / "trials").glob("*.json"))
        assert len(trial_files) == 6
        record = json.loads(trial_files[0].read_text())
        assert record["cert_ok"] is True
        assert record["certificate"]["checks"]

        # Aggregates: matrix.json + the markdown grid.
        matrix = json.loads((tmp_path / "out" / "matrix.json").read_text())
        assert matrix["ok"] is True
        assert matrix["num_cells"] == 6
        assert {c["algorithm"] for c in matrix["cells"]} == {
            "baswana-sen",
            "streaming",
            "apsp-mpc",
        }
        md = (tmp_path / "out" / "matrix.md").read_text()
        assert "✓" in md and "baswana-sen" in md
        assert "6/6 cells certified" in md

        # results.csv stays scalar despite the embedded certificate dicts.
        header = (tmp_path / "out" / "results.csv").read_text().splitlines()[0]
        assert "certificate" not in header
        assert "cert_ok" in header

    def test_matrix_resume_executes_zero(self, tmp_path):
        plan = conformance_plan(
            algorithms=["baswana-sen", "general"], graphs=["er:32:0.2"], ks=[3]
        )
        first = run_matrix(plan, out_dir=tmp_path / "out")
        again = run_matrix(plan, out_dir=tmp_path / "out")
        assert first.executed == 2 and first.skipped == 0
        assert again.executed == 0 and again.skipped == 2
        assert again.ok

    def test_matrix_requires_certifying_plan(self):
        from pytest import raises

        from repro.runner import ExperimentPlan

        plan = ExperimentPlan(algorithms=["baswana-sen"], graphs=["er:16:0.3"], ks=[2])
        with raises(ValueError, match="certify"):
            run_matrix(plan)

    def test_broken_algorithm_shows_as_violation_cell(self, tmp_path):
        def broken(g, k, t, rng):
            return SpannerResult(
                edge_ids=np.arange(g.m // 2, dtype=np.int64),
                algorithm="broken-matrix",
                k=k,
                t=t,
                iterations=1,
            )

        claims = AlgorithmClaims(
            stretch=lambda ctx: 2.0 * ctx.k - 1.0,
            size=lambda ctx: float(ctx.m),
            source="injected",
        )
        register_spanner("broken-matrix", loader=lambda: broken, claims=claims)
        try:
            plan = conformance_plan(
                algorithms=["baswana-sen", "broken-matrix"],
                graphs=["cycle:12"],
                ks=[2],
                weights=["unit"],
            )
            result = run_matrix(plan, out_dir=tmp_path / "out")
        finally:
            registry._REGISTRY.pop("broken-matrix", None)

        assert not result.ok
        assert result.num_certified == 1 and result.num_violations == 1
        (bad,) = [c for c in result.cells if not c.ok]
        assert bad.algorithm == "broken-matrix"
        assert "stretch" in bad.violations
        md = format_matrix_markdown(result)
        assert "✗" in md and "stretch" in md

    def test_error_cells_reported_not_raised(self):
        # complete:3 with k=2 works; force an error via a bogus file spec.
        plan = conformance_plan(
            algorithms=["baswana-sen"], graphs=["file:/nonexistent.edges"], ks=[2]
        )
        result = run_matrix(plan)
        assert result.num_errors == 1
        assert not result.ok
        assert "ERR" in format_matrix_markdown(result)


def test_acceptance_full_registry_zero_violations():
    """Acceptance criterion: all 10 spanners + both APSP pipelines certify
    on the 5 representative families with zero bound violations."""
    assert len(algorithm_names("spanner")) == 10
    assert len(algorithm_names("apsp")) == 2
    assert len(DEFAULT_MATRIX_GRAPHS) >= 4

    result = run_matrix(conformance_plan())
    assert isinstance(result, MatrixResult)
    assert result.num_cells == 12 * len(DEFAULT_MATRIX_GRAPHS)
    failures = [(c.algorithm, c.graph, c.status) for c in result.failures()]
    assert result.ok, f"uncertified cells: {failures}"
