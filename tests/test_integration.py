"""Integration tests: full pipelines across subsystems."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.cc_impl import apsp_cc
from repro.core import (
    baswana_sen,
    cluster_merging,
    general_tradeoff,
    stretch_bound,
    two_phase_contraction,
    tradeoff_table,
)
from repro.distances import SpannerDistanceOracle, measure_approximation
from repro.graphs import (
    barabasi_albert,
    edge_stretch,
    erdos_renyi,
    random_geometric,
    ring_of_cliques,
    verify_spanner,
)
from repro.mpc_impl import apsp_mpc, spanner_mpc


class TestTradeoffShape:
    """The paper's central claim: t trades iterations for stretch."""

    def test_iterations_decrease_stretch_increases(self):
        g = erdos_renyi(350, 0.12, weights="uniform", rng=200)
        k = 8
        rows = []
        for t in (1, 2, 3, 7):
            res = general_tradeoff(g, k, t, rng=5)
            rep = edge_stretch(g, res.subgraph(g))
            rows.append((t, res.iterations, rep.max_stretch, res.num_edges))
        iters = [r[1] for r in rows]
        # iterations non-decreasing in t (t=k-1 has the most)
        assert iters[0] <= iters[-1]
        # every measured stretch within its own bound, and the bound
        # sequence is monotone decreasing in t
        bounds = [stretch_bound(k, t) for t, *_ in rows]
        assert all(b2 <= b1 + 1e-9 for b1, b2 in zip(bounds, bounds[1:]))
        for (t, _, s, _), b in zip(rows, bounds):
            assert s <= b + 1e-9

    def test_faster_than_baswana_sen(self):
        # The headline: for k = 16 the general algorithm needs far fewer
        # iterations than BS's k-1.
        g = erdos_renyi(300, 0.15, weights="uniform", rng=201)
        k = 16
        bs = baswana_sen(g, k, rng=1)
        fast = general_tradeoff(g, k, 1, rng=1)
        assert fast.iterations < bs.iterations / 2


class TestAllAlgorithmsOneGraph:
    @pytest.mark.parametrize(
        "family",
        ["er", "ba", "geo", "cliques"],
    )
    def test_every_algorithm_valid(self, family):
        g = {
            "er": lambda: erdos_renyi(180, 0.15, weights="uniform", rng=300),
            "ba": lambda: barabasi_albert(180, 3, weights="exponential", rng=301),
            "geo": lambda: random_geometric(180, 0.18, weights="uniform", rng=302),
            "cliques": lambda: ring_of_cliques(18, 10, weights="uniform", rng=303),
        }[family]()
        k = 4
        for fn, bound in [
            (lambda: baswana_sen(g, k, rng=1), 2 * k - 1),
            (lambda: cluster_merging(g, k, rng=2), k ** math.log2(3)),
            (lambda: two_phase_contraction(g, k, rng=3), 4 * k),
            (lambda: general_tradeoff(g, k, 2, rng=4), stretch_bound(k, 2)),
        ]:
            res = fn()
            verify_spanner(g, res.subgraph(g), stretch_bound=bound)


class TestEndToEndAPSP:
    def test_mpc_and_cc_agree_on_quality(self):
        g = erdos_renyi(200, 0.12, weights="integer", rng=304, low=1, high=32)
        mpc = apsp_mpc(g, rng=7)
        cc = apsp_cc(g, rng=7)
        from repro.graphs import apsp as exact

        d = exact(g)
        iu = np.triu_indices(g.n, k=1)
        base = d[iu]
        mask = np.isfinite(base) & (base > 0)
        for res in (mpc, cc):
            ratios = res.all_pairs()[iu][mask] / base[mask]
            assert ratios.max() <= res.guaranteed_stretch + 1e-9

    def test_oracle_on_geometric_network(self):
        # Road-network-style scenario from the intro motivation.
        g = random_geometric(300, 0.15, weights="uniform", rng=305)
        oracle = SpannerDistanceOracle(g, rng=8)
        rep = measure_approximation(oracle, num_pairs=400, rng=9)
        assert rep.within_bound
        # the spanner actually sparsifies
        assert oracle.spanner.m <= g.m

    def test_sparsification_wins_on_dense_input(self):
        g = erdos_renyi(250, 0.5, weights="uniform", rng=306)
        oracle = SpannerDistanceOracle(g, k=4, t=2, rng=10)
        assert oracle.spanner.m < g.m / 4


class TestSeedReproducibility:
    def test_full_pipeline_deterministic(self):
        g = erdos_renyi(150, 0.2, weights="uniform", rng=307)
        r1 = spanner_mpc(g, 4, 2, rng=11)
        r2 = spanner_mpc(g, 4, 2, rng=11)
        assert np.array_equal(r1.edge_ids, r2.edge_ids)
        assert r1.extra["rounds"] == r2.extra["rounds"]

    def test_tradeoff_table_is_pure(self):
        assert tradeoff_table(16) == tradeoff_table(16)
