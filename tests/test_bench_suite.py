"""The cross-algorithm benchmark suite: record shape, gates, and CLI.

Runs :func:`repro.bench.run_suite` in smoke mode once (module fixture) and
checks that every registered algorithm is measured, that the hot-loop
harness certifies bit-identical vectorized outputs, and that both gates —
the per-algorithm slowdown gate and the hot-loop speedup floors — behave:
catch real regressions, skip gracefully on timer noise, mode mismatches,
and uniform machine-speed shifts.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench import (
    hot_loop_gates,
    run_suite,
    slowdown_gate,
)
from repro.registry import algorithm_names


@pytest.fixture(scope="module")
def record():
    return run_suite(smoke=True)


class TestSuiteRecord:
    def test_every_registered_algorithm_measured(self, record):
        assert set(record["algorithms"]) == set(algorithm_names())
        assert len(record["algorithms"]) == 12

    def test_per_algorithm_fields(self, record):
        for name, rec in record["algorithms"].items():
            assert rec["wall_s"] >= 0, name
            assert rec["edges_per_s"] > 0, name
            assert rec["spanner_edges"] > 0, name
            assert rec["n"] > 0 and rec["m"] > 0, name
            assert rec["kind"] in ("spanner", "apsp"), name
        for rec in record["algorithms"].values():
            if rec["kind"] == "apsp":
                assert rec["rounds"] > 0

    def test_hot_loops_bit_identical(self, record):
        hot = record["hot_loops"]
        assert hot["streaming_pass"]["identical"]
        assert hot["unweighted_balls"]["identical"]
        assert hot["streaming_pass"]["speedup"] > 0
        assert hot["unweighted_balls"]["speedup"] > 0

    def test_smoke_record_has_no_smoke_ref(self, record):
        assert record["smoke"] is True
        assert "smoke_ref" not in record

    def test_json_round_trip(self, record):
        assert json.loads(json.dumps(record)) == record


class TestSlowdownGate:
    def test_self_comparison_passes(self, record):
        ok, reasons = slowdown_gate(record, record)
        assert ok
        assert any("machine-speed factor" in r for r in reasons)

    def test_detects_single_algorithm_regression(self, record):
        baseline = copy.deepcopy(record)
        # One algorithm got 5x faster in the baseline == 5x slower now.
        victim = max(
            record["algorithms"], key=lambda a: record["algorithms"][a]["wall_s"]
        )
        baseline["algorithms"][victim]["wall_s"] = (
            record["algorithms"][victim]["wall_s"] / 5.0
        )
        ok, reasons = slowdown_gate(record, baseline, noise_floor_s=0.0)
        assert not ok
        assert any(victim in r and "exceeds" in r for r in reasons)

    def test_uniform_slowdown_is_machine_speed_not_regression(self, record):
        baseline = copy.deepcopy(record)
        for rec in baseline["algorithms"].values():
            rec["wall_s"] = rec["wall_s"] / 3.0  # everything "3x slower" now
        ok, reasons = slowdown_gate(record, baseline, noise_floor_s=0.0)
        assert ok, reasons

    def test_noise_floor_skips(self, record):
        baseline = copy.deepcopy(record)
        ok, reasons = slowdown_gate(record, baseline, noise_floor_s=10.0)
        assert ok
        assert any("too few" in r for r in reasons)
        assert any("noise floor" in r for r in reasons)

    def test_mode_mismatch_skips(self, record):
        baseline = {"smoke": False, "algorithms": {}}
        ok, reasons = slowdown_gate(record, baseline)
        assert ok
        assert any("no comparable-mode" in r for r in reasons)

    def test_smoke_gates_against_full_snapshots_smoke_ref(self, record):
        baseline = {
            "smoke": False,
            "algorithms": {},
            "smoke_ref": {"algorithms": copy.deepcopy(record["algorithms"])},
        }
        ok, reasons = slowdown_gate(record, baseline)
        assert ok
        assert any("ok" in r or "machine-speed" in r for r in reasons)

    def test_protocol_change_skips(self, record):
        baseline = copy.deepcopy(record)
        some = next(iter(baseline["algorithms"]))
        baseline["algorithms"][some]["graph"] = "er:9999:0.5"
        ok, reasons = slowdown_gate(record, baseline, noise_floor_s=0.0)
        assert ok
        assert any(some in r and "protocol changed" in r for r in reasons)


class TestHotLoopGates:
    def test_smoke_skips(self, record):
        ok, reasons = hot_loop_gates(record)
        assert ok
        assert any("skipped" in r for r in reasons)

    def test_full_record_floors(self, record):
        full = copy.deepcopy(record)
        full["smoke"] = False
        full["hot_loops"]["streaming_pass"]["speedup"] = 6.0
        full["hot_loops"]["unweighted_balls"]["speedup"] = 4.0
        ok, reasons = hot_loop_gates(full)
        assert ok, reasons

        full["hot_loops"]["streaming_pass"]["speedup"] = 1.2
        ok, reasons = hot_loop_gates(full)
        assert not ok
        assert any("below the 5x floor" in r for r in reasons)

    def test_non_identical_output_fails(self, record):
        full = copy.deepcopy(record)
        full["smoke"] = False
        full["hot_loops"]["streaming_pass"]["speedup"] = 100.0
        full["hot_loops"]["streaming_pass"]["identical"] = False
        ok, reasons = hot_loop_gates(full)
        assert not ok
        assert any("NOT bit-identical" in r for r in reasons)


class TestBenchCLI:
    def test_smoke_json_with_baseline(self, record, tmp_path):
        from repro.cli import main

        base = tmp_path / "baseline.json"
        base.write_text(json.dumps(record))
        out = tmp_path / "BENCH_suite.json"
        rc = main(
            [
                "bench",
                "--smoke",
                "--json",
                "--out",
                str(out),
                "--baseline",
                str(base),
            ]
        )
        assert rc == 0
        written = json.loads(out.read_text())
        assert set(written["algorithms"]) == set(algorithm_names())

    def test_bad_baseline_is_cli_error(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="baseline"):
            main(["bench", "--smoke", "--baseline", str(tmp_path / "missing.json")])


def test_benchmarks_suite_wrapper_reexports():
    """The standalone ``benchmarks/suite.py`` entry stays importable and
    re-exports the protocol surface."""
    import os
    import sys

    bench_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
    )
    if bench_dir not in sys.path:
        sys.path.insert(0, bench_dir)
    import suite  # noqa: F401

    assert suite.run_suite is run_suite
    assert suite.slowdown_gate is slowdown_gate


def test_committed_snapshot_matches_protocol():
    """BENCH_suite.json at the repo root stays regenerable: it must cover
    every registered algorithm and carry the smoke_ref section the CI gate
    compares against."""
    import os

    path = os.path.join(os.path.dirname(os.path.dirname(__file__)), "BENCH_suite.json")
    with open(path) as fh:
        snap = json.load(fh)
    assert snap["smoke"] is False
    assert set(snap["algorithms"]) == set(algorithm_names())
    assert set(snap["smoke_ref"]["algorithms"]) == set(algorithm_names())
    hot = snap["hot_loops"]
    assert hot["streaming_pass"]["identical"]
    assert hot["unweighted_balls"]["identical"]
