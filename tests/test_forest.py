"""Tests for the exact cluster forests (repro.core.forest)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import cluster_merging
from repro.core.forest import ClusterForest, forest_stats, reroot
from repro.graphs import WeightedGraph, erdos_renyi


class TestReroot:
    def test_reroot_path(self):
        # Path tree 0 <- 1 <- 2 (root 0); re-root at 2.
        g = WeightedGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        f = ClusterForest.singletons(3)
        idx = g.edge_index_map()
        f.parent[1] = 0
        f.parent_eid[1] = idx[(0, 1)]
        f.parent[2] = 1
        f.parent_eid[2] = idx[(1, 2)]
        reroot(f, 2)
        assert f.parent[2] == -1
        assert f.parent[1] == 2
        assert f.parent[0] == 1
        stats = forest_stats(g, np.zeros(3, dtype=np.int64), f)
        assert stats[0].root == 2
        assert stats[0].hop_radius == 2

    def test_reroot_at_root_noop(self):
        f = ClusterForest.singletons(2)
        reroot(f, 0)
        assert f.parent[0] == -1


class TestForestStats:
    def test_singletons(self):
        g = WeightedGraph.from_edges(3, [])
        f = ClusterForest.singletons(3)
        stats = forest_stats(g, np.arange(3), f)
        assert all(s.hop_radius == 0 and s.size == 1 for s in stats.values())

    def test_detects_cross_cluster_pointer(self):
        g = WeightedGraph.from_edges(2, [(0, 1, 1.0)])
        f = ClusterForest.singletons(2)
        f.parent[1] = 0
        f.parent_eid[1] = 0
        labels = np.array([0, 1])  # but the pointer crosses clusters
        with pytest.raises(AssertionError, match="crosses clusters"):
            forest_stats(g, labels, f)

    def test_detects_fake_edge(self):
        g = WeightedGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0)])
        idx = g.edge_index_map()
        f = ClusterForest.singletons(3)
        f.parent[2] = 0  # claims (0,2) but uses edge (0,1)
        f.parent_eid[2] = idx[(0, 1)]
        with pytest.raises(AssertionError, match="does not join"):
            forest_stats(g, np.zeros(3, dtype=np.int64), f)


class TestClusterMergingForest:
    @pytest.fixture(scope="class")
    def run(self):
        g = erdos_renyi(250, 0.12, weights="uniform", rng=77)
        res = cluster_merging(g, 8, rng=77, track_forest=True)
        return g, res

    def test_tree_edges_subset_of_spanner(self, run):
        g, res = run
        forest = res.extra["forest"]
        assert set(forest.edge_ids().tolist()) <= set(res.edge_ids.tolist())

    def test_one_tree_per_cluster_rooted_at_seed(self, run):
        g, res = run
        labels = res.extra["final_labels"]
        stats = forest_stats(g, labels, res.extra["forest"])
        for c, s in stats.items():
            assert s.root == c  # the cluster center is the surviving seed

    def test_measured_radius_within_theorem_4_8(self, run):
        g, res = run
        labels = res.extra["final_labels"]
        stats = forest_stats(g, labels, res.extra["forest"])
        epochs = res.iterations
        bound = (3.0**epochs - 1) / 2
        for s in stats.values():
            assert s.hop_radius <= bound + 1e-9

    def test_measured_radius_below_recurrence_bound(self, run):
        g, res = run
        labels = res.extra["final_labels"]
        stats = forest_stats(g, labels, res.extra["forest"])
        measured = max(s.hop_radius for s in stats.values())
        tracked = max(s.max_radius_bound for s in res.stats)
        assert measured <= tracked + 1e-9

    def test_forest_result_same_spanner_as_untracked(self):
        g = erdos_renyi(150, 0.15, weights="uniform", rng=78)
        a = cluster_merging(g, 8, rng=5, track_forest=True)
        b = cluster_merging(g, 8, rng=5, track_forest=False)
        assert np.array_equal(a.edge_ids, b.edge_ids)
