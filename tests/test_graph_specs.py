"""Tests for the graph-spec layer: every family parses, builds, round-trips."""

from __future__ import annotations

import pytest

from repro.graphs import (
    GRAPH_FAMILIES,
    GraphSpec,
    GraphSpecError,
    build_graph_from_spec,
    erdos_renyi,
    generators,
    graph_family_names,
    write_edgelist,
)

#: One small instance per family: (spec, expected n).
FAMILY_EXAMPLES = {
    "er": ("er:50:0.2", 50),
    "gnm": ("gnm:40:100", 40),
    "ba": ("ba:40:2", 40),
    "geo": ("geo:30:0.5", 30),
    "grid": ("grid:4:5", 20),
    "torus": ("torus:4:5", 20),
    "cliques": ("cliques:4:5", 20),
    "complete": ("complete:12", 12),
    "cycle": ("cycle:16", 16),
    "double-cycle": ("double-cycle:16", 16),
    "path": ("path:9", 9),
    "star": ("star:9", 9),
    "tree": ("tree:17", 17),
    "girth": ("girth:32:3", 32),
}


class TestCoverage:
    def test_every_generator_family_reachable(self):
        """Each public generator in graphs.generators has a spec family."""
        generator_names = {n for n in generators.__all__ if n != "draw_weights"}
        # 14 generators <-> 14 non-file families, plus the file family.
        assert len(generator_names) == len(GRAPH_FAMILIES) - 1
        assert set(FAMILY_EXAMPLES) == set(GRAPH_FAMILIES) - {"file"}

    def test_family_names_sorted(self):
        assert graph_family_names() == sorted(GRAPH_FAMILIES)

    def test_signatures(self):
        assert GRAPH_FAMILIES["er"].signature == "er:<n>:<p>"
        assert GRAPH_FAMILIES["complete"].signature == "complete:<n>"


class TestRoundTrip:
    @pytest.mark.parametrize("family", sorted(FAMILY_EXAMPLES))
    def test_parse_build_format(self, family):
        text, n = FAMILY_EXAMPLES[family]
        spec = GraphSpec.parse(text)
        assert spec.family == family
        g = spec.build(weights="unit", seed=3)
        assert g.n == n
        # format() is canonical and re-parses to an equal spec.
        assert GraphSpec.parse(spec.format()) == spec
        # A rebuilt graph from the formatted spec is identical in shape.
        g2 = GraphSpec.parse(spec.format()).build(weights="unit", seed=3)
        assert (g2.n, g2.m) == (g.n, g.m)

    @pytest.mark.parametrize("family", sorted(FAMILY_EXAMPLES))
    def test_registry_examples_build(self, family):
        fam = GRAPH_FAMILIES[family]
        spec = GraphSpec.parse(fam.example)
        assert spec.build(seed=0).n > 0

    def test_weighted_build(self):
        g = build_graph_from_spec("er:40:0.3", weights="uniform", seed=1)
        assert (g.edges_w > 1.0).any()

    def test_seed_reproducible(self):
        a = build_graph_from_spec("er:64:0.1", seed=5)
        b = build_graph_from_spec("er:64:0.1", seed=5)
        c = build_graph_from_spec("er:64:0.1", seed=6)
        assert a.m == b.m
        assert (a.edges_u == b.edges_u).all()
        assert a.m != c.m or (a.edges_u != c.edges_u).any()


class TestFileFamily:
    def test_round_trip(self, tmp_path):
        g = erdos_renyi(30, 0.2, weights="uniform", rng=0)
        path = tmp_path / "g.edges"
        write_edgelist(g, path)
        spec = GraphSpec.parse(f"file:{path}")
        assert spec.format() == f"file:{path}"
        g2 = spec.build()
        assert (g2.n, g2.m) == (g.n, g.m)

    def test_path_with_colon(self, tmp_path):
        d = tmp_path / "odd:dir"
        d.mkdir()
        g = erdos_renyi(10, 0.5, rng=0)
        path = d / "g.edges"
        write_edgelist(g, path)
        assert GraphSpec.parse(f"file:{path}").build().n == 10

    def test_missing_file(self, tmp_path):
        with pytest.raises(GraphSpecError, match="cannot build"):
            GraphSpec.parse(f"file:{tmp_path}/nope.edges").build()


class TestValidation:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "hypercube:4",
            "er:notanint:0.5",
            "er:10",
            "er:10:0.5:9",
            "er:10:1.5",
            "er:-5:0.5",
            "geo:0:0.5",
            "geo:10:-1",
            "gnm:10:-3",
            "file:",
        ],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(GraphSpecError):
            GraphSpec.parse(bad)

    def test_build_errors_wrapped(self):
        # Valid arity/types but semantically impossible: generator raises,
        # spec layer re-reports as GraphSpecError.
        with pytest.raises(GraphSpecError, match="cannot build"):
            GraphSpec.parse("gnm:5:100").build()
        with pytest.raises(GraphSpecError, match="cannot build"):
            GraphSpec.parse("cycle:2").build()
        with pytest.raises(GraphSpecError, match="cannot build"):
            GraphSpec.parse("double-cycle:7").build()

    def test_error_names_offending_parameter(self):
        with pytest.raises(GraphSpecError, match="bad p="):
            GraphSpec.parse("er:10:2.0")
        with pytest.raises(GraphSpecError, match="expects 2 args"):
            GraphSpec.parse("grid:4")
