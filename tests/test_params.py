"""Tests for the closed-form parameter formulas (repro.core.params)."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    apsp_parameters,
    bs_size_bound,
    bs_stretch_bound,
    cluster_count_bound,
    mpc_rounds_bound,
    num_epochs,
    sampling_probability,
    size_bound,
    stretch_bound,
    stretch_exponent,
    total_iterations,
    tradeoff_table,
)


class TestStretchExponent:
    def test_t1_is_log3(self):
        assert stretch_exponent(1) == pytest.approx(math.log2(3))

    def test_monotone_decreasing(self):
        vals = [stretch_exponent(t) for t in range(1, 50)]
        assert all(b <= a for a, b in zip(vals, vals[1:]))

    def test_limits_to_one(self):
        # s(t) = 1 + log(2 - 1/(t+1)) / log(t+1) -> 1, slowly (o(1) term).
        assert stretch_exponent(10**6) < 1.06
        assert stretch_exponent(10**12) < stretch_exponent(10**6)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            stretch_exponent(0)


class TestEpochs:
    def test_k1_zero_epochs(self):
        assert num_epochs(1, 3) == 0

    def test_t1_log2k(self):
        assert num_epochs(8, 1) == 3
        assert num_epochs(16, 1) == 4
        assert num_epochs(9, 1) == 4  # ceil

    def test_t_large_one_epoch(self):
        assert num_epochs(8, 7) == 1
        assert num_epochs(8, 100) == 1

    def test_coverage_property(self):
        # (t+1)^l >= k must hold — the epochs cover the full exponent range.
        for k in (2, 5, 8, 17, 64):
            for t in (1, 2, 3, 5, 10):
                l = num_epochs(k, t)
                assert (t + 1) ** l >= k

    def test_total_iterations(self):
        assert total_iterations(16, 1) == 4
        assert total_iterations(16, 3) == 2 * 3


class TestSamplingProbability:
    def test_epoch1_matches_bs(self):
        assert sampling_probability(1000, 4, 3, 1) == pytest.approx(1000 ** (-0.25))

    def test_decreasing_in_epoch(self):
        ps = [sampling_probability(1000, 8, 2, i) for i in (1, 2, 3)]
        assert ps[0] > ps[1] > ps[2]

    def test_one_based(self):
        with pytest.raises(ValueError):
            sampling_probability(10, 2, 1, 0)


class TestBounds:
    def test_stretch_bound_k1(self):
        assert stretch_bound(1, 1) == 1.0

    def test_stretch_bound_t_clamped(self):
        # At t >= k-1 the exponent gives k^s = 2k-1, so the Theorem 5.11
        # bound is 2(2k-1); larger t is clamped.
        assert stretch_bound(5, 4) == pytest.approx(2 * 9.0)
        assert stretch_bound(5, 100) == stretch_bound(5, 4)

    def test_stretch_bound_general(self):
        s = stretch_exponent(2)
        assert stretch_bound(9, 2) == pytest.approx(2 * 9**s)
        assert stretch_bound(9, 2, exact_constant=False) == pytest.approx(9**s)

    def test_stretch_monotone_improves_with_t(self):
        vals = [stretch_bound(64, t) for t in (1, 2, 4, 8, 16, 32, 63)]
        assert all(b <= a + 1e-9 for a, b in zip(vals, vals[1:]))

    def test_size_bound_grows_with_t(self):
        assert size_bound(100, 4, 5) > size_bound(100, 4, 1)

    def test_size_bound_shrinks_with_k(self):
        assert size_bound(1000, 8, 2) < size_bound(1000, 2, 2)

    def test_bs_bounds(self):
        assert bs_stretch_bound(3) == 5.0
        assert bs_size_bound(100, 2, constant=1.0) == pytest.approx(2 * 100**1.5)

    def test_cluster_count_decay(self):
        c1 = cluster_count_bound(10**4, 8, 2, 1)
        c2 = cluster_count_bound(10**4, 8, 2, 2)
        assert c2 < c1 <= 10**4

    def test_mpc_rounds_scale_inverse_gamma(self):
        assert mpc_rounds_bound(8, 2, 0.25) == pytest.approx(
            2 * mpc_rounds_bound(8, 2, 0.5)
        )

    def test_mpc_rounds_rejects_bad_gamma(self):
        with pytest.raises(ValueError):
            mpc_rounds_bound(4, 1, 0.0)


class TestTradeoffTable:
    def test_default_rows(self):
        rows = tradeoff_table(16)
        ts = [r.t for r in rows]
        assert 1 in ts and 15 in ts and 4 in ts  # t=1, k-1, sqrt/log

    def test_rows_consistent(self):
        for row in tradeoff_table(9):
            assert row.iterations == total_iterations(9, row.t)
            assert row.stretch == stretch_bound(9, row.t)
            assert row.label  # non-empty

    def test_custom_ts(self):
        rows = tradeoff_table(8, ts=[2, 3])
        assert [r.t for r in rows] == [2, 3]


class TestApspParameters:
    def test_log_scaling(self):
        k, t = apsp_parameters(1024)
        assert k == 10
        assert t == max(1, round(math.log2(10)))

    def test_tiny_n(self):
        assert apsp_parameters(2) == (1, 1)

    def test_t_override(self):
        k, t = apsp_parameters(1024, t=7)
        assert t == 7


class TestCoerceRng:
    def test_passthrough_generator(self):
        import numpy as np

        from repro.core.params import coerce_rng

        gen = np.random.default_rng(7)
        assert coerce_rng(gen) is gen

    def test_seed_deterministic(self):
        import numpy as np

        from repro.core.params import coerce_rng

        a = coerce_rng(42).integers(0, 1000, size=8)
        b = coerce_rng(42).integers(0, 1000, size=8)
        assert np.array_equal(a, b)
        assert isinstance(coerce_rng(None), np.random.Generator)

    def test_matches_default_rng(self):
        import numpy as np

        from repro.core.params import coerce_rng

        a = coerce_rng(3).integers(0, 1000, size=8)
        b = np.random.default_rng(3).integers(0, 1000, size=8)
        assert np.array_equal(a, b)

    def test_algorithms_normalize_identically(self):
        """Every spanner construction sees the same generator stream for a
        given integer seed — the dedup's observable contract."""
        import numpy as np

        from repro.core import baswana_sen, general_tradeoff
        from repro.graphs import erdos_renyi

        g = erdos_renyi(64, 0.2, weights="uniform", rng=0)
        for build in (
            lambda r: baswana_sen(g, 3, rng=r),
            lambda r: general_tradeoff(g, 4, 2, rng=r),
        ):
            seeded = build(11)
            generated = build(np.random.default_rng(11))
            assert np.array_equal(seeded.edge_ids, generated.edge_ids)
