"""Reusable randomized scenario generators — one vocabulary for the suite.

The property tests (hypothesis) and the certification subsystem both need
"a random scenario": a graph (either as a built :class:`WeightedGraph` or
as a ``family:args`` spec string), a stretch parameter ``k``, an optional
growth parameter ``t``, a weight model, and a seed.  This module is the
single home for those generators, so a new scenario family added here is
automatically exercised by every consumer.

Strategies
----------
``random_graph``
    An arbitrary simple weighted/unweighted graph (direct edge sampling —
    covers degenerate shapes no generator family produces).
``graph_spec_strings``
    A canonical graph-spec string drawn across the generator families the
    runner/certifier vocabulary exposes (small sizes, always buildable).
``spanner_ks`` / ``growth_ts`` / ``seeds`` / ``weight_models``
    The parameter axes.
``scenarios``
    A full (graph_spec, k, t, weights, seed) scenario tuple.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import strategies as st

from repro.graphs import WeightedGraph
from repro.graphs.specs import GraphSpec

__all__ = [
    "random_graph",
    "graph_spec_strings",
    "spanner_ks",
    "growth_ts",
    "seeds",
    "weight_models",
    "scenarios",
]

#: Weight models every generator family accepts.
weight_models = st.sampled_from(["unit", "uniform", "exponential"])

#: The stretch parameter range the small-n guarantees are checked at.
spanner_ks = st.integers(min_value=2, max_value=8)

#: The growth parameter range (``None`` = paper default).
growth_ts = st.one_of(st.none(), st.integers(min_value=1, max_value=4))

#: RNG seeds.
seeds = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def random_graph(draw, max_n: int = 40, max_m: int = 160, weighted: bool = True):
    """An arbitrary simple graph via direct edge sampling.

    Unlike :func:`graph_spec_strings`, this covers degenerate shapes (empty
    edge sets, isolated vertices, disconnected scatters) that no generator
    family produces — keep both in play.
    """
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=min(max_m, n * (n - 1) // 2)))
    seed = draw(seeds)
    rng = np.random.default_rng(seed)
    max_pairs = n * (n - 1) // 2
    codes = rng.choice(max_pairs, size=m, replace=False) if m else np.zeros(0, np.int64)
    us, vs = [], []
    for c in codes:
        # decode triangular index
        u = int(n - 2 - math.floor(math.sqrt(-8 * c + 4 * n * (n - 1) - 7) / 2 - 0.5))
        v = int(c + u + 1 - n * (n - 1) // 2 + (n - u) * ((n - u) - 1) // 2)
        us.append(u)
        vs.append(v)
    if weighted:
        w = rng.uniform(0.5, 50.0, size=m)
    else:
        w = np.ones(m)
    return WeightedGraph(n, np.asarray(us, np.int64), np.asarray(vs, np.int64), w)


@st.composite
def graph_spec_strings(draw, max_n: int = 48) -> str:
    """A canonical ``family:args`` spec string, small enough to build and
    certify inside a property test.

    Spans every generator regime the conformance matrix distinguishes:
    random (``er``/``gnm``), skewed (``ba``), geometric (``geo``),
    high-girth lattices (``grid``/``torus``), cluster-structured
    (``cliques``), dense (``complete``), and the degenerate named shapes.
    """
    family = draw(
        st.sampled_from(
            [
                "er",
                "gnm",
                "ba",
                "geo",
                "grid",
                "torus",
                "cliques",
                "complete",
                "cycle",
                "double-cycle",
                "path",
                "star",
                "tree",
            ]
        )
    )
    if family == "er":
        n = draw(st.integers(4, max_n))
        p = draw(st.floats(0.05, 0.5))
        text = f"er:{n}:{round(p, 3)}"
    elif family == "gnm":
        n = draw(st.integers(4, max_n))
        m = draw(st.integers(0, min(4 * n, n * (n - 1) // 2)))
        text = f"gnm:{n}:{m}"
    elif family == "ba":
        n = draw(st.integers(6, max_n))
        attach = draw(st.integers(1, 3))
        text = f"ba:{n}:{attach}"
    elif family == "geo":
        n = draw(st.integers(4, max_n))
        radius = draw(st.floats(0.15, 0.6))
        text = f"geo:{n}:{round(radius, 3)}"
    elif family in ("grid", "torus"):
        rows = draw(st.integers(2, 7))
        cols = draw(st.integers(2, 7))
        text = f"{family}:{rows}:{cols}"
    elif family == "cliques":
        num = draw(st.integers(3, 6))
        size = draw(st.integers(2, 6))
        text = f"cliques:{num}:{size}"
    elif family == "complete":
        text = f"complete:{draw(st.integers(3, 24))}"
    elif family == "cycle":
        text = f"cycle:{draw(st.integers(3, max_n))}"
    elif family == "double-cycle":
        # The generator requires an even n >= 6 (two disjoint n/2-cycles).
        text = f"double-cycle:{2 * draw(st.integers(3, max(3, max_n // 2)))}"
    else:  # path, star, tree
        text = f"{family}:{draw(st.integers(2, max_n))}"
    # Canonicalize (and assert the vocabulary stays parseable).
    return GraphSpec.parse(text).format()


@st.composite
def scenarios(draw, max_n: int = 48):
    """A full scenario: ``(graph_spec, k, t, weights, seed)``.

    The same vocabulary the certifier's :class:`repro.runner.TrialSpec`
    speaks, so a hypothesis counterexample is directly replayable as
    ``repro verify --algorithm A --graph <spec> -k <k> --seed <seed>``.
    """
    return (
        draw(graph_spec_strings(max_n=max_n)),
        draw(spanner_ks),
        draw(growth_ts),
        draw(weight_models),
        draw(st.integers(0, 10**6)),
    )
