"""Seed-for-seed equivalence of the vectorized hot loops vs their frozen
pre-vectorization references, plus the structured discard-record machinery.

The PR that vectorized the streaming/unweighted/CC hot paths kept the old
implementations verbatim (``streaming_spanner_reference``,
``unweighted_spanner_reference``, ``grow_balls_mpc_reference``, the scalar
``_capped_bfs``); these tests pin the contract that the fast paths emit
**bit-identical** results on every fixed seed, and that the paper-bound
certificates still hold through ``repro.verify.certify``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.unweighted import (
    _capped_bfs,
    unweighted_spanner,
    unweighted_spanner_reference,
)
from repro.graphs import erdos_renyi, grid_graph, star_graph
from repro.graphs.distances import batched_capped_bfs
from repro.graphs.graph import sorted_pair_lookup
from repro.mpc_impl import grow_balls_mpc, grow_balls_mpc_reference
from repro.streaming import (
    EdgeStream,
    streaming_spanner,
    streaming_spanner_reference,
)
from repro.streaming.spanner_stream import _DiscardRecord
from repro.verify import certify

from tests.strategies import random_graph, spanner_ks


# ---------------------------------------------------------------------------
# Streaming spanner
# ---------------------------------------------------------------------------


class TestStreamingEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [2, 3, 4, 8, 16])
    def test_bit_identical_edge_sets(self, seed, k):
        g = erdos_renyi(150, 0.12, weights="uniform", rng=seed)
        a = streaming_spanner(g, k, rng=seed, order_seed=seed, chunk=64)
        b = streaming_spanner_reference(g, k, rng=seed, order_seed=seed, chunk=64)
        assert np.array_equal(a.edge_ids, b.edge_ids)
        assert a.phase2_added == b.phase2_added

    def test_stream_accounting_identical(self):
        g = erdos_renyi(120, 0.15, weights="uniform", rng=7)
        a = streaming_spanner(g, 8, rng=7)
        b = streaming_spanner_reference(g, 8, rng=7)
        # Pass counts, peak working set, per-pass working sets, edge volume.
        assert a.extra["stream"] == b.extra["stream"]
        assert [s.num_added for s in a.stats] == [s.num_added for s in b.stats]
        assert [s.num_alive_edges for s in a.stats] == [
            s.num_alive_edges for s in b.stats
        ]

    def test_grid_and_star(self):
        for g in (grid_graph(15, 15), star_graph(80)):
            for k in (2, 4, 8):
                a = streaming_spanner(g, k, rng=3)
                b = streaming_spanner_reference(g, k, rng=3)
                assert np.array_equal(a.edge_ids, b.edge_ids)

    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_property_bit_identical(self, data):
        g = data.draw(random_graph(max_n=30, max_m=120))
        k = data.draw(spanner_ks)
        seed = data.draw(st.integers(0, 1000))
        a = streaming_spanner(g, k, rng=seed, order_seed=seed)
        b = streaming_spanner_reference(g, k, rng=seed, order_seed=seed)
        assert np.array_equal(a.edge_ids, b.edge_ids)


class TestPassesChunked:
    def test_passes_is_thin_wrapper(self):
        g = erdos_renyi(100, 0.2, weights="uniform", rng=1)
        a = [eid.tolist() for *_, eid in EdgeStream(g, chunk=32).passes()]
        b = [eid.tolist() for *_, eid in EdgeStream(g, chunk=32).passes_chunked()]
        assert a == b

    def test_chunk_size_override_changes_batching_not_order(self):
        g = erdos_renyi(100, 0.2, weights="uniform", rng=1)
        s = EdgeStream(g, chunk=32)
        fine = np.concatenate([eid for *_, eid in s.passes_chunked(8)])
        coarse = np.concatenate([eid for *_, eid in s.passes_chunked(10**6)])
        assert np.array_equal(fine, coarse)
        assert s.stats.edges_streamed == 2 * g.m

    def test_rejects_bad_chunk_size(self):
        g = erdos_renyi(20, 0.3, weights="uniform", rng=0)
        with pytest.raises(ValueError):
            list(EdgeStream(g).passes_chunked(0))


class TestDiscardRecords:
    """The structured cluster-pair discard mask (satellite: no more
    ``c * n + b`` integer dead keys)."""

    def test_probe_matches_membership(self):
        rng = np.random.default_rng(0)
        labels = np.arange(16, dtype=np.int64)
        for _ in range(50):
            d = int(rng.integers(0, 20))
            da = rng.integers(0, 16, d)
            db = rng.integers(0, 16, d)
            order = np.lexsort((db, da))
            rec = _DiscardRecord(labels, da[order], db[order])
            qa = rng.integers(0, 16, 64)
            qb = rng.integers(0, 16, 64)
            pairs = set(zip(da.tolist(), db.tolist()))
            expect = np.array(
                [(int(a), int(b)) in pairs for a, b in zip(qa, qb)], dtype=bool
            )
            assert np.array_equal(rec.probe(qa, qb), expect)

    def test_sorted_pair_lookup_matches_membership(self):
        rng = np.random.default_rng(1)
        for _ in range(60):
            d = int(rng.integers(0, 25))
            q = int(rng.integers(0, 40))
            ha = rng.integers(0, 10, d)
            hb = rng.integers(0, 10, d)
            order = np.lexsort((hb, ha))
            ha, hb = ha[order], hb[order]
            qa = rng.integers(0, 12, q)
            qb = rng.integers(0, 12, q)
            pairs = set(zip(ha.tolist(), hb.tolist()))
            expect = np.array(
                [(int(a), int(b)) in pairs for a, b in zip(qa, qb)], dtype=bool
            )
            assert np.array_equal(sorted_pair_lookup(ha, hb, qa, qb), expect)

    def test_later_passes_skip_discarded_groups(self):
        # Regression (first fixed in PR 1, representation changed in this
        # PR): an edge whose cluster-pair group was consumed by an earlier
        # epoch must never be re-selected as a later pass's pair minimum.
        # The reference implementation has the semantics pinned; equality
        # with it on a multi-epoch run exercises exactly that suppression.
        g = erdos_renyi(200, 0.1, weights="uniform", rng=11)
        a = streaming_spanner(g, 16, rng=11)  # 4 epochs + final pass
        b = streaming_spanner_reference(g, 16, rng=11)
        assert len(a.stats) >= 2  # multi-epoch, so discard records were live
        assert np.array_equal(a.edge_ids, b.edge_ids)


# ---------------------------------------------------------------------------
# Unweighted spanner + batched capped BFS
# ---------------------------------------------------------------------------


class TestUnweightedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_bit_identical_edge_sets(self, seed, k):
        g = erdos_renyi(90, 0.08, weights="unit", rng=seed)
        a = unweighted_spanner(g, k, rng=seed)
        b = unweighted_spanner_reference(g, k, rng=seed)
        assert np.array_equal(a.edge_ids, b.edge_ids)
        assert a.extra == b.extra  # sparse/dense split, hitters, fallbacks...

    @pytest.mark.parametrize("ball_cap", [4, 8, 10**6])
    def test_cap_regimes(self, ball_cap):
        g = erdos_renyi(90, 0.1, weights="unit", rng=5)
        a = unweighted_spanner(g, 3, rng=5, ball_cap=ball_cap)
        b = unweighted_spanner_reference(g, 3, rng=5, ball_cap=ball_cap)
        assert np.array_equal(a.edge_ids, b.edge_ids)

    @pytest.mark.parametrize("gamma", [0.3, 0.5, 0.75, 1.0])
    def test_gamma_regimes(self, gamma):
        g = erdos_renyi(120, 0.1, weights="unit", rng=2)
        a = unweighted_spanner(g, 3, gamma=gamma, rng=2)
        b = unweighted_spanner_reference(g, 3, gamma=gamma, rng=2)
        assert np.array_equal(a.edge_ids, b.edge_ids)

    def test_star_and_grid(self):
        for g in (star_graph(200), grid_graph(10, 10)):
            a = unweighted_spanner(g, 2, rng=4, ball_cap=8)
            b = unweighted_spanner_reference(g, 2, rng=4, ball_cap=8)
            assert np.array_equal(a.edge_ids, b.edge_ids)

    @given(st.data())
    @settings(max_examples=10, deadline=None)
    def test_property_bit_identical(self, data):
        g = data.draw(random_graph(max_n=30, max_m=100, weighted=False))
        k = data.draw(st.integers(2, 5))
        seed = data.draw(st.integers(0, 1000))
        a = unweighted_spanner(g, k, rng=seed)
        b = unweighted_spanner_reference(g, k, rng=seed)
        assert np.array_equal(a.edge_ids, b.edge_ids)


class TestBatchedCappedBFS:
    def _check(self, g, hops, cap):
        indptr, ball, pedge, ppos, complete = batched_capped_bfs(
            g, np.arange(g.n), hops, cap
        )
        for v in range(g.n):
            order, parent, comp = _capped_bfs(g, v, hops, cap)
            assert ball[indptr[v] : indptr[v + 1]].tolist() == order
            assert bool(complete[v]) == comp
            pe = pedge[indptr[v] : indptr[v + 1]]
            for i, x in enumerate(order):
                assert parent[x] == pe[i]
            # parent_pos points at the BFS parent's flat slot.
            pp = ppos[indptr[v] : indptr[v + 1]]
            for i, x in enumerate(order):
                if i == 0:
                    assert pp[0] == indptr[v]
                else:
                    eid = int(pe[i])
                    a, b = int(g.edges_u[eid]), int(g.edges_v[eid])
                    assert ball[pp[i]] == (a if b == x else b)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_er_scan_order_and_parents(self, seed):
        g = erdos_renyi(70, 0.1, weights="unit", rng=seed)
        self._check(g, 8, 10)
        self._check(g, 3, 5)
        self._check(g, 8, 10**6)

    def test_degenerate_hops_and_caps(self):
        g = erdos_renyi(40, 0.15, weights="unit", rng=2)
        self._check(g, 0, 5)  # hops=0: ball is just the source
        self._check(g, 1, 5)
        self._check(star_graph(50), 4, 1)  # append-then-check takes one
        self._check(star_graph(50), 4, 2)

    def test_subset_of_sources(self):
        g = grid_graph(8, 8)
        srcs = np.array([0, 17, 63], dtype=np.int64)
        indptr, ball, _, _, complete = batched_capped_bfs(g, srcs, 4, 12)
        for i, v in enumerate(srcs):
            order, _, comp = _capped_bfs(g, int(v), 4, 12)
            assert ball[indptr[i] : indptr[i + 1]].tolist() == order
            assert bool(complete[i]) == comp

    def test_rejects_bad_args(self):
        g = grid_graph(3, 3)
        with pytest.raises(ValueError):
            batched_capped_bfs(g, np.array([0]), -1, 4)
        with pytest.raises(ValueError):
            batched_capped_bfs(g, np.array([0]), 2, 0)
        with pytest.raises(ValueError):
            batched_capped_bfs(g, np.array([99]), 2, 4)


# ---------------------------------------------------------------------------
# MPC ball growing
# ---------------------------------------------------------------------------


class TestBallGrowingEquivalence:
    @pytest.mark.parametrize("radius", [0, 1, 2, 4, 8])
    @pytest.mark.parametrize("cap", [1, 4, 8, 10**6])
    def test_er_balls_flags_and_accounting(self, radius, cap):
        g = erdos_renyi(60, 0.1, weights="unit", rng=1)
        a = grow_balls_mpc(g, radius, cap=cap)
        b = grow_balls_mpc_reference(g, radius, cap=cap)
        assert np.array_equal(a.complete, b.complete)
        assert a.rounds == b.rounds
        assert a.total_words == b.total_words
        for v in range(g.n):
            assert np.array_equal(a.balls[v], b.balls[v])

    def test_star_center_prefix_capping(self):
        # The capped ball is a prefix-union truncation, order-dependent on
        # the merge sequence — the exact case the scalar early-break makes
        # subtle.
        g = star_graph(120)
        a = grow_balls_mpc(g, 4, cap=8)
        b = grow_balls_mpc_reference(g, 4, cap=8)
        for v in range(g.n):
            assert np.array_equal(a.balls[v], b.balls[v])


# ---------------------------------------------------------------------------
# Paper-bound certificates still hold through the vectorized paths
# ---------------------------------------------------------------------------


class TestCertifiedThroughVerify:
    @given(st.data())
    @settings(max_examples=6, deadline=None)
    def test_streaming_certificates(self, data):
        n = data.draw(st.integers(24, 60))
        p = data.draw(st.sampled_from([0.1, 0.2]))
        k = data.draw(st.integers(2, 6))
        seed = data.draw(st.integers(0, 100))
        cert = certify("streaming", f"er:{n}:{p}", k=k, seed=seed, slack=8.0)
        assert cert.ok, cert.to_json()

    @given(st.data())
    @settings(max_examples=6, deadline=None)
    def test_unweighted_certificates(self, data):
        n = data.draw(st.integers(24, 60))
        p = data.draw(st.sampled_from([0.1, 0.2]))
        k = data.draw(st.integers(2, 5))
        seed = data.draw(st.integers(0, 100))
        cert = certify(
            "unweighted", f"er:{n}:{p}", k=k, seed=seed, weights="unit", slack=8.0
        )
        assert cert.ok, cert.to_json()
