"""Tests for Appendix B.2.1 ball growing under MPC accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import bfs_hops, erdos_renyi, grid_graph, star_graph
from repro.mpc_impl import grow_balls_mpc


class TestBallGrowing:
    def test_uncapped_balls_match_bfs(self):
        g = grid_graph(8, 8)
        radius = 4
        res = grow_balls_mpc(g, radius, cap=10**6)
        for v in (0, 20, 63):
            h = bfs_hops(g, v)
            expect = set(np.flatnonzero((h >= 0) & (h <= radius)).tolist())
            # Doubling may overshoot hops (radius rounded up to a power of
            # two), so the ball must at least contain the exact one.
            assert expect <= set(res.balls[v].tolist())
            assert res.complete[v]

    def test_cap_marks_dense(self):
        g = erdos_renyi(100, 0.3, rng=1)
        res = grow_balls_mpc(g, 4, cap=8)
        assert (~res.complete).sum() > 0
        for v in range(g.n):
            assert res.balls[v].size <= 8

    def test_star_center_explosion_within_memory(self):
        # The Appendix B.2.1 worked example: the star center is requested
        # by everyone; total traffic must stay within O(n^{1+gamma}).
        g = star_graph(300)
        res = grow_balls_mpc(g, 4, gamma=0.5)
        assert res.total_words <= res.memory_budget()
        assert res.rounds > 0

    def test_rounds_scale_with_log_radius(self):
        g = grid_graph(10, 10)
        r2 = grow_balls_mpc(g, 2, cap=10**6).rounds
        r16 = grow_balls_mpc(g, 16, cap=10**6).rounds
        assert r16 > r2

    def test_radius_zero_and_one(self):
        g = grid_graph(4, 4)
        res = grow_balls_mpc(g, 1, cap=10**6)
        for v in range(g.n):
            expect = {v} | set(g.neighbors(v).tolist())
            assert set(res.balls[v].tolist()) == expect

    def test_rejects_negative_radius(self):
        g = grid_graph(3, 3)
        with pytest.raises(ValueError):
            grow_balls_mpc(g, -1)

    def test_ball_connected_subset(self):
        # Even capped balls are connected supersets of small BFS balls.
        g = erdos_renyi(80, 0.1, rng=2)
        res = grow_balls_mpc(g, 8, cap=12)
        for v in range(0, 80, 13):
            ball = set(res.balls[v].tolist())
            assert v in ball
