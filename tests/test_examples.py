"""Smoke tests: every example script must run clean and print its story.

These execute the real scripts in subprocesses (the same way a user runs
them), so they catch API drift between the library and the documentation
surface.  The slowest scripts are exercised once with a generous timeout.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stderr}"
    return proc.stdout


@pytest.mark.slow
def test_quickstart():
    out = _run("quickstart.py")
    assert "spanner:" in out and "stretch:" in out and "oracle" in out


@pytest.mark.slow
def test_tradeoff_explorer():
    out = _run("tradeoff_explorer.py")
    assert "closed-form" in out


@pytest.mark.slow
def test_mpc_cluster_simulation():
    out = _run("mpc_cluster_simulation.py")
    assert "machines" in out and "APSP pipeline" in out


@pytest.mark.slow
def test_congested_clique_apsp():
    out = _run("congested_clique_apsp.py")
    assert "Theorem 8.1" in out and "approximation" in out


@pytest.mark.slow
def test_road_network_oracle():
    out = _run("road_network_oracle.py")
    assert "oracle spanner" in out


@pytest.mark.slow
def test_social_network_distances():
    out = _run("social_network_distances.py")
    assert "Baswana" in out and "Takeaway" in out


@pytest.mark.slow
def test_sketches_and_streaming():
    out = _run("sketches_and_streaming.py")
    assert "Thorup" in out and "Streaming" in out


@pytest.mark.slow
def test_sweep_runner():
    out = _run("sweep_runner.py")
    assert "18 trials" in out and "resumed" in out
