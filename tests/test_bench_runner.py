"""Tier-1 smoke wiring for the runner benchmark.

Runs ``benchmarks/bench_runner.py`` in smoke mode (tiny graphs) on every
test run: the bench itself asserts that the resume path executes zero
trials, so a regression in content-hash keying or artifact handling fails
the suite long before anyone looks at the timing numbers.

The parallel-speedup gate lives in :func:`bench_runner.speedup_gate` and is
tested twice: pure-logic on synthetic records (both verdicts plus the
single-CPU skip reason), and observably on real hardware — where the
observable test *skips with an explicit reason* on single-CPU machines
instead of burying the condition inside the bench script.
"""

from __future__ import annotations

import functools
import os
import sys

import pytest

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

from bench_runner import (  # noqa: E402
    format_table,
    multi_core_available,
    reference_plan,
    run_runner_bench,
    speedup_gate,
)


@functools.lru_cache(maxsize=1)
def smoke_record() -> dict:
    """One shared smoke-bench execution for every test in this module."""
    return run_runner_bench(smoke=True, jobs=2)


def test_reference_plan_shape():
    plan = reference_plan(smoke=True)
    trials = plan.trials()
    # 3 algorithms x 3 graph families x 2 seeds = the 18-trial protocol.
    assert len(trials) == 18
    assert len({t.algorithm for t in trials}) == 3
    assert len({t.graph for t in trials}) == 3
    assert len({t.seed for t in trials}) == 2


def test_smoke_mode_runs_and_resumes():
    record = smoke_record()
    assert record["num_trials"] == 18
    assert record["jobs1"]["executed"] == 18
    assert record["jobs4"]["executed"] == 18
    assert record["resume"]["executed"] == 0
    assert record["resume"]["skipped"] == 18
    table = format_table(record)
    assert "resume" in table and "18 trials" in table


def test_speedup_gate_skips_on_single_cpu_with_reason():
    record = {"cpu_count": 1, "speedup": 0.64, "config": {"jobs": 4}}
    ok, reason = speedup_gate(record)
    assert ok
    assert "single-CPU" in reason
    assert "not a regression" in reason


def test_speedup_gate_verdicts_on_multicore_records():
    passing = {"cpu_count": 4, "speedup": 2.1, "config": {"jobs": 4}}
    failing = {"cpu_count": 4, "speedup": 1.05, "config": {"jobs": 4}}
    ok, reason = speedup_gate(passing)
    assert ok and "meets" in reason
    ok, reason = speedup_gate(failing)
    assert not ok and "below" in reason


@pytest.mark.skipif(
    not multi_core_available(),
    reason="parallel speedup needs >=2 CPUs; on a single-CPU machine the gate "
    "is skipped explicitly (see speedup_gate) rather than asserted",
)
def test_parallel_not_pathological_on_multicore():
    # Smoke-scale trials are tiny, so we assert "parallel is not absurdly
    # slower", not the full 1.2x production gate (that one runs against the
    # full config in scripts/bench_snapshot.py --suite runner).
    record = smoke_record()
    ok, reason = speedup_gate(record, minimum=0.5)
    assert ok, reason
