"""Tier-1 smoke wiring for the runner benchmark.

Runs ``benchmarks/bench_runner.py`` in smoke mode (tiny graphs) on every
test run: the bench itself asserts that the resume path executes zero
trials, so a regression in content-hash keying or artifact handling fails
the suite long before anyone looks at the timing numbers.
"""

from __future__ import annotations

import os
import sys

BENCH_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks"
)
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

from bench_runner import format_table, reference_plan, run_runner_bench  # noqa: E402


def test_reference_plan_shape():
    plan = reference_plan(smoke=True)
    trials = plan.trials()
    # 3 algorithms x 3 graph families x 2 seeds = the 18-trial protocol.
    assert len(trials) == 18
    assert len({t.algorithm for t in trials}) == 3
    assert len({t.graph for t in trials}) == 3
    assert len({t.seed for t in trials}) == 2


def test_smoke_mode_runs_and_resumes():
    record = run_runner_bench(smoke=True, jobs=2)
    assert record["num_trials"] == 18
    assert record["jobs1"]["executed"] == 18
    assert record["jobs4"]["executed"] == 18
    assert record["resume"]["executed"] == 0
    assert record["resume"]["skipped"] == 18
    table = format_table(record)
    assert "resume" in table and "18 trials" in table
