"""Tier-1 smoke wiring for the distance-layer benchmark.

Runs ``benchmarks/bench_distance_layer.py`` in smoke mode (tiny n) on every
test run: the bench itself asserts that the vectorized sketch and batched
``pairwise_distances`` answers are bit-identical to the retained seed
implementations, so a regression in either path fails the suite long before
anyone looks at timing numbers.
"""

from __future__ import annotations

import os
import sys

BENCH_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks")
if BENCH_DIR not in sys.path:
    sys.path.insert(0, BENCH_DIR)

from bench_distance_layer import format_table, run_distance_layer_bench  # noqa: E402


def test_smoke_mode_runs_and_matches_seed():
    record = run_distance_layer_bench(smoke=True, num_query_pairs=300)
    assert record["config"]["smoke"] is True
    assert record["sketch_preprocess"]["queries_bit_identical"]
    # Timing at smoke scale is noisy; only sanity-check the record shape.
    assert record["sketch_preprocess"]["vectorized_seconds"] > 0
    assert record["pairwise_distances"]["vectorized_seconds"] > 0
    assert record["graph"]["n"] == record["config"]["n"]


def test_format_table_renders():
    record = run_distance_layer_bench(smoke=True, num_query_pairs=100)
    table = format_table(record)
    assert "sketch preprocess" in table
    assert "bit-identical: True" in table
