"""Tests for the unified DistanceProvider layer (repro.service.provider).

Covers the ISSUE 8 acceptance invariants: the provider protocol and its
three adapters, the ``query`` vs ``query_many`` bit-identity property
(hypothesis, including unreachable pairs, dead-pivot sketch walks, and
int32/int64 artifacts), the tiered sketch+hot-row refinement, the
``PlanTarget``/``PlannedProvider`` routing rules, the ``bundle`` artifact
kind, and the planner-mode :class:`QueryEngine`.
"""

from __future__ import annotations

import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import stretch_bound as general_stretch_bound
from repro.distances.sketches import DistanceSketch
from repro.graphs import erdos_renyi
from repro.graphs.distances import batched_sssp
from repro.service import (
    BACKENDS,
    ArtifactStore,
    DistanceProvider,
    PlanTarget,
    PlannedProvider,
    ProviderBundle,
    QueryEngine,
    RowProvider,
    SketchProvider,
    TieredProvider,
    build_providers,
)

from tests.strategies import random_graph


def _bundle(g, *, k=3, t=2, seed=0, spanner=None):
    """A ProviderBundle over ``g`` (spanner defaults to ``g`` itself —
    a valid spanner of any graph, so no build is needed)."""
    return ProviderBundle(
        graph=g,
        spanner=g if spanner is None else spanner,
        k=k,
        t=t,
        t_effective=t,
        sketch=DistanceSketch(g, k, rng=seed),
    )


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(140, 0.07, weights="uniform", rng=7)


@pytest.fixture(scope="module")
def bundle(g):
    return _bundle(g, k=3, seed=0)


@pytest.fixture()
def providers(bundle):
    return build_providers(bundle, cache_rows=64)


class TestProtocol:
    def test_adapters_satisfy_the_protocol(self, providers):
        for p in providers.values():
            assert isinstance(p, DistanceProvider)
        assert isinstance(PlannedProvider(providers), DistanceProvider)

    def test_names_and_stretch_bounds(self, bundle, providers):
        assert set(providers) == {"exact", "oracle", "sketch", "tiered"}
        assert providers["exact"].stretch_bound == 1.0
        assert providers["oracle"].stretch_bound == pytest.approx(
            general_stretch_bound(bundle.k, bundle.t_effective)
        )
        assert providers["sketch"].stretch_bound == 2.0 * bundle.k - 1.0
        # Tiered only ever improves on the sketch answer.
        assert providers["tiered"].stretch_bound == providers["sketch"].stretch_bound

    def test_cost_models_are_json_ready(self, providers):
        import json

        for p in providers.values():
            model = p.cost_model()
            assert model["kind"] in {"rows", "sketch", "tiered"}
            json.dumps(model)
        json.dumps(PlannedProvider(providers).cost_model())

    def test_stats_count_and_time(self, providers):
        p = providers["sketch"]
        p.query_many(np.array([[0, 1], [2, 3]]))
        p.query(0, 1)
        s = p.stats()
        assert s["queries_served"] == 3 and s["batches"] == 2
        assert s["ewma_us_per_query"] is not None
        assert s["observed_p99_us"] is not None


class TestUpperBoundContract:
    def test_answers_bounded_by_declared_stretch(self, g, bundle, providers):
        rng = np.random.default_rng(3)
        pairs = rng.integers(0, g.n, size=(256, 2))
        truth_rows = batched_sssp(g, np.unique(pairs[:, 0]))
        row_of = {int(s): truth_rows[i] for i, s in enumerate(np.unique(pairs[:, 0]))}
        truth = np.array([row_of[int(u)][v] for u, v in pairs])
        for name, p in providers.items():
            out = p.query_many(pairs)
            mask = np.isfinite(truth) & (truth > 0)
            assert np.all(out[mask] >= truth[mask] - 1e-9), name
            assert np.all(
                out[mask] <= p.stretch_bound * truth[mask] + 1e-6
            ), name
            # inf exactly when disconnected
            assert np.array_equal(np.isfinite(out), np.isfinite(truth)), name


class TestQueryVsQueryMany:
    """The satellite property: single and batched answering bit-identical
    for every provider, including unreachable pairs and dead-pivot sketch
    walks (sparse random graphs disconnect, leaving levels unreachable),
    across int32 (store-loaded) and int64 (fresh) artifacts."""

    @given(g=random_graph(max_n=24, max_m=40), k=st.integers(2, 4), data=st.data())
    @settings(max_examples=12, deadline=None)
    def test_bit_identity_fresh_and_roundtripped(self, g, k, data):
        seed = data.draw(st.integers(0, 2**16), label="seed")
        rng = np.random.default_rng(seed)
        pairs = rng.integers(0, g.n, size=(10, 2))
        pairs[0, 1] = pairs[0, 0]  # self-pair

        fresh = _bundle(g, k=k, seed=seed)
        with tempfile.TemporaryDirectory() as work:
            store = ArtifactStore(work)
            key = store.save_bundle(
                g, fresh.spanner, fresh.sketch, k=k, t=fresh.t
            )
            loaded = store.load_bundle(key)
            # The store downcasts index arrays to int32 at these sizes.
            assert loaded.sketch.pivot.dtype != fresh.sketch.pivot.dtype or (
                fresh.sketch.pivot.dtype == np.int32
            )
            for bundle in (fresh, loaded):
                providers = build_providers(bundle, cache_rows=8)
                # Warm a couple of oracle rows so the tiered peek path has
                # hot rows to refine from (its answers depend on cache
                # state, which is fixed between the two calls below).
                providers["oracle"].query_many(pairs[:4])
                for name, p in providers.items():
                    batched = p.query_many(pairs)
                    singles = np.array([p.query(int(u), int(v)) for u, v in pairs])
                    assert np.array_equal(batched, singles), name
            # And the two artifact dtypes answer identically.
            for name in ("exact", "oracle", "sketch"):
                a = build_providers(fresh)[name].query_many(pairs)
                b = build_providers(loaded)[name].query_many(pairs)
                assert np.array_equal(a, b), name

    def test_dead_pivot_walks_hit_inf(self, disconnected):
        """Vertices with no reachable level-1 pivot must answer inf, and
        query/query_many must agree bit-for-bit on them."""
        sk = DistanceSketch(disconnected, 3, rng=0)
        assert not np.isfinite(sk.pivot_dist[1]).all()  # dead pivots exist
        p = SketchProvider(sk)
        # Cross-component + isolated-vertex pairs are unreachable.
        pairs = np.array([[0, 50], [82, 3], [84, 83], [0, 1]])
        batched = p.query_many(pairs)
        singles = np.array([p.query(int(u), int(v)) for u, v in pairs])
        assert np.array_equal(batched, singles)
        assert not np.isfinite(batched[:3]).any()


class TestTiered:
    def test_refines_from_hot_rows_only(self, g, bundle):
        providers = build_providers(bundle, cache_rows=64)
        tiered, oracle, sketch = (
            providers["tiered"],
            providers["oracle"],
            providers["sketch"],
        )
        rng = np.random.default_rng(1)
        pairs = rng.integers(0, g.n, size=(64, 2))

        # Cold caches: tiered == sketch, and no rows were solved for it.
        before = oracle.rows_solved
        cold = tiered.query_many(pairs)
        assert oracle.rows_solved == before
        assert np.array_equal(cold, sketch.sketch.query_many(pairs))

        # Warm the rows for these sources; now tiered answers the
        # elementwise minimum of sketch and the hot row.
        oracle.query_many(pairs)
        hot = tiered.query_many(pairs)
        rows = {int(s): oracle.peek_row(int(s)) for s in np.unique(pairs[:, 0])}
        expected = np.minimum(
            sketch.sketch.query_many(pairs),
            np.array([rows[int(u)][v] for u, v in pairs]),
        )
        assert np.array_equal(hot, expected)
        assert np.all(hot <= cold + 1e-12)
        assert tiered.refined > 0


class TestPlanTarget:
    def test_validation(self):
        with pytest.raises(ValueError):
            PlanTarget(max_stretch=0.5)
        with pytest.raises(ValueError):
            PlanTarget(p99_ms=0.0)
        assert PlanTarget().describe() == "backend=auto"
        assert "stretch<=3" in PlanTarget(max_stretch=3.0).describe()
        assert "p99<1" in PlanTarget(p99_ms=1.0).describe()

    def test_unknown_fixed_backend_rejected(self, providers):
        with pytest.raises(ValueError, match="unknown backend"):
            PlannedProvider(providers, PlanTarget(backend="bogus"))
        with pytest.raises(ValueError):
            PlannedProvider({})


class TestPlannedRouting:
    def test_fixed_backend_always_routes_there(self, providers):
        planner = PlannedProvider(providers, PlanTarget(backend="tiered"))
        pairs = np.array([[0, 1], [2, 3]])
        planner.query_many(pairs)
        planner.query(4, 5)
        assert planner.routed["tiered"] == 3
        assert sum(planner.routed.values()) == 3

    def test_explicit_override_beats_the_target(self, providers):
        planner = PlannedProvider(providers, PlanTarget(backend="sketch"))
        planner.query_many(np.array([[0, 1]]), backend="exact")
        planner.query(0, 1, backend="exact")
        assert planner.routed["exact"] == 2 and planner.routed["sketch"] == 0
        with pytest.raises(ValueError, match="unknown backend"):
            planner.query_many(np.array([[0, 1]]), backend="bogus")

    def test_stretch_cap_narrows_eligibility(self, providers):
        planner = PlannedProvider(providers, PlanTarget(max_stretch=1.0))
        assert planner.choose() == "exact"
        assert planner.stretch_bound == 1.0

    def test_stretch_cap_unmeetable_falls_back_to_most_accurate(self, bundle):
        subset = {
            n: p for n, p in build_providers(bundle).items() if n != "exact"
        }
        planner = PlannedProvider(subset, PlanTarget(max_stretch=1.0))
        # Nothing declares <= 1.0; the most accurate remaining backend wins.
        best = min(
            (p for n, p in subset.items() if n != "tiered"),
            key=lambda p: p.stretch_bound,
        )
        assert planner.choose() == best.name

    def test_probe_order_then_fastest_ewma(self, providers):
        planner = PlannedProvider(providers)
        pairs = np.array([[0, 1], [2, 3]])
        seen = [planner.choose() for _ in range(1)]
        # Unsampled backends are probed cheapest-declared-first.
        assert seen == ["sketch"]
        for _ in range(3):  # one probe batch each
            planner.query_many(pairs)
        assert {n for n, c in planner.routed.items() if c} == set(BACKENDS)
        # All sampled: route to the fastest observed EWMA.
        fastest = min(
            (planner.providers[n] for n in BACKENDS), key=lambda p: p.ewma_s
        )
        assert planner.choose() == fastest.name

    def test_p99_budget_picks_most_accurate_within_it(self, providers):
        # Accuracy order here is exact (1.0) < sketch (2k-1=5) < oracle
        # (~10 for k=3, t=2) — the planner must walk it, not BACKENDS
        # order.  exact busts the 1ms budget; sketch is next-most-accurate
        # but also busts; oracle fits.
        planner = PlannedProvider(providers, PlanTarget(p99_ms=1.0))
        lat = {"exact": 5e-3, "sketch": 5e-3, "oracle": 5e-4}
        for name, per_query in lat.items():
            p = planner.providers[name]
            p.ewma_s = per_query
            p._lat_ring.append(per_query)
        assert planner.choose() == "oracle"
        # Loosen only sketch: now it is the most accurate within budget.
        planner.providers["sketch"]._lat_ring[-1] = 1e-5
        assert planner.choose() == "sketch"
        # No backend meets the SLO: degrade to the fastest EWMA.
        planner.providers["sketch"]._lat_ring[-1] = 5e-3
        tight = PlannedProvider(providers, PlanTarget(p99_ms=0.01))
        assert tight.choose() == "oracle"

    def test_planner_stats_report_per_backend(self, providers):
        planner = PlannedProvider(providers, PlanTarget(backend="oracle"))
        planner.query_many(np.array([[0, 1]]))
        s = planner.stats()
        assert s["routed"]["oracle"] == 1
        assert set(s["backends"]) == set(providers)
        assert s["target"] == "backend=oracle"


class TestBundleArtifacts:
    def test_roundtrip_bit_identity(self, g, bundle, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.save_bundle(
            g, bundle.spanner, bundle.sketch, k=bundle.k, t=bundle.t
        )
        info = store.info(key)
        assert info.kind == "bundle"
        assert info.meta["n"] == g.n
        loaded = store.load_bundle(key)
        assert isinstance(loaded, ProviderBundle)
        rng = np.random.default_rng(2)
        pairs = rng.integers(0, g.n, size=(128, 2))
        fresh_p = build_providers(bundle)
        loaded_p = build_providers(loaded)
        for name in ("exact", "oracle", "sketch"):
            assert np.array_equal(
                fresh_p[name].query_many(pairs), loaded_p[name].query_many(pairs)
            ), name

    def test_mismatched_sizes_rejected(self, g, bundle, tmp_path):
        other = erdos_renyi(32, 0.2, weights="uniform", rng=0)
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.save_bundle(g, other, bundle.sketch, k=3)
        with pytest.raises(ValueError):
            store.save_bundle(
                other, other, bundle.sketch, k=3
            )  # sketch built on g


class TestEngineWithBundle:
    def test_backends_and_routing(self, g, bundle):
        engine = QueryEngine(bundle, target=PlanTarget(backend="auto"))
        assert engine.backends() == ("exact", "oracle", "sketch", "tiered")
        pairs = np.array([[0, 5], [3, 9]])
        exact = engine.query_many(pairs, backend="exact")
        sketch = engine.query_many(pairs, backend="sketch")
        assert np.all(sketch >= exact - 1e-9)
        assert engine.query(0, 5, backend="exact") == exact[0]
        stats = engine.stats()
        assert stats["backend"] == "planned"
        assert stats["planner"]["routed"]["exact"] == 3
        assert {"hits", "misses", "hit_rate"} <= set(stats["cache"])
        engine.close()

    def test_single_backend_engine_rejects_backend(self, g):
        engine = QueryEngine(g)
        assert engine.backends() == ()
        with pytest.raises(ValueError, match="single fixed backend"):
            engine.query_many(np.array([[0, 1]]), backend="sketch")
        with pytest.raises(ValueError, match="single fixed backend"):
            engine.query(0, 1, backend="sketch")
        engine.close()

    def test_unknown_backend_rejected(self, bundle):
        engine = QueryEngine(bundle)
        with pytest.raises(ValueError, match="unknown backend"):
            engine.query_many(np.array([[0, 1]]), backend="bogus")
        engine.close()

    def test_target_requires_bundle(self, g):
        with pytest.raises(ValueError, match="ProviderBundle"):
            QueryEngine(g, target=PlanTarget(backend="exact"))

    def test_from_store_with_target(self, g, bundle, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.save_bundle(
            g, bundle.spanner, bundle.sketch, k=bundle.k, t=bundle.t
        )
        with QueryEngine.from_store(
            store, key, target=PlanTarget(backend="sketch")
        ) as engine:
            pairs = np.array([[0, 7], [1, 3]])
            out = engine.query_many(pairs)
            assert np.array_equal(out, bundle.sketch.query_many(pairs))
            assert engine.stats()["planner"]["routed"]["sketch"] == 2
        # Generic load() returns the bundle too.
        assert isinstance(store.load(key), ProviderBundle)

    def test_sharded_oracle_rows_identical_to_serial(self, g, bundle, tmp_path):
        store = ArtifactStore(tmp_path)
        key = store.save_bundle(
            g, bundle.spanner, bundle.sketch, k=bundle.k, t=bundle.t
        )
        rng = np.random.default_rng(4)
        pairs = rng.integers(0, g.n, size=(96, 2))
        with QueryEngine.from_store(store, key) as serial:
            want = serial.query_many(pairs, backend="oracle")
        with QueryEngine.from_store(store, key, shards=2) as sharded:
            got = sharded.query_many(pairs, backend="oracle")
        assert np.array_equal(want, got)
