"""Tests for the distance oracle layer (Corollary 1.4 logical side)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import (
    SpannerDistanceOracle,
    approximate_sssp,
    measure_approximation,
    sssp_quality,
)
from repro.graphs import apsp, erdos_renyi, sssp


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(220, 0.12, weights="uniform", rng=99)


class TestOracle:
    def test_defaults_use_apsp_parameters(self, g):
        o = SpannerDistanceOracle(g, rng=0)
        import math

        assert o.k == max(2, round(math.log2(g.n)))

    def test_query_symmetric(self, g):
        o = SpannerDistanceOracle(g, rng=1)
        assert o.query(3, 7) == pytest.approx(o.query(7, 3))

    def test_query_self_zero(self, g):
        o = SpannerDistanceOracle(g, rng=2)
        assert o.query(5, 5) == 0.0

    def test_never_underestimates(self, g):
        o = SpannerDistanceOracle(g, rng=3)
        exact = apsp(g)
        approx = o.all_pairs()
        assert np.all(approx + 1e-9 >= exact)

    def test_within_guaranteed_stretch(self, g):
        o = SpannerDistanceOracle(g, rng=4)
        rep = measure_approximation(o, num_pairs=300, rng=5)
        assert rep.within_bound
        assert rep.mean_ratio <= rep.max_ratio

    def test_query_many_matches_query(self, g):
        o = SpannerDistanceOracle(g, rng=6)
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        many = o.query_many(pairs)
        each = [o.query(a, b) for a, b in pairs]
        assert np.allclose(many, each)

    def test_cache_reused(self, g):
        o = SpannerDistanceOracle(g, rng=7)
        a = o.distances_from(0)
        b = o.distances_from(0)
        assert a is b

    def test_bad_source(self, g):
        o = SpannerDistanceOracle(g, rng=8)
        with pytest.raises(ValueError):
            o.distances_from(10**6)

    def test_custom_parameters(self, g):
        o = SpannerDistanceOracle(g, k=3, t=2, rng=9)
        assert o.k == 3 and o.t == 2
        rep = measure_approximation(o, num_pairs=200, rng=10)
        assert rep.max_ratio <= o.guaranteed_stretch + 1e-9

    def test_empty_graph(self):
        from repro.graphs import WeightedGraph

        g0 = WeightedGraph.from_edges(5, [])
        o = SpannerDistanceOracle(g0, k=2, t=1, rng=0)
        assert np.isinf(o.query(0, 1))
        assert o.query(2, 2) == 0.0


class TestSSSPHelpers:
    def test_approximate_never_underestimates(self, g):
        d = approximate_sssp(g, 0, k=4, t=2, rng=11)
        exact = sssp(g, 0)
        assert np.all(d + 1e-9 >= exact)

    def test_quality_ratios(self, g):
        d = approximate_sssp(g, 0, k=4, t=2, rng=12)
        mx, mean = sssp_quality(g, d, 0)
        assert 1.0 <= mean <= mx

    def test_exact_on_spanner_equals_one(self, g):
        exact = sssp(g, 3)
        mx, mean = sssp_quality(g, exact, 3)
        assert mx == pytest.approx(1.0)
