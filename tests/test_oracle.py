"""Tests for the distance oracle layer (Corollary 1.4 logical side)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import (
    SpannerDistanceOracle,
    approximate_sssp,
    measure_approximation,
    sssp_quality,
)
from repro.graphs import apsp, erdos_renyi, sssp


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(220, 0.12, weights="uniform", rng=99)


class TestOracle:
    def test_defaults_use_apsp_parameters(self, g):
        o = SpannerDistanceOracle(g, rng=0)
        import math

        assert o.k == max(2, round(math.log2(g.n)))

    def test_query_symmetric(self, g):
        o = SpannerDistanceOracle(g, rng=1)
        assert o.query(3, 7) == pytest.approx(o.query(7, 3))

    def test_query_self_zero(self, g):
        o = SpannerDistanceOracle(g, rng=2)
        assert o.query(5, 5) == 0.0

    def test_never_underestimates(self, g):
        o = SpannerDistanceOracle(g, rng=3)
        exact = apsp(g)
        approx = o.all_pairs()
        assert np.all(approx + 1e-9 >= exact)

    def test_within_guaranteed_stretch(self, g):
        o = SpannerDistanceOracle(g, rng=4)
        rep = measure_approximation(o, num_pairs=300, rng=5)
        assert rep.within_bound
        assert rep.mean_ratio <= rep.max_ratio

    def test_query_many_matches_query(self, g):
        o = SpannerDistanceOracle(g, rng=6)
        pairs = np.array([[0, 1], [2, 3], [4, 5]])
        many = o.query_many(pairs)
        each = [o.query(a, b) for a, b in pairs]
        assert np.allclose(many, each)

    def test_cache_reused(self, g):
        o = SpannerDistanceOracle(g, rng=7)
        a = o.distances_from(0)
        b = o.distances_from(0)
        assert a is b

    def test_bad_source(self, g):
        o = SpannerDistanceOracle(g, rng=8)
        with pytest.raises(ValueError):
            o.distances_from(10**6)

    def test_custom_parameters(self, g):
        o = SpannerDistanceOracle(g, k=3, t=2, rng=9)
        assert o.k == 3 and o.t == 2
        rep = measure_approximation(o, num_pairs=200, rng=10)
        assert rep.max_ratio <= o.guaranteed_stretch + 1e-9

    def test_empty_graph(self):
        from repro.graphs import WeightedGraph

        g0 = WeightedGraph.from_edges(5, [])
        o = SpannerDistanceOracle(g0, k=2, t=1, rng=0)
        assert np.isinf(o.query(0, 1))
        assert o.query(2, 2) == 0.0


class TestSSSPHelpers:
    def test_approximate_never_underestimates(self, g):
        d = approximate_sssp(g, 0, k=4, t=2, rng=11)
        exact = sssp(g, 0)
        assert np.all(d + 1e-9 >= exact)

    def test_quality_ratios(self, g):
        d = approximate_sssp(g, 0, k=4, t=2, rng=12)
        mx, mean = sssp_quality(g, d, 0)
        assert 1.0 <= mean <= mx

    def test_exact_on_spanner_equals_one(self, g):
        exact = sssp(g, 3)
        mx, mean = sssp_quality(g, exact, 3)
        assert mx == pytest.approx(1.0)


class TestLRUCachePolicy:
    """ISSUE 5 bugfix: the row cache evicts LRU instead of clear()-ing."""

    def test_eviction_order(self):
        from repro.core.cache import LRURowCache

        c = LRURowCache(3)
        c.put("a", 1)
        c.put("b", 2)
        c.put("c", 3)
        assert c.get("a") == 1  # refresh "a"
        c.put("d", 4)  # evicts "b", the least recently used
        assert "b" not in c and c.keys() == ["c", "a", "d"]
        c.put("c", 30)  # refresh by put
        c.put("e", 5)  # evicts "a"
        assert "a" not in c and c.get("c") == 30
        assert c.evictions == 2

    def test_capacity_one_and_validation(self):
        import pytest

        from repro.core.cache import LRURowCache

        with pytest.raises(ValueError):
            LRURowCache(0)
        c = LRURowCache(1)
        c.put(1, "x")
        c.put(2, "y")
        assert len(c) == 1 and c.get(2) == "y" and c.get(1) is None
        assert c.stats()["hit_rate"] == 0.5

    def test_hot_rows_survive_distinct_source_churn(self, g):
        """A cached single-pair query survives > capacity distinct sources
        without recomputation (the seed's clear() policy failed this)."""
        o = SpannerDistanceOracle(g, k=4, t=2, rng=21, cache_rows=16)
        solved = []
        orig = o._solve_row
        o._solve_row = lambda s: solved.append(s) or orig(s)
        hot = o.query(0, 5)
        for s in range(1, g.n):  # 219 distinct cold sources through cap 16
            o.query(s, 7)
            assert o.query(0, 5) == hot
        assert solved.count(0) == 1  # the hot row was computed exactly once
        assert len(solved) == g.n
        assert o.cache_stats["evictions"] > 0

    def test_query_many_populates_cache_past_bound(self, g):
        o = SpannerDistanceOracle(g, k=4, t=2, rng=22, cache_rows=8)
        pairs = np.stack([np.arange(32), np.full(32, 5)], axis=1)
        o.query_many(pairs)  # 32 distinct sources through an 8-row cache
        stats = o.cache_stats
        assert stats["entries"] == 8  # population did not stop at the bound
        assert stats["evictions"] == 32 - 8
        # The 8 most recent sources are resident: these queries are hits.
        before = stats["misses"]
        for s in range(24, 32):
            o.query(s, 7)
        assert o.cache_stats["misses"] == before

    def test_query_many_consistent_under_eviction(self, g):
        o_small = SpannerDistanceOracle(g, k=4, t=2, rng=23, cache_rows=4)
        o_big = SpannerDistanceOracle.from_spanner(
            o_small.spanner, o_small.k, o_small.t,
            t_effective=o_small.t_effective, g=g,
        )
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, g.n, size=(500, 2))
        assert np.array_equal(o_small.query_many(pairs), o_big.query_many(pairs))

    def test_from_spanner_round_trip_guarantee(self, g):
        o = SpannerDistanceOracle(g, k=5, t=2, rng=24)
        o2 = SpannerDistanceOracle.from_spanner(
            o.spanner, o.k, o.t, t_effective=o.t_effective, g=g
        )
        assert o2.guaranteed_stretch == o.guaranteed_stretch
        assert o2.result is None
        assert o2.query(1, 9) == o.query(1, 9)
