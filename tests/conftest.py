"""Shared fixtures for the test-suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import (
    WeightedGraph,
    barabasi_albert,
    erdos_renyi,
    grid_graph,
    ring_of_cliques,
)


@pytest.fixture
def small_weighted() -> WeightedGraph:
    """A 6-vertex hand-checkable weighted graph (two triangles + bridge)."""
    return WeightedGraph.from_edges(
        6,
        [
            (0, 1, 1.0),
            (1, 2, 2.0),
            (0, 2, 2.5),
            (2, 3, 10.0),  # bridge
            (3, 4, 1.0),
            (4, 5, 2.0),
            (3, 5, 2.5),
        ],
    )


@pytest.fixture
def er_weighted() -> WeightedGraph:
    return erdos_renyi(150, 0.15, weights="uniform", rng=11)


@pytest.fixture
def er_unweighted() -> WeightedGraph:
    return erdos_renyi(150, 0.12, rng=12)


@pytest.fixture
def ba_graph() -> WeightedGraph:
    return barabasi_albert(120, 3, weights="exponential", rng=13)


@pytest.fixture
def grid() -> WeightedGraph:
    return grid_graph(10, 12, weights="uniform", rng=14)


@pytest.fixture
def cliques() -> WeightedGraph:
    return ring_of_cliques(6, 8, weights="uniform", rng=15)


@pytest.fixture
def disconnected() -> WeightedGraph:
    """Two ER components plus isolated vertices."""
    a = erdos_renyi(40, 0.3, weights="uniform", rng=16)
    b = erdos_renyi(40, 0.3, weights="uniform", rng=17)
    u = np.concatenate([a.edges_u, b.edges_u + 40])
    v = np.concatenate([a.edges_v, b.edges_v + 40])
    w = np.concatenate([a.edges_w, b.edges_w])
    return WeightedGraph(85, u, v, w)  # vertices 80..84 isolated
