"""Tests for the unified algorithm registry."""

from __future__ import annotations

import pytest

from repro.graphs import erdos_renyi
from repro.registry import (
    ALIASES,
    AlgorithmSpec,
    algorithm_names,
    get_algorithm,
    iter_algorithms,
    register_spanner,
    resolve_name,
)

EXPECTED_SPANNERS = {
    "baswana-sen",
    "cluster-merging",
    "two-phase",
    "general",
    "unweighted",
    "streaming",
    "mpc",
    "mpc-nearlinear",
    "cc",
    "pram",
}
EXPECTED_APSP = {"apsp-mpc", "apsp-cc"}


@pytest.fixture(scope="module")
def g_weighted():
    return erdos_renyi(60, 0.2, weights="uniform", rng=1)


@pytest.fixture(scope="module")
def g_unit():
    return erdos_renyi(60, 0.2, weights="unit", rng=1)


class TestCatalog:
    def test_all_expected_registered(self):
        assert set(algorithm_names("spanner")) == EXPECTED_SPANNERS
        assert set(algorithm_names("apsp")) == EXPECTED_APSP
        assert set(algorithm_names()) == EXPECTED_SPANNERS | EXPECTED_APSP

    def test_sorted_and_described(self):
        names = algorithm_names()
        assert names == sorted(names)
        for spec in iter_algorithms():
            assert spec.description, spec.name
            assert spec.kind in ("spanner", "apsp")

    def test_old_cli_names_still_resolve(self):
        # The exact keys the pre-registry cli.ALGORITHMS dict exposed.
        for old in ("baswana-sen", "cluster-merging", "two-phase", "general",
                    "unweighted", "streaming"):
            assert get_algorithm(old).kind == "spanner"

    def test_result_labels_resolve_via_aliases(self):
        # SpannerResult.algorithm strings map back to registry entries.
        for label, expected in [
            ("streaming-spanner", "streaming"),
            ("spanner-mpc", "mpc"),
            ("spanner-cc", "cc"),
            ("spanner-pram", "pram"),
            ("unweighted-py18", "unweighted"),
            ("general-tradeoff", "general"),
        ]:
            assert resolve_name(label) == expected

    def test_aliases_point_at_canonical(self):
        for alias, target in ALIASES.items():
            assert target in set(algorithm_names()), alias

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown algorithm"):
            get_algorithm("definitely-not-registered")


class TestRun:
    @pytest.mark.parametrize("name", sorted(EXPECTED_SPANNERS))
    def test_every_spanner_runs(self, name, g_weighted, g_unit):
        spec = get_algorithm(name)
        g = g_weighted if spec.weighted else g_unit
        res = spec.run(g, k=3, rng=1)
        assert res.num_edges > 0
        assert resolve_name(res.algorithm) == spec.name

    @pytest.mark.parametrize("name", sorted(EXPECTED_APSP))
    def test_every_apsp_runs_with_default_k(self, name, g_weighted):
        res = get_algorithm(name).run(g_weighted, rng=1)
        assert res.rounds > 0
        assert res.spanner.m > 0

    def test_spanner_requires_k(self, g_weighted):
        with pytest.raises(ValueError, match="requires k"):
            get_algorithm("general").run(g_weighted)

    def test_lazy_resolution_cached(self):
        spec = get_algorithm("baswana-sen")
        assert spec.resolve() is spec.resolve()

    def test_t_respected_by_general(self, g_weighted):
        res = get_algorithm("general").run(g_weighted, k=6, t=3, rng=0)
        assert res.extra["t_effective"] == 3


class TestRegisterDecorator:
    def test_decorator_registers_and_runs(self, g_weighted):
        import repro.registry as registry

        @register_spanner(
            "test-identity", model="in-memory", description="keeps every edge"
        )
        def identity(g, k, t, rng):
            import numpy as np

            from repro.core.results import SpannerResult

            return SpannerResult(
                edge_ids=np.arange(g.m, dtype=np.int64),
                algorithm="test-identity",
                k=k,
                t=t,
                iterations=0,
            )

        try:
            spec = get_algorithm("test-identity")
            assert isinstance(spec, AlgorithmSpec)
            assert spec.run(g_weighted, k=2).num_edges == g_weighted.m
            with pytest.raises(ValueError, match="duplicate"):
                register_spanner("test-identity", model="in-memory")(identity)
            with pytest.raises(ValueError, match="unknown model"):
                register_spanner("test-bad-model", model="quantum")(identity)
        finally:
            registry._REGISTRY.pop("test-identity", None)
            registry._REGISTRY.pop("test-bad-model", None)
