"""Unit tests for repro.graphs.distances (exact ground truth)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    WeightedGraph,
    apsp,
    bfs_hops,
    connected_components,
    eccentricity,
    erdos_renyi,
    k_hop_ball,
    pairwise_distances,
    path_graph,
    same_components,
    sssp,
    sssp_reference,
)


class TestSSSP:
    def test_matches_reference(self, er_weighted):
        for s in (0, 7, 33):
            assert np.allclose(sssp(er_weighted, s), sssp_reference(er_weighted, s))

    def test_matches_networkx(self, small_weighted):
        d = sssp(small_weighted, 0)
        nxd = nx.single_source_dijkstra_path_length(
            small_weighted.to_networkx(), 0
        )
        for v, dv in nxd.items():
            assert d[v] == pytest.approx(dv)

    def test_unreachable_inf(self, disconnected):
        d = sssp(disconnected, 0)
        assert np.isinf(d[50])
        assert np.isfinite(d[10])

    def test_source_zero_distance(self, er_weighted):
        assert sssp(er_weighted, 5)[5] == 0.0

    def test_bad_source(self, small_weighted):
        with pytest.raises(ValueError):
            sssp(small_weighted, 99)
        with pytest.raises(ValueError):
            sssp_reference(small_weighted, -1)

    def test_empty_graph(self):
        g = WeightedGraph.from_edges(3, [])
        d = sssp(g, 1)
        assert d[1] == 0.0 and np.isinf(d[0]) and np.isinf(d[2])


class TestAPSP:
    def test_symmetric_and_consistent(self, small_weighted):
        d = apsp(small_weighted)
        assert np.allclose(d, d.T)
        for s in range(small_weighted.n):
            assert np.allclose(d[s], sssp(small_weighted, s))

    def test_triangle_inequality(self, er_weighted):
        d = apsp(er_weighted)
        # spot check triangle inequality on a sample
        rng = np.random.default_rng(0)
        for _ in range(200):
            a, b, c = rng.integers(0, er_weighted.n, 3)
            assert d[a, c] <= d[a, b] + d[b, c] + 1e-9


class TestPairwise:
    def test_matches_apsp(self, er_weighted):
        d = apsp(er_weighted)
        rng = np.random.default_rng(1)
        pairs = rng.integers(0, er_weighted.n, size=(60, 2))
        got = pairwise_distances(er_weighted, pairs)
        assert np.allclose(got, d[pairs[:, 0], pairs[:, 1]])

    def test_empty_pairs(self, er_weighted):
        assert pairwise_distances(er_weighted, np.zeros((0, 2), dtype=int)).size == 0


class TestBFS:
    def test_path_graph_levels(self):
        g = path_graph(6)
        assert bfs_hops(g, 0).tolist() == [0, 1, 2, 3, 4, 5]

    def test_unreachable_minus_one(self, disconnected):
        h = bfs_hops(disconnected, 0)
        assert h[60] == -1 and h[0] == 0

    def test_matches_unweighted_sssp(self, er_unweighted):
        h = bfs_hops(er_unweighted, 3)
        d = sssp(er_unweighted, 3)
        finite = np.isfinite(d)
        assert np.array_equal(h[finite], d[finite].astype(np.int64))
        assert np.all(h[~finite] == -1)

    def test_bad_source(self, er_unweighted):
        with pytest.raises(ValueError):
            bfs_hops(er_unweighted, 10**6)


class TestKHopBall:
    def test_zero_hops(self, er_unweighted):
        assert k_hop_ball(er_unweighted, 4, 0).tolist() == [4]

    def test_matches_bfs_levels(self, er_unweighted):
        ball = set(k_hop_ball(er_unweighted, 0, 2).tolist())
        h = bfs_hops(er_unweighted, 0)
        expect = set(np.flatnonzero((h >= 0) & (h <= 2)).tolist())
        assert ball == expect

    def test_cap_truncates(self, er_unweighted):
        ball = k_hop_ball(er_unweighted, 0, 10, cap=5)
        assert ball.size == 5

    def test_negative_hops(self, er_unweighted):
        with pytest.raises(ValueError):
            k_hop_ball(er_unweighted, 0, -1)


class TestComponents:
    def test_labels_consistent(self, disconnected):
        labels = connected_components(disconnected)
        assert labels[0] == labels[10]
        assert labels[0] != labels[45]
        # isolated vertices get their own labels
        assert labels[80] != labels[0] and labels[80] != labels[45]

    def test_same_components_true(self, er_weighted):
        assert same_components(er_weighted, er_weighted)

    def test_same_components_false(self, small_weighted):
        # removing the bridge splits the graph
        h = small_weighted.subgraph_from_edge_ids(
            [i for i, (a, b, w) in enumerate(small_weighted.edge_tuples()) if w != 10.0]
        )
        assert not same_components(small_weighted, h)

    def test_empty_graph_components(self):
        g = WeightedGraph.from_edges(4, [])
        assert connected_components(g).tolist() == [0, 1, 2, 3]


class TestEccentricity:
    def test_path(self):
        g = path_graph(5)
        assert eccentricity(g, 0) == pytest.approx(4.0)
        assert eccentricity(g, 2) == pytest.approx(2.0)

    def test_isolated(self):
        g = WeightedGraph.from_edges(3, [])
        assert eccentricity(g, 0) == 0.0
