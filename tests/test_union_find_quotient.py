"""Unit tests for union-find and quotient-graph construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs import UnionFind, quotient_edges, relabel_clustering


class TestUnionFind:
    def test_initial_state(self):
        uf = UnionFind(5)
        assert uf.num_sets == 5
        assert all(uf.find(i) == i for i in range(5))

    def test_union_and_connected(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)  # already merged
        assert uf.connected(0, 1)
        assert not uf.connected(0, 2)
        assert uf.num_sets == 3

    def test_set_size(self):
        uf = UnionFind(6)
        uf.union(0, 1)
        uf.union(1, 2)
        assert uf.set_size(2) == 3
        assert uf.set_size(5) == 1

    def test_union_edges_counts_merges(self):
        uf = UnionFind(5)
        merges = uf.union_edges(np.array([0, 1, 0]), np.array([1, 2, 2]))
        assert merges == 2
        assert uf.num_sets == 3

    def test_labels_compact_first_appearance(self):
        uf = UnionFind(5)
        uf.union(3, 4)
        labels = uf.labels(compact=True)
        # first-appearance order: 0,1,2 then the {3,4} set
        assert labels.tolist() == [0, 1, 2, 3, 3]

    def test_labels_raw_are_roots(self):
        uf = UnionFind(4)
        uf.union(0, 3)
        labels = uf.labels()
        assert labels[0] == labels[3]

    def test_transitive_chain(self):
        uf = UnionFind(100)
        for i in range(99):
            uf.union(i, i + 1)
        assert uf.num_sets == 1
        assert uf.connected(0, 99)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            UnionFind(-1)


class TestRelabelClustering:
    def test_compacts_sparse_labels(self):
        labels, c = relabel_clustering(np.array([10, 20, 10, 30]))
        assert c == 3
        assert labels.tolist() == [0, 1, 0, 2]

    def test_first_appearance_order(self):
        labels, c = relabel_clustering(np.array([7, 3, 7, 1]))
        assert labels.tolist() == [0, 1, 0, 2]

    def test_empty(self):
        labels, c = relabel_clustering(np.zeros(0, dtype=np.int64))
        assert c == 0 and labels.size == 0


class TestQuotientEdges:
    def test_basic_contraction(self):
        # 4 vertices in 2 clusters; 3 edges, one intra.
        labels = np.array([0, 0, 1, 1])
        u = np.array([0, 1, 0])
        v = np.array([1, 2, 3])
        w = np.array([5.0, 2.0, 1.0])
        q = quotient_edges(labels, u, v, w)
        assert q.num_nodes == 2
        assert q.m == 1  # single super-edge, min weight kept
        assert q.w[0] == 1.0
        assert q.rep_edge_id[0] == 2

    def test_drops_all_intra(self):
        labels = np.zeros(4, dtype=np.int64)
        q = quotient_edges(labels, np.array([0, 1]), np.array([1, 2]), np.array([1.0, 2.0]))
        assert q.m == 0
        assert q.num_nodes == 1

    def test_provenance_ids_passthrough(self):
        labels = np.array([0, 1, 2])
        q = quotient_edges(
            labels,
            np.array([0, 1]),
            np.array([1, 2]),
            np.array([1.0, 2.0]),
            edge_ids=np.array([42, 99]),
        )
        assert set(q.rep_edge_id.tolist()) == {42, 99}

    def test_tie_break_deterministic(self):
        labels = np.array([0, 0, 1])
        u = np.array([0, 1])
        v = np.array([2, 2])
        w = np.array([1.0, 1.0])
        q = quotient_edges(labels, u, v, w)
        assert q.m == 1
        assert q.rep_edge_id[0] == 0  # lowest provenance id wins ties

    def test_canonical_endpoints(self):
        labels = np.array([1, 0])
        q = quotient_edges(labels, np.array([0]), np.array([1]), np.array([1.0]))
        assert q.u[0] == 0 and q.v[0] == 1

    def test_empty_edges(self):
        q = quotient_edges(np.array([0, 1]), np.zeros(0), np.zeros(0), np.zeros(0))
        assert q.m == 0 and q.num_nodes == 2
