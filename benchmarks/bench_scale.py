"""Benchmark memory scaling of the persist-then-serve path: peak RSS + wall.

The zero-copy refactor's claim is that serving memory is **O(graph + ε)**,
not O(shards × graph): every shard worker attaches to one shared-memory
segment (:class:`repro.service.shm.SharedGraphBuffers`) instead of
receiving a pickled spanner copy, and :meth:`ArtifactStore.load` hands
back ``np.memmap`` views instead of materialized arrays.  This bench
measures that claim directly, per measurement point:

1. **Build + persist** — build the spanner oracle, save it through the
   (int32-downcasting) store; record wall time, store bytes on disk, and
   the parent's ``resource.getrusage`` peak RSS after each phase.
2. **Load probes** — fresh subprocesses load the artifact ``mmap`` vs
   ``eager`` and answer the same probe pairs; record load/query wall,
   peak RSS, and an answer digest.  The digests must agree with each
   other *and* with the freshly built oracle (the saved/loaded
   bit-identity bar).
3. **Worker-memory duel** — with the pool initialized but before any row
   work (so the probe sees storage, not Dijkstra scratch):

   * a **baseline** pool (fork, no initializer) pins the per-worker
     interpreter-heap floor;
   * the **engine** pool (shared-memory attach) must sit within
     ``WORKER_EPS_BYTES`` per worker of that floor plus
     ``SCALE_GATE`` × one graph footprint *in total* — the acceptance
     gate;
   * a **legacy** pool replays the pre-refactor recipe (initializer
     receives ``(n, u, v, w)``, each worker builds its own canonical
     arrays + CSR) for the before/after record (~4-10× footprint per
     run at full scale).

   Memory is ``/proc/self/smaps_rollup`` private bytes — RSS counts the
   shared segment once *per mapper*, private bytes count what a worker
   actually adds.
4. **Serve** — serial vs sharded ``query_many`` over a bounded-source
   workload: wall, q/s, and the sharded == serial bit-identity gate.

Points whose config declares a ``budget`` run a different, *budget-gated*
protocol instead: a fresh subprocess with ``REPRO_MEM_BUDGET`` pinned to
the declared budget builds the graph, builds + persists the oracle,
reloads it, and answers probe pairs — and its whole-life peak RSS
(``service.mem.peak_rss_bytes``) must stay **under the declared budget**
(``budget_gate``).  The same cell records per-edge build throughput,
gated at >= ``THROUGHPUT_GATE`` x the ``scale`` point's rate
(``throughput_gate``), and re-checks in-process that budget-autotuned
chunked ``batched_sssp`` is bit-identical to forced tiny chunks at
small n.

The full run measures three points: the BENCH_service reference graph
(``er:1024:0.02``, shards=4 — the ISSUE 6 acceptance point), a big-n
point (``gnm:200000:1000000``), where the legacy recipe pays hundreds of
MB and the shared-memory engine pays ~2 MB, and the budget-gated
million-node cell (``gnm:1000000:4000000``).

Run directly::

    PYTHONPATH=src python benchmarks/bench_scale.py [--smoke] [--points million]
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro.distances import SpannerDistanceOracle
from repro.graphs.graph import WeightedGraph
from repro.graphs.specs import GraphSpec
from repro.service import ArtifactStore, QueryEngine
from repro.service.mem import peak_rss_bytes, process_memory

__all__ = [
    "run_scale_bench",
    "format_table",
    "scale_gate",
    "identity_gate",
    "budget_gate",
    "throughput_gate",
    "graph_footprint",
    "probe_pairs",
    "SCALE_GATE",
    "THROUGHPUT_GATE",
    "WORKER_EPS_BYTES",
]

#: Combined worker memory beyond the baseline heap (after the fixed
#: per-worker allowance) must stay under this multiple of one graph's
#: array footprint — the ISSUE 6 acceptance gate (< 1.3x, vs ~4x for the
#: initializer-shipped legacy recipe).
SCALE_GATE = 1.3

#: Fixed per-worker allowance for attach overhead: interpreter heap the
#: pool initializer touches (module imports, view bookkeeping).  Measured
#: ~0.6 MB per worker and independent of graph size — the ε in
#: "O(graph + ε)".
WORKER_EPS_BYTES = int(1.5 * 2**20)

#: The million-node cell's per-edge build throughput must stay at least
#: this fraction of the ``scale`` point's (n=2x10^5) rate — chunking for
#: memory must not trade away asymptotic build speed.
THROUGHPUT_GATE = 0.5

#: Each measurement point: the spanner-oracle build config, the shard
#: count under test, and a bounded-source query workload (``sources``
#: distinct Dijkstra roots keep the row volume O(sources x n), so the
#: workload scales to big n without drowning the memory signal in rows).
FULL_CONFIG = {
    "seed": 0,
    "points": {
        "service": {
            "graph": "er:1024:0.02",
            "k": 6,
            "t": 2,
            "shards": 4,
            "sources": 48,
            "pairs": 4_000,
            "probe_pairs": 1_000,
        },
        "scale": {
            "graph": "gnm:200000:1000000",
            "k": 4,
            "t": 2,
            "shards": 4,
            "sources": 24,
            "pairs": 4_000,
            "probe_pairs": 1_000,
        },
        # Budget-gated protocol (the ``budget`` key selects it): whole
        # build+persist+load+query life under REPRO_MEM_BUDGET in a fresh
        # subprocess, peak RSS gated against the declared budget.
        "million": {
            "graph": "gnm:1000000:4000000",
            "k": 4,
            "t": 2,
            "budget": "4G",
            "sources": 16,
            "probe_pairs": 500,
            "identity_n": 2_000,
        },
    },
}
SMOKE_CONFIG = {
    "seed": 0,
    "points": {
        "scale": {
            "graph": "gnm:20000:100000",
            "k": 3,
            "t": 2,
            "shards": 2,
            "sources": 8,
            "pairs": 800,
            "probe_pairs": 200,
        },
        # CI keeps the real n=10^6 budget gate, just with a thinner edge
        # set and probe workload than the full run.
        "million": {
            "graph": "gnm:1000000:2000000",
            "k": 3,
            "t": 2,
            "budget": "4G",
            "sources": 8,
            "probe_pairs": 100,
            "identity_n": 500,
        },
    },
}


def graph_footprint(g: WeightedGraph) -> int:
    """Bytes of one physical copy of the serving arrays: the canonical
    edge triplet plus the scipy CSR (data, indices, indptr) — exactly the
    payload :class:`SharedGraphBuffers` packs."""
    if not g.m:
        return int(g.edges_u.nbytes + g.edges_v.nbytes + g.edges_w.nbytes)
    mat = g.to_scipy()
    return int(
        g.edges_u.nbytes + g.edges_v.nbytes + g.edges_w.nbytes
        + mat.data.nbytes + mat.indices.nbytes + mat.indptr.nbytes
    )


def probe_pairs(n: int, count: int, sources: int, seed: int) -> np.ndarray:
    """A ``(count, 2)`` workload whose first column draws from a palette
    of ``sources`` distinct roots — bounded row volume at any n."""
    rng = np.random.default_rng(seed)
    palette = rng.integers(0, n, size=sources)
    return np.stack(
        [palette[rng.integers(0, sources, size=count)],
         rng.integers(0, n, size=count)],
        axis=1,
    )


def _digest(answers: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(answers).tobytes()).hexdigest()


# ----------------------------------------------------------------------
# Pool probes (top-level: the executor pickles tasks by reference)
# ----------------------------------------------------------------------
def _pool_probe(settle_s: float) -> dict:
    time.sleep(settle_s)
    return process_memory()


_LEGACY_GRAPH: WeightedGraph | None = None


def _legacy_init(n: int, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> None:
    """The pre-refactor worker recipe: arrays shipped via initargs, a
    private validating :class:`WeightedGraph`, and the private CSR the
    first ``batched_sssp`` call would have built."""
    global _LEGACY_GRAPH
    _LEGACY_GRAPH = WeightedGraph(n, u, v, w)
    _LEGACY_GRAPH.to_scipy()


def _pool_memstats(pool: ProcessPoolExecutor, workers: int, settle_s: float) -> list[dict]:
    by_pid: dict[int, dict] = {}
    for f in [pool.submit(_pool_probe, settle_s) for _ in range(4 * workers)]:
        snap = f.result()
        by_pid[snap["pid"]] = snap
    return [by_pid[pid] for pid in sorted(by_pid)]


# ----------------------------------------------------------------------
# Load probes (fresh subprocess per mode: clean peak-RSS accounting)
# ----------------------------------------------------------------------
_LOAD_PROBE_SCRIPT = """
import json, sys, time
import numpy as np

sys.path.insert(0, sys.argv[1])
from repro.service import ArtifactStore, QueryEngine
from repro.service.mem import peak_rss_bytes, process_memory
import hashlib

store_path, key, mode = sys.argv[2], sys.argv[3], sys.argv[4]
n, count, sources, seed = (int(x) for x in sys.argv[5:9])

t0 = time.perf_counter()
backend = ArtifactStore(store_path).load(key, mmap=(mode == "mmap"))
load_s = time.perf_counter() - t0
after_load = process_memory()

rng = np.random.default_rng(seed)
palette = rng.integers(0, n, size=sources)
pairs = np.stack(
    [palette[rng.integers(0, sources, size=count)],
     rng.integers(0, n, size=count)],
    axis=1,
)
engine = QueryEngine(backend)
t0 = time.perf_counter()
answers = engine.query_many(pairs)
query_s = time.perf_counter() - t0
print(json.dumps({
    "mode": mode,
    "load_s": round(load_s, 4),
    "query_s": round(query_s, 4),
    "rss_after_load_bytes": after_load["rss_bytes"],
    "private_after_load_bytes": after_load["private_bytes"],
    "peak_rss_bytes": peak_rss_bytes(),
    "digest": hashlib.sha256(np.ascontiguousarray(answers).tobytes()).hexdigest(),
}))
"""


def _load_probe(
    src_dir: str, store_path: str, key: str, mode: str,
    n: int, count: int, sources: int, seed: int,
) -> dict:
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    proc = subprocess.run(
        [sys.executable, "-c", _LOAD_PROBE_SCRIPT, src_dir, store_path, key,
         mode, str(n), str(count), str(sources), str(seed)],
        capture_output=True, text=True, env=env, timeout=600,
    )
    if proc.returncode != 0:
        raise RuntimeError(f"load probe ({mode}) failed:\n{proc.stderr}")
    return json.loads(proc.stdout.strip().splitlines()[-1])


# ----------------------------------------------------------------------
# Budget probe (fresh subprocess: REPRO_MEM_BUDGET pinned, clean peak RSS)
# ----------------------------------------------------------------------
_BUDGET_PROBE_SCRIPT = """
import hashlib, json, sys, time
import numpy as np

sys.path.insert(0, sys.argv[1])
from repro.core import membudget
from repro.distances import SpannerDistanceOracle
from repro.graphs.specs import GraphSpec
from repro.service import ArtifactStore, QueryEngine
from repro.service.mem import peak_rss_bytes

spec, k, t, seed = sys.argv[2], int(sys.argv[3]), int(sys.argv[4]), int(sys.argv[5])
store_path, count, sources = sys.argv[6], int(sys.argv[7]), int(sys.argv[8])

budget = membudget.resolve_budget()  # REPRO_MEM_BUDGET set by the parent

t0 = time.perf_counter()
g = GraphSpec.parse(spec).build(weights="uniform", seed=seed)
graph_s = time.perf_counter() - t0

t0 = time.perf_counter()
oracle = SpannerDistanceOracle(g, k, t, rng=seed)
oracle_s = time.perf_counter() - t0
spanner_m = oracle.spanner.m

store = ArtifactStore(store_path)
t0 = time.perf_counter()
key = store.save_oracle(oracle, meta={"graph": spec, "seed": seed})
save_s = time.perf_counter() - t0
del oracle

engine = QueryEngine(store.load(key))
rng = np.random.default_rng(seed + 1)
palette = rng.integers(0, g.n, size=sources)
pairs = np.stack(
    [palette[rng.integers(0, sources, size=count)],
     rng.integers(0, g.n, size=count)],
    axis=1,
)
t0 = time.perf_counter()
answers = engine.query_many(pairs)
query_s = time.perf_counter() - t0
stats = engine.stats()["membudget"]

print(json.dumps({
    "n": g.n,
    "m": g.m,
    "spanner_m": int(spanner_m),
    "budget_bytes": budget,
    "graph_s": round(graph_s, 3),
    "oracle_s": round(oracle_s, 3),
    "save_s": round(save_s, 3),
    "query_s": round(query_s, 4),
    "edges_per_s": round(g.m / max(oracle_s, 1e-9), 1),
    "peak_rss_bytes": peak_rss_bytes(),
    "digest": hashlib.sha256(
        np.ascontiguousarray(answers).tobytes()).hexdigest(),
    "membudget_sites": sorted(stats["sites"]),
}))
"""


def _chunked_identity(n: int, seed: int) -> bool:
    """Budget-autotuned chunked ``batched_sssp`` == forced tiny chunks,
    bit for bit — the small-n identity leg of the million cell."""
    import repro.graphs.distances as dmod

    g = GraphSpec.parse(f"gnm:{n}:{4 * n}").build(weights="uniform", seed=seed)
    sources = np.arange(min(64, g.n))
    saved = dmod._CHUNK_ENTRIES
    try:
        dmod._CHUNK_ENTRIES = None        # budget-autotuned (covers all rows)
        expect = dmod.batched_sssp(g, sources)
        dmod._CHUNK_ENTRIES = 3 * g.n     # forced 3-row chunks
        got = dmod.batched_sssp(g, sources)
    finally:
        dmod._CHUNK_ENTRIES = saved
    return bool(np.array_equal(expect, got))


def _run_budget_point(name: str, cfg: dict, seed: int, src_dir: str, work: str) -> dict:
    store_path = os.path.join(work, f"store_{name}")
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_dir + (os.pathsep + existing if existing else "")
    env["REPRO_MEM_BUDGET"] = str(cfg["budget"])
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-c", _BUDGET_PROBE_SCRIPT, src_dir,
         cfg["graph"], str(cfg["k"]), str(cfg["t"]), str(seed), store_path,
         str(cfg["probe_pairs"]), str(cfg["sources"])],
        capture_output=True, text=True, env=env, timeout=3600,
    )
    wall_s = time.perf_counter() - t0
    if proc.returncode != 0:
        raise RuntimeError(f"budget probe ({name}) failed:\n{proc.stderr}")
    probe = json.loads(proc.stdout.strip().splitlines()[-1])
    return {
        "config": dict(cfg),
        "graph": {"n": probe["n"], "m": probe["m"],
                  "spanner_m": probe["spanner_m"]},
        "build": {
            "graph_s": probe["graph_s"],
            "oracle_s": probe["oracle_s"],
            "save_s": probe["save_s"],
            "edges_per_s": probe["edges_per_s"],
            "budget_bytes": probe["budget_bytes"],
            "peak_rss_bytes": probe["peak_rss_bytes"],
            "under_budget": bool(
                probe["peak_rss_bytes"] <= probe["budget_bytes"]),
        },
        "serve": {"probe_pairs": cfg["probe_pairs"],
                  "query_s": probe["query_s"],
                  "digest": probe["digest"]},
        "identity": {
            "chunked_matches_unchunked":
                _chunked_identity(cfg["identity_n"], seed + 3),
        },
        "membudget_sites": probe["membudget_sites"],
        "wall_s": round(wall_s, 2),
    }


def _dir_bytes(path: str) -> int:
    total = 0
    for root, _dirs, files in os.walk(path):
        for name in files:
            total += os.path.getsize(os.path.join(root, name))
    return total


# ----------------------------------------------------------------------
# One measurement point
# ----------------------------------------------------------------------
def _run_point(name: str, cfg: dict, seed: int, src_dir: str, work: str) -> dict:
    shards = cfg["shards"]

    # --- 1: build + persist ----------------------------------------------
    t0 = time.perf_counter()
    g = GraphSpec.parse(cfg["graph"]).build(weights="uniform", seed=seed)
    graph_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    oracle = SpannerDistanceOracle(g, cfg["k"], cfg["t"], rng=seed)
    oracle_s = time.perf_counter() - t0
    build_peak = peak_rss_bytes()

    store_path = os.path.join(work, f"store_{name}")
    store = ArtifactStore(store_path)
    t0 = time.perf_counter()
    key = store.save_oracle(oracle, meta={"graph": cfg["graph"], "seed": seed})
    save_s = time.perf_counter() - t0
    store_bytes = _dir_bytes(os.path.join(store_path, key))

    # --- 2: load probes in fresh subprocesses ----------------------------
    # Warm the page cache first: the probe order must not hand whichever
    # mode runs first the cold-disk bill.
    for root, _dirs, files in os.walk(store_path):
        for fname in files:
            with open(os.path.join(root, fname), "rb") as fh:
                while fh.read(1 << 20):
                    pass
    pp = probe_pairs(g.n, cfg["probe_pairs"], cfg["sources"], seed + 1)
    built_digest = _digest(oracle.query_many(pp))
    probes = {
        mode: _load_probe(src_dir, store_path, key, mode, g.n,
                          cfg["probe_pairs"], cfg["sources"], seed + 1)
        for mode in ("mmap", "eager")
    }

    loaded = store.load_oracle(key)  # mmap default: what serving uses
    spanner = loaded.spanner
    footprint = graph_footprint(spanner)

    # --- 3: worker-memory duel (post-init, pre-work) ---------------------
    with ProcessPoolExecutor(max_workers=shards) as pool:
        baseline = _pool_memstats(pool, shards, 0.1)
    base_private = sorted(s["private_bytes"] for s in baseline) \
        if all(s["private_bytes"] is not None for s in baseline) else None

    workload = probe_pairs(g.n, cfg["pairs"], cfg["sources"], seed + 2)
    cache_rows = 2 * cfg["sources"]
    engine = QueryEngine(loaded, cache_rows=cache_rows, shards=shards)
    worker_stats = engine.worker_memstats(settle_s=0.1)  # pool init, no rows yet
    worker_private = sorted(s["private_bytes"] for s in worker_stats) \
        if all(s["private_bytes"] is not None for s in worker_stats) else None

    with ProcessPoolExecutor(
        max_workers=shards, initializer=_legacy_init,
        initargs=(spanner.n, spanner.edges_u, spanner.edges_v, spanner.edges_w),
    ) as pool:
        legacy = _pool_memstats(pool, shards, 0.1)
    legacy_private = sorted(s["private_bytes"] for s in legacy) \
        if all(s["private_bytes"] is not None for s in legacy) else None

    def _overheads(private):
        if private is None or base_private is None:
            return None, None, None
        floor = base_private[len(base_private) // 2]
        raw = sum(max(b - floor, 0) for b in private)
        gated = max(0, raw - shards * WORKER_EPS_BYTES)
        return raw, gated, round(gated / footprint, 3)

    overhead, overhead_eps, ratio = _overheads(worker_private)
    legacy_overhead, legacy_eps, legacy_ratio = _overheads(legacy_private)

    # --- 4: serve (serial vs sharded, bit-identity) ----------------------
    serial = QueryEngine(loaded, cache_rows=cache_rows)
    t0 = time.perf_counter()
    serial_out = serial.query_many(workload)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded_out = engine.query_many(workload)
    sharded_s = time.perf_counter() - t0
    engine.close()
    serve_peak = peak_rss_bytes()

    return {
        "config": dict(cfg),
        "graph": {"n": g.n, "m": g.m, "spanner_m": spanner.m,
                  "endpoint_dtype": str(spanner.edges_u.dtype)},
        "build": {"graph_s": round(graph_s, 3), "oracle_s": round(oracle_s, 3),
                  "edges_per_s": round(g.m / max(oracle_s, 1e-9), 1),
                  "peak_rss_bytes": build_peak},
        "save": {"wall_s": round(save_s, 3), "store_bytes": store_bytes},
        "load": {
            "mmap": probes["mmap"],
            "eager": probes["eager"],
            "mmap_eager_identical": probes["mmap"]["digest"] == probes["eager"]["digest"],
            "loaded_matches_built": probes["mmap"]["digest"] == built_digest,
        },
        "memory": {
            "footprint_bytes": footprint,
            "worker_eps_bytes": WORKER_EPS_BYTES,
            "baseline_private_bytes": base_private,
            "worker_private_bytes": worker_private,
            "overhead_bytes": overhead,
            "overhead_minus_eps_bytes": overhead_eps,
            "overhead_ratio": ratio,
            "legacy_private_bytes": legacy_private,
            "legacy_overhead_bytes": legacy_overhead,
            "legacy_overhead_ratio": legacy_ratio,
        },
        "serve": {
            "pairs": int(workload.shape[0]),
            "serial_s": round(serial_s, 4),
            "serial_qps": round(workload.shape[0] / max(serial_s, 1e-9), 1),
            "sharded_s": round(sharded_s, 4),
            "sharded_qps": round(workload.shape[0] / max(sharded_s, 1e-9), 1),
            "sharded_identical": bool(np.array_equal(serial_out, sharded_out)),
            "peak_rss_bytes": serve_peak,
        },
    }


def run_scale_bench(*, smoke: bool = False, points: list[str] | None = None) -> dict:
    """Execute the protocol at every measurement point; JSON-ready record.

    ``points`` selects a subset of the config's points by name (e.g.
    ``["million"]`` for a CI step that only wants the budget gate).
    """
    cfg = SMOKE_CONFIG if smoke else FULL_CONFIG
    selected = cfg["points"]
    if points:
        unknown = sorted(set(points) - set(selected))
        if unknown:
            raise ValueError(
                f"unknown point(s) {unknown}; available: {sorted(selected)}")
        selected = {name: selected[name] for name in points}
    src_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    work = tempfile.mkdtemp(prefix="bench_scale_")
    try:
        results = {
            name: (_run_budget_point if "budget" in point else _run_point)(
                name, point, cfg["seed"], src_dir, work)
            for name, point in selected.items()
        }
    finally:
        shutil.rmtree(work, ignore_errors=True)
    return {
        "suite": "scale",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "scale_gate": SCALE_GATE,
        "throughput_gate": THROUGHPUT_GATE,
        "worker_eps_bytes": WORKER_EPS_BYTES,
        "points": results,
    }


# ----------------------------------------------------------------------
# Gates
# ----------------------------------------------------------------------
def scale_gate(record: dict, *, maximum: float = SCALE_GATE):
    """The worker-memory acceptance gate, enforced at every scale.

    Per point: combined worker private bytes beyond the baseline heap,
    after the fixed ``WORKER_EPS_BYTES`` per-worker allowance, must stay
    under ``maximum`` × one graph footprint.  Returns ``(ok, reasons)``;
    points without ``smaps_rollup`` (non-Linux) skip with a reason.
    """
    reasons, ok = [], True
    for name, point in record.get("points", {}).items():
        if "memory" not in point:
            continue  # budget-gated points have no worker pool
        mem = point["memory"]
        ratio = mem.get("overhead_ratio")
        if ratio is None:
            reasons.append(f"{name}: skipped (no private-bytes accounting on this platform)")
            continue
        legacy = mem.get("legacy_overhead_ratio")
        tail = f" (legacy recipe: {legacy}x)" if legacy is not None else ""
        if ratio < maximum:
            reasons.append(
                f"{name}: worker overhead {ratio}x of footprint meets the <{maximum}x gate{tail}"
            )
        else:
            ok = False
            reasons.append(
                f"{name}: worker overhead {ratio}x of footprint EXCEEDS the <{maximum}x gate{tail}"
            )
    return ok, reasons


def identity_gate(record: dict):
    """Bit-identity invariants — enforced at every scale.

    Returns ``(ok, reasons)``.  Pool points check sharded == serial,
    mmap == eager load, and loaded-from-disk == freshly built; budget
    points check chunked == unchunked ``batched_sssp``.  Only the checks
    a point's protocol produced are evaluated.
    """
    reasons, ok = [], True
    for name, point in record.get("points", {}).items():
        checks = {}
        srv = point.get("serve", {})
        if "sharded_identical" in srv:
            checks["sharded_identical"] = srv["sharded_identical"]
        ld = point.get("load", {})
        for key in ("mmap_eager_identical", "loaded_matches_built"):
            if key in ld:
                checks[key] = ld[key]
        checks.update(point.get("identity", {}))
        if not checks:
            ok = False
            reasons.append(f"{name}: FAILED (no identity checks recorded)")
            continue
        for check, value in checks.items():
            if value:
                reasons.append(f"{name}.{check}: ok")
            else:
                ok = False
                reasons.append(f"{name}.{check}: FAILED")
    return ok, reasons


def budget_gate(record: dict):
    """Budget-gated points must finish their whole build + persist +
    load + query life with subprocess peak RSS
    (``service.mem.peak_rss_bytes``) **under** the declared
    ``REPRO_MEM_BUDGET``.  Points without a declared budget are skipped.
    """
    reasons, ok = [], True
    for name, point in record.get("points", {}).items():
        build = point.get("build", {})
        budget = build.get("budget_bytes")
        if budget is None:
            continue
        peak = build.get("peak_rss_bytes")
        line = f"{name}: peak RSS {_mb(peak)} vs declared budget {_mb(budget)}"
        if peak is not None and peak <= budget:
            reasons.append(line + " — under budget")
        else:
            ok = False
            reasons.append(line + " — OVER BUDGET")
    if not reasons:
        reasons.append("skipped (no budget-gated points in this run)")
    return ok, reasons


def throughput_gate(record: dict, *, minimum: float = THROUGHPUT_GATE):
    """The million cell's per-edge build rate vs the scale point's.

    Memory-bounded chunking must not trade away asymptotic build speed:
    ``million.build.edges_per_s >= minimum x scale.build.edges_per_s``.
    Recorded but not enforced on smoke runs (the thin smoke configs
    measure different k/m regimes).
    """
    points = record.get("points", {})
    ref = points.get("scale", {}).get("build", {}).get("edges_per_s")
    big = points.get("million", {}).get("build", {}).get("edges_per_s")
    if ref is None or big is None:
        return True, ["skipped (needs both the scale and million points)"]
    ratio = big / max(ref, 1e-9)
    line = (f"million build {big:,.0f} edges/s vs scale {ref:,.0f} edges/s "
            f"= {ratio:.2f}x (gate >= {minimum}x)")
    if record.get("smoke"):
        return True, [f"recorded, not enforced in smoke: {line}"]
    if ratio >= minimum:
        return True, [line + " — ok"]
    return False, [line + " — BELOW GATE"]


def _mb(x) -> str:
    return "-" if x is None else f"{x / 2**20:.1f}MB"


def format_table(record: dict) -> str:
    lines = [
        f"scale bench ({'smoke' if record['smoke'] else 'full'}, "
        f"cpu_count={record['cpu_count']})"
    ]
    for name, point in record["points"].items():
        if "budget_bytes" in point.get("build", {}):
            gr, b, srv = point["graph"], point["build"], point["serve"]
            lines += [
                f"  [{name}] n={gr['n']:,} m={gr['m']:,} "
                f"spanner_m={gr['spanner_m']:,} (budget-gated)",
                f"    build {b['oracle_s']:.2f}s ({b['edges_per_s']:,.0f} edges/s), "
                f"peak {_mb(b['peak_rss_bytes'])} vs budget {_mb(b['budget_bytes'])} "
                f"(under={b['under_budget']})",
                f"    query {srv['probe_pairs']} pairs in {srv['query_s']:.3f}s; "
                f"chunked==unchunked: "
                f"{point['identity']['chunked_matches_unchunked']}",
            ]
            continue
        gr, mem, srv, ld = point["graph"], point["memory"], point["serve"], point["load"]
        lines += [
            f"  [{name}] n={gr['n']:,} spanner_m={gr['spanner_m']:,} "
            f"({gr['endpoint_dtype']} endpoints, store {_mb(point['save']['store_bytes'])})",
            f"    build {point['build']['oracle_s']:.2f}s "
            f"(peak {_mb(point['build']['peak_rss_bytes'])}); "
            f"load mmap {ld['mmap']['load_s']:.3f}s/peak {_mb(ld['mmap']['peak_rss_bytes'])} "
            f"vs eager {ld['eager']['load_s']:.3f}s/peak {_mb(ld['eager']['peak_rss_bytes'])}",
            f"    workers x{point['config']['shards']}: footprint {_mb(mem['footprint_bytes'])}, "
            f"overhead {_mb(mem['overhead_bytes'])} "
            f"({mem['overhead_ratio']}x gated) vs legacy {_mb(mem['legacy_overhead_bytes'])} "
            f"({mem['legacy_overhead_ratio']}x)",
            f"    serve: serial {srv['serial_qps']:,.0f} q/s, "
            f"sharded {srv['sharded_qps']:,.0f} q/s, "
            f"identical={srv['sharded_identical']}",
        ]
    return "\n".join(lines)


if __name__ == "__main__":
    import argparse

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    ap.add_argument(
        "--points",
        default=None,
        help="comma-separated subset of measurement points to run "
        "(e.g. --points million for just the budget-gated cell)",
    )
    args = ap.parse_args()
    rec = run_scale_bench(
        smoke=args.smoke,
        points=args.points.split(",") if args.points else None,
    )
    print(format_table(rec))
    rc = 0
    for gate in (scale_gate, identity_gate, budget_gate, throughput_gate):
        ok, reasons = gate(rec)
        for reason in reasons:
            print(f"{gate.__name__}: {reason}", file=sys.stdout if ok else sys.stderr)
        rc |= 0 if ok else 1
    print(json.dumps(rec, indent=2, sort_keys=True))
    raise SystemExit(rc)
