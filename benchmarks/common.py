"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's theorem/corollary "tables": it
prints a row per parameter setting with the paper-predicted bound next to
the measured quantity, and registers a timing with pytest-benchmark.  The
printed tables are the artifacts EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graphs import WeightedGraph, edge_stretch, erdos_renyi

__all__ = ["print_table", "measure", "bench_graph", "geomean"]


def print_table(title: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Render an aligned text table (the bench output artifact)."""
    rows = [tuple(str(c) for c in r) for r in rows]
    headers = [str(h) for h in headers]
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def measure(g: WeightedGraph, result) -> dict:
    """Standard measurement record for a spanner result."""
    h = result.subgraph(g)
    rep = edge_stretch(g, h)
    return {
        "size": result.num_edges,
        "stretch": rep.max_stretch,
        "mean_stretch": rep.mean_stretch,
        "iterations": result.iterations,
    }


def bench_graph(n: int = 512, p: float = 0.08, *, weights: str = "uniform", seed: int = 7) -> WeightedGraph:
    """The default benchmark workload: a weighted G(n, p)."""
    return erdos_renyi(n, p, weights=weights, rng=seed)


def geomean(xs) -> float:
    xs = np.asarray(list(xs), dtype=float)
    return float(np.exp(np.log(xs).mean())) if xs.size else 0.0
