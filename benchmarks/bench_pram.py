"""Experiment §6 (PRAM): depth ``O(iterations · log* n)``.

Regenerates the PRAM claim: measured depth equals the iteration count times
the ``log* n`` primitive factor, with near-linear work per iteration — and
therefore depth ``o(k)`` for ``t < k``, which no prior PRAM spanner
algorithm achieved (the paper vs [MPVX15]/[BS07] at O(k log* n)).
"""

from __future__ import annotations

import pytest

from repro.pram import log_star, spanner_pram
from common import bench_graph, print_table


@pytest.fixture(scope="module")
def g():
    return bench_graph(512, 0.06)


def test_pram_depth_table(benchmark, g, capsys):
    k = 16
    ls = log_star(g.n)
    rows = []
    for t, name in [(1, "general t=1"), (4, "general t=log k"), (15, "Baswana–Sen")]:
        res = spanner_pram(g, k, t, rng=1)
        pram = res.extra["pram"]
        rows.append(
            (
                name,
                res.iterations,
                pram["depth"],
                f"{res.iterations} * (3*{ls}+2) + 2*{ls}",
                pram["work"],
            )
        )
        assert pram["depth"] == res.iterations * (3 * ls + 2) + 2 * ls
    with capsys.disabled():
        print_table(
            f"Section 6 PRAM depth (n={g.n}, k={k}, log* n={ls})",
            ["algorithm", "iterations", "depth", "formula", "work"],
            rows,
        )
    # o(k) depth for t=1 vs the [BS07]/[MPVX15] Θ(k log* n) baseline
    fast = spanner_pram(g, k, 1, rng=1).extra["pram"]["depth"]
    base = spanner_pram(g, k, 15, rng=1).extra["pram"]["depth"]
    assert fast < base
    benchmark(lambda: spanner_pram(g, k, 4, rng=1))
