"""Experiments C1.4 / §7 and C1.2(4): APSP approximation in near-linear MPC.

Regenerates: with ``k = log2 n`` and ``t = log2 log2 n`` the spanner has
near-linear size ``O(n log log n)`` (C1.2(4)), the pipeline runs in
``O(t log log n / log(t+1))`` iterations plus an ``O(log log n)``-round
collection, and the resulting APSP approximation stays within the
``O(log^s n)`` stretch bound — while never *underestimating* a distance.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.distances import SpannerDistanceOracle, measure_approximation
from repro.graphs import apsp as exact_apsp
from repro.mpc_impl import apsp_mpc
from common import bench_graph, print_table

NS = [128, 256, 512]


def test_corollary_1_4_table(benchmark, capsys):
    rows = []
    for n in NS:
        g = bench_graph(n, min(0.9, 24.0 / n))
        res = apsp_mpc(g, rng=80)
        d = exact_apsp(g)
        iu = np.triu_indices(g.n, k=1)
        base = d[iu]
        mask = np.isfinite(base) & (base > 0)
        ratios = res.all_pairs()[iu][mask] / base[mask]
        size_bound = 8 * n * max(math.log2(max(math.log2(n), 2)), 1)
        rows.append(
            (
                n,
                res.k,
                res.t,
                res.rounds,
                res.spanner.m,
                f"{size_bound:.0f}",
                f"{ratios.max():.2f}",
                f"{ratios.mean():.3f}",
                f"{res.guaranteed_stretch:.1f}",
            )
        )
        assert ratios.max() <= res.guaranteed_stretch + 1e-9
        assert np.all(ratios >= 1 - 1e-9)
        assert res.spanner.m <= size_bound
    with capsys.disabled():
        print_table(
            "Corollary 1.4: MPC APSP (k=log n, t=log log n)",
            ["n", "k", "t", "rounds", "spanner m", "size bound", "max ratio", "mean ratio", "stretch bound"],
            rows,
        )
    benchmark(lambda: apsp_mpc(bench_graph(256, 0.1), rng=80))


def test_oracle_quality_vs_k(benchmark, capsys):
    """Stretch/size dial: smaller k -> better approximation, bigger spanner."""
    g = bench_graph(512, 0.06)
    rows = []
    prev_size = None
    for k in (2, 4, 8):
        o = SpannerDistanceOracle(g, k=k, t=2, rng=81)
        rep = measure_approximation(o, num_pairs=400, rng=82)
        rows.append(
            (k, o.spanner.m, f"{rep.max_ratio:.2f}", f"{rep.mean_ratio:.3f}", f"{rep.stretch_bound:.1f}")
        )
        assert rep.within_bound
        if prev_size is not None:
            assert o.spanner.m <= prev_size * 1.2  # sizes shrink (noise slack)
        prev_size = o.spanner.m
    with capsys.disabled():
        print_table(
            f"Oracle quality vs k (n={g.n}, t=2)",
            ["k", "spanner size", "max ratio", "mean ratio", "bound"],
            rows,
        )
    benchmark(lambda: SpannerDistanceOracle(g, k=4, t=2, rng=81))


@pytest.mark.parametrize("n", NS)
def test_benchmark_apsp_pipeline(benchmark, n):
    g = bench_graph(n, min(0.9, 24.0 / n))
    benchmark(lambda: apsp_mpc(g, rng=83))
