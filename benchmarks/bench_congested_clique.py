"""Experiments T8.1 / C1.5: spanners and APSP in the Congested Clique.

Regenerates: the w.h.p. size guarantee via per-iteration repetition
selection (Theorem 8.1) with only a constant round overhead per iteration,
and the Corollary 1.5 APSP pipeline whose collection phase costs
``O(spanner size / n) = O(log log n)`` rounds — the first sublogarithmic
weighted APSP in the model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cc_impl import apsp_cc, spanner_cc
from repro.core import size_bound
from repro.graphs import apsp as exact_apsp
from repro.graphs import erdos_renyi
from common import print_table


def _graph(n, seed=90):
    return erdos_renyi(n, min(0.9, 24.0 / n), weights="integer", rng=seed, low=1, high=64)


def test_theorem_8_1_table(benchmark, capsys):
    g = _graph(400)
    k, t = 8, 3
    rows = []
    for seed in range(3):
        res = spanner_cc(g, k, t, rng=seed)
        bound = size_bound(g.n, k, t, constant=8.0)
        rows.append(
            (
                seed,
                res.iterations,
                res.extra["rounds"],
                res.num_edges,
                f"{bound:.0f}",
                res.extra["repetitions"],
                res.extra["repetition_retries"],
            )
        )
        assert res.num_edges <= bound  # holds every run: the w.h.p. upgrade
        assert res.extra["rounds"] <= 8 * res.iterations + 8
    with capsys.disabled():
        print_table(
            f"Theorem 8.1 CC spanner (n={g.n}, k={k}, t={t})",
            ["seed", "iterations", "rounds", "size", "whp bound", "reps", "retries"],
            rows,
        )
    benchmark(lambda: spanner_cc(g, k, t, rng=0))


def test_corollary_1_5_table(benchmark, capsys):
    rows = []
    for n in (128, 256, 400):
        g = _graph(n, seed=91)
        res = apsp_cc(g, rng=92)
        d = exact_apsp(g)
        iu = np.triu_indices(g.n, k=1)
        base = d[iu]
        mask = np.isfinite(base) & (base > 0)
        ratios = res.all_pairs()[iu][mask] / base[mask]
        rows.append(
            (
                n,
                res.k,
                res.t,
                res.rounds,
                res.collection_rounds,
                res.spanner.m,
                f"{ratios.max():.2f}",
                f"{res.guaranteed_stretch:.1f}",
            )
        )
        assert ratios.max() <= res.guaranteed_stretch + 1e-9
    with capsys.disabled():
        print_table(
            "Corollary 1.5: Congested Clique weighted APSP",
            ["n", "k", "t", "total rounds", "collect rounds", "spanner m", "max ratio", "bound"],
            rows,
        )
    benchmark(lambda: apsp_cc(_graph(256, seed=91), rng=92))


def test_collection_rounds_scale(benchmark, capsys):
    """Collection rounds ~ spanner size / n (Lenzen)."""
    rows = []
    for n in (128, 256, 512):
        g = _graph(n, seed=93)
        res = apsp_cc(g, rng=94)
        per_node = 3 * res.spanner.m / max(n - 1, 1)
        rows.append((n, res.spanner.m, f"{per_node:.1f}", res.collection_rounds))
        assert res.collection_rounds <= 2 * (per_node + 2)
    with capsys.disabled():
        print_table(
            "Lenzen collection cost ~ size/n",
            ["n", "spanner m", "words per node", "collect rounds"],
            rows,
        )
    benchmark(lambda: apsp_cc(_graph(128, seed=93), rng=94))
