"""Experiment §3 (Theorems 3.1/3.4): the two-phase sqrt(k) warm-up.

Regenerates: ``O(sqrt(k))`` iterations, stretch ``O(k)``, size
``O(sqrt(k) n^{1+1/k})`` — the near-optimal-stretch point of the tradeoff.
"""

from __future__ import annotations

import math

import pytest

from repro.core import two_phase_contraction
from common import bench_graph, measure, print_table

KS = [4, 9, 16, 25]


@pytest.fixture(scope="module")
def g():
    return bench_graph(512, 0.06)


def test_section3_table(benchmark, g, capsys):
    rows = []
    for k in KS:
        res = two_phase_contraction(g, k, rng=40 + k)
        m = measure(g, res)
        it_bound = 2 * math.ceil(math.sqrt(k)) + 1
        sz_bound = 4 * math.sqrt(k) * g.n ** (1 + 1.0 / k)
        rows.append(
            (
                k,
                it_bound,
                m["iterations"],
                f"{4 * k}",
                f"{m['stretch']:.2f}",
                f"{sz_bound:.0f}",
                m["size"],
                res.extra["super_nodes"],
            )
        )
        assert m["iterations"] <= it_bound
        assert m["stretch"] <= 4 * k
        assert m["size"] <= sz_bound
    with capsys.disabled():
        print_table(
            f"Section 3 two-phase contraction (n={g.n}, m={g.m})",
            ["k", "iter bound", "iter", "O(k) bound", "stretch", "size bound", "size", "super-nodes"],
            rows,
        )
    benchmark(lambda: two_phase_contraction(g, 9, rng=41))


@pytest.mark.parametrize("k", KS)
def test_benchmark_sqrt_k(benchmark, g, k):
    benchmark(lambda: two_phase_contraction(g, k, rng=3))
