"""Open-loop load benchmark for the concurrent micro-batching query server.

Protocol (see EXPERIMENTS.md):

1. Build one spanner oracle on the reference graph, persist it to a
   temporary :class:`~repro.service.store.ArtifactStore`, and serve the
   *loaded* artifact — the production path.
2. **Offered-load sweep** — an open-loop generator (requests fired on a
   fixed arrival schedule, never waiting for replies — the discipline
   that exposes queueing collapse) drives ``clients`` pipelined NDJSON
   connections at each configured rate through a fresh
   :class:`~repro.service.server.QueryServer`.  Per rate: achieved qps,
   p50/p95/p99/mean latency from *scheduled arrival* to reply, and the
   micro-batch size histogram.
3. **Micro-batch vs naive duel** — the same offered load replayed
   against a ``micro_batch=False`` server (one ``engine.query`` dispatch
   and one write+drain per request, strictly serialized: the server
   ``repro serve``'s pipe loop would be if it spoke sockets).  The
   acceptance gate: micro-batched achieved throughput >= 5x naive at the
   same offered load.
4. **Identity + drain** — every reply across the sweep must be
   bit-identical to offline ``QueryEngine.query_many`` on the same
   artifact, and a sharded (2-worker) server session drained mid-traffic
   must answer everything admitted and leave ``/dev/shm`` clean.

Caveat recorded in the JSON: server, clients, and solver share one
process (and on CI one core), so absolute qps undercounts what a
dedicated server box would do; the *ratios* (micro vs naive at identical
overheads) are the defended signal.

Run directly::

    PYTHONPATH=src python benchmarks/bench_server.py [--smoke]
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import time

import numpy as np

from repro.core.params import coerce_rng
from repro.distances import SpannerDistanceOracle
from repro.graphs.specs import GraphSpec
from repro.service import ArtifactStore, AsyncClient, QueryEngine, QueryServer
from repro.service.shm import shm_segments

from bench_service import zipf_sources

__all__ = [
    "run_server_bench",
    "format_table",
    "speedup_gate",
    "identity_gate",
    "drain_gate",
    "baseline_gate",
    "SPEEDUP_GATE",
]

#: Minimum micro-batched vs naive-serial achieved-qps ratio at the same
#: offered load (the ISSUE 7 acceptance floor), full scale only.
SPEEDUP_GATE = 5.0

#: Open-loop workload: zipf-hot sources over ``hot_ranks`` of a vertex
#: permutation with a ``uniform_mix`` cold fraction (the bench_service
#: serving mix), cache bounded *under* the hot set — sustained
#: distinct-source pressure, so throughput is decided by how requests
#: reach the solver: coalesced into deduplicated ``batched_sssp`` plans
#: (micro) or one Dijkstra round trip at a time (naive).
FULL_CONFIG = {
    "graph": "er:1024:0.02",
    "k": 6,
    "t": 2,
    "seed": 0,
    "cache_rows": 128,
    "zipf_a": 1.05,
    "hot_ranks": 256,
    "uniform_mix": 0.02,
    "clients": 8,
    "max_batch": 2_048,
    "window_ms": 2.0,
    "max_pending": 200_000,  # sweep measures latency collapse, not rejection
    "rates": [2_000, 6_000, 12_000],
    "queries_per_rate": 6_000,
    "warmup": 800,
    "duel_rate": 30_000,  # deep saturation: micro's dedup advantage at full batch
    "duel_queries": 8_000,
    "drain_queries": 600,
    "drain_rate": 3_000,
}
SMOKE_CONFIG = {
    "graph": "er:256:0.08",
    "k": 4,
    "t": 2,
    "seed": 0,
    "cache_rows": 32,
    "zipf_a": 1.05,
    "hot_ranks": 64,
    "uniform_mix": 0.1,
    "clients": 4,
    "max_batch": 128,
    "window_ms": 2.0,
    "max_pending": 50_000,
    "rates": [1_500],
    "queries_per_rate": 900,
    "warmup": 128,
    "duel_rate": 1_500,
    "duel_queries": 400,
    "drain_queries": 200,
    "drain_rate": 1_500,
}


def _workload(cfg: dict, n: int, size: int, rng) -> np.ndarray:
    sources = zipf_sources(
        n,
        size,
        cfg["zipf_a"],
        rng,
        hot_ranks=cfg["hot_ranks"],
        uniform_mix=cfg["uniform_mix"],
    )
    return np.stack([sources, rng.integers(0, n, size=size)], axis=1)


async def _open_loop(
    server: QueryServer, pairs: np.ndarray, rate: float, clients: int
) -> dict:
    """Drive ``pairs`` at ``rate`` req/s (deterministic schedule) and
    collect per-request latencies from scheduled arrival to reply."""
    conns = [await AsyncClient.connect(server.host, server.port) for _ in range(clients)]
    total = pairs.shape[0]
    pair_list = pairs.tolist()
    replies: list = [None] * total
    t_recv = np.zeros(total)
    t0 = time.perf_counter() + 0.02  # lead-in so client 0 isn't early
    schedule = t0 + np.arange(total) / rate

    async def _drive(ci: int) -> None:
        cli = conns[ci]
        futs = []
        for i in range(ci, total, clients):
            delay = schedule[i] - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            u, v = pair_list[i]
            futs.append((i, cli.send({"op": "query", "u": u, "v": v})))
        for i, fut in futs:
            msg, t = await fut
            replies[i] = msg
            t_recv[i] = t

    await asyncio.gather(*(_drive(ci) for ci in range(clients)))
    for cli in conns:
        await cli.close()

    errors = sum(1 for msg in replies if "error" in msg)
    answers = np.array(
        [
            np.nan if "error" in msg else (np.inf if msg["d"] is None else msg["d"])
            for msg in replies
        ]
    )
    return {
        "offered_qps": float(rate),
        "completed": total - errors,
        "errors": errors,
        "wall_s": float(t_recv.max() - t0),
        "achieved_qps": float((total - errors) / max(t_recv.max() - t0, 1e-9)),
        "latencies_s": t_recv - schedule,
        "answers": answers,
    }


def _latency_record(latencies_s: np.ndarray) -> dict:
    from repro.service.server import latency_summary

    return latency_summary(latencies_s)


def _fresh_engine(store: ArtifactStore, key: str, cfg: dict, *, shards: int = 0):
    return QueryEngine.from_store(
        store, key, cache_rows=cfg["cache_rows"], shards=shards
    )


async def _measure_point(
    store: ArtifactStore,
    key: str,
    cfg: dict,
    rate: float,
    pairs: np.ndarray,
    *,
    micro_batch: bool = True,
    shards: int = 0,
) -> dict:
    """One sweep point: fresh engine + server, warmup, measured open loop."""
    warm = cfg["warmup"]
    engine = _fresh_engine(store, key, cfg, shards=shards)
    server = QueryServer(
        engine,
        max_batch=cfg["max_batch"],
        window_s=cfg["window_ms"] / 1e3,
        max_pending=cfg["max_pending"],
        micro_batch=micro_batch,
    )
    async with server:
        if warm:
            await _open_loop(server, pairs[:warm], rate, cfg["clients"])
        server.reset_stats()
        run = await _open_loop(server, pairs[warm:], rate, cfg["clients"])
        stats = server.stats()
    hist = {int(k): v for k, v in stats["batch_size_hist"].items()}
    weighted = sum(k * v for k, v in hist.items())
    return {
        "mode": "micro_batch" if micro_batch else "serial",
        "offered_qps": run["offered_qps"],
        "completed": run["completed"],
        "errors": run["errors"],
        "wall_s": round(run["wall_s"], 4),
        "achieved_qps": round(run["achieved_qps"], 1),
        "latency_ms": _latency_record(run["latencies_s"]),
        "batch_size_hist": {str(k): v for k, v in sorted(hist.items())},
        "batch_size_mean": round(weighted / max(sum(hist.values()), 1), 2),
        "batch_size_max": max(hist, default=0),
        "server_rejected": stats["rejected"],
        "answers": run["answers"],  # stripped before the record is returned
    }


async def _drain_check(store: ArtifactStore, key: str, cfg: dict) -> dict:
    """Sharded server under traffic, closed mid-stream: everything the
    server admitted must be answered, and /dev/shm must come back clean."""
    before = shm_segments()
    engine = _fresh_engine(store, key, cfg, shards=2)
    rng = coerce_rng(cfg["seed"] + 3)
    pairs = _workload(cfg, engine.n, cfg["drain_queries"], rng)
    server = QueryServer(
        engine,
        max_batch=cfg["max_batch"],
        window_s=cfg["window_ms"] / 1e3,
        max_pending=cfg["max_pending"],
    )
    await server.start()
    cli = await AsyncClient.connect(server.host, server.port)
    futs = [
        cli.send({"op": "query", "u": int(u), "v": int(v)}) for u, v in pairs.tolist()
    ]
    # Don't wait for completion: drain with batches in flight.
    await asyncio.sleep(cfg["drain_queries"] / cfg["drain_rate"] / 4)
    await server.aclose()
    answered = 0
    rejected = 0
    for fut in futs:
        try:
            msg, _ = await fut
        except ConnectionError:
            continue
        if "error" in msg:
            rejected += 1
        else:
            answered += 1
    await cli.close()
    return {
        "sent": int(pairs.shape[0]),
        "answered": answered,
        "rejected_during_drain": rejected,
        "lost": int(pairs.shape[0]) - answered - rejected,
        "shm_clean": shm_segments() == before,
    }


def run_server_bench(*, smoke: bool = False) -> dict:
    """Execute the protocol; returns the JSON-ready record."""
    cfg = SMOKE_CONFIG if smoke else FULL_CONFIG
    rng = coerce_rng(cfg["seed"])
    g = GraphSpec.parse(cfg["graph"]).build(weights="uniform", seed=cfg["seed"])
    oracle = SpannerDistanceOracle(g, cfg["k"], cfg["t"], rng=cfg["seed"])

    work = tempfile.mkdtemp(prefix="bench_server_")
    store = ArtifactStore(os.path.join(work, "store"))
    key = store.save_oracle(oracle, meta={"graph": cfg["graph"], "seed": cfg["seed"]})

    n = g.n
    total = cfg["warmup"] + cfg["queries_per_rate"]
    pairs = _workload(cfg, n, total, rng)
    duel_pairs = _workload(cfg, n, cfg["warmup"] + cfg["duel_queries"], rng)

    # Offline ground truth for bit-identity (fresh engine: the cache only
    # affects speed, never answers).
    offline = _fresh_engine(store, key, cfg)
    expected = offline.query_many(pairs[cfg["warmup"]:])
    duel_expected = offline.query_many(duel_pairs[cfg["warmup"]:])

    async def _run() -> tuple[list[dict], dict, dict, dict]:
        sweep = []
        for rate in cfg["rates"]:
            sweep.append(await _measure_point(store, key, cfg, rate, pairs))
        micro = await _measure_point(store, key, cfg, cfg["duel_rate"], duel_pairs)
        naive = await _measure_point(
            store, key, cfg, cfg["duel_rate"], duel_pairs, micro_batch=False
        )
        drain = await _drain_check(store, key, cfg)
        return sweep, micro, naive, drain

    sweep, micro, naive, drain = asyncio.run(_run())

    def _identical(point: dict, want: np.ndarray) -> bool:
        got = point.pop("answers")
        return bool(point["errors"] == 0 and np.array_equal(got, want))

    identity = {
        f"rate_{int(p['offered_qps'])}": _identical(p, expected) for p in sweep
    }
    identity["duel_micro"] = _identical(micro, duel_expected)
    identity["duel_naive"] = _identical(naive, duel_expected)

    import shutil

    shutil.rmtree(work, ignore_errors=True)

    return {
        "suite": "server",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "in_process_note": (
            "server + clients + solver share one process; ratios are the "
            "signal, absolute qps is a floor"
        ),
        "config": dict(cfg),
        "graph": {"n": g.n, "m": g.m, "spanner_m": oracle.spanner.m},
        "sweep": sweep,
        "duel": {
            "offered_qps": float(cfg["duel_rate"]),
            "queries": cfg["duel_queries"],
            "micro_qps": micro["achieved_qps"],
            "naive_qps": naive["achieved_qps"],
            "speedup": round(
                micro["achieved_qps"] / max(naive["achieved_qps"], 1e-9), 2
            ),
            "micro_latency_ms": micro["latency_ms"],
            "naive_latency_ms": naive["latency_ms"],
            "micro_batch_size_mean": micro["batch_size_mean"],
        },
        "identity": identity,
        "drain": drain,
    }


def speedup_gate(record: dict, *, minimum: float = SPEEDUP_GATE):
    """The >= 5x micro-vs-naive throughput gate (full scale only).

    Returns ``(ok, reason)``; smoke-scale runs skip with an explicit
    reason — at tiny n and a few hundred requests the duel measures
    event-loop noise, not the batching mechanism.
    """
    speedup = record.get("duel", {}).get("speedup", 0.0)
    if record.get("smoke"):
        return True, (
            f"skipped: smoke-scale open-loop timings are noise "
            f"(recorded {speedup:.2f}x)"
        )
    if speedup >= minimum:
        return True, (
            f"micro-batched {record['duel']['micro_qps']:,.0f} q/s vs naive "
            f"{record['duel']['naive_qps']:,.0f} q/s = {speedup:.2f}x, meets "
            f"the {minimum:.0f}x gate"
        )
    return False, f"micro vs naive speedup {speedup:.2f}x below the {minimum:.0f}x gate"


def identity_gate(record: dict):
    """Bit-identity of server replies vs offline ``query_many`` — every
    sweep point and both duel servers, enforced at every scale."""
    checks = record.get("identity", {})
    ok = True
    reasons = []
    for name, passed in sorted(checks.items()):
        if passed:
            reasons.append(f"{name}: ok")
        else:
            ok = False
            reasons.append(f"{name}: FAILED")
    if not checks:
        return False, ["no identity checks recorded"]
    return ok, reasons


def drain_gate(record: dict):
    """Graceful-drain invariants, enforced at every scale: nothing the
    server admitted is lost, and no /dev/shm segment survives."""
    d = record.get("drain", {})
    ok = True
    reasons = []
    if d.get("shm_clean"):
        reasons.append("shm_clean: ok")
    else:
        ok = False
        reasons.append("shm_clean: FAILED (leaked segments)")
    if d.get("lost", 1) == 0:
        reasons.append(f"no lost requests (answered {d.get('answered')}, "
                       f"rejected {d.get('rejected_during_drain')} mid-drain)")
    else:
        ok = False
        reasons.append(f"LOST {d.get('lost')} admitted requests on drain")
    return ok, reasons


def baseline_gate(record: dict, baseline: dict, *, max_slowdown: float = 2.0):
    """Compare top-rate achieved qps against a committed record.

    Skips (with a reason) when the scales differ — CI runs smoke against
    the committed full-scale BENCH_server.json, where absolute qps is not
    comparable; the full-vs-full path fails on a > ``max_slowdown``
    regression.
    """
    if record.get("smoke") != baseline.get("smoke"):
        return True, (
            "skipped: scale mismatch (smoke vs full records are not "
            "qps-comparable); structural gates still apply"
        )
    old = max(
        (p.get("achieved_qps", 0.0) for p in baseline.get("sweep", [])), default=0.0
    )
    new = max((p.get("achieved_qps", 0.0) for p in record.get("sweep", [])), default=0.0)
    if old <= 0:
        return True, "skipped: baseline records no achieved qps"
    ratio = old / max(new, 1e-9)
    if ratio > max_slowdown:
        return False, (
            f"achieved qps regressed {ratio:.2f}x "
            f"({old:,.0f} -> {new:,.0f} q/s, gate {max_slowdown:.1f}x)"
        )
    return True, f"achieved qps {old:,.0f} -> {new:,.0f} q/s ({ratio:.2f}x of gate {max_slowdown:.1f}x)"


def format_table(record: dict) -> str:
    gr = record["graph"]
    d = record["duel"]
    lines = [
        f"server bench ({'smoke' if record['smoke'] else 'full'}, "
        f"n={gr['n']} spanner_m={gr['spanner_m']}, "
        f"cpu_count={record['cpu_count']})",
        "  open-loop sweep (offered -> achieved qps, latency ms p50/p95/p99, "
        "mean batch):",
    ]
    for p in record["sweep"]:
        lat = p["latency_ms"]
        lines.append(
            f"    {p['offered_qps']:>8,.0f} -> {p['achieved_qps']:>9,.1f} q/s   "
            f"{lat.get('p50_ms', 0):>7.2f}/{lat.get('p95_ms', 0):>8.2f}/"
            f"{lat.get('p99_ms', 0):>8.2f}   batch {p['batch_size_mean']:.1f} "
            f"(max {p['batch_size_max']})"
        )
    lines.append(
        f"  duel at {d['offered_qps']:,.0f} q/s offered: micro "
        f"{d['micro_qps']:,.1f} q/s vs naive {d['naive_qps']:,.1f} q/s "
        f"= {d['speedup']:.2f}x (micro mean batch {d['micro_batch_size_mean']:.1f})"
    )
    idn = record["identity"]
    lines.append(
        "  identity: " + ", ".join(f"{k}={v}" for k, v in sorted(idn.items()))
    )
    dr = record["drain"]
    lines.append(
        f"  drain: answered {dr['answered']}/{dr['sent']} "
        f"(rejected {dr['rejected_during_drain']} mid-drain, lost {dr['lost']}), "
        f"shm_clean={dr['shm_clean']}"
    )
    return "\n".join(lines)


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    ap.add_argument("--out", default=None, help="write the record JSON here")
    ap.add_argument(
        "--baseline", default=None, help="committed BENCH_server.json to gate against"
    )
    args = ap.parse_args()
    rec = run_server_bench(smoke=args.smoke)
    print(format_table(rec))
    rc = 0
    gates = [speedup_gate(rec, ), identity_gate(rec), drain_gate(rec)]
    if args.baseline:
        with open(args.baseline) as fh:
            gates.append(baseline_gate(rec, json.load(fh)))
    for ok, reasons in gates:
        if isinstance(reasons, str):
            reasons = [reasons]
        for reason in reasons:
            print(f"gate: {reason}")
        rc |= 0 if ok else 1
    if args.out:
        os.makedirs(os.path.dirname(os.path.abspath(args.out)), exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(rec, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    raise SystemExit(rc)
