"""Benchmark the sketch-serving query subsystem: throughput + cache policy.

Protocol (see EXPERIMENTS.md):

1. Build one spanner oracle (``general``, the paper's workhorse) on the
   reference graph and persist it to a temporary
   :class:`~repro.service.store.ArtifactStore`.
2. **Thrash workload** — a zipf-ranked hot-source stream of single
   queries (the serving pattern the seed bug punished) is answered twice
   on the *loaded* spanner with the same cache capacity: once by
   :class:`_ClearEvictServer` (the seed's wholesale ``clear()`` eviction,
   reproduced verbatim) and once by the LRU-backed
   :class:`~repro.service.engine.QueryEngine`.  The acceptance gate
   defends a >= 5x wall-clock speedup at full scale.
3. **Batched workload** — the same pair volume dispatched through
   ``query_many`` (grouped-by-source planning), plus a uniform-source
   mix, recording queries/second.
4. **Equivalence + persistence** — sharded (2 workers) vs serial engines
   must agree bit-identically, and oracle/sketch artifacts reloaded from
   disk must answer ``query_many`` bit-identically to the freshly built
   objects.

Run directly::

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np
from scipy.sparse import csgraph

from repro.core.params import coerce_rng
from repro.distances import DistanceSketch, SpannerDistanceOracle
from repro.graphs.specs import GraphSpec
from repro.service import ArtifactStore, QueryEngine

__all__ = [
    "run_service_bench",
    "format_table",
    "thrash_gate",
    "identity_gate",
    "zipf_sources",
    "THRASH_GATE",
]

#: Minimum LRU-vs-clear() wall-clock speedup the full-scale zipf workload
#: must defend (the ISSUE 5 acceptance floor).
THRASH_GATE = 5.0

#: The zipf workload: sources are zipf(``zipf_a``)-ranked over a window of
#: ``hot_ranks`` hot vertices (a fixed random permutation), blended with a
#: ``uniform_mix`` fraction of uniform cold sources — the classic serving
#: mix of a bounded hot set under sustained distinct-source pressure.  The
#: cache bound sits just above the hot window (the realistic provisioning:
#: big enough for the hot set, not for everything), which is exactly the
#: regime where the seed's clear() eviction thrashed.
FULL_CONFIG = {
    "graph": "er:1024:0.02",
    "k": 6,
    "t": 2,
    "seed": 0,
    "cache_rows": 128,
    "zipf_a": 1.05,
    "hot_ranks": 120,
    "uniform_mix": 0.01,
    "zipf_queries": 50_000,
    "uniform_queries": 10_000,
    "batch": 256,
    "sketch_k": 3,
}
SMOKE_CONFIG = {
    "graph": "er:256:0.08",
    "k": 4,
    "t": 2,
    "seed": 0,
    "cache_rows": 32,
    "zipf_a": 1.05,
    "hot_ranks": 28,
    "uniform_mix": 0.01,
    "zipf_queries": 2_000,
    "uniform_queries": 500,
    "batch": 128,
    "sketch_k": 3,
}


class _ClearEvictServer:
    """The seed oracle's cache policy, frozen for the before/after run.

    Single-pair serving against a dict row cache that is evicted by
    wholesale ``clear()`` on reaching capacity — the policy
    ``SpannerDistanceOracle`` shipped with before the shared LRU fix
    (src/repro/distances/oracle.py at PR 4).  Row solving is the same
    scipy Dijkstra call the engine makes, so the measured difference is
    the cache policy, nothing else.
    """

    def __init__(self, spanner, capacity: int) -> None:
        self._matrix = spanner.to_scipy() if spanner.m else None
        self._n = spanner.n
        self.capacity = capacity
        self._cache: dict[int, np.ndarray] = {}
        self.rows_solved = 0

    def query(self, u: int, v: int) -> float:
        if u not in self._cache:
            self.rows_solved += 1
            if self._matrix is None:
                d = np.full(self._n, np.inf)
                d[u] = 0.0
            else:
                d = csgraph.dijkstra(self._matrix, directed=False, indices=u)
            if len(self._cache) >= self.capacity:
                self._cache.clear()
            self._cache[u] = d
        return float(self._cache[u][v])


def zipf_sources(
    n: int, size: int, a: float, rng, *, hot_ranks: int | None = None,
    uniform_mix: float = 0.0,
) -> np.ndarray:
    """Zipf(``a``)-ranked sources over a hot window of a vertex permutation.

    Ranks are folded onto the first ``hot_ranks`` entries of a fixed
    permutation of ``0..n-1`` (``None`` = all of them); a ``uniform_mix``
    fraction of the draws is replaced by uniform sources over the whole
    vertex set — the cold distinct-source pressure that forces evictions.
    """
    rng = coerce_rng(rng)
    hot = n if hot_ranks is None else min(hot_ranks, n)
    perm = rng.permutation(n)
    src = perm[(rng.zipf(a, size=size) - 1) % hot]
    if uniform_mix > 0.0:
        cold = rng.random(size) < uniform_mix
        src = np.where(cold, rng.integers(0, n, size=size), src)
    return src


def _single_query_wall(server, pairs: np.ndarray) -> float:
    start = time.perf_counter()
    for u, v in pairs:
        server.query(int(u), int(v))
    return time.perf_counter() - start


def run_service_bench(*, smoke: bool = False) -> dict:
    """Execute the protocol; returns the JSON-ready record."""
    cfg = SMOKE_CONFIG if smoke else FULL_CONFIG
    rng = coerce_rng(cfg["seed"])
    g = GraphSpec.parse(cfg["graph"]).build(weights="uniform", seed=cfg["seed"])
    oracle = SpannerDistanceOracle(g, cfg["k"], cfg["t"], rng=cfg["seed"])

    work = tempfile.mkdtemp(prefix="bench_service_")
    store = ArtifactStore(os.path.join(work, "store"))
    key = store.save_oracle(oracle, meta={"graph": cfg["graph"], "seed": cfg["seed"]})

    # --- workloads -------------------------------------------------------
    n = g.n
    r = cfg["zipf_queries"]
    zipf_pairs = np.stack(
        [
            zipf_sources(
                n,
                r,
                cfg["zipf_a"],
                rng,
                hot_ranks=cfg["hot_ranks"],
                uniform_mix=cfg["uniform_mix"],
            ),
            rng.integers(0, n, size=r),
        ],
        axis=1,
    )
    ru = cfg["uniform_queries"]
    uniform_pairs = np.stack(
        [rng.integers(0, n, size=ru), rng.integers(0, n, size=ru)], axis=1
    )

    # --- 2: the thrash duel (same loaded spanner, same capacity) ---------
    loaded = store.load_oracle(key)
    clear_server = _ClearEvictServer(loaded.spanner, cfg["cache_rows"])
    clear_s = _single_query_wall(clear_server, zipf_pairs)

    lru_engine = QueryEngine(loaded.spanner, cache_rows=cfg["cache_rows"])
    lru_s = _single_query_wall(lru_engine, zipf_pairs)
    lru_stats = lru_engine.stats()

    # --- 3: batched serving ----------------------------------------------
    batch_engine = QueryEngine(loaded.spanner, cache_rows=cfg["cache_rows"])
    batch = cfg["batch"]
    start = time.perf_counter()
    batched_out = np.concatenate(
        [
            batch_engine.query_many(zipf_pairs[lo : lo + batch])
            for lo in range(0, r, batch)
        ]
    )
    batched_s = time.perf_counter() - start
    start = time.perf_counter()
    for lo in range(0, ru, batch):
        batch_engine.query_many(uniform_pairs[lo : lo + batch])
    uniform_s = time.perf_counter() - start

    # --- 4: equivalence + persistence ------------------------------------
    sample = zipf_pairs[: min(2048, r)]
    serial_engine = QueryEngine(loaded.spanner, cache_rows=cfg["cache_rows"])
    serial_out = serial_engine.query_many(sample)
    with QueryEngine(
        loaded.spanner, cache_rows=cfg["cache_rows"], shards=2
    ) as sharded_engine:
        sharded_out = sharded_engine.query_many(sample)
    sharded_identical = bool(np.array_equal(serial_out, sharded_out))
    oracle_roundtrip = bool(
        np.array_equal(oracle.query_many(sample), loaded.query_many(sample))
    )

    sketch = DistanceSketch(loaded.spanner, cfg["sketch_k"], rng=cfg["seed"])
    skey = store.save_sketch(sketch)
    sketch_loaded = store.load_sketch(skey)
    sketch_roundtrip = bool(
        np.array_equal(sketch.query_many(sample), sketch_loaded.query_many(sample))
    )

    import shutil

    shutil.rmtree(work, ignore_errors=True)

    return {
        "suite": "service",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "config": dict(cfg),
        "graph": {"n": g.n, "m": g.m, "spanner_m": oracle.spanner.m},
        "thrash": {
            "queries": r,
            "cache_rows": cfg["cache_rows"],
            "clear_evict_s": round(clear_s, 4),
            "clear_evict_rows": clear_server.rows_solved,
            "lru_s": round(lru_s, 4),
            "lru_rows": lru_stats["rows_solved"],
            "lru_hit_rate": lru_stats["cache"]["hit_rate"],
            "speedup": round(clear_s / max(lru_s, 1e-9), 2),
            "rows_reduction": round(
                clear_server.rows_solved / max(lru_stats["rows_solved"], 1), 2
            ),
        },
        "batched": {
            "zipf_s": round(batched_s, 4),
            "zipf_qps": round(r / max(batched_s, 1e-9), 1),
            "uniform_s": round(uniform_s, 4),
            "uniform_qps": round(ru / max(uniform_s, 1e-9), 1),
            "batch": batch,
            "matches_single": bool(
                np.allclose(batched_out[: sample.shape[0]], serial_out)
            ),
        },
        "equivalence": {
            "sharded_identical": sharded_identical,
            "oracle_roundtrip_identical": oracle_roundtrip,
            "sketch_roundtrip_identical": sketch_roundtrip,
        },
    }


def thrash_gate(record: dict, *, minimum: float = THRASH_GATE):
    """The >= 5x LRU-vs-clear() acceptance gate (full scale only).

    Returns ``(ok, reason)``; smoke-scale runs skip with an explicit
    reason — at tiny n the Dijkstra rows are microseconds and the duel
    measures timer noise, not the cache policy.
    """
    speedup = record.get("thrash", {}).get("speedup", 0.0)
    if record.get("smoke"):
        return True, (
            f"skipped: smoke-scale timings are noise (recorded {speedup:.2f}x; "
            f"rows_reduction {record.get('thrash', {}).get('rows_reduction')}x)"
        )
    if speedup >= minimum:
        return True, f"LRU vs clear() speedup {speedup:.2f}x meets the {minimum:.0f}x gate"
    return False, f"LRU vs clear() speedup {speedup:.2f}x below the {minimum:.0f}x gate"


def identity_gate(record: dict):
    """Bit-identity invariants — enforced at every scale.

    Returns ``(ok, reasons)``: sharded == serial, and loaded-from-disk
    oracle/sketch answers identical to the freshly built objects.
    """
    eq = record.get("equivalence", {})
    reasons = []
    ok = True
    for name in (
        "sharded_identical",
        "oracle_roundtrip_identical",
        "sketch_roundtrip_identical",
    ):
        if eq.get(name):
            reasons.append(f"{name}: ok")
        else:
            ok = False
            reasons.append(f"{name}: FAILED")
    return ok, reasons


def format_table(record: dict) -> str:
    t = record["thrash"]
    b = record["batched"]
    e = record["equivalence"]
    gr = record["graph"]
    lines = [
        f"service bench ({'smoke' if record['smoke'] else 'full'}, "
        f"n={gr['n']} spanner_m={gr['spanner_m']}, "
        f"cpu_count={record['cpu_count']})",
        f"  thrash duel ({t['queries']} zipf queries, {t['cache_rows']} rows): "
        f"clear() {t['clear_evict_s']:.3f}s ({t['clear_evict_rows']} rows) -> "
        f"LRU {t['lru_s']:.3f}s ({t['lru_rows']} rows, "
        f"{t['lru_hit_rate']:.0%} hits): {t['speedup']:.2f}x",
        f"  batched: zipf {b['zipf_qps']:,.0f} q/s, uniform {b['uniform_qps']:,.0f} q/s "
        f"(batch={b['batch']})",
        f"  equivalence: sharded={e['sharded_identical']} "
        f"oracle_roundtrip={e['oracle_roundtrip_identical']} "
        f"sketch_roundtrip={e['sketch_roundtrip_identical']}",
    ]
    return "\n".join(lines)


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    args = ap.parse_args()
    rec = run_service_bench(smoke=args.smoke)
    print(format_table(rec))
    print(json.dumps(rec, indent=2, sort_keys=True))
