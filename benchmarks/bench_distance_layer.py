"""Distance-layer benchmark: vectorized sketches / batched Dijkstra vs seed.

The tentpole claim of the distance-layer rework is that Thorup–Zwick sketch
preprocessing — the slowest code in the seed repo, one pure-Python truncated
Dijkstra per hierarchy vertex — becomes ≥5x faster when rebuilt on batched,
array-native primitives, while answering *bit-identical* queries under a
fixed rng.  This bench measures exactly that, plus the batched
``pairwise_distances`` path, and emits a JSON record
(``BENCH_distance_layer.json`` via ``scripts/bench_snapshot.py``) so future
PRs have a perf trajectory to defend.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_distance_layer.py [--smoke]

or via pytest (``pytest benchmarks/bench_distance_layer.py``), or in smoke
mode from the tier-1 suite (``tests/test_bench_distance_layer.py``).
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.sparse import csgraph

from repro.distances.sketches import DistanceSketch, build_bunches_reference
from repro.graphs import erdos_renyi, pairwise_distances

# The acceptance-scale configuration: erdos_renyi(2000, 0.01), k=3.
FULL_CONFIG = {"n": 2000, "p": 0.01, "k": 3, "seed": 7}
SMOKE_CONFIG = {"n": 200, "p": 0.05, "k": 3, "seed": 7}


def _seed_preprocess(g, k, rng_seed):
    """The seed implementation end-to-end: hierarchy sampling + scipy pivots
    + per-center dict/heapq truncated Dijkstra bunches.

    Consumes the rng stream exactly like ``DistanceSketch.__init__``, so the
    hierarchy (and therefore every distance) matches the vectorized build.
    """
    rng = np.random.default_rng(rng_seed)
    n = g.n
    p = float(n) ** (-1.0 / k) if n > 1 else 0.5
    levels = [np.arange(n, dtype=np.int64)]
    for _ in range(1, k):
        prev = levels[-1]
        levels.append(prev[rng.random(prev.size) < p])
    mat = g.to_scipy() if g.m else None
    pivot_dist = np.full((k + 1, n), np.inf)
    pivot = np.full((k + 1, n), -1, dtype=np.int64)
    pivot_dist[0] = 0.0
    pivot[0] = np.arange(n)
    for i in range(1, k):
        ai = levels[i]
        if ai.size == 0 or mat is None:
            continue
        dist, _, sources = csgraph.dijkstra(
            mat, directed=False, indices=ai, min_only=True,
            return_predecessors=True,
        )
        pivot_dist[i] = dist
        pivot[i] = sources
    bunch = build_bunches_reference(g, levels, pivot_dist)
    return levels, pivot_dist, pivot, bunch


def _query_reference(pivot, pivot_dist, bunch, k, n, pairs):
    """The seed query loop over dict bunches (for bit-identity checks)."""
    out = np.empty(pairs.shape[0])
    for idx, (u, v) in enumerate(pairs):
        u, v = int(u), int(v)
        if u == v:
            out[idx] = 0.0
            continue
        w = u
        i = 0
        du_w = 0.0
        while w not in bunch[v]:
            i += 1
            if i >= k:
                du_w, w = math.inf, None
                break
            u, v = v, u
            w = int(pivot[i][u])
            du_w = float(pivot_dist[i][u])
            if w < 0 or not math.isfinite(du_w):
                du_w, w = math.inf, None
                break
        out[idx] = du_w if w is None else du_w + bunch[v][w]
    return out


def _pairwise_reference(g, pairs):
    """The seed ``pairwise_distances``: one scipy Dijkstra per source in a
    Python loop."""
    pairs = np.asarray(pairs, dtype=np.int64)
    out = np.empty(pairs.shape[0])
    mat = g.to_scipy() if g.m else None
    for s in np.unique(pairs[:, 0]):
        mask = pairs[:, 0] == s
        if mat is None:
            d = np.full(g.n, np.inf)
            d[s] = 0.0
        else:
            d = csgraph.dijkstra(mat, directed=False, indices=int(s))
        out[mask] = d[pairs[mask, 1]]
    return out


def run_distance_layer_bench(*, smoke: bool = False, num_query_pairs: int = 2000) -> dict:
    """Time seed vs vectorized distance-layer paths; return the JSON record.

    Raises ``AssertionError`` if the vectorized paths are not result-
    equivalent to the seed paths (queries must be bit-identical).
    """
    cfg = dict(SMOKE_CONFIG if smoke else FULL_CONFIG)
    g = erdos_renyi(cfg["n"], cfg["p"], weights="uniform", rng=cfg["seed"])
    k, seed = cfg["k"], cfg["seed"]

    # --- sketch preprocessing: seed vs vectorized -------------------------
    t0 = time.perf_counter()
    levels, pivot_dist, pivot, ref_bunch = _seed_preprocess(g, k, seed)
    t_seed = time.perf_counter() - t0

    # Fresh graph object so the seed run's cached CSR/scipy matrices do not
    # subsidize the vectorized run.
    g2 = erdos_renyi(cfg["n"], cfg["p"], weights="uniform", rng=cfg["seed"])
    t0 = time.perf_counter()
    sk = DistanceSketch(g2, k, rng=seed)
    t_vec = time.perf_counter() - t0

    for lv_a, lv_b in zip(levels, sk.levels):
        assert np.array_equal(lv_a, lv_b), "hierarchy diverged — rng stream changed"

    rng = np.random.default_rng(12345)
    pairs = rng.integers(0, g.n, size=(num_query_pairs, 2))
    q_ref = _query_reference(pivot, pivot_dist, ref_bunch, k, g.n, pairs)
    q_vec = sk.query_many(pairs)
    queries_identical = bool(np.array_equal(q_ref, q_vec))
    assert queries_identical, "vectorized sketch queries diverged from seed"

    # --- pairwise_distances: seed loop vs batched -------------------------
    pd_pairs = rng.integers(0, g.n, size=(max(64, num_query_pairs // 4), 2))
    t0 = time.perf_counter()
    pd_ref = _pairwise_reference(g, pd_pairs)
    t_pd_seed = time.perf_counter() - t0
    t0 = time.perf_counter()
    pd_vec = pairwise_distances(g, pd_pairs)
    t_pd_vec = time.perf_counter() - t0
    assert np.array_equal(pd_ref, pd_vec), "batched pairwise_distances diverged"

    record = {
        "benchmark": "distance_layer",
        "config": {**cfg, "smoke": smoke, "num_query_pairs": num_query_pairs},
        "graph": {"n": g.n, "m": g.m},
        "sketch_preprocess": {
            "seed_seconds": t_seed,
            "vectorized_seconds": t_vec,
            "speedup": t_seed / t_vec if t_vec > 0 else float("inf"),
            "bunch_words": int(sk.bunch_centers.size),
            "queries_bit_identical": queries_identical,
        },
        "pairwise_distances": {
            "seed_seconds": t_pd_seed,
            "vectorized_seconds": t_pd_vec,
            "speedup": t_pd_seed / t_pd_vec if t_pd_vec > 0 else float("inf"),
        },
    }
    return record


def format_table(record: dict) -> str:
    """Render the before/after table EXPERIMENTS.md records."""
    sp = record["sketch_preprocess"]
    pw = record["pairwise_distances"]
    g = record["graph"]
    lines = [
        f"distance layer @ n={g['n']}, m={g['m']}, "
        f"k={record['config']['k']} (smoke={record['config']['smoke']})",
        f"{'stage':<24}{'seed (s)':>12}{'vectorized (s)':>16}{'speedup':>10}",
        "-" * 62,
        f"{'sketch preprocess':<24}{sp['seed_seconds']:>12.4f}"
        f"{sp['vectorized_seconds']:>16.4f}{sp['speedup']:>9.1f}x",
        f"{'pairwise_distances':<24}{pw['seed_seconds']:>12.4f}"
        f"{pw['vectorized_seconds']:>16.4f}{pw['speedup']:>9.1f}x",
        f"queries bit-identical: {sp['queries_bit_identical']}",
    ]
    return "\n".join(lines)


def test_distance_layer_speedup(benchmark, capsys):
    """Harness entry point: the full-size run with the ≥5x acceptance gate."""
    record = run_distance_layer_bench()
    with capsys.disabled():
        print("\n" + format_table(record))
    assert record["sketch_preprocess"]["queries_bit_identical"]
    assert record["sketch_preprocess"]["speedup"] >= 5.0
    g = erdos_renyi(
        FULL_CONFIG["n"], FULL_CONFIG["p"], weights="uniform", rng=FULL_CONFIG["seed"]
    )
    benchmark(lambda: DistanceSketch(g, FULL_CONFIG["k"], rng=FULL_CONFIG["seed"]))


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    ap.add_argument("--json", type=str, default=None, help="write record to this path")
    args = ap.parse_args()
    rec = run_distance_layer_bench(smoke=args.smoke)
    print(format_table(rec))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(rec, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
