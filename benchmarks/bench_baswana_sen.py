"""Baseline experiment: Baswana–Sen (2k-1)-spanners.

Regenerates the classic baseline row the paper compares against: for each
``k``, iterations ``k-1``, exact stretch guarantee ``2k-1``, and size
``O(k n^{1+1/k})``, against measured values over multiple graph families.
"""

from __future__ import annotations

import pytest

from repro.core import baswana_sen, bs_size_bound, bs_stretch_bound
from repro.graphs import barabasi_albert, ring_of_cliques
from common import bench_graph, measure, print_table

KS = [2, 3, 4, 6, 8]


@pytest.fixture(scope="module")
def g():
    return bench_graph(512, 0.06)


def test_baseline_table(benchmark, g, capsys):
    rows = []
    for k in KS:
        res = baswana_sen(g, k, rng=10 + k)
        m = measure(g, res)
        rows.append(
            (
                k,
                k - 1,
                m["iterations"],
                f"{bs_stretch_bound(k):.0f}",
                f"{m['stretch']:.2f}",
                f"{bs_size_bound(g.n, k):.0f}",
                m["size"],
            )
        )
        assert m["stretch"] <= bs_stretch_bound(k)
        assert m["size"] <= bs_size_bound(g.n, k)
    with capsys.disabled():
        print_table(
            f"Baswana–Sen baseline (n={g.n}, m={g.m})",
            ["k", "iter bound", "iter", "2k-1", "stretch", "size bound", "size"],
            rows,
        )
    benchmark(lambda: baswana_sen(g, 4, rng=0))


def test_families_table(benchmark, capsys):
    k = 4
    fams = {
        "ER(512,.06)": bench_graph(512, 0.06),
        "BA(512,3)": barabasi_albert(512, 3, weights="exponential", rng=20),
        "cliques(32x16)": ring_of_cliques(32, 16, weights="uniform", rng=21),
    }
    rows = []
    for name, gg in fams.items():
        res = baswana_sen(gg, k, rng=22)
        m = measure(gg, res)
        rows.append((name, gg.m, m["size"], f"{m['stretch']:.2f}", f"{m['mean_stretch']:.3f}"))
        assert m["stretch"] <= 2 * k - 1
    with capsys.disabled():
        print_table(
            f"Baswana–Sen across families (k={k})",
            ["family", "m", "spanner size", "max stretch", "mean stretch"],
            rows,
        )
    benchmark(lambda: baswana_sen(fams["BA(512,3)"], k, rng=22))


@pytest.mark.parametrize("k", KS)
def test_benchmark_bs(benchmark, g, k):
    benchmark(lambda: baswana_sen(g, k, rng=1))
