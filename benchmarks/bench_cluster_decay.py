"""Experiments L4.12 / L5.12 + sampling-probability ablation.

The engine of the paper's speedup is the *doubly exponential* decay of the
cluster count under the decreasing sampling probabilities
``n^{-2^{i-1}/k}``.  This bench (a) regenerates the predicted-vs-measured
cluster trajectory, and (b) runs the DESIGN.md ablation: replace the
decaying schedule by Baswana–Sen's fixed ``n^{-1/k}`` and show the number
of contraction epochs needed to reach ``O(n^{1/k})`` clusters reverts from
``Θ(log k)`` to ``Θ(k)``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import EdgeSet, cluster_merging, run_growth_iterations
from repro.graphs import quotient_edges
from common import bench_graph, print_table


@pytest.fixture(scope="module")
def g():
    return bench_graph(1024, 0.03)


def test_lemma_4_12_trajectory(benchmark, g, capsys):
    k = 16
    res = cluster_merging(g, k, rng=50)
    rows = []
    for s in res.stats:
        # Lemma 4.12: E|C^{(i-1)}| = n^{1 - (2^{i-1}-1)/k}
        predicted = g.n ** max(1 - (2.0 ** (s.epoch - 1) - 1) / k, 0.0)
        rows.append(
            (s.epoch, f"{s.sampling_probability:.4f}", f"{predicted:.0f}", s.num_clusters)
        )
        # shape check: within a factor 4 of the expectation (fixed seed)
        assert s.num_clusters <= 4 * predicted + 10
    with capsys.disabled():
        print_table(
            f"Lemma 4.12 cluster decay (n={g.n}, k={k})",
            ["epoch", "p_i", "E|C| predicted", "measured"],
            rows,
        )
    benchmark(lambda: cluster_merging(g, k, rng=50))


def _epochs_to_converge(g, k: int, *, decaying: bool, rng_seed: int, cap: int) -> int:
    """Contract after every single growth iteration (t=1) and count epochs
    until the super-node count reaches n^{1/k} (or edges run out)."""
    rng = np.random.default_rng(rng_seed)
    target = g.n ** (1.0 / k)
    edges = EdgeSet.from_arrays(g.n, g.edges_u, g.edges_v, g.edges_w)
    num_nodes = g.n
    for epoch in range(1, cap + 1):
        p = (
            float(g.n) ** (-(2.0 ** (epoch - 1)) / k)
            if decaying
            else float(g.n) ** (-1.0 / k)
        )
        out = run_growth_iterations(edges, iterations=1, probability=p, rng=rng, epoch=epoch)
        labels = out.labels
        clustered = labels >= 0
        seeds = np.unique(labels[clustered]) if clustered.any() else np.zeros(0, np.int64)
        if seeds.size <= target or edges.num_alive == 0:
            return epoch
        seed_to_new = np.full(num_nodes, -1, dtype=np.int64)
        seed_to_new[seeds] = np.arange(seeds.size)
        new_id = np.empty(num_nodes, dtype=np.int64)
        new_id[clustered] = seed_to_new[labels[clustered]]
        retired = np.flatnonzero(~clustered)
        new_id[retired] = seeds.size + np.arange(retired.size)
        eu, ev, ew, eeid = edges.alive_view()
        q = quotient_edges(new_id, eu, ev, ew, eeid)
        num_nodes = int(seeds.size + retired.size)
        edges = EdgeSet.from_arrays(num_nodes, q.u, q.v, q.w, q.rep_edge_id)
    return cap


def test_sampling_schedule_ablation(benchmark, g, capsys):
    """DESIGN.md ablation: decaying vs fixed sampling probabilities."""
    k = 16
    cap = 3 * k
    rows = []
    for name, decaying in [("decaying n^{-2^i/k} (paper)", True), ("fixed n^{-1/k} (BS)", False)]:
        epochs = [
            _epochs_to_converge(g, k, decaying=decaying, rng_seed=s, cap=cap)
            for s in range(3)
        ]
        rows.append((name, f"{np.mean(epochs):.1f}", max(epochs)))
    with capsys.disabled():
        print_table(
            f"Sampling-schedule ablation (n={g.n}, k={k}; epochs to n^(1/k) clusters)",
            ["schedule", "mean epochs", "max epochs"],
            rows,
        )
    # the paper's schedule converges in ~log2(k) epochs; fixed-p needs ~k
    fast = _epochs_to_converge(g, k, decaying=True, rng_seed=9, cap=cap)
    slow = _epochs_to_converge(g, k, decaying=False, rng_seed=9, cap=cap)
    assert fast <= math.ceil(math.log2(k)) + 2
    assert slow >= 2 * fast
    benchmark(lambda: _epochs_to_converge(g, k, decaying=True, rng_seed=0, cap=cap))
