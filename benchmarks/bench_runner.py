"""Benchmark the experiment runner: parallel speedup + resume correctness.

Protocol (see EXPERIMENTS.md):

1. Build the reference plan — 3 algorithms x 3 graph families x 2 seeds =
   18 trials, each with sampled stretch verification so a trial is a
   realistic unit of work (build + construct + verify).
2. Run it cold at ``--jobs 1`` and (into a fresh directory) at ``--jobs 4``;
   record both wall clocks.
3. Re-run the ``--jobs 4`` plan against its existing artifacts and assert
   the resume path executes **0** trials.

The speedup number is only meaningful on multi-core hardware; the record
carries ``cpu_count`` so a single-core container's ~1x does not read as a
regression.  Run directly::

    PYTHONPATH=src python benchmarks/bench_runner.py [--smoke]
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

from repro.runner import ExperimentPlan, run_plan

__all__ = [
    "reference_plan",
    "run_runner_bench",
    "format_table",
    "speedup_gate",
    "multi_core_available",
]

#: Minimum jobs>1 speedup the full-config bench must defend (only
#: meaningful on multi-core hardware — see :func:`speedup_gate`).
SPEEDUP_GATE = 1.2


def multi_core_available() -> bool:
    """Whether this machine can exhibit a parallel speedup at all."""
    return (os.cpu_count() or 1) >= 2


def speedup_gate(record: dict, *, minimum: float = SPEEDUP_GATE):
    """Evaluate the parallel-speedup gate on a bench record.

    Returns ``(ok, reason)`` where ``reason`` always states *why* —
    including the explicit single-CPU skip, so a 0.6x number recorded on a
    1-core container never reads as a regression.
    """
    cpus = record.get("cpu_count") or 1
    speedup = record.get("speedup", 0.0)
    jobs = record.get("config", {}).get("jobs", "?")
    if cpus < 2:
        return True, (
            f"skipped: single-CPU machine (cpu_count={cpus}) cannot exhibit a "
            f"jobs={jobs} speedup; recorded {speedup:.2f}x is not a regression"
        )
    if speedup >= minimum:
        return True, f"speedup {speedup:.2f}x meets the {minimum:.1f}x gate"
    return False, (
        f"speedup {speedup:.2f}x below the {minimum:.1f}x gate "
        f"(cpu_count={cpus}, jobs={jobs})"
    )

FULL_CONFIG = {
    "graphs": ["er:2048:0.01", "geo:2048:0.06", "cliques:64:16"],
    "ks": [6],
    "verify_pairs": 256,
}
SMOKE_CONFIG = {
    "graphs": ["er:128:0.1", "geo:128:0.3", "cliques:8:8"],
    "ks": [4],
    "verify_pairs": 16,
}
ALGORITHMS = ["general", "mpc", "streaming"]
SEEDS = [0, 1]


def reference_plan(*, smoke: bool = False) -> ExperimentPlan:
    """The 3 algorithms x 3 graph families x 2 seeds benchmark plan."""
    cfg = SMOKE_CONFIG if smoke else FULL_CONFIG
    return ExperimentPlan(
        algorithms=list(ALGORITHMS),
        graphs=list(cfg["graphs"]),
        ks=list(cfg["ks"]),
        seeds=list(SEEDS),
        verify_pairs=cfg["verify_pairs"],
        name="runner-bench",
    )


def _timed_run(plan: ExperimentPlan, *, jobs: int, out_dir: str):
    start = time.perf_counter()
    result = run_plan(plan, jobs=jobs, out_dir=out_dir)
    return time.perf_counter() - start, result


def run_runner_bench(*, smoke: bool = False, jobs: int = 4) -> dict:
    """Execute the protocol; returns the JSON-ready record."""
    plan = reference_plan(smoke=smoke)
    num_trials = len(plan.trials())

    work = tempfile.mkdtemp(prefix="bench_runner_")
    try:
        serial_dir = os.path.join(work, "serial")
        parallel_dir = os.path.join(work, "parallel")

        serial_s, serial_res = _timed_run(plan, jobs=1, out_dir=serial_dir)
        parallel_s, parallel_res = _timed_run(plan, jobs=jobs, out_dir=parallel_dir)
        resume_s, resume_res = _timed_run(plan, jobs=jobs, out_dir=parallel_dir)

        errors = sum(1 for r in serial_res.records if "error" in r)
        if errors:
            raise RuntimeError(f"{errors} trials errored in the serial run")
        if serial_res.executed != num_trials or parallel_res.executed != num_trials:
            raise RuntimeError("cold runs did not execute every trial")
        # A resume regression (executed != 0) is recorded, not raised: the
        # snapshot gate in scripts/bench_snapshot.py turns it into a
        # warning + nonzero exit while still writing the artifact.
    finally:
        shutil.rmtree(work, ignore_errors=True)

    return {
        "config": {
            "smoke": smoke,
            "jobs": jobs,
            "algorithms": ALGORITHMS,
            "graphs": plan.graphs,
            "ks": plan.ks,
            "seeds": SEEDS,
            "verify_pairs": plan.verify_pairs,
        },
        "cpu_count": os.cpu_count(),
        "num_trials": num_trials,
        "jobs1": {"wall_s": round(serial_s, 4), "executed": serial_res.executed},
        "jobs4": {"wall_s": round(parallel_s, 4), "executed": parallel_res.executed},
        "speedup": round(serial_s / max(parallel_s, 1e-9), 3),
        "resume": {
            "wall_s": round(resume_s, 4),
            "executed": resume_res.executed,
            "skipped": resume_res.skipped,
        },
    }


def format_table(record: dict) -> str:
    lines = [
        f"runner bench: {record['num_trials']} trials "
        f"({record['config']['jobs']} workers, cpu_count={record['cpu_count']}, "
        f"smoke={record['config']['smoke']})",
        f"  jobs=1 : {record['jobs1']['wall_s']:8.3f}s "
        f"({record['jobs1']['executed']} executed)",
        f"  jobs={record['config']['jobs']} : {record['jobs4']['wall_s']:8.3f}s "
        f"({record['jobs4']['executed']} executed)  "
        f"speedup {record['speedup']:.2f}x",
        f"  resume : {record['resume']['wall_s']:8.3f}s "
        f"({record['resume']['executed']} executed, "
        f"{record['resume']['skipped']} skipped)",
    ]
    return "\n".join(lines)


def test_runner_bench_smoke():
    """Tier-1 guard: the protocol holds at smoke scale (resume executes 0)."""
    record = run_runner_bench(smoke=True, jobs=2)
    assert record["num_trials"] == 18
    assert record["resume"]["executed"] == 0
    assert record["resume"]["skipped"] == 18


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    args = ap.parse_args()
    rec = run_runner_bench(smoke=args.smoke)
    print(format_table(rec))
    print(json.dumps(rec, indent=2, sort_keys=True))
