"""Extension experiment ([DN19] application): spanner-accelerated distance
sketches.

The paper motivates spanners via [DN19]: preprocessing Thorup–Zwick
sketches on a spanner instead of the input graph cuts the edges touched by
preprocessing (the MPC memory/communication driver) at the price of
multiplying the query stretch.  Two tables: TZ guarantees on their own, and
the preprocessing-cost/stretch dial as the spanner gets sparser.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import general_tradeoff, stretch_bound
from repro.distances import DistanceSketch, sketch_on_spanner
from repro.graphs import apsp
from common import bench_graph, print_table


@pytest.fixture(scope="module")
def g():
    return bench_graph(400, 0.08)


@pytest.fixture(scope="module")
def exact(g):
    return apsp(g)


def _max_ratio(sk, g, exact, num=500, seed=0):
    rng = np.random.default_rng(seed)
    pairs = rng.integers(0, g.n, size=(num, 2))
    q = sk.query_many(pairs)
    e = exact[pairs[:, 0], pairs[:, 1]]
    mask = np.isfinite(e) & (e > 0)
    r = q[mask] / e[mask]
    return float(r.max()), float(r.mean())


def test_thorup_zwick_table(benchmark, g, exact, capsys):
    rows = []
    for k in (1, 2, 3, 4):
        sk = DistanceSketch(g, k, rng=k)
        mx, mean = _max_ratio(sk, g, exact)
        rows.append(
            (
                k,
                2 * k - 1,
                f"{mx:.2f}",
                f"{mean:.3f}",
                sk.size_words,
                f"{sk.expected_size_bound():.0f}",
            )
        )
        assert mx <= 2 * k - 1 + 1e-9
        assert sk.size_words <= sk.expected_size_bound()
    with capsys.disabled():
        print_table(
            f"Thorup–Zwick sketches (n={g.n}, m={g.m})",
            ["k", "2k-1", "max ratio", "mean ratio", "size (words)", "size bound"],
            rows,
        )
    benchmark(lambda: DistanceSketch(g, 3, rng=1))


def test_spanner_accelerated_table(benchmark, g, exact, capsys):
    k_sketch = 2
    rows = []
    base = DistanceSketch(g, k_sketch, rng=5)
    mx, mean = _max_ratio(base, g, exact)
    rows.append(("(no spanner)", g.m, "1.00", f"{mx:.2f}", f"{mean:.3f}", "3.0"))
    for k_sp in (3, 5, 8):
        res = general_tradeoff(g, k_sp, 2, rng=6)
        sk, acc = sketch_on_spanner(g, res, k_sketch, rng=7)
        mx, mean = _max_ratio(sk, g, exact)
        composed = (2 * k_sketch - 1) * stretch_bound(k_sp, 2)
        rows.append(
            (
                f"spanner k={k_sp}",
                acc["edges_in_spanner"],
                f"{acc['preprocessing_edge_ratio']:.2f}",
                f"{mx:.2f}",
                f"{mean:.3f}",
                f"{composed:.1f}",
            )
        )
        assert mx <= composed + 1e-9
    with capsys.disabled():
        print_table(
            "[DN19]-style spanner-accelerated sketch preprocessing (TZ k=2)",
            ["preprocessing on", "edges touched", "edge ratio", "max ratio", "mean ratio", "bound"],
            rows,
        )
    benchmark(lambda: sketch_on_spanner(g, general_tradeoff(g, 5, 2, rng=6), 2, rng=7))
