"""Make the shared helpers importable and keep benchmark output readable."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
