"""Experiment §6 (Lemma 6.1 / Theorem 1.1 rounds): MPC round accounting.

Regenerates the round-complexity claim ``O((1/γ) · t log k / log(t+1))``:
measured simulated rounds vs the bound as γ and t vary, per-machine peak
loads vs the enforced ``O(n^γ)`` cap, and the per-primitive O(1/γ) costs of
Lemma 6.1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpc import MPCConfig, MPCSimulator, DistributedTable, sort_table
from repro.mpc_impl import spanner_mpc
from repro.core import mpc_rounds_bound
from common import bench_graph, print_table

GAMMAS = [0.3, 0.5, 0.7]


@pytest.fixture(scope="module")
def g():
    return bench_graph(400, 0.06)


def test_rounds_vs_gamma(benchmark, g, capsys):
    k, t = 8, 3
    rows = []
    for gamma in GAMMAS:
        res = spanner_mpc(g, k, t, gamma=gamma, rng=70)
        mpc = res.extra["mpc"]
        # ~12 primitive calls per iteration, each (tree_levels + 1) rounds;
        # constant=24 covers the +1 placement round at large gamma.
        bound = mpc_rounds_bound(k, t, gamma, constant=24.0)
        rows.append(
            (
                gamma,
                res.iterations,
                res.extra["rounds"],
                f"{bound:.0f}",
                mpc["num_machines"],
                mpc["machine_memory"],
                mpc["peak_machine_load"],
            )
        )
        assert res.extra["rounds"] <= bound
        assert mpc["peak_machine_load"] <= mpc["machine_memory"]
    with capsys.disabled():
        print_table(
            f"Theorem 1.1 rounds vs gamma (n={g.n}, k={k}, t={t})",
            ["gamma", "iterations", "rounds", "bound", "machines", "S words", "peak load"],
            rows,
        )
    benchmark(lambda: spanner_mpc(g, k, t, gamma=0.5, rng=70))


def test_rounds_vs_t(benchmark, g, capsys):
    k, gamma = 8, 0.5
    rows = []
    for t in (1, 2, 3, 7):
        res = spanner_mpc(g, k, t, gamma=gamma, rng=71)
        rows.append((t, res.iterations, res.extra["rounds"]))
    with capsys.disabled():
        print_table(
            f"Rounds vs t (k={k}, gamma={gamma})",
            ["t", "iterations", "simulated rounds"],
            rows,
        )
    # rounds per iteration roughly constant -> rounds track iterations
    benchmark(lambda: spanner_mpc(g, k, 2, gamma=gamma, rng=71))


def test_lemma_6_1_primitive_costs(benchmark, capsys):
    """One sort charges O(1/gamma) rounds regardless of data size."""
    rows = []
    for gamma in GAMMAS:
        cfg = MPCConfig(n=4096, gamma=gamma, total_words=3 * 10**4)
        sim = MPCSimulator(cfg)
        t = DistributedTable(
            sim, {"k": np.random.default_rng(0).integers(0, 100, 10**4)}, words_per_record=2
        )
        sort_table(t, ["k"])
        rows.append((gamma, cfg.tree_levels(), sim.rounds, cfg.num_machines))
        assert sim.rounds == cfg.rounds_for("sort")
    with capsys.disabled():
        print_table(
            "Lemma 6.1: rounds per sort primitive",
            ["gamma", "tree levels", "rounds/sort", "machines"],
            rows,
        )

    def run():
        cfg = MPCConfig(n=4096, gamma=0.5, total_words=3 * 10**4)
        sim = MPCSimulator(cfg)
        t = DistributedTable(
            sim, {"k": np.random.default_rng(0).integers(0, 100, 10**4)}, words_per_record=2
        )
        sort_table(t, ["k"])

    benchmark(run)
