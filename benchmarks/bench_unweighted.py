"""Experiment T1.3 / Appendix B: unweighted O(k)-spanner.

Regenerates: stretch ``O(k)``, size ``O(k n^{1+1/k})`` (+ hitter paths),
``O(log k)`` analytic rounds, total memory ``O(m + n^{1+γ})``; plus the
sparse/dense split as a function of the ball cap ``Θ(n^{γ/2})``.
"""

from __future__ import annotations

import math

import pytest

from repro.core import unweighted_spanner
from repro.graphs import erdos_renyi, grid_graph
from common import measure, print_table

KS = [2, 3, 4]


@pytest.fixture(scope="module")
def g():
    return erdos_renyi(400, 0.05, rng=60)


def test_theorem_1_3_table(benchmark, g, capsys):
    gamma = 0.5
    rows = []
    for k in KS:
        res = unweighted_spanner(g, k, gamma=gamma, rng=61 + k)
        m = measure(g, res)
        st_budget = (8 * k + 2) * (4.0 / gamma + 1)
        sz_bound = 4 * k * g.n ** (1 + 1.0 / k) + 4 * k * g.n
        rows.append(
            (
                k,
                f"{m['stretch']:.2f}",
                f"{st_budget:.0f}",
                m["size"],
                f"{sz_bound:.0f}",
                res.extra["analytic_rounds"],
                res.extra["num_sparse"],
                res.extra["num_dense"],
            )
        )
        assert m["stretch"] <= st_budget
        assert m["size"] <= sz_bound
    with capsys.disabled():
        print_table(
            f"Theorem 1.3 unweighted spanner (n={g.n}, m={g.m}, gamma={gamma})",
            ["k", "stretch", "O(k) budget", "size", "size bound", "rounds", "sparse", "dense"],
            rows,
        )
    benchmark(lambda: unweighted_spanner(g, 3, rng=62))


def test_memory_accounting(benchmark, g, capsys):
    gamma = 0.5
    res = unweighted_spanner(g, 3, gamma=gamma, rng=63)
    words = res.extra["total_memory_words"]
    bound = 4 * (g.m + g.n ** (1 + gamma))
    with capsys.disabled():
        print_table(
            "Appendix B total memory O(m + n^{1+gamma})",
            ["measured words", "bound"],
            [(words, f"{bound:.0f}")],
        )
    assert words <= bound
    benchmark(lambda: unweighted_spanner(g, 3, gamma=gamma, rng=63))


def test_sparse_dense_split_vs_cap(benchmark, capsys):
    g = grid_graph(20, 20)
    rows = []
    for cap in (4, 16, 64, 10**6):
        res = unweighted_spanner(g, 3, rng=64, ball_cap=cap)
        rows.append((cap, res.extra["num_sparse"], res.extra["num_dense"], res.num_edges))
    with capsys.disabled():
        print_table(
            "Sparse/dense split vs ball cap (grid 20x20, k=3)",
            ["ball cap", "sparse", "dense", "spanner size"],
            rows,
        )
    benchmark(lambda: unweighted_spanner(g, 3, rng=64, ball_cap=64))
