"""Extension experiment (§2.4): the contraction spanner as a streaming
algorithm.

The paper positions its framework against [AGM12]'s dynamic-stream spanner:
same ``log k`` passes, stretch ``k^{log 3}`` (weighted!) versus ``k^{log 5}``
(unweighted).  We regenerate our side of the comparison: measured passes,
stretch and size across ``k``, plus the analytic [AGM12] column for
reference (we do not reimplement their sketch-based algorithm; see
DESIGN.md).
"""

from __future__ import annotations

import math

import pytest

from repro.core import stretch_bound
from repro.streaming import streaming_spanner
from common import bench_graph, measure, print_table


@pytest.fixture(scope="module")
def g():
    return bench_graph(512, 0.06)


def test_streaming_table(benchmark, g, capsys):
    rows = []
    for k in (2, 4, 8, 16):
        res = streaming_spanner(g, k, rng=70 + k)
        m = measure(g, res)
        s = res.extra["stream"]
        pass_bound = math.ceil(math.log2(k)) + 1
        rows.append(
            (
                k,
                pass_bound,
                s["passes"],
                f"{stretch_bound(k, 1):.0f}",
                f"{m['stretch']:.2f}",
                f"{k ** math.log2(5):.0f}",
                m["size"],
                s["peak_working_records"],
            )
        )
        assert s["passes"] <= pass_bound
        assert m["stretch"] <= stretch_bound(k, 1) + 1e-9
    with capsys.disabled():
        print_table(
            f"Section 2.4 streaming comparison (n={g.n}, m={g.m}; weighted)",
            [
                "k",
                "pass bound",
                "passes",
                "our k^log3 bound",
                "measured",
                "[AGM12] k^log5 (unwtd)",
                "size",
                "peak work",
            ],
            rows,
        )
    benchmark(lambda: streaming_spanner(g, 8, rng=71))


def test_working_set_decay(benchmark, g, capsys):
    """The per-pass working set (running group minima) shrinks as clusters
    contract — the streaming analogue of the Lemma 4.12 decay."""
    res = streaming_spanner(g, 16, rng=72)
    s = res.extra["stream"]
    rows = [(i + 1, w) for i, w in enumerate(s["per_pass_working"])]
    with capsys.disabled():
        print_table(
            "Working set per pass (k=16)",
            ["pass", "retained group minima"],
            rows,
        )
    work = s["per_pass_working"]
    assert work[-1] <= work[0]
    benchmark(lambda: streaming_spanner(g, 16, rng=72))
