"""Crossover / ablation experiment: where the paper's algorithms beat
Baswana–Sen and what the stretch penalty costs.

Two tables:

1. iteration crossover — for growing ``k``, iterations of BS (``k-1``) vs
   cluster-merging (``ceil(log2 k)``) vs ``t = log k`` (``O(log^2 k /
   log log k)``): the gap that motivates the whole paper;
2. stretch penalty — measured stretch (same workload, same seeds) as a
   function of ``t``, demonstrating the monotone stretch/round tradeoff of
   Section 5 and its contraction-interval ablation.
"""

from __future__ import annotations

import math

import pytest

from repro.core import (
    baswana_sen,
    cluster_merging,
    general_tradeoff,
    stretch_bound,
)
from common import bench_graph, measure, print_table


@pytest.fixture(scope="module")
def g():
    return bench_graph(512, 0.06)


def test_iteration_crossover(benchmark, g, capsys):
    rows = []
    for k in (4, 8, 16, 32):
        bs = baswana_sen(g, k, rng=1)
        cm = cluster_merging(g, k, rng=1)
        tl = max(1, int(round(math.log2(k))))
        gt = general_tradeoff(g, k, tl, rng=1)
        rows.append((k, bs.iterations, cm.iterations, f"t={tl}: {gt.iterations}"))
        assert cm.iterations <= math.ceil(math.log2(k))
        if k >= 8:
            assert cm.iterations < bs.iterations
    with capsys.disabled():
        print_table(
            f"Iteration crossover (n={g.n})",
            ["k", "Baswana–Sen (k-1)", "cluster-merging (log k)", "general (t=log k)"],
            rows,
        )
    benchmark(lambda: cluster_merging(g, 16, rng=1))


def test_stretch_penalty_vs_t(benchmark, g, capsys):
    """Contraction-interval ablation: sweep t on one workload."""
    k = 16
    rows = []
    measured = []
    for t in (1, 2, 4, 8, 15):
        res = general_tradeoff(g, k, t, rng=2)
        m = measure(g, res)
        measured.append(m)
        rows.append(
            (
                t,
                m["iterations"],
                f"{stretch_bound(k, t):.1f}",
                f"{m['stretch']:.2f}",
                f"{m['mean_stretch']:.3f}",
                m["size"],
            )
        )
    with capsys.disabled():
        print_table(
            f"Stretch penalty vs t (n={g.n}, k={k})",
            ["t", "iterations", "stretch bound", "max stretch", "mean stretch", "size"],
            rows,
        )
    # Iterations grow from t=1 toward t=k-1 overall (ceil effects make the
    # middle non-monotone: l = ceil(log k / log(t+1)) jumps discretely).
    its = [m["iterations"] for m in measured]
    assert its[0] == min(its)
    assert its[0] < its[-1]
    benchmark(lambda: general_tradeoff(g, k, 4, rng=2))


def test_size_vs_quality_frontier(benchmark, g, capsys):
    """Who wins: for a fixed iteration budget (~log k), the general
    algorithm achieves far better stretch-per-edge than truncated BS-like
    runs would — the frontier the intro motivates."""
    k = 16
    budget_algo = general_tradeoff(g, k, 1, rng=3)
    full_bs = baswana_sen(g, k, rng=3)
    mb = measure(g, budget_algo)
    mf = measure(g, full_bs)
    with capsys.disabled():
        print_table(
            f"Fixed budget frontier (k={k})",
            ["algorithm", "iterations", "stretch", "size"],
            [
                ("general t=1", mb["iterations"], f"{mb['stretch']:.2f}", mb["size"]),
                ("Baswana–Sen", mf["iterations"], f"{mf['stretch']:.2f}", mf["size"]),
            ],
        )
    assert mb["iterations"] < mf["iterations"]
    benchmark(lambda: general_tradeoff(g, k, 1, rng=3))
