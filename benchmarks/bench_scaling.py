"""Scaling-shape experiment: does measured size really grow like
``n^{1+1/k}``?

The size theorems are asymptotic; this bench fits the growth exponent of
the measured spanner size over a geometric ``n`` sweep (log-log least
squares) and compares it against the predicted ``1 + 1/k`` — the clearest
"shape" check in the whole harness.  Also sweeps ``k`` at fixed ``n`` to
confirm sizes decrease in ``k``.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import baswana_sen, general_tradeoff
from repro.graphs import erdos_renyi
from common import print_table

NS = [128, 256, 512, 1024]


def _avg_size(builder, n: int, seeds=(0, 1, 2)) -> float:
    # Fixed average degree so n is the only variable.
    sizes = []
    for s in seeds:
        g = erdos_renyi(n, min(0.9, 24.0 / n), weights="uniform", rng=100 + s)
        sizes.append(builder(g, s).num_edges)
    return float(np.mean(sizes))


def _fit_exponent(ns, sizes) -> float:
    x = np.log(np.asarray(ns, dtype=float))
    y = np.log(np.asarray(sizes, dtype=float))
    slope, _ = np.polyfit(x, y, 1)
    return float(slope)


@pytest.mark.parametrize(
    "name,k,builder",
    [
        ("baswana-sen k=4", 4, lambda g, s: baswana_sen(g, 4, rng=s)),
        ("general k=4 t=2", 4, lambda g, s: general_tradeoff(g, 4, 2, rng=s)),
        ("general k=8 t=3", 8, lambda g, s: general_tradeoff(g, 8, 3, rng=s)),
    ],
)
def test_size_growth_exponent(benchmark, name, k, builder, capsys):
    from repro.core import bs_size_bound, size_bound

    sizes = [_avg_size(builder, n) for n in NS]
    measured = _fit_exponent(NS, sizes)
    predicted = 1.0 + 1.0 / k
    rows = []
    for n, s in zip(NS, sizes):
        bound = (
            bs_size_bound(n, k) if name.startswith("baswana") else size_bound(n, k, 3)
        )
        rows.append((n, f"{s:.0f}", f"{bound:.0f}"))
        # The actual theorem: expected size under the closed-form bound.
        assert s <= bound
    rows.append(
        ("fitted exponent", f"{measured:.3f}", f"asymptotic {predicted:.3f}")
    )
    with capsys.disabled():
        print_table(f"Size growth: {name}", ["n", "mean size", "bound"], rows)
    # Finite-size shape check: growth must be clearly subquadratic — the
    # asymptotic exponent is 1+1/k but the sampling probabilities depend on
    # n themselves, so a 4-point fit mixes transient terms.
    assert measured <= 1.5
    benchmark(lambda: builder(erdos_renyi(256, 24.0 / 256, weights="uniform", rng=1), 0))


def test_size_decreases_in_k(benchmark, capsys):
    g = erdos_renyi(512, 0.06, weights="uniform", rng=5)
    rows = []
    prev = None
    for k in (2, 3, 4, 6, 8, 12):
        res = general_tradeoff(g, k, 2, rng=6)
        rows.append((k, res.num_edges))
        if prev is not None:
            assert res.num_edges <= prev * 1.15  # monotone up to noise
        prev = res.num_edges
    with capsys.disabled():
        print_table("Size vs k (n=512, t=2)", ["k", "size"], rows)
    benchmark(lambda: general_tradeoff(g, 4, 2, rng=6))
