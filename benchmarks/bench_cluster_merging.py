"""Experiment §4 (Theorem 4.14) and C1.2(1): cluster-merging, the t=1 extreme.

Regenerates: ``ceil(log2 k)`` epochs, stretch bound ``k^{log2 3}``, size
``O(n^{1+1/k} log k)``; plus the Theorem 4.8 radius-recurrence trajectory
``(3^i - 1)/2``.
"""

from __future__ import annotations

import math

import pytest

from repro.core import cluster_merging, size_bound
from common import bench_graph, measure, print_table

KS = [2, 4, 8, 16]


@pytest.fixture(scope="module")
def g():
    return bench_graph(512, 0.06)


def test_theorem_4_14_table(benchmark, g, capsys):
    rows = []
    for k in KS:
        res = cluster_merging(g, k, rng=30 + k)
        m = measure(g, res)
        epoch_bound = max(1, math.ceil(math.log2(k)))
        st_bound = k ** math.log2(3)
        sz_bound = size_bound(g.n, k, 1)
        rows.append(
            (
                k,
                epoch_bound,
                m["iterations"],
                f"{st_bound:.1f}",
                f"{m['stretch']:.2f}",
                f"{sz_bound:.0f}",
                m["size"],
            )
        )
        assert m["iterations"] <= epoch_bound
        assert m["stretch"] <= st_bound + 1e-9
        assert m["size"] <= sz_bound
    with capsys.disabled():
        print_table(
            f"Theorem 4.14 cluster-merging (n={g.n}, m={g.m})",
            ["k", "epoch bound", "epochs", "k^log3", "stretch", "size bound", "size"],
            rows,
        )
    benchmark(lambda: cluster_merging(g, 8, rng=31))


def test_radius_recurrence(benchmark, g, capsys):
    """Theorem 4.8: weighted-stretch radius after epoch i is <= (3^i - 1)/2,
    checked both by the tracked recurrence and by measuring the *actual*
    cluster trees (``track_forest``)."""
    from repro.core import forest_stats

    res = cluster_merging(g, 16, rng=32, track_forest=True)
    rows = []
    for s in res.stats:
        bound = (3.0**s.epoch - 1) / 2
        rows.append((s.epoch, f"{bound:.1f}", f"{s.max_radius_bound:.1f}", s.num_clusters))
        assert s.max_radius_bound <= bound + 1e-9
    # Exact final-tree radii from the maintained forest.
    stats = forest_stats(g, res.extra["final_labels"], res.extra["forest"])
    measured = max((t.hop_radius for t in stats.values()), default=0)
    final_bound = (3.0 ** res.iterations - 1) / 2
    rows.append(("final (exact trees)", f"{final_bound:.1f}", measured, len(stats)))
    assert measured <= final_bound
    with capsys.disabled():
        print_table(
            "Theorem 4.8 radius recurrence (k=16)",
            ["epoch", "(3^i-1)/2", "radius (tracked / measured)", "clusters"],
            rows,
        )
    benchmark(lambda: cluster_merging(g, 16, rng=32))


@pytest.mark.parametrize("k", KS)
def test_benchmark_cm(benchmark, g, k):
    benchmark(lambda: cluster_merging(g, k, rng=2))
