"""Cross-algorithm benchmark suite: every registered algorithm, one protocol.

Thin standalone entry over :mod:`repro.bench` (the CLI exposes the same
machinery as ``repro bench``).  Protocol (see EXPERIMENTS.md):

1. Sweep all registered algorithms — 10 spanner constructions and both
   APSP pipelines — over the fixed graph protocol (``er:2048:0.01`` for
   spanners, ``er:512:0.05`` for APSP; smoke mode shrinks both), recording
   wall time, edges/second, and spanner size per algorithm.
2. Time the vectorized streaming pass processing and unweighted ball
   collection against the frozen pre-vectorization references on the same
   inputs, asserting bit-identical outputs (the ≥5x / ≥3x acceptance
   numbers).
3. Snapshot everything into ``BENCH_suite.json`` so `repro bench
   --baseline` and CI can gate future changes on >2x slowdowns.

Run directly::

    PYTHONPATH=src python benchmarks/suite.py [--smoke]
"""

from __future__ import annotations

from repro.bench import (  # noqa: F401  (re-exported protocol surface)
    NOISE_FLOOR_S,
    SLOWDOWN_GATE,
    STREAMING_PASS_GATE,
    UNWEIGHTED_BALLS_GATE,
    format_table,
    hot_loop_gates,
    run_suite,
    slowdown_gate,
)

__all__ = [
    "run_suite",
    "format_table",
    "slowdown_gate",
    "hot_loop_gates",
]


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    args = ap.parse_args()
    rec = run_suite(smoke=args.smoke)
    print(format_table(rec))
    ok, reasons = hot_loop_gates(rec)
    for reason in reasons:
        print(f"hot-loop gate: {reason}")
    print(json.dumps(rec, indent=2, sort_keys=True))
    raise SystemExit(0 if ok else 1)
