"""Experiment T1.1 / T5.15 / C1.2: the general round-stretch tradeoff.

Regenerates the paper's headline table (Theorem 1.1 instantiated as the
Corollary 1.2 rows): for each ``t`` the iteration count
``t·log k/log(t+1)``, the stretch bound ``2 k^s`` with
``s = log(2t+1)/log(t+1)``, and the size bound ``O(n^{1+1/k}(t+log k))``,
against the measured iteration count, exact worst-case stretch, and size.
"""

from __future__ import annotations

import math

import pytest

from repro.core import general_tradeoff, size_bound, stretch_bound, total_iterations
from common import bench_graph, measure, print_table

K = 8
TS = [1, 2, 3, 7]


@pytest.fixture(scope="module")
def g():
    return bench_graph(512, 0.06)


def test_tradeoff_table(benchmark, g, capsys):
    rows = []
    for t in TS:
        res = general_tradeoff(g, K, t, rng=1)
        m = measure(g, res)
        it_bound = total_iterations(K, min(t, K - 1))
        st_bound = stretch_bound(K, t)
        sz_bound = size_bound(g.n, K, t)
        rows.append(
            (
                t,
                f"{it_bound}",
                m["iterations"],
                f"{st_bound:.1f}",
                f"{m['stretch']:.2f}",
                f"{sz_bound:.0f}",
                m["size"],
            )
        )
        assert m["iterations"] <= it_bound
        assert m["stretch"] <= st_bound + 1e-9
        assert m["size"] <= sz_bound
    with capsys.disabled():
        print_table(
            f"Theorem 1.1 tradeoff (n={g.n}, m={g.m}, k={K})",
            ["t", "iter bound", "iter", "stretch bound", "stretch", "size bound", "size"],
            rows,
        )
    benchmark(lambda: general_tradeoff(g, K, 2, rng=1))


def test_corollary_1_2_rows(benchmark, g, capsys):
    """The four named Corollary 1.2 settings for k=8."""
    settings = [
        ("C1.2(1) t=1", 1),
        ("C1.2(2) t=2 (eps~0.58)", 2),
        ("C1.2(3) t=log k", max(1, int(math.log2(K)))),
        ("BS t=k-1", K - 1),
    ]
    rows = []
    for name, t in settings:
        res = general_tradeoff(g, K, t, rng=2)
        m = measure(g, res)
        rows.append((name, t, m["iterations"], f"{m['stretch']:.2f}", m["size"]))
    with capsys.disabled():
        print_table(
            f"Corollary 1.2 named settings (k={K})",
            ["setting", "t", "iterations", "stretch", "size"],
            rows,
        )
    benchmark(lambda: general_tradeoff(g, K, max(1, int(math.log2(K))), rng=2))


@pytest.mark.parametrize("t", TS)
def test_benchmark_general_tradeoff(benchmark, g, t):
    benchmark(lambda: general_tradeoff(g, K, t, rng=3))
