"""Benchmark the provider planner: the accuracy/latency Pareto frontier.

Protocol (see EXPERIMENTS.md):

1. Build one ``bundle`` artifact (graph + spanner + Thorup-Zwick sketch
   under one key) and persist it to a temporary
   :class:`~repro.service.store.ArtifactStore`.
2. **Fixed backends** — for each workload (zipf hot-window + uniform),
   run every fixed backend (``exact``, ``oracle``, ``sketch``,
   ``tiered``) through batched ``query_many`` on one shared engine and
   record its Pareto point: queries/second vs observed stretch (ratio to
   the exact answers, which are the stretch-1 ground truth).  ``tiered``
   runs after ``oracle`` on purpose: refinement from rows the oracle run
   left hot in the LRU is its designed behavior.
3. **Auto planner** — a *fresh* engine (clean latency state) serves the
   same workload with ``backend="auto"``; the record keeps its routing
   counters, throughput, and measured max stretch next to the planner's
   declared bound.
4. **Sketch-tier identity** — the engine's ``backend="sketch"`` answers
   must be bit-identical to offline
   :meth:`~repro.distances.sketches.DistanceSketch.query_many` on the
   loaded bundle.

Gates (``--suite provider`` in scripts/bench_snapshot.py):

* ``stretch_gate`` — every auto-planned reply is within the planner's
  declared stretch bound of the exact distance (every scale; stretch is
  not a timing).
* ``throughput_gate`` — auto throughput >= the slowest fixed backend
  (full scale only; smoke timings are noise).
* ``identity_gate`` — sketch-tier bit-identity (every scale).

Run directly::

    PYTHONPATH=src:benchmarks python benchmarks/bench_provider.py [--smoke]
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from bench_service import zipf_sources
from repro.core.params import coerce_rng
from repro.distances.sketches import DistanceSketch
from repro.graphs.specs import GraphSpec
from repro.registry import get_algorithm
from repro.service import ArtifactStore, PlanTarget, QueryEngine

__all__ = [
    "run_provider_bench",
    "format_table",
    "stretch_gate",
    "throughput_gate",
    "identity_gate",
    "FIXED_BACKENDS",
]

#: Fixed answer paths measured for the Pareto frontier, in run order
#: (tiered after oracle so its LRU refinement hook has hot rows to hit).
FIXED_BACKENDS = ("exact", "oracle", "sketch", "tiered")

FULL_CONFIG = {
    "graph": "er:1024:0.02",
    "algorithm": "general",
    "k": 6,
    "t": 2,
    "seed": 0,
    "cache_rows": 128,
    "zipf_a": 1.05,
    "hot_ranks": 120,
    "uniform_mix": 0.01,
    "zipf_queries": 20_000,
    "uniform_queries": 5_000,
    "batch": 256,
}
SMOKE_CONFIG = {
    "graph": "er:256:0.08",
    "algorithm": "general",
    "k": 4,
    "t": 2,
    "seed": 0,
    "cache_rows": 32,
    "zipf_a": 1.05,
    "hot_ranks": 28,
    "uniform_mix": 0.01,
    "zipf_queries": 1_500,
    "uniform_queries": 400,
    "batch": 128,
}


def _build_bundle(store: ArtifactStore, cfg: dict) -> str:
    g = GraphSpec.parse(cfg["graph"]).build(weights="uniform", seed=cfg["seed"])
    algo = get_algorithm(cfg["algorithm"])
    res = algo.run(g, k=cfg["k"], t=cfg["t"], rng=cfg["seed"])
    sketch = DistanceSketch(g, cfg["k"], rng=cfg["seed"])
    return store.save_bundle(
        g,
        res.subgraph(g),
        sketch,
        k=res.k,
        t=res.t,
        t_effective=res.extra.get("t_effective", res.t),
        meta={"graph": cfg["graph"], "seed": cfg["seed"]},
    )


def _run_batched(engine, pairs: np.ndarray, batch: int, *, backend=None):
    """(answers, wall_s) for the workload pushed through ``query_many``."""
    outs = []
    start = time.perf_counter()
    for lo in range(0, pairs.shape[0], batch):
        outs.append(engine.query_many(pairs[lo : lo + batch], backend=backend))
    wall = time.perf_counter() - start
    return np.concatenate(outs), wall


def _stretch_stats(answers: np.ndarray, truth: np.ndarray) -> dict:
    """Observed stretch of ``answers`` against the exact ``truth``."""
    mask = np.isfinite(truth) & (truth > 0)
    agree_unreachable = bool(
        np.array_equal(np.isfinite(answers), np.isfinite(truth))
    )
    if not mask.any():
        return {"mean": None, "max": None, "agree_unreachable": agree_unreachable}
    ratios = answers[mask] / truth[mask]
    return {
        "mean": round(float(ratios.mean()), 4),
        "max": round(float(ratios.max()), 4),
        "agree_unreachable": agree_unreachable,
    }


def run_provider_bench(*, smoke: bool = False) -> dict:
    """Execute the protocol; returns the JSON-ready record."""
    cfg = SMOKE_CONFIG if smoke else FULL_CONFIG
    rng = coerce_rng(cfg["seed"])

    work = tempfile.mkdtemp(prefix="bench_provider_")
    store = ArtifactStore(os.path.join(work, "store"))
    key = _build_bundle(store, cfg)
    bundle = store.load_bundle(key)
    n = bundle.n

    workload_pairs = {}
    r = cfg["zipf_queries"]
    workload_pairs["zipf"] = np.stack(
        [
            zipf_sources(
                n,
                r,
                cfg["zipf_a"],
                rng,
                hot_ranks=cfg["hot_ranks"],
                uniform_mix=cfg["uniform_mix"],
            ),
            rng.integers(0, n, size=r),
        ],
        axis=1,
    )
    ru = cfg["uniform_queries"]
    workload_pairs["uniform"] = np.stack(
        [rng.integers(0, n, size=ru), rng.integers(0, n, size=ru)], axis=1
    )

    batch = cfg["batch"]
    workloads: dict[str, dict] = {}
    for name, pairs in workload_pairs.items():
        # -- fixed backends: one shared engine, per-provider caches ------
        fixed_engine = QueryEngine.from_store(
            store, key, cache_rows=cfg["cache_rows"]
        )
        truth = None
        pareto = []
        with fixed_engine:
            for backend in FIXED_BACKENDS:
                answers, wall = _run_batched(
                    fixed_engine, pairs, batch, backend=backend
                )
                if backend == "exact":
                    truth = answers
                pstats = fixed_engine.stats()["planner"]["backends"][backend]
                pareto.append(
                    {
                        "backend": backend,
                        "wall_s": round(wall, 4),
                        "qps": round(pairs.shape[0] / max(wall, 1e-9), 1),
                        "declared_stretch": pstats["stretch_bound"],
                        "observed_p99_us": pstats["observed_p99_us"],
                        "stretch": _stretch_stats(answers, truth),
                    }
                )

        # -- the auto planner: fresh engine, clean latency state ---------
        auto_engine = QueryEngine.from_store(
            store, key, cache_rows=cfg["cache_rows"], target=PlanTarget()
        )
        with auto_engine:
            declared = float(auto_engine.planner.stretch_bound)
            auto_answers, auto_wall = _run_batched(auto_engine, pairs, batch)
            auto_stats = auto_engine.stats()["planner"]
        workloads[name] = {
            "queries": int(pairs.shape[0]),
            "pareto": pareto,
            "auto": {
                "wall_s": round(auto_wall, 4),
                "qps": round(pairs.shape[0] / max(auto_wall, 1e-9), 1),
                "declared_stretch": round(declared, 4),
                "stretch": _stretch_stats(auto_answers, truth),
                "routed": auto_stats["routed"],
            },
        }

    # -- sketch-tier identity vs the offline sketch -----------------------
    sample = workload_pairs["zipf"][: min(2048, r)]
    with QueryEngine.from_store(store, key, cache_rows=cfg["cache_rows"]) as eng:
        served = eng.query_many(sample, backend="sketch")
    offline = store.load_bundle(key).sketch.query_many(sample)
    sketch_identical = bool(np.array_equal(served, offline))

    import shutil

    shutil.rmtree(work, ignore_errors=True)

    return {
        "suite": "provider",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "config": dict(cfg),
        "graph": {
            "n": bundle.n,
            "m": bundle.graph.m,
            "spanner_m": bundle.spanner.m,
            "sketch_words": bundle.sketch.size_words,
        },
        "workloads": workloads,
        "identity": {"sketch_tier_identical": sketch_identical},
    }


def stretch_gate(record: dict):
    """Auto answers never exceed the planner's declared stretch bound.

    Checked against the exact-backend ground truth on every workload, at
    every scale — stretch is a correctness property, not a timing.
    Returns ``(ok, reasons)``.
    """
    ok = True
    reasons = []
    for name, wl in sorted(record.get("workloads", {}).items()):
        auto = wl.get("auto", {})
        declared = auto.get("declared_stretch")
        measured = auto.get("stretch", {}).get("max")
        agree = auto.get("stretch", {}).get("agree_unreachable")
        if not agree:
            ok = False
            reasons.append(f"{name}: auto disagrees with exact on reachability")
            continue
        if measured is None:
            reasons.append(f"{name}: no reachable pairs to measure (ok)")
            continue
        if measured <= declared + 1e-6:
            reasons.append(
                f"{name}: auto max stretch {measured:.3f} within declared "
                f"{declared:.3f}"
            )
        else:
            ok = False
            reasons.append(
                f"{name}: auto max stretch {measured:.3f} EXCEEDS declared "
                f"{declared:.3f}"
            )
    return ok, reasons


def throughput_gate(record: dict):
    """Auto is never slower than the worst fixed backend (full scale only).

    Returns ``(ok, reasons)``; smoke-scale timings are dominated by the
    planner's probe batches and timer noise, so they skip with a reason.
    """
    reasons = []
    if record.get("smoke"):
        for name, wl in sorted(record.get("workloads", {}).items()):
            reasons.append(
                f"{name}: skipped at smoke scale (auto "
                f"{wl.get('auto', {}).get('qps')} q/s recorded)"
            )
        return True, reasons
    ok = True
    for name, wl in sorted(record.get("workloads", {}).items()):
        worst = min((p["qps"] for p in wl.get("pareto", [])), default=0.0)
        auto_qps = wl.get("auto", {}).get("qps", 0.0)
        if auto_qps >= worst:
            reasons.append(
                f"{name}: auto {auto_qps:,.0f} q/s >= worst fixed {worst:,.0f} q/s"
            )
        else:
            ok = False
            reasons.append(
                f"{name}: auto {auto_qps:,.0f} q/s BELOW worst fixed {worst:,.0f} q/s"
            )
    return ok, reasons


def identity_gate(record: dict):
    """Sketch-tier answers bit-identical to the offline sketch (every scale)."""
    if record.get("identity", {}).get("sketch_tier_identical"):
        return True, ["sketch_tier_identical: ok"]
    return False, ["sketch_tier_identical: FAILED"]


def format_table(record: dict) -> str:
    gr = record["graph"]
    lines = [
        f"provider bench ({'smoke' if record['smoke'] else 'full'}, "
        f"n={gr['n']} m={gr['m']} spanner_m={gr['spanner_m']}, "
        f"cpu_count={record['cpu_count']})"
    ]
    for name, wl in sorted(record["workloads"].items()):
        lines.append(f"  {name} ({wl['queries']} queries):")
        for p in wl["pareto"]:
            stretch = p["stretch"]
            mean = "-" if stretch["mean"] is None else f"{stretch['mean']:.3f}"
            lines.append(
                f"    {p['backend']:<7} {p['qps']:>12,.0f} q/s  "
                f"stretch mean {mean} (declared <= {p['declared_stretch']})"
            )
        a = wl["auto"]
        routed = ", ".join(f"{k}={v}" for k, v in sorted(a["routed"].items()) if v)
        mean = (
            "-" if a["stretch"]["mean"] is None else f"{a['stretch']['mean']:.3f}"
        )
        lines.append(
            f"    auto    {a['qps']:>12,.0f} q/s  stretch mean {mean} "
            f"(declared <= {a['declared_stretch']}; routed {routed})"
        )
    ident = record["identity"]
    lines.append(f"  identity: sketch_tier_identical={ident['sketch_tier_identical']}")
    return "\n".join(lines)


if __name__ == "__main__":
    import argparse
    import json

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--smoke", action="store_true", help="tiny-n smoke run")
    args = ap.parse_args()
    rec = run_provider_bench(smoke=args.smoke)
    print(format_table(rec))
    for gate in (stretch_gate, throughput_gate, identity_gate):
        ok, reasons = gate(rec)
        for reason in reasons:
            print(f"{gate.__name__}: {reason}")
    print(json.dumps(rec, indent=2, sort_keys=True))
