"""Setup shim: environments without the `wheel` package cannot do PEP 660
editable installs with this old setuptools; `python setup.py develop` and
`pip install -e .` both route through here."""
from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
