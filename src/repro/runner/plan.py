"""Experiment plans: declarative cartesian sweeps over the registry.

An :class:`ExperimentPlan` names lists of algorithms, graph specs, ``k``/``t``
values, weight models, and seeds; :meth:`ExperimentPlan.trials` expands the
cartesian product into concrete :class:`TrialSpec` rows.  Every trial has a
deterministic *content-hash id* derived from its full configuration, which is
what makes sweep resume possible: a re-run of the same plan maps onto the
same ids and skips every trial whose artifact already exists.

Plans are plain JSON on disk::

    {
      "name": "smoke",
      "algorithms": ["general", "streaming"],
      "graphs": ["er:256:0.05", "grid:16:16"],
      "ks": [4, 8],
      "seeds": [0, 1],
      "verify_pairs": 64
    }
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..graphs.specs import GraphSpec
from ..registry import get_algorithm, resolve_name

__all__ = ["TrialSpec", "ExperimentPlan"]


@dataclass(frozen=True)
class TrialSpec:
    """One fully-specified trial: algorithm x graph x parameters x seed.

    With ``certify`` set, the trial additionally runs the
    :mod:`repro.verify` certifier on its result and embeds the full
    :class:`~repro.verify.Certificate` in the trial record (``cert_slack``
    is the size-bound slack factor passed through).
    """

    algorithm: str
    graph: str
    k: int | None
    t: int | None
    seed: int
    weights: str = "uniform"
    verify_pairs: int = 0
    certify: bool = False
    cert_slack: float = 1.0

    @property
    def trial_id(self) -> str:
        """Content hash of the configuration — the resume key."""
        payload = json.dumps(asdict(self), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "TrialSpec":
        return cls(
            algorithm=data["algorithm"],
            graph=data["graph"],
            k=data.get("k"),
            t=data.get("t"),
            seed=int(data.get("seed", 0)),
            weights=data.get("weights", "uniform"),
            verify_pairs=int(data.get("verify_pairs", 0)),
            certify=bool(data.get("certify", False)),
            cert_slack=float(data.get("cert_slack", 1.0)),
        )


@dataclass
class ExperimentPlan:
    """A cartesian sweep specification.

    Attributes
    ----------
    algorithms:
        Registry names (canonical or alias) — spanners and/or APSP
        pipelines.
    graphs:
        Graph spec strings (see :mod:`repro.graphs.specs`).
    ks, ts, seeds, weights:
        Parameter axes; the product of all axes is the trial set.  ``None``
        in ``ks``/``ts`` means "paper default" (APSP pipelines accept it;
        spanners require a concrete ``k``).
    verify_pairs:
        When positive, each spanner trial additionally measures sampled
        stretch over this many random pairs.
    certify, cert_slack:
        When ``certify`` is true, every trial runs the :mod:`repro.verify`
        certifier on its result (exact stretch, size, round/pass budgets)
        and the certificate rides in the trial record; ``cert_slack`` is
        the size-bound slack factor.
    name:
        Label recorded in artifacts.
    """

    algorithms: list = field(default_factory=list)
    graphs: list = field(default_factory=list)
    ks: list = field(default_factory=lambda: [8])
    ts: list = field(default_factory=lambda: [None])
    seeds: list = field(default_factory=lambda: [0])
    weights: list = field(default_factory=lambda: ["uniform"])
    verify_pairs: int = 0
    certify: bool = False
    cert_slack: float = 1.0
    name: str = "sweep"

    def validate(self) -> None:
        """Resolve every algorithm and parse every graph spec up front, so
        a bad plan fails before any trial runs."""
        if not self.algorithms:
            raise ValueError("plan has no algorithms")
        if not self.graphs:
            raise ValueError("plan has no graphs")
        for name in self.algorithms:
            spec = get_algorithm(name)  # raises KeyError on unknown names
            if spec.kind == "spanner" and all(k is None for k in self.ks):
                raise ValueError(f"spanner algorithm {name!r} needs a concrete k")
        for text in self.graphs:
            GraphSpec.parse(text)

    def trials(self) -> list[TrialSpec]:
        """Expand the cartesian product into concrete trials.

        Normalizations applied per trial (so the content hash reflects what
        actually runs): algorithm aliases resolve to canonical names; graph
        specs re-format canonically; unweighted-only algorithms force
        ``weights='unit'``; algorithms that ignore ``t`` get ``t=None``.
        """
        self.validate()
        rows: list[TrialSpec] = []
        seen: set[str] = set()
        for name in self.algorithms:
            algo = get_algorithm(name)
            for graph in self.graphs:
                canonical_graph = GraphSpec.parse(graph).format()
                for k in self.ks:
                    for t in self.ts if algo.requires_t else [None]:
                        for wmodel in self.weights if algo.weighted else ["unit"]:
                            for seed in self.seeds:
                                trial = TrialSpec(
                                    algorithm=resolve_name(name),
                                    graph=canonical_graph,
                                    k=k,
                                    t=t,
                                    seed=seed,
                                    weights=wmodel,
                                    verify_pairs=self.verify_pairs,
                                    certify=self.certify,
                                    cert_slack=self.cert_slack,
                                )
                                if trial.trial_id not in seen:
                                    seen.add(trial.trial_id)
                                    rows.append(trial)
        return rows

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "algorithms": list(self.algorithms),
            "graphs": list(self.graphs),
            "ks": list(self.ks),
            "ts": list(self.ts),
            "seeds": list(self.seeds),
            "weights": list(self.weights),
            "verify_pairs": self.verify_pairs,
            "certify": self.certify,
            "cert_slack": self.cert_slack,
        }

    @classmethod
    def from_json(cls, data: dict) -> "ExperimentPlan":
        return cls(
            algorithms=list(data.get("algorithms", [])),
            graphs=list(data.get("graphs", [])),
            ks=list(data.get("ks", [8])),
            ts=list(data.get("ts", [None])),
            seeds=list(data.get("seeds", [0])),
            weights=list(data.get("weights", ["uniform"])),
            verify_pairs=int(data.get("verify_pairs", 0)),
            certify=bool(data.get("certify", False)),
            cert_slack=float(data.get("cert_slack", 1.0)),
            name=data.get("name", "sweep"),
        )

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "ExperimentPlan":
        return cls.from_json(json.loads(Path(path).read_text()))
