"""Parallel sweep execution with content-hash resume.

:func:`run_plan` drives the trials of an :class:`~repro.runner.plan.ExperimentPlan`
on a ``ProcessPoolExecutor`` (``jobs=1`` runs inline, no pool overhead),
writing one JSON record per trial under ``out/trials/<trial_id>.json`` as it
completes.  Because trial ids are content hashes of the full configuration,
re-running the same plan finds the finished artifacts and skips them —
interrupting a 500-trial sweep costs only the trials in flight.

Aggregate artifacts (``results.json``, ``results.csv``) are rewritten from
the per-trial records at the end of every run, so they always reflect the
union of completed work.
"""

from __future__ import annotations

import csv
import json
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

from ..graphs.specs import GraphSpec
from ..registry import get_algorithm
from .plan import ExperimentPlan, TrialSpec

__all__ = ["PlanResult", "run_trial", "run_plan"]

#: Columns every record starts with, in table order; remaining keys follow
#: alphabetically.
_LEAD_COLUMNS = (
    "trial_id",
    "algorithm",
    "graph",
    "k",
    "t",
    "seed",
    "weights",
    "graph_n",
    "graph_m",
    "elapsed_s",
)


@dataclass
class PlanResult:
    """Outcome of one :func:`run_plan` call."""

    records: list = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    wall_seconds: float = 0.0
    out_dir: str | None = None

    @property
    def total(self) -> int:
        return self.executed + self.skipped


def _persist_artifact(trial: TrialSpec, store_root: str, result, kind: str, g) -> str:
    """Save the trial's built spanner as a serving artifact keyed by the
    trial id, so a sweep's output directory doubles as a loadable
    :class:`~repro.service.store.ArtifactStore`."""
    from ..service.store import ArtifactStore

    meta = {
        "algorithm": trial.algorithm,
        "graph": trial.graph,
        "seed": trial.seed,
        "weights": trial.weights,
    }
    # Spanner constructions return edge ids into g; APSP pipelines carry
    # the collected spanner graph directly.
    spanner = result.subgraph(g) if kind == "spanner" else result.spanner
    t_effective = (
        result.extra.get("t_effective", result.t) if kind == "spanner" else result.t
    )
    return ArtifactStore(store_root).save_spanner(
        spanner,
        k=result.k,
        t=result.t,
        t_effective=t_effective,
        key=trial.trial_id,
        meta=meta,
    )


def run_trial(trial: TrialSpec, store_root: str | None = None) -> dict:
    """Execute one trial and return its flat record.

    Top-level (picklable) so it can cross a process-pool boundary.  Errors
    are captured into the record (``error`` key) rather than raised — one
    pathological configuration must not kill a sweep.  With ``store_root``
    set, the built spanner additionally lands in that artifact store under
    the trial id (``artifact_key`` in the record).
    """
    record = {"trial_id": trial.trial_id, **trial.to_json()}
    try:
        algo = get_algorithm(trial.algorithm)
        weights = trial.weights if algo.weighted else "unit"
        g = GraphSpec.parse(trial.graph).build(weights=weights, seed=trial.seed)
        record["graph_n"] = g.n
        record["graph_m"] = g.m

        start = time.perf_counter()
        result = algo.run(g, k=trial.k, t=trial.t, rng=trial.seed)
        record["elapsed_s"] = round(time.perf_counter() - start, 6)

        if store_root is not None:
            record["artifact_key"] = _persist_artifact(
                trial, store_root, result, algo.kind, g
            )

        if trial.certify:
            from ..verify import certify_result

            cert = certify_result(
                algo,
                g,
                result,
                graph=trial.graph,
                seed=trial.seed,
                weights=weights,
                slack=trial.cert_slack,
                elapsed_s=record["elapsed_s"],
            )
            record["cert_ok"] = cert.ok
            record["cert_checks"] = len(cert.checks)
            record["cert_violations"] = ",".join(c.name for c in cert.violations)
            record["certificate"] = cert.to_json()

        if algo.kind == "spanner":
            record.update(result.to_record())
            # to_record() reports the implementation's own label (e.g.
            # "general-tradeoff"); keep the registry name as the join key.
            record["algorithm_impl"] = record["algorithm"]
            record["algorithm"] = trial.algorithm
            if trial.verify_pairs > 0:
                from ..graphs.validation import sampled_pair_stretch

                rep = sampled_pair_stretch(
                    g, result.subgraph(g), trial.verify_pairs, rng=trial.seed
                )
                record["max_stretch"] = float(rep.max_stretch)
                record["mean_stretch"] = float(rep.mean_stretch)
                record["stretch_pairs"] = int(rep.num_checked)
        else:  # APSP pipeline result
            record.update(
                {
                    "algorithm": trial.algorithm,
                    "k": result.k,
                    "t": result.t,
                    "rounds": result.rounds,
                    "collection_rounds": result.collection_rounds,
                    "num_edges": result.spanner.m,
                    "guaranteed_stretch": float(result.guaranteed_stretch),
                }
            )
    except Exception as exc:  # pragma: no cover - exercised via error tests
        record["error"] = f"{type(exc).__name__}: {exc}"
    return record


def _trial_path(out_dir: Path, trial_id: str) -> Path:
    return out_dir / "trials" / f"{trial_id}.json"


def _write_record(out_dir: Path | None, record: dict) -> None:
    if out_dir is None:
        return
    path = _trial_path(out_dir, record["trial_id"])
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)  # atomic: a crash never leaves a half-written artifact


def _load_completed(out_dir: Path | None, trials: list[TrialSpec]) -> dict:
    """Map trial_id -> record for artifacts that already exist (and parse)."""
    if out_dir is None:
        return {}
    completed = {}
    for trial in trials:
        path = _trial_path(out_dir, trial.trial_id)
        if path.exists():
            try:
                record = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError):
                continue  # corrupt/truncated artifact: re-run the trial
            if not isinstance(record, dict) or record.get("trial_id") != trial.trial_id:
                continue  # parseable but foreign content: re-run the trial
            if "error" not in record:
                completed[trial.trial_id] = record
    return completed


def _scalar_view(record: dict) -> dict:
    """The tabular projection of a record: nested payloads (e.g. embedded
    certificates) stay in the JSON artifacts, out of the CSV."""
    return {k: v for k, v in record.items() if not isinstance(v, (dict, list))}


def _columns(records: list[dict]) -> list[str]:
    keys = set()
    for record in records:
        keys.update(_scalar_view(record))
    rest = sorted(keys.difference(_LEAD_COLUMNS))
    return [c for c in _LEAD_COLUMNS if c in keys] + rest


def _write_aggregates(out_dir: Path, plan: ExperimentPlan, records: list[dict]) -> None:
    payload = {
        "plan": plan.to_json(),
        "num_trials": len(records),
        "records": records,
    }
    (out_dir / "results.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    cols = _columns(records)
    with (out_dir / "results.csv").open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=cols, extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow(_scalar_view(record))


def run_plan(
    plan: ExperimentPlan,
    *,
    jobs: int = 1,
    out_dir=None,
    resume: bool = True,
    progress=None,
    persist: bool = False,
) -> PlanResult:
    """Run every trial of ``plan``; return records plus execution counts.

    Parameters
    ----------
    plan:
        The sweep specification (validated before anything runs).
    jobs:
        Worker processes.  ``1`` executes inline in this process —
        deterministic ordering, no pool overhead, easiest to debug.
    out_dir:
        Artifact directory.  Created if missing; per-trial records land in
        ``out_dir/trials/``, aggregates in ``out_dir/results.{json,csv}``.
        ``None`` keeps everything in memory (no resume).
    resume:
        When true (default), trials whose artifact already exists under
        ``out_dir`` are skipped and their records reused.
    progress:
        Optional ``callback(record, done, total)`` invoked per completed
        trial (the CLI uses it for live output).
    persist:
        When true (requires ``out_dir``), every trial's built spanner is
        additionally saved under ``out_dir/store`` as a serving artifact
        keyed by the trial id — the sweep output becomes a loadable
        :class:`~repro.service.store.ArtifactStore`.
    """
    start = time.perf_counter()
    trials = plan.trials()

    if persist and out_dir is None:
        raise ValueError("persist=True requires an out_dir")

    out_path: Path | None = None
    if out_dir is not None:
        out_path = Path(out_dir)
        (out_path / "trials").mkdir(parents=True, exist_ok=True)
        plan.save(out_path / "plan.json")
    store_root = str(out_path / "store") if (persist and out_path) else None

    completed = _load_completed(out_path, trials) if resume else {}
    if store_root is not None and completed:
        # The artifact is part of a persisting sweep's output: a resumed
        # trial whose artifact is missing (e.g. the earlier run had no
        # --persist) re-executes so the store ends up complete.
        from ..service.store import ArtifactStore

        store = ArtifactStore(store_root)
        for trial_id in [t for t in completed if t not in store]:
            del completed[trial_id]
    pending = [t for t in trials if t.trial_id not in completed]

    records_by_id = dict(completed)
    done = len(completed)
    total = len(trials)

    def _finish(record: dict) -> None:
        nonlocal done
        done += 1
        records_by_id[record["trial_id"]] = record
        _write_record(out_path, record)
        if progress is not None:
            progress(record, done, total)

    if jobs <= 1 or len(pending) <= 1:
        for trial in pending:
            _finish(run_trial(trial, store_root))
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(run_trial, trial, store_root): trial for trial in pending
            }
            for future in as_completed(futures):
                _finish(future.result())

    # Aggregate in plan order, not completion order.
    records = [records_by_id[t.trial_id] for t in trials if t.trial_id in records_by_id]
    if out_path is not None:
        _write_aggregates(out_path, plan, records)

    return PlanResult(
        records=records,
        executed=len(pending),
        skipped=len(completed),
        wall_seconds=time.perf_counter() - start,
        out_dir=str(out_path) if out_path is not None else None,
    )
