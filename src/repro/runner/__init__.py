"""Parallel experiment runner: declarative sweeps over the algorithm registry.

``ExperimentPlan`` describes a cartesian sweep (algorithms x graphs x
parameters x seeds); ``run_plan`` executes it on a process pool with
content-hash-keyed resume and JSON/CSV artifacts.  See EXPERIMENTS.md for
the protocol and ``repro sweep`` for the CLI entry point.
"""

from .plan import ExperimentPlan, TrialSpec
from .execute import PlanResult, run_plan, run_trial

__all__ = ["ExperimentPlan", "TrialSpec", "PlanResult", "run_plan", "run_trial"]
