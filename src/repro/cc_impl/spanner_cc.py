"""Theorem 8.1: spanner construction in the Congested Clique.

The expected-size guarantee of the MPC algorithm is upgraded to a
with-high-probability guarantee *without* an ``O(log n)`` round blow-up by
running ``O(log n)`` sampling repetitions of every iteration in parallel
and selecting, per iteration, a run in which both

1. the number of sampled clusters is ``O(|C| p)`` (Chernoff: holds w.h.p.
   in each run once ``|C| p = Ω(log n)``), and
2. the number of edges added to the spanner is ``O(|C| / p)`` (Markov:
   holds with constant probability per run).

Communication per iteration: one round in which every super-node announces
its ``O(log n)``-bit vector of sampling coins (one bit per repetition), one
aggregation round collecting per-run counters, and ``O(1)`` routing rounds
to apply the winning run's merges — so the round complexity matches the MPC
iteration count times a constant (Theorem 8.1).

Weights are assumed to fit one ``O(log n)``-bit word each, as the model
requires (use integer or quantized weights for strict fidelity).
"""

from __future__ import annotations

import math

import numpy as np

from ..congest.clique import CongestedClique
from ..core.engine import EdgeSet, run_growth_iterations
from ..core.params import coerce_rng, num_epochs, sampling_probability
from ..core.results import IterationStats, RoundStats, SpannerResult
from ..graphs.graph import WeightedGraph
from ..graphs.quotient import quotient_edges

__all__ = ["spanner_cc"]


def _attempt(edges: EdgeSet, labels, radius, p, rng, epoch):
    """Run one provisional iteration on cloned state; return outcome + clone."""
    clone = EdgeSet(
        edges.num_nodes,
        edges.u,
        edges.v,
        edges.w,
        edges.eid,
        edges.alive.copy(),
    )
    out = run_growth_iterations(
        clone,
        iterations=1,
        probability=p,
        rng=rng,
        epoch=epoch,
        node_radius=radius,
        start_labels=labels,
    )
    return out, clone


def _live_seeds(labels: np.ndarray, num_nodes: int) -> np.ndarray:
    """Sorted distinct cluster seeds among ``labels >= 0``.

    Labels are seed ids in ``[0, num_nodes)``, so a scatter into a flag
    array replaces the per-iteration ``np.unique`` sort — O(n) instead of
    O(n log n), same sorted result.
    """
    flags = np.zeros(num_nodes, dtype=bool)
    clustered = labels >= 0
    if clustered.any():
        flags[labels[clustered]] = True
    return np.flatnonzero(flags)


def spanner_cc(
    g: WeightedGraph,
    k: int,
    t: int | None = None,
    *,
    rng=None,
    repetitions: int | None = None,
    size_slack: float = 8.0,
) -> SpannerResult:
    """Build the Theorem 8.1 spanner under Congested Clique accounting.

    Parameters
    ----------
    g, k, t, rng:
        As in :func:`repro.core.general_tradeoff.general_tradeoff`.
    repetitions:
        Parallel sampling repetitions per iteration (default
        ``ceil(log2 n)``).
    size_slack:
        The constant in the per-iteration acceptance tests.

    Returns
    -------
    SpannerResult
        ``extra['cc']`` holds the clique summary; ``extra['rounds']`` the
        simulated round count; ``extra['repetition_retries']`` how many
        iterations needed more than one candidate run.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    rng = coerce_rng(rng)
    if t is None:
        from ..core.general_tradeoff import default_t

        t = default_t(k)
    t_eff = min(max(t, 1), max(k - 1, 1))
    n = g.n
    cc = CongestedClique(max(n, 1))
    if repetitions is None:
        repetitions = max(1, math.ceil(math.log2(max(n, 2))))

    if k == 1 or g.m == 0:
        res = SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="spanner-cc",
            k=k,
            t=t,
            iterations=0,
            extra={"cc": cc.summary(), "repetition_retries": 0},
        )
        res.round_stats = RoundStats(rounds=0)
        return res

    l = num_epochs(k, t_eff)
    edges = EdgeSet.from_arrays(n, g.edges_u, g.edges_v, g.edges_w)
    sn_radius = np.zeros(n)
    labels = np.arange(n, dtype=np.int64)
    num_nodes = n

    spanner_parts: list[np.ndarray] = []
    stats: list[IterationStats] = []
    retries = 0
    iterations_run = 0
    log_n = math.log(max(n, 2))

    for epoch in range(1, l + 1):
        p = sampling_probability(n, k, t_eff, epoch)
        for _ in range(t_eff):
            iterations_run += 1
            # One round: every super-node broadcasts its repetition coin
            # vector; one round: counters per run are aggregated.
            cc.charge_broadcast_word(name="sampling-bits")
            cc.charge_aggregate(name="run-counters")

            num_clusters = max(int(_live_seeds(labels, num_nodes).size), 1)
            sample_cap = max(size_slack * num_clusters * p, size_slack * log_n)
            added_cap = size_slack * num_clusters / max(p, 1e-12)

            chosen = None
            for attempt in range(repetitions):
                out, clone = _attempt(edges, labels, sn_radius, p, rng, epoch)
                s = out.stats[0]
                if s.num_sampled <= sample_cap and s.num_added <= added_cap:
                    chosen = (out, clone)
                    break
                retries += 1
            if chosen is None:
                # All repetitions failed the w.h.p. event (astronomically
                # unlikely at any reasonable n); keep the last run.
                chosen = (out, clone)
            out, edges = chosen[0], chosen[1]
            labels = out.labels
            sn_radius = out.radius_bound
            stats.extend(out.stats)
            spanner_parts.append(out.spanner_eids)

            # O(1) rounds to apply the winning run's merges (each node
            # learns its new cluster id from its chosen neighbor).
            cc.charge_route(
                max_send=1, max_recv=min(num_nodes, n), total_words=num_nodes,
                name="apply-merges",
            )

        # --- contraction (pure relabeling; announced in one broadcast) -----
        clustered = labels >= 0
        seeds = _live_seeds(labels, num_nodes)
        seed_to_new = np.full(num_nodes, -1, dtype=np.int64)
        seed_to_new[seeds] = np.arange(seeds.size)
        new_id = np.empty(num_nodes, dtype=np.int64)
        new_id[clustered] = seed_to_new[labels[clustered]]
        retired = np.flatnonzero(~clustered)
        new_id[retired] = seeds.size + np.arange(retired.size)
        new_num = int(seeds.size + retired.size)

        new_radius = np.zeros(new_num)
        if clustered.any():
            new_radius[new_id[clustered]] = out.radius_bound[clustered] if stats else 0.0
        new_radius[new_id[retired]] = sn_radius[retired]

        eu, ev, ew, eeid = edges.alive_view()
        q = quotient_edges(new_id, eu, ev, ew, eeid)
        edges = EdgeSet.from_arrays(new_num, q.u, q.v, q.w, q.rep_edge_id)
        sn_radius = new_radius
        labels = np.arange(new_num, dtype=np.int64)
        num_nodes = new_num
        cc.charge_broadcast_word(name="contraction-ids")
        if edges.u.size == 0:
            break

    _, _, _, remaining = edges.alive_view()
    extra_edges = np.unique(remaining)
    edges.kill_all()
    spanner_parts.append(extra_edges)

    eids = (
        np.unique(np.concatenate(spanner_parts))
        if spanner_parts
        else np.zeros(0, dtype=np.int64)
    )
    res = SpannerResult(
        edge_ids=eids,
        algorithm="spanner-cc",
        k=k,
        t=t,
        iterations=iterations_run,
        stats=stats,
        phase2_added=int(extra_edges.size),
        extra={
            "cc": cc.summary(),
            "repetition_retries": retries,
            "repetitions": repetitions,
        },
    )
    res.round_stats = RoundStats(rounds=cc.rounds)
    return res
