"""Corollary 1.5: weighted APSP approximation in the Congested Clique.

Pipeline (Section 8): build the Theorem 8.1 spanner with ``k = log2 n``
and ``t = log2 log2 n`` — size ``O(n log log n)`` w.h.p. — then let *every*
node learn the entire spanner via Lenzen routing, costing
``O(size / n) = O(log log n)`` rounds; afterwards every node answers any
distance query locally.  The first sublogarithmic weighted-APSP algorithm
in the model.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csgraph

from ..congest.clique import CongestedClique
from ..core.params import apsp_parameters, stretch_bound
from ..graphs.graph import WeightedGraph
from .spanner_cc import spanner_cc

__all__ = ["CCApspResult", "apsp_cc"]


class CCApspResult:
    """Outcome of the Congested Clique APSP pipeline.

    Every node of the clique ends up holding ``spanner``; distance queries
    are answered locally.  ``rounds`` = spanner rounds + collection rounds.
    """

    def __init__(
        self,
        g: WeightedGraph,
        spanner: WeightedGraph,
        rounds: int,
        collection_rounds: int,
        k: int,
        t: int,
        spanner_extra: dict,
        stretch_factor: float = 1.0,
    ) -> None:
        self.g = g
        self.spanner = spanner
        self.rounds = rounds
        self.collection_rounds = collection_rounds
        self.k = k
        self.t = t
        self.spanner_extra = spanner_extra
        self.stretch_factor = stretch_factor
        self._matrix = spanner.to_scipy() if spanner.m else None

    @property
    def guaranteed_stretch(self) -> float:
        # stretch_factor absorbs the (1+eps) of weight quantization.
        return self.stretch_factor * stretch_bound(self.k, min(self.t, max(self.k - 1, 1)))

    def distances_from(self, source: int) -> np.ndarray:
        """What node ``source`` computes locally after learning the spanner."""
        if self._matrix is None:
            d = np.full(self.g.n, np.inf)
            d[source] = 0.0
            return d
        return csgraph.dijkstra(self._matrix, directed=False, indices=source)

    def all_pairs(self) -> np.ndarray:
        if self._matrix is None:
            d = np.full((self.g.n, self.g.n), np.inf)
            np.fill_diagonal(d, 0.0)
            return d
        return csgraph.dijkstra(self._matrix, directed=False)


def apsp_cc(
    g: WeightedGraph,
    *,
    k: int | None = None,
    t: int | None = None,
    rng=None,
    quantize_eps: float | None = None,
) -> CCApspResult:
    """Run the Corollary 1.5 pipeline under Congested Clique accounting.

    With ``quantize_eps`` set, weights are first rounded up to powers of
    ``1 + ε`` (see :mod:`repro.graphs.weights`) so every weight fits one
    ``O(log n)``-bit clique word — the model-strict mode.  The reported
    stretch guarantee absorbs the extra ``1 + ε`` factor.
    """
    dk, dt = apsp_parameters(g.n)
    k = k if k is not None else dk
    t = t if t is not None else dt

    work_graph = g
    eps_factor = 1.0
    if quantize_eps is not None:
        from ..graphs.weights import quantize_weights

        work_graph = quantize_weights(g, quantize_eps).graph
        eps_factor = 1.0 + quantize_eps

    res = spanner_cc(work_graph, k, t, rng=rng)
    # Edge ids refer to work_graph, which shares g's topology and edge
    # order (reweighting preserves both); answering queries with g's
    # original weights only shortens paths, so the composed guarantee is
    # stretch_bound * (1 + eps).
    spanner = res.subgraph(g)

    cc = CongestedClique(max(g.n, 1))
    # Each spanner edge is 3 words (u, v, w); everyone learns all of them.
    cc.charge_all_learn(3 * spanner.m, name="collect-spanner")
    total = res.extra["rounds"] + cc.rounds
    return CCApspResult(
        g=g,
        spanner=spanner,
        rounds=total,
        collection_rounds=cc.rounds,
        k=k,
        t=t,
        spanner_extra=res.extra,
        stretch_factor=eps_factor,
    )
