"""Congested Clique implementations (Section 8)."""

from .apsp_cc import CCApspResult, apsp_cc
from .spanner_cc import spanner_cc

__all__ = ["spanner_cc", "apsp_cc", "CCApspResult"]
