"""Congested Clique simulator.

Model (Section 8): ``n`` nodes, synchronous rounds, every ordered pair may
exchange one ``O(log n)``-bit word per round — so per round a node sends at
most ``n - 1`` words and receives at most ``n - 1`` words.

The simulator is an *accountant*: algorithms describe their communication
patterns (point-to-point batches, broadcasts, gathers) and the simulator
charges rounds using Lenzen's routing theorem [Len13] — any message set in
which every node sends at most ``n`` words and receives at most ``n`` words
can be delivered in ``O(1)`` rounds; larger batches decompose into
``ceil(load / n)`` such sub-batches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CongestedClique", "CCLogEntry"]

#: Round cost of one Lenzen routing phase (the [Len13] constant: a
#: deterministic 2-phase schedule).
LENZEN_PHASE_ROUNDS = 2


@dataclass
class CCLogEntry:
    """One charged communication step."""

    name: str
    rounds: int
    words: int


class CongestedClique:
    """Round accountant for the Congested Clique.

    Parameters
    ----------
    n:
        Number of nodes (one per graph vertex).
    word_bits:
        Bits per message word; only used to validate that payloads fit
        ``O(log n)`` words (weights are assumed to fit one word, as the
        model requires).
    """

    def __init__(self, n: int, *, word_bits: int | None = None) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self.word_bits = word_bits or max(1, math.ceil(math.log2(max(n, 2))) + 1)
        self.rounds = 0
        self.total_words = 0
        self.log: list[CCLogEntry] = []

    # -- charging helpers -----------------------------------------------------
    def _bandwidth(self) -> int:
        return max(self.n - 1, 1)

    def charge_route(
        self,
        *,
        max_send: int,
        max_recv: int,
        total_words: int,
        name: str = "route",
    ) -> int:
        """Charge a point-to-point batch via Lenzen routing.

        ``max_send`` / ``max_recv`` are the worst per-node loads in words.
        """
        if min(max_send, max_recv, total_words) < 0:
            raise ValueError("loads must be non-negative")
        load = max(max_send, max_recv)
        phases = max(1, math.ceil(load / self._bandwidth())) if load else 0
        r = phases * LENZEN_PHASE_ROUNDS
        self.rounds += r
        self.total_words += total_words
        self.log.append(CCLogEntry(name, r, total_words))
        return r

    def charge_broadcast_word(self, *, name: str = "broadcast") -> int:
        """Every node sends one word to every other node (e.g. the per-run
        sampling bit vector of Theorem 8.1): one round."""
        self.rounds += 1
        self.total_words += self.n * (self.n - 1)
        self.log.append(CCLogEntry(name, 1, self.n * (self.n - 1)))
        return 1

    def charge_all_learn(self, words: int, *, name: str = "all-learn") -> int:
        """Every node must end up holding ``words`` words (e.g. the whole
        spanner).  Each node can receive ``n-1`` words per round, and with
        Lenzen routing the words can be replicated through intermediate
        nodes at full bandwidth, so the cost is ``O(ceil(words / n))``."""
        if words < 0:
            raise ValueError("words must be non-negative")
        phases = max(1, math.ceil(words / self._bandwidth())) if words else 0
        r = phases * LENZEN_PHASE_ROUNDS
        self.rounds += r
        self.total_words += words * self.n
        self.log.append(CCLogEntry(name, r, words * self.n))
        return r

    def charge_aggregate(self, *, name: str = "aggregate") -> int:
        """All nodes send O(1) words to one coordinator (counts collection
        in Theorem 8.1): one round."""
        self.rounds += 1
        self.total_words += self.n
        self.log.append(CCLogEntry(name, 1, self.n))
        return 1

    def summary(self) -> dict:
        return {
            "n": self.n,
            "rounds": self.rounds,
            "total_words": self.total_words,
            "steps": len(self.log),
        }
