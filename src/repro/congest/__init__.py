"""Congested Clique substrate: round accounting and Lenzen routing."""

from .clique import CCLogEntry, CongestedClique
from .routing import schedule_rounds, two_phase_schedule

__all__ = ["CongestedClique", "CCLogEntry", "two_phase_schedule", "schedule_rounds"]
