"""Lenzen routing: a concrete deliverable schedule, not just a round count.

:class:`CongestedClique` charges rounds analytically; this module
*constructs* an actual two-phase routing schedule for a batch of messages,
verifying constructively that the claimed round counts are achievable.  The
test-suite uses it to check that every batch the APSP pipeline charges is
in fact routable: phase 1 spreads each sender's messages evenly over all n
nodes as intermediates; phase 2 delivers from intermediates to targets.  If
every node sends and receives at most ``n`` words, both phases have maximum
per-pair multiplicity ``O(1)`` — we return the exact multiplicities so
callers can assert the constant.
"""

from __future__ import annotations

import numpy as np

__all__ = ["two_phase_schedule", "schedule_rounds"]


def two_phase_schedule(
    n: int, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, int, int]:
    """Assign an intermediate node to each message and report congestion.

    Parameters
    ----------
    n:
        Clique size.
    src, dst:
        Message endpoints (one entry per word).

    Returns
    -------
    (intermediates, phase1_congestion, phase2_congestion)
        ``intermediates[i]`` relays message ``i``; the congestion figures
        are the maximum number of words any ordered pair carries in each
        phase — the number of rounds that phase needs.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise ValueError("src/dst shape mismatch")
    if src.size and (src.min() < 0 or src.max() >= n or dst.min() < 0 or dst.max() >= n):
        raise ValueError("endpoint out of range")
    m = src.size
    inter = np.empty(m, dtype=np.int64)
    if m:
        # Round-robin per sender: the i-th message of sender s relays via
        # node (s + i) mod n, spreading phase-1 load perfectly.
        order = np.argsort(src, kind="stable")
        s_sorted = src[order]
        starts = np.ones(m, dtype=bool)
        starts[1:] = s_sorted[1:] != s_sorted[:-1]
        # position of each message within its sender's batch
        idx_within = np.arange(m) - np.maximum.accumulate(np.where(starts, np.arange(m), 0))
        inter_sorted = (s_sorted + idx_within) % n
        inter[order] = inter_sorted

    def congestion(a: np.ndarray, b: np.ndarray) -> int:
        if a.size == 0:
            return 0
        pair = a * np.int64(n) + b
        _, counts = np.unique(pair, return_counts=True)
        return int(counts.max())

    return inter, congestion(src, inter), congestion(inter, dst)


def schedule_rounds(n: int, src: np.ndarray, dst: np.ndarray) -> int:
    """Total rounds the two-phase schedule needs for this batch."""
    _, c1, c2 = two_phase_schedule(n, src, dst)
    return c1 + c2
