"""Certify one run against the algorithm's declared paper bounds.

:func:`certify` runs a registered algorithm on a graph spec and checks the
outcome against the :class:`~repro.registry.AlgorithmClaims` the registry
declares for it:

* **spanning-subgraph** — the output's edges all appear in the input with
  the same weights (the precondition of every stretch proof);
* **connectivity** — the spanner preserves connected components;
* **stretch** — *exact* worst-case stretch via the edge-sufficiency lemma
  (:func:`repro.graphs.validation.edge_stretch`, one batched Dijkstra),
  against the claimed bound with no slack (stretch bounds are
  deterministic);
* **size** — edge count against the claimed expected size times a
  configurable ``slack`` factor (size bounds hold in expectation / w.h.p.);
* **rounds / passes / depth** — recorded :class:`MPCRunStats` /
  :class:`StreamStats` / :class:`RoundStats` / PRAM accounting against the
  claimed budgets.

The result is a typed :class:`Certificate` that serializes to JSON, so a
sweep can persist one certificate per (algorithm, graph, seed) cell and a
later reader can audit exactly which bound was checked against which
measured value.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from ..graphs.specs import GraphSpec
from ..graphs.validation import edge_stretch, is_spanning_subgraph
from ..registry import AlgorithmSpec, ClaimContext, get_algorithm

__all__ = ["BoundCheck", "Certificate", "certify", "certify_result"]

#: Absolute tolerance when comparing a float measurement to its bound.
_EPS = 1e-9


@dataclass(frozen=True)
class BoundCheck:
    """One named check: a measured quantity against its claimed bound.

    ``bound`` is ``None`` for structural checks (spanning-subgraph,
    connectivity) where ``measured`` is 1.0 for pass / 0.0 for fail.
    """

    name: str
    passed: bool
    measured: float
    bound: float | None = None
    detail: str = ""

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "BoundCheck":
        return cls(
            name=data["name"],
            passed=bool(data["passed"]),
            measured=float(data["measured"]),
            bound=None if data.get("bound") is None else float(data["bound"]),
            detail=data.get("detail", ""),
        )


@dataclass
class Certificate:
    """The certification record for one (algorithm, graph, seed) run."""

    algorithm: str
    kind: str
    model: str
    graph: str
    n: int
    m: int
    k: int
    t: int | None
    seed: int
    weights: str
    slack: float
    checks: list = field(default_factory=list)
    source: str = ""
    elapsed_s: float = 0.0

    @property
    def ok(self) -> bool:
        """True iff every check passed."""
        return all(c.passed for c in self.checks)

    @property
    def violations(self) -> list:
        """The failed checks, if any."""
        return [c for c in self.checks if not c.passed]

    def check(self, name: str) -> BoundCheck | None:
        """The named check, or ``None`` if it was not performed."""
        for c in self.checks:
            if c.name == name:
                return c
        return None

    def summary(self) -> str:
        """One human-readable line (the matrix cell text)."""
        if self.ok:
            return f"certified ({len(self.checks)} checks)"
        names = ",".join(c.name for c in self.violations)
        return f"VIOLATED: {names}"

    def to_json(self) -> dict:
        data = asdict(self)
        data["ok"] = self.ok
        return data

    @classmethod
    def from_json(cls, data: dict) -> "Certificate":
        return cls(
            algorithm=data["algorithm"],
            kind=data["kind"],
            model=data["model"],
            graph=data["graph"],
            n=int(data["n"]),
            m=int(data["m"]),
            k=int(data["k"]),
            t=None if data.get("t") is None else int(data["t"]),
            seed=int(data.get("seed", 0)),
            weights=data.get("weights", "uniform"),
            slack=float(data.get("slack", 1.0)),
            checks=[BoundCheck.from_json(c) for c in data.get("checks", [])],
            source=data.get("source", ""),
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )

    def save(self, path) -> None:
        Path(path).write_text(json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "Certificate":
        return cls.from_json(json.loads(Path(path).read_text()))


def _same_components(g, h) -> bool:
    from ..graphs import same_components

    return same_components(g, h)


def _claim_context(spec: AlgorithmSpec, g, result) -> ClaimContext:
    """Gather everything the claimed bounds may reference from one run."""
    if spec.kind == "spanner":
        gamma = None
        mpc = result.mpc_stats
        if mpc is not None and mpc.gamma:
            gamma = mpc.gamma
        return ClaimContext(
            n=g.n,
            m=g.m,
            k=result.k,
            t=result.t,
            gamma=gamma,
            iterations=result.iterations,
            epochs=result.epochs_executed(),
            contractions=len(result.extra.get("epoch_contractions", [])),
        )
    # APSP pipeline: construction instrumentation lives on the stage-1 extra.
    stage1 = getattr(result, "construction_extra", None) or getattr(
        result, "spanner_extra", {}
    )
    gamma = (stage1.get("mpc") or {}).get("gamma")
    return ClaimContext(n=g.n, m=g.m, k=result.k, t=result.t, gamma=gamma)


def _measured_budgets(spec: AlgorithmSpec, result) -> dict:
    """Map budget-claim name -> measured value, for whatever the run
    actually recorded."""
    measured: dict = {}
    if spec.kind == "apsp":
        measured["rounds"] = float(result.rounds)
        return measured
    rounds = result.extra.get("rounds")
    if rounds is not None:
        measured["rounds"] = float(rounds)
    stream = result.stream_stats
    if stream is not None:
        measured["passes"] = float(stream.passes)
    pram = result.extra.get("pram")
    if pram is not None:
        measured["depth"] = float(pram.get("depth", 0))
    return measured


def certify_result(
    spec: AlgorithmSpec,
    g,
    result,
    *,
    graph: str = "?",
    seed: int = 0,
    weights: str = "uniform",
    slack: float = 1.0,
    elapsed_s: float = 0.0,
) -> Certificate:
    """Check an already-computed ``result`` of ``spec`` on ``g``.

    ``slack`` multiplies the size bound only — stretch bounds and round
    budgets are deterministic consequences of the proofs and get no slack.
    """
    h = result.spanner if spec.kind == "apsp" else result.subgraph(g)
    claims = spec.claims
    ctx = _claim_context(spec, g, result)
    checks: list[BoundCheck] = []

    subgraph_ok = is_spanning_subgraph(g, h)
    checks.append(
        BoundCheck(
            name="spanning-subgraph",
            passed=subgraph_ok,
            measured=float(subgraph_ok),
            detail="output edges (with weights) all appear in the input",
        )
    )
    components_ok = bool(subgraph_ok and _same_components(g, h))
    checks.append(
        BoundCheck(
            name="connectivity",
            passed=components_ok,
            measured=float(components_ok),
            detail="spanner preserves connected components",
        )
    )

    if claims is not None and claims.stretch is not None:
        rep = edge_stretch(g, h)
        bound = float(claims.stretch(ctx))
        checks.append(
            BoundCheck(
                name="stretch",
                passed=bool(np.isfinite(rep.max_stretch))
                and rep.max_stretch <= bound + _EPS,
                measured=float(rep.max_stretch),
                bound=bound,
                detail=f"exact edge-stretch over {rep.num_checked} edges",
            )
        )

    if claims is not None and claims.size is not None:
        bound = float(slack * claims.size(ctx))
        checks.append(
            BoundCheck(
                name="size",
                passed=h.m <= bound + _EPS,
                measured=float(h.m),
                bound=bound,
                detail=f"edge count vs expected-size bound x {slack:g} slack",
            )
        )

    measured_budgets = _measured_budgets(spec, result)
    for name in ("rounds", "passes", "depth"):
        claim_fn = getattr(claims, name, None) if claims is not None else None
        if claim_fn is None or name not in measured_budgets:
            continue
        bound = float(claim_fn(ctx))
        value = measured_budgets[name]
        checks.append(
            BoundCheck(
                name=name,
                passed=value <= bound + _EPS,
                measured=value,
                bound=bound,
                detail=f"recorded {name} vs the paper budget",
            )
        )

    return Certificate(
        algorithm=spec.name,
        kind=spec.kind,
        model=spec.model,
        graph=graph,
        n=g.n,
        m=g.m,
        k=int(result.k),
        t=result.t,
        seed=seed,
        weights=weights,
        slack=slack,
        checks=checks,
        source=claims.source if claims is not None else "",
        elapsed_s=elapsed_s,
    )


def certify(
    algorithm: str,
    graph: str,
    *,
    k: int | None = None,
    t: int | None = None,
    seed: int = 0,
    weights: str = "uniform",
    slack: float = 1.0,
) -> Certificate:
    """Run ``algorithm`` on ``graph`` (a spec string) and certify the run.

    ``k`` is required for spanner algorithms; APSP pipelines default to the
    Section 7 parameters.  Unweighted-only algorithms force unit weights,
    exactly as the runner does.
    """
    spec = get_algorithm(algorithm)
    effective_weights = weights if spec.weighted else "unit"
    parsed = GraphSpec.parse(graph)
    g = parsed.build(weights=effective_weights, seed=seed)
    start = time.perf_counter()
    result = spec.run(g, k=k, t=t, rng=seed)
    elapsed = time.perf_counter() - start
    return certify_result(
        spec,
        g,
        result,
        graph=parsed.format(),
        seed=seed,
        weights=effective_weights,
        slack=slack,
        elapsed_s=elapsed,
    )
