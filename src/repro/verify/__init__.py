"""Certification subsystem: prove registered algorithms meet their bounds.

Every :class:`~repro.registry.AlgorithmSpec` carries declarative
:class:`~repro.registry.AlgorithmClaims` (stretch bound, expected-size
bound, round/pass/depth budgets).  This package turns those claims into
evidence:

:func:`certify` / :func:`certify_result`
    Run (or take) one algorithm result and check every declared bound,
    producing a JSON-serializable :class:`Certificate`.
:func:`run_matrix` / :func:`conformance_plan`
    Sweep algorithms x graph families x seeds through the experiment
    runner with per-cell certificates, a ``matrix.json`` summary, and a
    markdown grid — the ``repro verify --matrix`` backend.
"""

from .certify import BoundCheck, Certificate, certify, certify_result
from .matrix import (
    DEFAULT_MATRIX_GRAPHS,
    MatrixCell,
    MatrixResult,
    conformance_plan,
    format_matrix_markdown,
    run_matrix,
)

__all__ = [
    "BoundCheck",
    "Certificate",
    "certify",
    "certify_result",
    "DEFAULT_MATRIX_GRAPHS",
    "MatrixCell",
    "MatrixResult",
    "conformance_plan",
    "format_matrix_markdown",
    "run_matrix",
]
