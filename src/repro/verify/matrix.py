"""Conformance matrix: certify algorithms x graph families x seeds.

Builds on the experiment runner: :func:`conformance_plan` produces an
:class:`~repro.runner.plan.ExperimentPlan` with ``certify=True`` (so every
trial carries a full :class:`~repro.verify.certify.Certificate` in its
artifact), and :func:`run_matrix` executes it — in parallel, with
content-hash resume — then aggregates the per-cell verdicts into
``matrix.json`` and a human-readable ``matrix.md`` grid.

The default plan sweeps *every* registered algorithm (all spanner
constructions and both APSP pipelines) over a representative set of graph
families: random (``er``), high-girth (``grid``), contraction-friendly
(``cliques``), skewed-degree (``ba``), and geometric (``geo``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..registry import algorithm_names
from ..runner import ExperimentPlan, run_plan

__all__ = [
    "DEFAULT_MATRIX_GRAPHS",
    "MatrixCell",
    "MatrixResult",
    "conformance_plan",
    "run_matrix",
    "format_matrix_markdown",
]

#: Representative graph families for the default conformance sweep — one
#: per structural regime the paper's constructions react differently to.
DEFAULT_MATRIX_GRAPHS = [
    "er:96:0.08",
    "grid:8:10",
    "cliques:8:6",
    "ba:96:2",
    "geo:72:0.22",
]


@dataclass(frozen=True)
class MatrixCell:
    """One (algorithm, graph, k, t, seed) verdict."""

    trial_id: str
    algorithm: str
    graph: str
    k: int | None
    t: int | None
    seed: int
    ok: bool
    violations: str = ""
    error: str = ""

    @property
    def status(self) -> str:
        if self.error:
            return f"ERROR: {self.error}"
        if self.ok:
            return "ok"
        return f"violated: {self.violations}"


@dataclass
class MatrixResult:
    """Aggregated outcome of one conformance-matrix run."""

    plan: ExperimentPlan
    cells: list = field(default_factory=list)
    executed: int = 0
    skipped: int = 0
    wall_seconds: float = 0.0
    out_dir: str | None = None

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def num_certified(self) -> int:
        return sum(1 for c in self.cells if c.ok and not c.error)

    @property
    def num_violations(self) -> int:
        return sum(1 for c in self.cells if not c.ok and not c.error)

    @property
    def num_errors(self) -> int:
        return sum(1 for c in self.cells if c.error)

    @property
    def ok(self) -> bool:
        return self.num_certified == self.num_cells

    def failures(self) -> list:
        return [c for c in self.cells if c.error or not c.ok]

    def to_json(self) -> dict:
        return {
            "plan": self.plan.to_json(),
            "num_cells": self.num_cells,
            "num_certified": self.num_certified,
            "num_violations": self.num_violations,
            "num_errors": self.num_errors,
            "ok": self.ok,
            "wall_seconds": round(self.wall_seconds, 3),
            "cells": [
                {
                    "trial_id": c.trial_id,
                    "algorithm": c.algorithm,
                    "graph": c.graph,
                    "k": c.k,
                    "t": c.t,
                    "seed": c.seed,
                    "ok": c.ok,
                    "violations": c.violations,
                    "error": c.error,
                }
                for c in self.cells
            ],
        }


def conformance_plan(
    *,
    algorithms: list | None = None,
    graphs: list | None = None,
    ks: list | None = None,
    ts: list | None = None,
    seeds: list | None = None,
    weights: list | None = None,
    slack: float = 1.0,
    name: str = "conformance",
) -> ExperimentPlan:
    """The certification sweep: by default every registered algorithm on
    the representative family set, ``k = 4``, one seed.

    APSP pipelines run with the same ``k`` axis (their bounds are checked
    for whatever parameters they actually used), and unweighted-only
    algorithms force unit weights — both handled by the plan expansion.
    """
    return ExperimentPlan(
        algorithms=list(algorithms) if algorithms is not None else algorithm_names(),
        graphs=list(graphs) if graphs is not None else list(DEFAULT_MATRIX_GRAPHS),
        ks=list(ks) if ks is not None else [4],
        ts=list(ts) if ts is not None else [None],
        seeds=list(seeds) if seeds is not None else [0],
        weights=list(weights) if weights is not None else ["uniform"],
        certify=True,
        cert_slack=slack,
        name=name,
    )


def _cell(record: dict) -> MatrixCell:
    return MatrixCell(
        trial_id=record.get("trial_id", "?"),
        algorithm=record.get("algorithm", "?"),
        graph=record.get("graph", "?"),
        k=record.get("k"),
        t=record.get("t"),
        seed=int(record.get("seed", 0)),
        ok=bool(record.get("cert_ok", False)),
        violations=record.get("cert_violations", ""),
        error=record.get("error", ""),
    )


def format_matrix_markdown(result: MatrixResult) -> str:
    """The algorithms x graphs grid as a GitHub-flavoured markdown table.

    Multi-seed / multi-k sweeps collapse each (algorithm, graph) group to
    its worst verdict; the per-cell detail stays in ``matrix.json``.
    """
    algorithms = sorted({c.algorithm for c in result.cells})
    graphs = sorted({c.graph for c in result.cells})
    by_key: dict = {}
    for c in result.cells:
        by_key.setdefault((c.algorithm, c.graph), []).append(c)

    def cell_text(algorithm: str, graph: str) -> str:
        group = by_key.get((algorithm, graph))
        if not group:
            return "—"
        errors = [c for c in group if c.error]
        if errors:
            return "ERR"
        bad = sorted({v for c in group if not c.ok for v in c.violations.split(",") if v})
        if bad:
            return "✗ " + ",".join(bad)
        return "✓"

    lines = [
        "| algorithm | " + " | ".join(graphs) + " |",
        "|---" * (len(graphs) + 1) + "|",
    ]
    for algorithm in algorithms:
        row = [cell_text(algorithm, graph) for graph in graphs]
        lines.append(f"| {algorithm} | " + " | ".join(row) + " |")
    lines.append("")
    lines.append(
        f"{result.num_certified}/{result.num_cells} cells certified, "
        f"{result.num_violations} violations, {result.num_errors} errors."
    )
    return "\n".join(lines)


def run_matrix(
    plan: ExperimentPlan | None = None,
    *,
    jobs: int = 1,
    out_dir=None,
    resume: bool = True,
    progress=None,
) -> MatrixResult:
    """Execute a conformance plan and aggregate the verdicts.

    When ``out_dir`` is given, the runner's per-trial artifacts (each
    embedding its full certificate) land under ``out_dir/trials/`` and the
    matrix summary is written to ``out_dir/matrix.json`` and
    ``out_dir/matrix.md``.
    """
    if plan is None:
        plan = conformance_plan()
    if not plan.certify:
        raise ValueError("a conformance plan must have certify=True")

    run = run_plan(plan, jobs=jobs, out_dir=out_dir, resume=resume, progress=progress)
    result = MatrixResult(
        plan=plan,
        cells=[_cell(r) for r in run.records],
        executed=run.executed,
        skipped=run.skipped,
        wall_seconds=run.wall_seconds,
        out_dir=run.out_dir,
    )
    if run.out_dir is not None:
        out = Path(run.out_dir)
        (out / "matrix.json").write_text(
            json.dumps(result.to_json(), indent=2, sort_keys=True) + "\n"
        )
        (out / "matrix.md").write_text(format_matrix_markdown(result) + "\n")
    return result
