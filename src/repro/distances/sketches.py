"""Thorup–Zwick distance sketches, plain and spanner-accelerated.

The paper motivates its spanners partly through distance sketches: [DN19]
used spanners to speed up sketch *preprocessing* in MPC ("an exponential
speed up in preprocessing of distance sketches").  This module provides the
sketch substrate that application builds on:

* :class:`DistanceSketch` — the classic Thorup–Zwick construction: a
  sampled hierarchy ``V = A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}``, per-vertex pivots
  ``p_i(v)`` (nearest ``A_i`` vertex) and bunches
  ``B(v) = ∪_i {w ∈ A_i \\ A_{i+1} : d(v,w) < d(v, A_{i+1})}``.
  Expected size ``O(k n^{1+1/k})`` words, query time ``O(k)``, stretch at
  most ``2k - 1``.
* :func:`sketch_on_spanner` — the [DN19] idea reproduced at the logical
  level: preprocess the sketch on a *spanner* of ``G`` rather than ``G``
  itself.  Preprocessing now touches ``O(spanner size)`` edges instead of
  ``m`` (the MPC work/memory win), at the cost of multiplying the query
  stretch by the spanner's stretch.

Implementation notes: pivots come from one multi-source Dijkstra per level
(``scipy``'s ``min_only``); bunches come from the classic truncated
Dijkstra per hierarchy vertex, which only relaxes ``v`` through distances
strictly below ``d(v, A_{i+1})`` — this is what keeps the total sketch size
near-linear.
"""

from __future__ import annotations

import heapq
import math

import numpy as np
from scipy.sparse import csgraph

from ..core.results import SpannerResult
from ..graphs.graph import WeightedGraph

__all__ = ["DistanceSketch", "sketch_on_spanner"]


class DistanceSketch:
    """A Thorup–Zwick approximate-distance sketch of stretch ``2k - 1``.

    Parameters
    ----------
    g:
        Weighted input graph.
    k:
        Number of hierarchy levels; stretch is ``2k - 1``, expected size
        ``O(k n^{1+1/k})``.
    rng:
        Seed or generator for the hierarchy sampling.

    Examples
    --------
    >>> from repro.graphs import erdos_renyi, sssp
    >>> g = erdos_renyi(100, 0.2, weights="uniform", rng=0)
    >>> sk = DistanceSketch(g, k=2, rng=0)
    >>> d = sk.query(0, 5)
    >>> d >= sssp(g, 0)[5] - 1e-9        # never underestimates
    True
    """

    def __init__(self, g: WeightedGraph, k: int, *, rng=None) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng
        self.g = g
        self.k = k
        n = g.n
        p = float(n) ** (-1.0 / k) if n > 1 else 0.5

        # --- hierarchy -----------------------------------------------------
        levels: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
        for _ in range(1, k):
            prev = levels[-1]
            keep = rng.random(prev.size) < p
            levels.append(prev[keep])
        self.levels = levels

        mat = g.to_scipy() if g.m else None

        # --- pivots: d(v, A_i) and the achieving source ---------------------
        self.pivot_dist = np.full((k + 1, n), np.inf)
        self.pivot = np.full((k + 1, n), -1, dtype=np.int64)
        self.pivot_dist[0] = 0.0
        self.pivot[0] = np.arange(n)
        for i in range(1, k):
            ai = levels[i]
            if ai.size == 0 or mat is None:
                continue
            dist, _, sources = csgraph.dijkstra(
                mat, directed=False, indices=ai, min_only=True,
                return_predecessors=True,
            )
            self.pivot_dist[i] = dist
            self.pivot[i] = sources
        # Level k is empty: d(v, A_k) = inf (already initialized).

        # --- bunches via truncated Dijkstra ---------------------------------
        self.bunch: list[dict[int, float]] = [dict() for _ in range(n)]
        csr = g.csr
        for i in range(k):
            next_dist = self.pivot_dist[i + 1]
            in_next = np.zeros(n, dtype=bool)
            if i + 1 < len(levels):
                in_next[levels[i + 1]] = True
            for w in levels[i]:
                w = int(w)
                if in_next[w]:
                    continue  # w belongs to a deeper level's pass
                # Truncated Dijkstra from w: only settle v with
                # d(w, v) < d(v, A_{i+1}).
                dist: dict[int, float] = {w: 0.0}
                heap = [(0.0, w)]
                while heap:
                    d, x = heapq.heappop(heap)
                    if d > dist.get(x, math.inf):
                        continue
                    self.bunch[x][w] = d
                    lo, hi = csr.indptr[x], csr.indptr[x + 1]
                    for y, we in zip(csr.indices[lo:hi], csr.weights[lo:hi]):
                        y = int(y)
                        nd = d + float(we)
                        if nd < next_dist[y] - 1e-15 and nd < dist.get(y, math.inf):
                            dist[y] = nd
                            heapq.heappush(heap, (nd, y))

    # ------------------------------------------------------------------
    @property
    def size_words(self) -> int:
        """Total sketch size: bunch entries plus pivot tables."""
        return sum(len(b) for b in self.bunch) + 2 * (self.k + 1) * self.g.n

    def expected_size_bound(self, constant: float = 8.0) -> float:
        """The ``O(k n^{1+1/k})`` guarantee with an explicit constant."""
        return constant * self.k * float(self.g.n) ** (1.0 + 1.0 / self.k)

    def query(self, u: int, v: int) -> float:
        """Approximate ``d(u, v)`` with stretch at most ``2k - 1``.

        The classic bidirectional pivot walk: at most ``k - 1`` swaps.
        """
        n = self.g.n
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError("vertex out of range")
        if u == v:
            return 0.0
        w = u
        i = 0
        du_w = 0.0
        while w not in self.bunch[v]:
            i += 1
            if i >= self.k:
                return math.inf
            u, v = v, u
            w = int(self.pivot[i][u])
            du_w = float(self.pivot_dist[i][u])
            if w < 0 or not math.isfinite(du_w):
                return math.inf
        return du_w + self.bunch[v][w]

    def query_many(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query`."""
        pairs = np.asarray(pairs, dtype=np.int64)
        return np.array([self.query(int(a), int(b)) for a, b in pairs])


def sketch_on_spanner(
    g: WeightedGraph,
    spanner: SpannerResult | WeightedGraph,
    k: int,
    *,
    rng=None,
) -> tuple[DistanceSketch, dict]:
    """Preprocess a Thorup–Zwick sketch on a spanner of ``g`` ([DN19]).

    Returns the sketch (built on the spanner, so queries answer with
    stretch ``(2k-1) · spanner_stretch`` w.r.t. ``g``) and an accounting
    dict: edges touched by preprocessing on the spanner vs. on ``g`` — the
    resource the spanner trades accuracy for.
    """
    h = spanner.subgraph(g) if isinstance(spanner, SpannerResult) else spanner
    if h.n != g.n:
        raise ValueError("spanner must span g's vertex set")
    sk = DistanceSketch(h, k, rng=rng)
    accounting = {
        "edges_in_g": g.m,
        "edges_in_spanner": h.m,
        "preprocessing_edge_ratio": h.m / max(g.m, 1),
        "sketch_words": sk.size_words,
    }
    return sk, accounting
