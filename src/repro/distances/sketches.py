"""Thorup–Zwick distance sketches, plain and spanner-accelerated.

The paper motivates its spanners partly through distance sketches: [DN19]
used spanners to speed up sketch *preprocessing* in MPC ("an exponential
speed up in preprocessing of distance sketches").  This module provides the
sketch substrate that application builds on:

* :class:`DistanceSketch` — the classic Thorup–Zwick construction: a
  sampled hierarchy ``V = A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}``, per-vertex pivots
  ``p_i(v)`` (nearest ``A_i`` vertex) and bunches
  ``B(v) = ∪_i {w ∈ A_i \\ A_{i+1} : d(v,w) < d(v, A_{i+1})}``.
  Expected size ``O(k n^{1+1/k})`` words, query time ``O(k)``, stretch at
  most ``2k - 1``.
* :func:`sketch_on_spanner` — the [DN19] idea reproduced at the logical
  level: preprocess the sketch on a *spanner* of ``G`` rather than ``G``
  itself.  Preprocessing now touches ``O(spanner size)`` edges instead of
  ``m`` (the MPC work/memory win), at the cost of multiplying the query
  stretch by the spanner's stretch.

Implementation notes: pivots come from one multi-source Dijkstra per level
(``scipy``'s ``min_only``); bunches come from a *level-batched, array-based*
truncated relaxation (:func:`build_bunches_batched`) that grows flat
``(vertex, center, dist)`` arrays one frontier hop at a time, pruning every
candidate against the ``d(v, A_{i+1})`` truncation bound with one numpy
comparison — this is what keeps the total sketch size near-linear without a
per-center Python Dijkstra.  The classic per-center dict/heapq truncated
Dijkstra is retained as :func:`build_bunches_reference` and cross-checked by
the property tests; the two builders produce bit-identical bunch distances.

Bunch storage format (changed from the seed's ``list[dict]``): bunches are
CSR-style flat arrays — ``bunch_indptr`` (``n + 1``), ``bunch_centers`` and
``bunch_dists``, with vertex ``v``'s bunch in
``bunch_centers[bunch_indptr[v]:bunch_indptr[v+1]]`` sorted by center id.
The old dict-shaped API survives as the lazily materialized
:attr:`DistanceSketch.bunch` compatibility view.
"""

from __future__ import annotations

import heapq
import math

import numpy as np
from scipy.sparse import csgraph

from ..core import membudget
from ..core.params import coerce_rng
from ..core.results import SpannerResult
from ..graphs.distances import _gather_neighbors, iter_sssp_chunks
from ..graphs.graph import WeightedGraph, sorted_lookup

__all__ = [
    "DistanceSketch",
    "sketch_on_spanner",
    "build_bunches_batched",
    "build_bunches_reference",
]

# Matches the truncation slack of the original per-center Dijkstra: a vertex
# is relaxed only through distances strictly below d(v, A_{i+1}) - _EPS.
_EPS = 1e-15


def _level_sources(levels: list[np.ndarray], i: int, n: int) -> np.ndarray:
    """Centers processed at level ``i``: ``A_i \\ A_{i+1}`` (every center is
    handled exactly once, at its topmost level)."""
    sources = levels[i]
    if i + 1 < len(levels):
        in_next = np.zeros(n, dtype=bool)
        in_next[levels[i + 1]] = True
        sources = sources[~in_next[sources]]
    return sources


def build_bunches_batched(
    g: WeightedGraph, levels: list[np.ndarray], pivot_dist: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Array-native bunch construction for all centers at once.

    For each hierarchy level the truncated Dijkstras of *every* center in
    ``A_i \\ A_{i+1}`` advance together: the state is a flat sorted array of
    ``(vertex, center)`` keys with tentative distances, and one iteration
    relaxes the whole frontier through the cached CSR adjacency with a
    single ``np.repeat`` gather.  Candidates violating the
    ``d(v, A_{i+1})`` truncation bound are dropped before the merge, so the
    state never exceeds the final bunch size plus one frontier hop.

    The converged distances are the least fixpoint of the same truncated
    relaxation the per-center reference Dijkstra computes (float sums are
    associated identically), so the output is bit-identical to
    :func:`build_bunches_reference`.

    Returns ``(indptr, centers, dists)`` in the CSR layout documented in the
    module docstring.
    """
    n = g.n
    k = len(levels)
    csr = g.csr
    nn = np.int64(n)
    all_keys: list[np.ndarray] = []
    all_dists: list[np.ndarray] = []

    for i in range(k):
        sources = _level_sources(levels, i, n)
        if sources.size == 0:
            continue
        bound = pivot_dist[i + 1]

        if not np.isfinite(bound).any():
            # No truncation anywhere (the top level, or an empty next
            # level): the reference runs *plain* Dijkstras here, so hand
            # the whole batch to scipy's compiled Dijkstra, streamed in
            # chunks so the dense distance block stays bounded.
            key_parts: list[np.ndarray] = []
            dist_parts: list[np.ndarray] = []
            for lo, rows in iter_sssp_chunks(g, sources):
                ridx, verts = np.nonzero(np.isfinite(rows))
                key_parts.append(verts * nn + sources[lo + ridx])
                dist_parts.append(rows[ridx, verts])
            keys = np.concatenate(key_parts)
            dists = np.concatenate(dist_parts)
            membudget.note(
                "distances.sketches.build_bunches_batched",
                keys.nbytes + dists.nbytes,
            )
            order = np.argsort(keys, kind="stable")
            all_keys.append(keys[order])
            all_dists.append(dists[order])
            continue

        # Settled/tentative state: keys = vertex * n + center, sorted.
        # ``levels`` arrays are ascending, so the initial keys w*(n+1) are too.
        bk = sources * nn + sources
        bd = np.zeros(sources.size)
        front_v = sources
        front_c = sources
        front_d = np.zeros(sources.size)

        while front_v.size:
            flat, reps = _gather_neighbors(csr, front_v)
            if flat.size == 0:
                break
            cand_v = csr.indices[flat]
            cand_c = front_c[reps]
            cand_d = front_d[reps] + csr.weights[flat]

            keep = cand_d < bound[cand_v] - _EPS
            cand_v, cand_c, cand_d = cand_v[keep], cand_c[keep], cand_d[keep]
            if cand_v.size == 0:
                break

            # Minimum distance per (vertex, center) among this hop's arrivals.
            ckey = cand_v * nn + cand_c
            order = np.lexsort((cand_d, ckey))
            ckey, cand_d = ckey[order], cand_d[order]
            first = np.ones(ckey.size, dtype=bool)
            first[1:] = ckey[1:] != ckey[:-1]
            ckey, cand_d = ckey[first], cand_d[first]

            # Keep only candidates that improve the current state.
            present, clipped = sorted_lookup(bk, ckey)
            improve = ~present
            improve[present] = cand_d[present] < bd[clipped[present]]
            ckey, cand_d = ckey[improve], cand_d[improve]
            if ckey.size == 0:
                break
            pos, present = clipped[improve], present[improve]

            bd[pos[present]] = cand_d[present]
            fresh = ~present
            if fresh.any():
                bk = np.concatenate([bk, ckey[fresh]])
                bd = np.concatenate([bd, cand_d[fresh]])
                order = np.argsort(bk, kind="stable")
                bk, bd = bk[order], bd[order]

            front_v = ckey // nn
            front_c = ckey - front_v * nn
            front_d = cand_d

        membudget.note(
            "distances.sketches.build_bunches_batched", bk.nbytes + bd.nbytes
        )
        all_keys.append(bk)
        all_dists.append(bd)

    if all_keys:
        keys = np.concatenate(all_keys)
        dists = np.concatenate(all_dists)
        # Centers are disjoint across levels, so keys are globally unique;
        # one sort groups them by vertex with centers ascending within.
        order = np.argsort(keys, kind="stable")
        keys, dists = keys[order], dists[order]
        verts = keys // nn
        centers = keys - verts * nn
    else:
        verts = np.zeros(0, dtype=np.int64)
        centers = np.zeros(0, dtype=np.int64)
        dists = np.zeros(0)

    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, verts + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, centers, dists


def build_bunches_reference(
    g: WeightedGraph, levels: list[np.ndarray], pivot_dist: np.ndarray
) -> list[dict[int, float]]:
    """The classic per-center truncated dict/heapq Dijkstra (the seed
    implementation), retained as the independently-verified reference the
    property tests and the distance-layer benchmark compare against."""
    n = g.n
    k = len(levels)
    bunch: list[dict[int, float]] = [dict() for _ in range(n)]
    csr = g.csr
    for i in range(k):
        next_dist = pivot_dist[i + 1]
        for w in _level_sources(levels, i, n):
            w = int(w)
            # Truncated Dijkstra from w: only settle v with
            # d(w, v) < d(v, A_{i+1}).
            dist: dict[int, float] = {w: 0.0}
            heap = [(0.0, w)]
            while heap:
                d, x = heapq.heappop(heap)
                if d > dist.get(x, math.inf):
                    continue
                bunch[x][w] = d
                lo, hi = csr.indptr[x], csr.indptr[x + 1]
                for y, we in zip(csr.indices[lo:hi], csr.weights[lo:hi]):
                    y = int(y)
                    nd = d + float(we)
                    if nd < next_dist[y] - _EPS and nd < dist.get(y, math.inf):
                        dist[y] = nd
                        heapq.heappush(heap, (nd, y))
    return bunch


class DistanceSketch:
    """A Thorup–Zwick approximate-distance sketch of stretch ``2k - 1``.

    Parameters
    ----------
    g:
        Weighted input graph.
    k:
        Number of hierarchy levels; stretch is ``2k - 1``, expected size
        ``O(k n^{1+1/k})``.
    rng:
        Seed or generator for the hierarchy sampling.

    Examples
    --------
    >>> from repro.graphs import erdos_renyi, sssp
    >>> g = erdos_renyi(100, 0.2, weights="uniform", rng=0)
    >>> sk = DistanceSketch(g, k=2, rng=0)
    >>> d = sk.query(0, 5)
    >>> d >= sssp(g, 0)[5] - 1e-9        # never underestimates
    True
    """

    def __init__(self, g: WeightedGraph, k: int, *, rng=None) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        rng = coerce_rng(rng)
        self.g = g
        self.k = k
        n = g.n
        p = float(n) ** (-1.0 / k) if n > 1 else 0.5

        # --- hierarchy -----------------------------------------------------
        levels: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
        for _ in range(1, k):
            prev = levels[-1]
            keep = rng.random(prev.size) < p
            levels.append(prev[keep])
        self.levels = levels

        mat = g.to_scipy() if g.m else None

        # --- pivots: d(v, A_i) and the achieving source ---------------------
        self.pivot_dist = np.full((k + 1, n), np.inf)
        self.pivot = np.full((k + 1, n), -1, dtype=np.int64)
        self.pivot_dist[0] = 0.0
        self.pivot[0] = np.arange(n)
        for i in range(1, k):
            ai = levels[i]
            if ai.size == 0 or mat is None:
                continue
            dist, _, sources = csgraph.dijkstra(
                mat, directed=False, indices=ai, min_only=True,
                return_predecessors=True,
            )
            self.pivot_dist[i] = dist
            self.pivot[i] = sources
        # Level k is empty: d(v, A_k) = inf (already initialized).

        # --- bunches via the level-batched array builder --------------------
        self.bunch_indptr, self.bunch_centers, self.bunch_dists = (
            build_bunches_batched(g, levels, self.pivot_dist)
        )
        # Global membership keys (vertex * n + center, ascending): one
        # searchsorted answers "is w in B(v)" for any batch of queries.
        self._bunch_keys = (
            self.bunch_centers
            + np.repeat(np.arange(n, dtype=np.int64), np.diff(self.bunch_indptr))
            * np.int64(n)
        )
        self._bunch_dicts: list[dict[int, float]] | None = None

    # ------------------------------------------------------------------
    @classmethod
    def from_arrays(
        cls,
        g: WeightedGraph,
        k: int,
        levels: list[np.ndarray],
        pivot: np.ndarray,
        pivot_dist: np.ndarray,
        bunch_indptr: np.ndarray,
        bunch_centers: np.ndarray,
        bunch_dists: np.ndarray,
    ) -> "DistanceSketch":
        """Rebuild a sketch from persisted state without recomputation.

        This is the persistence path (:mod:`repro.service.store`): the
        hierarchy sampling, pivot Dijkstras and bunch construction ran
        once, and the saved arrays are everything the query walk touches —
        a reloaded sketch answers :meth:`query`/:meth:`query_many`
        bit-identically to the freshly built one.

        Index arrays that arrive as int32 (downcast store artifacts) are
        kept int32, and already-correct dtypes are adopted without a copy —
        memmap-backed artifact views stay memmaps.  The membership keys
        are always computed in int64: ``v * n + center`` overflows int32
        for every ``n >= 2**15.5``.
        """
        if pivot.shape != (k + 1, g.n) or pivot_dist.shape != (k + 1, g.n):
            raise ValueError("pivot arrays must have shape (k + 1, n)")
        if bunch_indptr.shape != (g.n + 1,):
            raise ValueError("bunch_indptr must have shape (n + 1,)")
        if bunch_centers.shape != bunch_dists.shape:
            raise ValueError("bunch_centers and bunch_dists must be parallel")

        def _idx(arr):
            arr = np.asarray(arr)
            if arr.dtype in (np.int32, np.int64):
                return arr
            return arr.astype(np.int64, copy=False)

        self = cls.__new__(cls)
        self.g = g
        self.k = int(k)
        self.levels = [_idx(lv) for lv in levels]
        self.pivot = _idx(pivot)
        self.pivot_dist = np.asarray(pivot_dist).astype(np.float64, copy=False)
        self.bunch_indptr = _idx(bunch_indptr)
        self.bunch_centers = _idx(bunch_centers)
        self.bunch_dists = np.asarray(bunch_dists).astype(np.float64, copy=False)
        self._bunch_keys = (
            self.bunch_centers.astype(np.int64, copy=False)
            + np.repeat(np.arange(g.n, dtype=np.int64), np.diff(self.bunch_indptr))
            * np.int64(g.n)
        )
        self._bunch_dicts = None
        return self

    @property
    def bunch(self) -> list[dict[int, float]]:
        """Dict-shaped compatibility view of the CSR bunch arrays.

        Materialized lazily; the query path never touches it.
        """
        if self._bunch_dicts is None:
            self._bunch_dicts = [
                dict(
                    zip(
                        self.bunch_centers[a:b].tolist(),
                        self.bunch_dists[a:b].tolist(),
                    )
                )
                for a, b in zip(self.bunch_indptr[:-1], self.bunch_indptr[1:])
            ]
        return self._bunch_dicts

    @property
    def size_words(self) -> int:
        """Total sketch size: bunch entries plus pivot tables."""
        return int(self.bunch_centers.size) + 2 * (self.k + 1) * self.g.n

    def expected_size_bound(self, constant: float = 8.0) -> float:
        """The ``O(k n^{1+1/k})`` guarantee with an explicit constant."""
        return constant * self.k * float(self.g.n) ** (1.0 + 1.0 / self.k)

    def _bunch_lookup(self, v: int, w: int) -> float:
        """``d(v, w)`` if ``w ∈ B(v)`` else ``nan`` (one searchsorted)."""
        key = v * self.g.n + w
        pos = int(np.searchsorted(self._bunch_keys, key))
        if pos < self._bunch_keys.size and self._bunch_keys[pos] == key:
            return float(self.bunch_dists[pos])
        return math.nan

    def query(self, u: int, v: int) -> float:
        """Approximate ``d(u, v)`` with stretch at most ``2k - 1``.

        The classic bidirectional pivot walk: at most ``k - 1`` swaps.
        """
        n = self.g.n
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError("vertex out of range")
        if u == v:
            return 0.0
        w = u
        i = 0
        du_w = 0.0
        while True:
            hit = self._bunch_lookup(v, w)
            if not math.isnan(hit):
                return du_w + hit
            i += 1
            if i >= self.k:
                return math.inf
            u, v = v, u
            w = int(self.pivot[i][u])
            du_w = float(self.pivot_dist[i][u])
            if w < 0 or not math.isfinite(du_w):
                return math.inf

    def query_many(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query`: the pivot walk advances for *all* pairs
        simultaneously, with membership tests batched through one
        ``searchsorted`` against the global bunch-key array per round."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return np.zeros(0)
        n = self.g.n
        u = pairs[:, 0].copy()
        v = pairs[:, 1].copy()
        if u.size and (
            min(u.min(), v.min()) < 0 or max(u.max(), v.max()) >= n
        ):
            raise ValueError("vertex out of range")
        out = np.full(u.shape, np.inf)
        active = u != v
        out[~active] = 0.0
        w = u.copy()
        du_w = np.zeros(u.shape)
        keys = self._bunch_keys
        for i in range(self.k):
            if not active.any():
                break
            if i > 0:
                u[active], v[active] = v[active], u[active]
                w[active] = self.pivot[i][u[active]]
                du_w[active] = self.pivot_dist[i][u[active]]
                dead = active & ((w < 0) | ~np.isfinite(du_w))
                active &= ~dead  # stays inf
            idx = np.flatnonzero(active)
            if idx.size == 0:
                break
            qkey = v[idx] * np.int64(n) + w[idx]
            hit, pos = sorted_lookup(keys, qkey)
            done = idx[hit]
            out[done] = du_w[done] + self.bunch_dists[pos[hit]]
            active[done] = False
        return out


def sketch_on_spanner(
    g: WeightedGraph,
    spanner: SpannerResult | WeightedGraph,
    k: int,
    *,
    rng=None,
) -> tuple[DistanceSketch, dict]:
    """Preprocess a Thorup–Zwick sketch on a spanner of ``g`` ([DN19]).

    Returns the sketch (built on the spanner, so queries answer with
    stretch ``(2k-1) · spanner_stretch`` w.r.t. ``g``) and an accounting
    dict: edges touched by preprocessing on the spanner vs. on ``g`` — the
    resource the spanner trades accuracy for.
    """
    h = spanner.subgraph(g) if isinstance(spanner, SpannerResult) else spanner
    if h.n != g.n:
        raise ValueError("spanner must span g's vertex set")
    sk = DistanceSketch(h, k, rng=rng)
    accounting = {
        "edges_in_g": g.m,
        "edges_in_spanner": h.m,
        "preprocessing_edge_ratio": h.m / max(g.m, 1),
        "sketch_words": sk.size_words,
    }
    return sk, accounting
