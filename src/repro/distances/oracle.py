"""Spanner-based approximate distance oracles (Section 7).

The paper's APSP scheme is: build a near-linear-size spanner (``k = log n``,
``t = log log n`` ⇒ size ``O(n log log n)``, stretch ``log^{1+o(1)} n``),
ship it to one machine, and answer every distance query locally on the
spanner.  :class:`SpannerDistanceOracle` is that "one machine": it holds the
spanner and answers queries with Dijkstra runs (cached per source).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csgraph

from ..core import membudget
from ..core.cache import LRURowCache, answer_pairs_cached
from ..core.general_tradeoff import general_tradeoff
from ..core.params import apsp_parameters, coerce_rng, stretch_bound
from ..core.results import SpannerResult
from ..graphs.distances import batched_sssp, pairwise_distances
from ..graphs.graph import WeightedGraph

__all__ = ["SpannerDistanceOracle", "ApproximationReport", "measure_approximation"]


@dataclass(frozen=True)
class ApproximationReport:
    """Observed quality of the oracle against exact distances."""

    max_ratio: float
    mean_ratio: float
    num_pairs: int
    stretch_bound: float

    @property
    def within_bound(self) -> bool:
        return self.max_ratio <= self.stretch_bound + 1e-9


class SpannerDistanceOracle:
    """All-pairs approximate distances via a collected spanner.

    Parameters
    ----------
    g:
        The input weighted graph.
    k, t:
        Spanner parameters; default to the paper's APSP setting
        ``k = log2 n``, ``t = log2 log2 n`` (Section 7).
    rng:
        Seed or generator for the spanner construction.
    cache_rows:
        Bound on the per-source distance-row cache.  Rows are evicted
        least-recently-used (see :class:`~repro.core.cache.LRURowCache`),
        so hot sources survive arbitrarily many distinct cold sources —
        the seed's wholesale ``clear()`` eviction is gone.

    Examples
    --------
    >>> from repro.graphs import erdos_renyi
    >>> g = erdos_renyi(256, 0.1, weights="uniform", rng=0)
    >>> oracle = SpannerDistanceOracle(g, rng=0)
    >>> d = oracle.query(0, 5)          # approximate distance
    >>> oracle.spanner.m <= g.m
    True
    """

    #: Default bound on cached per-source distance rows.
    DEFAULT_CACHE_ROWS = 4096

    def __init__(
        self,
        g: WeightedGraph,
        k: int | None = None,
        t: int | None = None,
        *,
        rng=None,
        cache_rows: int = DEFAULT_CACHE_ROWS,
    ) -> None:
        if k is None or t is None:
            dk, dt = apsp_parameters(g.n)
            k = k if k is not None else dk
            t = t if t is not None else dt
        self.g = g
        self.k = k
        self.t = t
        self.result: SpannerResult | None = general_tradeoff(g, k, t, rng=rng)
        self.t_effective: int = self.result.extra.get("t_effective", t)
        self.spanner: WeightedGraph = self.result.subgraph(g)
        self._matrix = self.spanner.to_scipy() if self.spanner.m else None
        self._cache = LRURowCache(cache_rows)

    @classmethod
    def from_spanner(
        cls,
        spanner: WeightedGraph,
        k: int,
        t: int | None,
        *,
        t_effective: int | None = None,
        g: WeightedGraph | None = None,
        cache_rows: int = DEFAULT_CACHE_ROWS,
    ) -> "SpannerDistanceOracle":
        """Rebuild an oracle around an *already constructed* spanner.

        This is the persistence path: the expensive ``general_tradeoff``
        construction ran once (possibly in another process, see
        :mod:`repro.service.store`), and the saved spanner graph is all a
        serving replica needs — queries are answered on the spanner, so a
        reloaded oracle is bit-identical to the freshly built one.  The
        ``result`` instrumentation is ``None`` on reloaded oracles.
        """
        self = cls.__new__(cls)
        self.g = g if g is not None else spanner
        self.k = k
        self.t = t
        self.result = None
        self.t_effective = t_effective if t_effective is not None else t
        self.spanner = spanner
        self._matrix = spanner.to_scipy() if spanner.m else None
        self._cache = LRURowCache(cache_rows)
        return self

    @property
    def guaranteed_stretch(self) -> float:
        """The paper's stretch bound ``2 k^s`` for this (k, t)."""
        return stretch_bound(self.k, self.t_effective)

    @property
    def cache_stats(self) -> dict:
        """Row-cache effectiveness counters (hits/misses/evictions)."""
        return self._cache.stats()

    def _solve_row(self, source: int) -> np.ndarray:
        if self._matrix is None:
            d = np.full(self.g.n, np.inf)
            d[source] = 0.0
            return d
        return csgraph.dijkstra(self._matrix, directed=False, indices=source)

    def distances_from(self, source: int) -> np.ndarray:
        """Approximate distances from ``source`` to all vertices."""
        if not 0 <= source < self.g.n:
            raise ValueError(f"source {source} out of range")
        row = self._cache.get(source)
        if row is None:
            row = self._solve_row(source)
            self._cache.put(source, row)
        return row

    def query(self, u: int, v: int) -> float:
        """Approximate distance between ``u`` and ``v``."""
        if not 0 <= v < self.g.n:
            raise ValueError(f"vertex {v} out of range")
        return float(self.distances_from(u)[v])

    def query_many(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query` over an ``(r, 2)`` pair array.

        Sources missing from the row cache are solved with *one* batched
        Dijkstra on the spanner instead of a Python loop of single-source
        runs; the rows land in the cache for later single queries.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return np.zeros(0)
        if pairs.min() < 0 or pairs.max() >= self.g.n:
            raise ValueError("vertex out of range")
        # The grouped planning (one batched solve over the distinct missing
        # sources, every row cached under the LRU bound) is shared with the
        # serving engine — it lives next to the cache itself.
        return answer_pairs_cached(
            self._cache, pairs, lambda missing: batched_sssp(self.spanner, missing)
        )

    def all_pairs(self, *, allow_dense: bool = False) -> np.ndarray:
        """Full approximate APSP matrix (``O(n^2)`` memory).

        The dense matrix is fine at benchmark scale but a multi-terabyte
        allocation at n≥10⁶, so when its footprint exceeds the resolved
        memory budget (:mod:`repro.core.membudget`) this raises unless the
        caller opts in with ``allow_dense=True``.  Bounded-memory
        alternatives: :meth:`query_many` for selected pairs,
        :meth:`distances_from` for whole rows.
        """
        need = 8 * self.g.n * self.g.n
        if not allow_dense and need > membudget.resolve_budget():
            raise MemoryError(
                f"all_pairs would materialize a ({self.g.n}, {self.g.n}) "
                f"float64 matrix ({need / 2**30:.1f} GiB), above the "
                f"{membudget.resolve_budget() / 2**30:.1f} GiB memory budget. "
                "Pass allow_dense=True to force it, raise "
                f"{membudget.ENV_VAR}, or use query_many/distances_from "
                "for bounded-memory answers."
            )
        membudget.note("distances.oracle.all_pairs", need)
        if self._matrix is None:
            d = np.full((self.g.n, self.g.n), np.inf)
            np.fill_diagonal(d, 0.0)
            return d
        return csgraph.dijkstra(self._matrix, directed=False)


def measure_approximation(
    oracle: SpannerDistanceOracle,
    *,
    num_pairs: int = 512,
    rng=None,
) -> ApproximationReport:
    """Compare oracle answers with exact distances on random connected pairs."""
    rng = coerce_rng(rng)
    n = oracle.g.n
    if n < 2:
        return ApproximationReport(1.0, 1.0, 0, oracle.guaranteed_stretch)
    us = rng.integers(0, n, size=num_pairs)
    vs = rng.integers(0, n, size=num_pairs)
    keep = us != vs
    pairs = np.stack([us[keep], vs[keep]], axis=1)
    exact = pairwise_distances(oracle.g, pairs)
    approx = oracle.query_many(pairs)
    mask = np.isfinite(exact) & (exact > 0)
    if not mask.any():
        return ApproximationReport(1.0, 1.0, 0, oracle.guaranteed_stretch)
    ratios = approx[mask] / exact[mask]
    return ApproximationReport(
        max_ratio=max(float(ratios.max()), 1.0),
        mean_ratio=max(float(ratios.mean()), 1.0),
        num_pairs=int(mask.sum()),
        stretch_bound=oracle.guaranteed_stretch,
    )
