"""Approximate single-source shortest paths via spanners.

SSSP is the special case of the paper's APSP corollary that only needs one
source row; we expose it separately because the introduction frames the
open problem in terms of SSSP and the benches report its quality
independently.
"""

from __future__ import annotations

import numpy as np

from ..core.general_tradeoff import general_tradeoff
from ..core.params import apsp_parameters
from ..graphs.distances import sssp as exact_sssp
from ..graphs.graph import WeightedGraph

__all__ = ["approximate_sssp", "sssp_quality"]


def approximate_sssp(
    g: WeightedGraph,
    source: int,
    *,
    k: int | None = None,
    t: int | None = None,
    rng=None,
) -> np.ndarray:
    """Distances from ``source`` measured on a freshly built spanner.

    Uses the Section 7 parameters by default.  For repeated queries build a
    :class:`repro.distances.oracle.SpannerDistanceOracle` instead — this
    helper rebuilds the spanner every call.
    """
    if k is None or t is None:
        dk, dt = apsp_parameters(g.n)
        k = k if k is not None else dk
        t = t if t is not None else dt
    res = general_tradeoff(g, k, t, rng=rng)
    return exact_sssp(res.subgraph(g), source)


def sssp_quality(
    g: WeightedGraph, approx: np.ndarray, source: int
) -> tuple[float, float]:
    """``(max_ratio, mean_ratio)`` of approximate vs exact SSSP distances."""
    exact = exact_sssp(g, source)
    mask = np.isfinite(exact) & (exact > 0)
    if not mask.any():
        return 1.0, 1.0
    ratios = approx[mask] / exact[mask]
    return max(float(ratios.max()), 1.0), max(float(ratios.mean()), 1.0)
