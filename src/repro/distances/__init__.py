"""Spanner-based distance approximation (Section 7 / Corollary 1.4) and
Thorup-Zwick distance sketches (the [DN19] application)."""

from .oracle import ApproximationReport, SpannerDistanceOracle, measure_approximation
from .sketches import DistanceSketch, sketch_on_spanner
from .sssp import approximate_sssp, sssp_quality

__all__ = [
    "SpannerDistanceOracle",
    "ApproximationReport",
    "measure_approximation",
    "approximate_sssp",
    "sssp_quality",
    "DistanceSketch",
    "sketch_on_spanner",
]
