"""Concurrent micro-batching query server over :class:`QueryEngine`.

``repro serve --socket HOST:PORT`` runs :class:`QueryServer`: an asyncio
socket server speaking a newline-delimited JSON protocol.  The perf
mechanism is a **micro-batching window**: concurrent in-flight ``query``
requests are coalesced — flushed when ``max_batch`` requests are pending
or when the ``window_s`` deadline expires, whichever comes first — into a
*single* :meth:`QueryEngine.query_many` call, so the batched
``batched_sssp`` planning, per-source dedup, and row caching amortize
across clients instead of degrading to one Dijkstra per request.  While a
batch is being solved (in a dedicated solver thread, so the event loop
keeps accepting), new arrivals accumulate; the flush loop picks them up
the moment the solve returns — the window deadline only matters when the
solver is idle, which is the classic adaptive micro-batching discipline.

Around the batcher:

* **Admission control** — at most ``max_pending`` requests may be queued;
  excess requests get an explicit ``{"error": "overloaded"}`` reply
  instead of unbounded queueing latency collapse.
* **Latency SLOs** — every request's queue+solve+reply latency is
  captured; the ``stats`` protocol verb (and :meth:`QueryServer.stats`)
  reports p50/p95/p99/mean/max milliseconds, qps, and the batch-size
  histogram, alongside :meth:`QueryEngine.stats` as the single source of
  truth for rows/batch accounting.
* **Graceful drain** — :meth:`aclose` stops accepting, rejects new
  queries with ``{"error": "draining"}``, completes every in-flight
  batch, closes connections, and releases the engine (worker pool +
  shared-memory segments) via the existing ``close()`` lifecycle.

Protocol (one JSON object per line, ``id`` echoed back verbatim):

.. code-block:: text

    -> {"op": "query", "u": 3, "v": 9, "id": 1}
    <- {"id": 1, "d": 2.75}
    -> {"op": "query", "u": 3, "v": 9, "backend": "sketch", "id": 2}
    <- {"id": 2, "d": 3.5}
    -> {"op": "stats", "id": 3}
    <- {"id": 3, "stats": {...latency_ms, qps, backend_served, engine...}}
    -> {"op": "ping", "id": 4}
    <- {"id": 4, "pong": true}

The optional ``"backend"`` field pins one query to a fixed answer path
(``exact``/``oracle``/``sketch``/``tiered``) when the engine serves a
bundle artifact; omitting it leaves routing to the engine's planner.
Requests naming a backend the engine does not serve are rejected with an
error reply.  The micro-batcher groups each flushed window by backend —
one ``query_many`` per group — and the ``stats`` verb reports
per-backend served counters (``backend_served``) next to the engine's
planner routing stats.

Disconnected pairs answer ``{"d": null}`` (JSON has no ``Infinity``).
Malformed lines never kill the connection: they get
``{"error": ..., "line": N}`` replies, with ``N`` the 1-based line number
on that connection.

The legacy ``repro serve`` stdin/stdout pipe mode shares
:func:`serve_pipe`, which applies the same malformed-line hardening.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

import numpy as np

__all__ = [
    "QueryServer",
    "AsyncClient",
    "run_server",
    "serve_pipe",
    "parse_hostport",
    "latency_summary",
]


def latency_summary(latencies_s) -> dict:
    """p50/p95/p99/mean/max milliseconds over per-request latencies."""
    if not len(latencies_s):
        return {"count": 0}
    lat = np.asarray(latencies_s, dtype=np.float64) * 1e3
    p50, p95, p99 = np.percentile(lat, [50.0, 95.0, 99.0])
    return {
        "count": int(lat.size),
        "p50_ms": round(float(p50), 3),
        "p95_ms": round(float(p95), 3),
        "p99_ms": round(float(p99), 3),
        "mean_ms": round(float(lat.mean()), 3),
        "max_ms": round(float(lat.max()), 3),
    }


def parse_hostport(text: str, *, default_host: str = "127.0.0.1") -> tuple[str, int]:
    """``HOST:PORT``, ``[V6]:PORT`` or bare ``PORT`` -> ``(host, port)``."""
    host, sep, port_s = text.rpartition(":")
    if not sep:
        host, port_s = default_host, text
    host = host or default_host
    # Bracketed IPv6 literals: the brackets are address syntax for the
    # HOST:PORT split only — asyncio.start_server wants the bare address
    # ("[::1]" is not a valid bind host).
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1] or default_host
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(f"bad --socket {text!r}: port {port_s!r} is not an integer")
    if not 0 <= port <= 65535:
        raise ValueError(f"bad --socket {text!r}: port out of range")
    return host, port


@dataclass
class _Request:
    """One admitted query, waiting in the micro-batch window."""

    u: int
    v: int
    rid: object
    writer: asyncio.StreamWriter
    t0: float  # perf_counter at admission; latency runs to reply write
    backend: str | None = None  # pinned answer path, None = planner routes


def _encode(payload: dict) -> bytes:
    return json.dumps(payload, separators=(",", ":")).encode() + b"\n"


class QueryServer:
    """Asyncio socket server micro-batching queries into ``query_many``.

    Parameters
    ----------
    engine:
        The :class:`~repro.service.engine.QueryEngine` to serve.  The
        server owns its lifecycle from :meth:`start` on — :meth:`aclose`
        calls ``engine.close()``.
    host, port:
        Bind address; ``port=0`` picks a free port (read ``self.port``
        after :meth:`start`).
    max_batch:
        Flush immediately once this many requests are pending; a larger
        backlog is split into consecutive ``max_batch``-sized solves.
    window_s:
        Deadline for a partial batch when the solver is idle: the first
        request entering an empty window starts the timer, and whatever
        has coalesced when it fires is flushed (even a single request).
    max_pending:
        Admission bound on queued requests; beyond it queries are
        rejected with ``{"error": "overloaded"}``.
    micro_batch:
        ``False`` serves each request with one ``engine.query`` call
        dispatched serially — the naive one-request-per-query server the
        open-loop benchmark duels against.
    """

    def __init__(
        self,
        engine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 256,
        window_s: float = 0.002,
        max_pending: int = 8192,
        micro_batch: bool = True,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        self.engine = engine
        self.host = host
        self.port = port
        self.max_batch = int(max_batch)
        self.window_s = float(window_s)
        self.max_pending = int(max_pending)
        self.micro_batch = bool(micro_batch)

        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        # One solver thread: the engine is touched by exactly one thread,
        # and the event loop stays free to admit + coalesce the next
        # window while the current batch solves.
        self._exec = ThreadPoolExecutor(max_workers=1, thread_name_prefix="qsolve")
        self._pending: deque[_Request] = deque()
        self._flush_task: asyncio.Task | None = None
        self._timer: asyncio.TimerHandle | None = None
        self._drain_tasks: set[asyncio.Task] = set()
        self._handlers: set[asyncio.Task] = set()
        self._conns: set[asyncio.StreamWriter] = set()
        self._draining = False
        self._closed = False
        self._t0 = time.perf_counter()

        # SLO accounting (reset_stats() clears these, not the engine's).
        self.served = 0
        self.rejected = 0
        self.protocol_errors = 0
        self.batches_flushed = 0
        self.latencies_s: list[float] = []
        self.batch_size_hist: dict[int, int] = {}
        self.backend_served: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._t0 = time.perf_counter()

    async def aclose(self) -> None:
        """Graceful drain: finish in-flight batches, then release everything.

        Stops accepting, rejects queries arriving mid-drain with
        ``{"error": "draining"}``, awaits the flush loop over whatever is
        queued, closes client connections, shuts the solver thread down,
        and closes the engine (worker pool + shm segments).  Idempotent.
        """
        if self._closed:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._pending and (self._flush_task is None or self._flush_task.done()):
            self._flush_task = asyncio.ensure_future(self._flush())
        if self._flush_task is not None:
            await self._flush_task
        if self._drain_tasks:
            await asyncio.gather(*self._drain_tasks, return_exceptions=True)
        for writer in list(self._conns):
            writer.close()
        self._conns.clear()
        if self._handlers:
            # Closing the transports EOFs the read loops; wait for the
            # handler tasks so loop shutdown never cancels them mid-read.
            await asyncio.gather(*self._handlers, return_exceptions=True)
        self._exec.shutdown(wait=True)
        self.engine.close()
        self._closed = True

    async def __aenter__(self) -> "QueryServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    def reset_stats(self) -> None:
        """Zero the SLO counters (benchmarks call this after warmup)."""
        self.served = 0
        self.rejected = 0
        self.protocol_errors = 0
        self.batches_flushed = 0
        self.latencies_s = []
        self.batch_size_hist = {}
        self.backend_served = {}
        self._t0 = time.perf_counter()

    def stats(self) -> dict:
        """Server SLO numbers + the engine's accounting (JSON-ready)."""
        uptime = time.perf_counter() - self._t0
        return {
            "mode": "micro_batch" if self.micro_batch else "serial",
            "max_batch": self.max_batch,
            "window_ms": round(self.window_s * 1e3, 3),
            "max_pending": self.max_pending,
            "served": self.served,
            "rejected": self.rejected,
            "protocol_errors": self.protocol_errors,
            "batches_flushed": self.batches_flushed,
            "pending": len(self._pending),
            "uptime_s": round(uptime, 3),
            "qps": round(self.served / uptime, 1) if uptime > 0 else 0.0,
            "latency_ms": latency_summary(self.latencies_s),
            "batch_size_hist": {
                str(k): v for k, v in sorted(self.batch_size_hist.items())
            },
            "backend_served": {
                k: self.backend_served[k] for k in sorted(self.backend_served)
            },
            "draining": self._draining,
            "engine": self.engine.stats(),
        }

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        task = asyncio.current_task()
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)
        self._conns.add(writer)
        lineno = 0
        try:
            while True:
                raw = await reader.readline()
                if not raw:
                    break
                lineno += 1
                if not raw.strip():
                    continue
                await self._dispatch(raw, lineno, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, raw: bytes, lineno: int, writer) -> None:
        try:
            msg = json.loads(raw)
            if not isinstance(msg, dict):
                raise ValueError(f"expected a JSON object, got {type(msg).__name__}")
        except ValueError as exc:
            await self._reply_error(writer, None, lineno, f"bad JSON: {exc}")
            return
        rid = msg.get("id")
        op = msg.get("op", "query")
        if op == "query":
            err = self._admit(msg, rid, writer)
            if err is not None:
                await self._reply_error(writer, rid, lineno, err)
            return
        if op == "stats":
            writer.write(_encode({"id": rid, "stats": self.stats()}))
            await self._drain_writer(writer)
            return
        if op == "ping":
            writer.write(_encode({"id": rid, "pong": True}))
            await self._drain_writer(writer)
            return
        await self._reply_error(writer, rid, lineno, f"unknown op {op!r}")

    def _admit(self, msg: dict, rid, writer) -> str | None:
        """Validate + enqueue one query; returns an error string to reject."""
        u, v = msg.get("u"), msg.get("v")
        if not isinstance(u, int) or not isinstance(v, int) or isinstance(u, bool) or isinstance(v, bool):
            return f"u and v must be integers, got u={u!r} v={v!r}"
        if not (0 <= u < self.engine.n and 0 <= v < self.engine.n):
            return f"vertex out of range for n={self.engine.n}: u={u} v={v}"
        backend = msg.get("backend")
        if backend is not None:
            if not isinstance(backend, str):
                return f"backend must be a string, got {backend!r}"
            have = self.engine.backends() if hasattr(self.engine, "backends") else ()
            if backend not in have:
                if not have:
                    return (
                        "this server answers from a single fixed backend; "
                        "serve a 'bundle' artifact to route per-query backends"
                    )
                return f"unknown backend {backend!r} (have: {', '.join(have)})"
        if self._draining:
            self.rejected += 1
            return "draining"
        if len(self._pending) >= self.max_pending:
            self.rejected += 1
            return "overloaded"
        self._pending.append(_Request(u, v, rid, writer, time.perf_counter(), backend))
        self._arm()
        return None

    async def _reply_error(self, writer, rid, lineno: int, error: str) -> None:
        self.protocol_errors += 1
        payload = {"error": error, "line": lineno}
        if rid is not None:
            payload["id"] = rid
        writer.write(_encode(payload))
        await self._drain_writer(writer)

    @staticmethod
    async def _drain_writer(writer) -> None:
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass

    # ------------------------------------------------------------------
    # The micro-batch window
    # ------------------------------------------------------------------
    def _arm(self) -> None:
        """Start a flush (batch full) or the window timer (first arrival)."""
        if self._flush_task is not None and not self._flush_task.done():
            return  # the running flush loop picks pending up when it returns
        if not self.micro_batch or len(self._pending) >= self.max_batch:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            self._flush_task = asyncio.ensure_future(self._flush())
        elif self._timer is None:
            self._timer = self._loop.call_later(self.window_s, self._window_expired)

    def _window_expired(self) -> None:
        self._timer = None
        # The window can legitimately expire over an empty queue (a
        # max-batch flush already consumed it): a no-op, not an error.
        if self._pending and (self._flush_task is None or self._flush_task.done()):
            self._flush_task = asyncio.ensure_future(self._flush())

    async def _flush(self) -> None:
        """Drain the queue in ``max_batch``-sized solves.

        Requests arriving while a solve is in the executor are picked up
        by the next loop iteration immediately — under load the window
        deadline never waits, batches just track the backlog.  Windows
        mixing pinned backends split into one ``query_many`` per backend
        (planner-routed requests form their own group), so a pin never
        changes another client's answer path.
        """
        while self._pending:
            if self.micro_batch:
                take = min(self.max_batch, len(self._pending))
                batch = [self._pending.popleft() for _ in range(take)]
                groups: dict[str | None, list[_Request]] = {}
                for req in batch:
                    groups.setdefault(req.backend, []).append(req)
                for backend, group in groups.items():
                    pairs = np.array([(r.u, r.v) for r in group], dtype=np.int64)
                    # Pass the backend kwarg only when pinned, so engine
                    # wrappers unaware of multi-backend routing keep working.
                    call = (
                        partial(self.engine.query_many, pairs)
                        if backend is None
                        else partial(self.engine.query_many, pairs, backend=backend)
                    )
                    answers = await self._loop.run_in_executor(self._exec, call)
                    self._deliver(group, answers, backend=backend)
            else:
                # The naive duel baseline: one engine.query dispatch and
                # one write+drain per request, strictly serialized.
                req = self._pending.popleft()
                call = (
                    partial(self.engine.query, req.u, req.v)
                    if req.backend is None
                    else partial(
                        self.engine.query, req.u, req.v, backend=req.backend
                    )
                )
                d = await self._loop.run_in_executor(self._exec, call)
                self._deliver([req], [d], backend=req.backend)
                await self._drain_writer(req.writer)
        self._flush_task = None

    def _deliver(
        self, batch: list[_Request], answers, *, backend: str | None = None
    ) -> None:
        now = time.perf_counter()
        self.batches_flushed += 1
        self.batch_size_hist[len(batch)] = self.batch_size_hist.get(len(batch), 0) + 1
        label = backend or "auto"
        self.backend_served[label] = self.backend_served.get(label, 0) + len(batch)
        by_writer: dict[asyncio.StreamWriter, list[bytes]] = {}
        for req, d in zip(batch, answers):
            d = float(d)
            payload = {"id": req.rid, "d": d if math.isfinite(d) else None}
            by_writer.setdefault(req.writer, []).append(_encode(payload))
            self.latencies_s.append(now - req.t0)
        self.served += len(batch)
        for writer, lines in by_writer.items():
            if not writer.is_closing():
                writer.write(b"".join(lines))
        if self.micro_batch:
            for writer in by_writer:
                if not writer.is_closing():
                    task = self._loop.create_task(self._drain_writer(writer))
                    self._drain_tasks.add(task)
                    task.add_done_callback(self._drain_tasks.discard)


class AsyncClient:
    """Pipelined NDJSON client for :class:`QueryServer` (tests + load gen).

    :meth:`send` writes a request without awaiting, returning a future
    that resolves to ``(reply_dict, t_recv)`` with ``t_recv`` stamped the
    moment the reader task parsed the reply — open-loop load generators
    fire sends on a schedule and measure latency from the *scheduled*
    time to ``t_recv``.  :meth:`request` is the await-one-reply wrapper.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0
        self._waiters: dict[object, asyncio.Future] = {}
        self.unmatched: list[dict] = []
        self._read_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                raw = await self._reader.readline()
                if not raw:
                    break
                t_recv = time.perf_counter()
                msg = json.loads(raw)
                fut = self._waiters.pop(msg.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result((msg, t_recv))
                else:
                    self.unmatched.append(msg)
        except (ConnectionResetError, asyncio.CancelledError):
            pass
        finally:
            for fut in self._waiters.values():
                if not fut.done():
                    fut.set_exception(ConnectionError("server closed the connection"))
            self._waiters.clear()

    def send(self, payload: dict) -> asyncio.Future:
        """Fire one request (no drain await); future -> (reply, t_recv)."""
        rid = self._next_id
        self._next_id += 1
        fut = asyncio.get_running_loop().create_future()
        self._waiters[rid] = fut
        self._writer.write(_encode({"id": rid, **payload}))
        return fut

    def send_raw(self, line: bytes) -> None:
        """Write an arbitrary (possibly malformed) line — protocol tests."""
        self._writer.write(line)

    async def request(self, payload: dict) -> dict:
        fut = self.send(payload)
        await self._writer.drain()
        msg, _ = await fut
        return msg

    async def query(
        self, u: int, v: int, *, backend: str | None = None
    ) -> float | None:
        payload = {"op": "query", "u": u, "v": v}
        if backend is not None:
            payload["backend"] = backend
        reply = await self.request(payload)
        if "error" in reply:
            raise RuntimeError(reply["error"])
        return reply["d"]

    async def stats(self) -> dict:
        return (await self.request({"op": "stats"}))["stats"]

    async def close(self) -> None:
        self._read_task.cancel()
        try:
            await self._read_task
        except asyncio.CancelledError:
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def run_server(
    engine,
    *,
    host: str,
    port: int,
    max_batch: int = 256,
    window_s: float = 0.002,
    max_pending: int = 8192,
    announce=None,
) -> dict:
    """Run a :class:`QueryServer` until SIGINT/SIGTERM; returns final stats.

    ``announce(host, port)`` is called once the socket is bound (the CLI
    prints the address to stderr; tests grab the ephemeral port).
    """
    import signal

    async def _main() -> dict:
        server = QueryServer(
            engine,
            host=host,
            port=port,
            max_batch=max_batch,
            window_s=window_s,
            max_pending=max_pending,
        )
        await server.start()
        if announce is not None:
            announce(server.host, server.port)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await stop.wait()
        stats = server.stats()  # pre-drain snapshot keeps qps meaningful
        await server.aclose()
        stats["drained"] = True
        return stats

    return asyncio.run(_main())


def serve_pipe(engine, lines, out) -> dict:
    """The legacy ``repro serve`` pipe loop, hardened.

    Serves ``u v`` pairs from the ``lines`` iterable to ``out``: one
    distance per valid line.  Malformed lines — wrong arity, non-integer
    tokens, out-of-range vertex ids, anything else a line can throw — get
    a line-numbered JSON error reply (``{"line": N, "error": ...}``) on
    ``out`` and the loop keeps serving; nothing kills the server.
    Returns ``{"errors": N, "stats": engine.stats()}``.
    """
    errors = 0
    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(f"expected 'u v', got {line!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError:
                raise ValueError(f"non-integer vertex in {line!r}") from None
            d = engine.query(u, v)
        except Exception as exc:  # the pipe must survive any bad line
            errors += 1
            print(
                json.dumps({"line": lineno, "error": str(exc)}, sort_keys=True),
                file=out,
                flush=True,
            )
            continue
        print(d, file=out, flush=True)
    return {"errors": errors, "stats": engine.stats()}
