"""The serving-side query engine: cache, batch, shard.

:class:`QueryEngine` answers approximate-distance queries on a *built*
structure — a spanner graph (optionally via a
:class:`~repro.distances.oracle.SpannerDistanceOracle`) or a
:class:`~repro.distances.sketches.DistanceSketch` — and owns the three
serving concerns the build-side objects should not:

* **Caching** — per-source Dijkstra rows live in a bounded
  :class:`~repro.core.cache.LRURowCache`, so steady-state traffic with a
  hot source set never recomputes hot rows (the seed's ``clear()``
  eviction thrash, fixed for both :meth:`query` and :meth:`query_many`).
* **Batched planning** — :meth:`query_many` groups pending pairs by
  source and dispatches *one* ``batched_sssp`` over the distinct missing
  sources, instead of a Dijkstra per pair.
* **Sharding** — with ``shards >= 2``, missing sources are partitioned
  across a persistent ``ProcessPoolExecutor``.  All workers *and* the
  parent read **one** physical copy of the spanner: the edge arrays and
  the scipy CSR live in a :class:`~repro.service.shm.SharedGraphBuffers`
  shared-memory segment, workers attach by name in the pool initializer
  and rebuild a zero-copy graph over the views.  Worker memory is
  therefore O(graph + ε) total, not O(shards × graph).  Rows come back to
  the parent's cache, so sharded and serial engines answer bit-identically
  — Dijkstra runs are independent per source.  :meth:`close` (or
  interpreter exit, via an atexit hook) unlinks the segment.

Sketch backends answer through the O(k) bidirectional pivot walk, which
is already vectorized and needs neither rows nor shards; the engine is a
uniform front end over both.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..core import membudget
from ..core.cache import LRURowCache, answer_pairs_cached
from ..distances.oracle import SpannerDistanceOracle
from ..distances.sketches import DistanceSketch
from ..graphs.distances import batched_sssp
from ..graphs.graph import WeightedGraph
from .mem import process_memory
from .provider import PlannedProvider, PlanTarget, ProviderBundle, build_providers
from .shm import SharedGraphBuffers

__all__ = ["QueryEngine"]

# Worker-process state: a zero-copy graph over the attached shared-memory
# views — only the segment *name* crosses the process boundary.
_WORKER_GRAPH: WeightedGraph | None = None


def _init_worker(descriptor: dict) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = SharedGraphBuffers.attach(descriptor).graph()


def _worker_rows(sources: np.ndarray) -> np.ndarray:
    assert _WORKER_GRAPH is not None
    return batched_sssp(_WORKER_GRAPH, sources)


def _worker_memstats(settle_s: float) -> dict:
    """Memory snapshot of one worker; the sleep keeps probes from landing
    on the same (fast) worker twice."""
    time.sleep(settle_s)
    return process_memory()


class QueryEngine:
    """Serve distance queries from a built spanner, oracle, or sketch.

    Parameters
    ----------
    backend:
        A :class:`WeightedGraph` (the spanner queries run on), a built
        :class:`SpannerDistanceOracle` (its spanner is used), or a
        :class:`DistanceSketch`.
    cache_rows:
        LRU bound on cached per-source distance rows (row backends only).
    shards:
        ``0``/``1`` solves missing rows in-process; ``>= 2`` partitions
        them across that many worker processes.  Workers start lazily on
        the first sharded solve and persist until :meth:`close`.

    Examples
    --------
    >>> from repro.graphs import erdos_renyi
    >>> from repro.distances import SpannerDistanceOracle
    >>> g = erdos_renyi(128, 0.1, weights="uniform", rng=0)
    >>> engine = QueryEngine(SpannerDistanceOracle(g, k=3, t=2, rng=0))
    >>> engine.query(0, 7) >= 0.0
    True
    """

    def __init__(
        self,
        backend,
        *,
        cache_rows: int = SpannerDistanceOracle.DEFAULT_CACHE_ROWS,
        shards: int = 0,
        meta: dict | None = None,
        target: PlanTarget | None = None,
    ) -> None:
        self.sketch: DistanceSketch | None = None
        self.planner: PlannedProvider | None = None
        if isinstance(backend, ProviderBundle):
            # Multi-backend serving: the planner routes between the exact,
            # oracle, sketch and tiered providers.  The engine's (possibly
            # sharded, shared-memory) row solver is handed to the *oracle*
            # provider — the spanner is what the shm segment holds; exact
            # rows on the full input graph always solve in-process.
            self.graph = backend.spanner
            providers = build_providers(
                backend, cache_rows=cache_rows, oracle_solve_rows=self._solve_rows
            )
            self.planner = PlannedProvider(providers, target)
        elif isinstance(backend, DistanceSketch):
            self.sketch = backend
            self.graph = backend.g
        elif isinstance(backend, SpannerDistanceOracle):
            self.graph = backend.spanner
        elif isinstance(backend, WeightedGraph):
            self.graph = backend
        else:
            raise TypeError(
                f"backend must be a WeightedGraph, SpannerDistanceOracle, "
                f"DistanceSketch or ProviderBundle, got {type(backend).__name__}"
            )
        if target is not None and self.planner is None:
            raise ValueError(
                "a plan target needs a ProviderBundle backend (persist the "
                "artifact with kind='bundle' to serve all backends)"
            )
        if shards < 0:
            raise ValueError("shards must be >= 0")
        self.n = self.graph.n
        self.shards = int(shards)
        self.meta = dict(meta or {})
        self._cache = LRURowCache(cache_rows)
        self._pool: ProcessPoolExecutor | None = None
        self._shared: SharedGraphBuffers | None = None
        self.queries_served = 0
        self.rows_solved = 0
        self.batches = 0
        # Cumulative latency/batch accounting (the serving layer's SLO
        # numbers come from here, one source of truth): total wall time
        # inside query_many, total wall time inside row solves, rows
        # attributable to query_many calls, a pairs-per-call histogram,
        # and a bounded per-call log (pairs, rows, wall_s, solve_s).
        self.query_many_wall_s = 0.0
        self.solve_wall_s = 0.0
        self.batch_rows_solved = 0
        self._batch_pairs_hist: dict[int, int] = {}
        self.call_log: deque[dict] = deque(maxlen=1024)

    # ------------------------------------------------------------------
    # Construction from persisted artifacts
    # ------------------------------------------------------------------
    @classmethod
    def from_store(
        cls,
        store,
        key: str,
        *,
        cache_rows: int = SpannerDistanceOracle.DEFAULT_CACHE_ROWS,
        shards: int = 0,
        mmap: bool = True,
        target: PlanTarget | None = None,
    ) -> "QueryEngine":
        """Load an artifact (``oracle``, ``sketch`` or ``bundle``) and serve it.

        ``store`` is an :class:`~repro.service.store.ArtifactStore` or a
        path to one.  ``mmap=True`` (default) serves straight off memmap
        views of the artifact files; see :meth:`ArtifactStore.load`.
        ``target`` (bundle artifacts only) configures the planner; see
        :class:`~repro.service.provider.PlanTarget`.
        """
        from .store import ArtifactStore

        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        info = store.info(key)
        backend = store.load(key, mmap=mmap)
        meta = {"artifact_key": key, "artifact_kind": info.kind, **info.meta}
        return cls(
            backend, cache_rows=cache_rows, shards=shards, meta=meta, target=target
        )

    # ------------------------------------------------------------------
    # Row solving (cache + shards)
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            if self._shared is None:
                # Pack the graph (edge arrays + scipy CSR) into one shared
                # segment and re-point the serial path at the same views,
                # so parent + N workers together map one physical copy.
                self._shared = SharedGraphBuffers.create(self.graph)
                self.graph = self._shared.graph()
            self._pool = ProcessPoolExecutor(
                max_workers=self.shards,
                initializer=_init_worker,
                initargs=(self._shared.descriptor(),),
            )
        return self._pool

    def _solve_rows(self, missing: np.ndarray) -> np.ndarray:
        """Dense ``(len(missing), n)`` distance rows for the given sources."""
        self.rows_solved += int(missing.size)
        start = time.perf_counter()
        try:
            if self.shards >= 2 and missing.size >= 2:
                pool = self._ensure_pool()
                chunks = [
                    c for c in np.array_split(missing, min(self.shards, missing.size))
                    if c.size
                ]
                futures = [pool.submit(_worker_rows, chunk) for chunk in chunks]
                # np.array_split preserves order, so concatenation restores
                # the original source order.
                return np.concatenate([f.result() for f in futures], axis=0)
            return batched_sssp(self.graph, missing)
        finally:
            self.solve_wall_s += time.perf_counter() - start

    def _row(self, source: int) -> np.ndarray:
        row = self._cache.get(source)
        if row is None:
            row = self._solve_rows(np.asarray([source], dtype=np.int64))[0].copy()
            self._cache.put(source, row)
        return row

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def backends(self) -> tuple[str, ...]:
        """Names a per-query ``backend`` override may use (empty for
        single-backend engines)."""
        if self.planner is None:
            return ()
        return tuple(sorted(self.planner.providers))

    def _check_backend(self, backend: str | None) -> None:
        if backend is None:
            return
        if self.planner is None:
            raise ValueError(
                "this engine serves a single fixed backend; load a 'bundle' "
                "artifact to route per-query backends"
            )
        if backend not in self.planner.providers:
            raise ValueError(
                f"unknown backend {backend!r} (have: {', '.join(self.backends())})"
            )

    def query(self, u: int, v: int, *, backend: str | None = None) -> float:
        """Approximate distance between ``u`` and ``v``.

        ``backend`` overrides the planner's routing for this query
        (bundle-backed engines only).
        """
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError("vertex out of range")
        self._check_backend(backend)
        self.queries_served += 1
        if self.planner is not None:
            return self.planner.query(u, v, backend=backend)
        if self.sketch is not None:
            return self.sketch.query(u, v)
        return float(self._row(u)[v])

    def query_many(self, pairs, *, backend: str | None = None) -> np.ndarray:
        """Batched :meth:`query` over an ``(r, 2)`` pair array.

        Row backends plan the batch: pairs are grouped by source, rows
        already cached are gathered immediately, and the distinct missing
        sources go to *one* ``batched_sssp`` dispatch (sharded across the
        worker pool when configured), landing in the cache for later
        single queries.  Bundle-backed engines route the whole batch
        through the planner; ``backend`` pins it to one fixed backend.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        self._check_backend(backend)
        if pairs.size == 0:
            return np.zeros(0)
        pairs = pairs.reshape(-1, 2)
        if pairs.min() < 0 or pairs.max() >= self.n:
            raise ValueError("vertex out of range")
        self.queries_served += pairs.shape[0]
        self.batches += 1
        start = time.perf_counter()
        rows_before = self.rows_solved
        solve_before = self.solve_wall_s
        if self.planner is not None:
            out = self.planner.query_many(pairs, backend=backend)
        elif self.sketch is not None:
            out = self.sketch.query_many(pairs)
        else:
            # Shared planning with the oracle (repro.core.cache): one
            # _solve_rows dispatch over the distinct missing sources —
            # sharded across the worker pool when configured — with every
            # row cached.
            out = answer_pairs_cached(self._cache, pairs, self._solve_rows)
        wall = time.perf_counter() - start
        npairs = int(pairs.shape[0])
        self.query_many_wall_s += wall
        self.batch_rows_solved += self.rows_solved - rows_before
        self._batch_pairs_hist[npairs] = self._batch_pairs_hist.get(npairs, 0) + 1
        self.call_log.append(
            {
                "pairs": npairs,
                "rows": self.rows_solved - rows_before,
                "wall_s": wall,
                "solve_s": self.solve_wall_s - solve_before,
            }
        )
        return out

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Serving counters plus row-cache effectiveness (JSON-ready).

        The ``timing`` and ``batch_sizes`` keys are the cumulative
        latency/batch accounting the socket server's SLO report reads;
        every pre-existing key is unchanged.  Bundle-backed engines report
        ``backend="planned"`` plus a ``planner`` key with per-backend
        counters, and aggregate the row providers' caches under ``cache``.
        """
        if self.planner is not None:
            backend_name = "planned"
            # The engine's own cache is idle in planner mode — the row
            # providers keep their own.  Aggregate them so dashboards and
            # the CLI hit-rate line keep one place to look.
            caches = [
                p.cache.stats()
                for p in self.planner.providers.values()
                if hasattr(p, "cache")
            ]
            cache_stats = {
                key: sum(c[key] for c in caches)
                for key in ("capacity", "entries", "hits", "misses", "evictions")
            }
            total = cache_stats["hits"] + cache_stats["misses"]
            cache_stats["hit_rate"] = (
                round(cache_stats["hits"] / total, 4) if total else 0.0
            )
        else:
            backend_name = "sketch" if self.sketch is not None else "rows"
            cache_stats = self._cache.stats()
        return {
            "backend": backend_name,
            "n": self.n,
            "m": self.graph.m,
            "shards": self.shards,
            "queries_served": self.queries_served,
            "batches": self.batches,
            "rows_solved": self.rows_solved,
            "cache": cache_stats,
            **({"planner": self.planner.stats()} if self.planner is not None else {}),
            "timing": {
                "query_many_wall_s": round(self.query_many_wall_s, 6),
                "solve_wall_s": round(self.solve_wall_s, 6),
                "batch_rows_solved": self.batch_rows_solved,
                "rows_per_call_mean": (
                    round(self.batch_rows_solved / self.batches, 3)
                    if self.batches
                    else 0.0
                ),
                "pairs_per_call_mean": (
                    round(
                        sum(k * v for k, v in self._batch_pairs_hist.items())
                        / self.batches,
                        3,
                    )
                    if self.batches
                    else 0.0
                ),
            },
            "batch_sizes": {
                str(k): v for k, v in sorted(self._batch_pairs_hist.items())
            },
            "membudget": {
                "budget_bytes": membudget.resolve_budget(),
                "sites": membudget.accounting(),
            },
            **({"meta": self.meta} if self.meta else {}),
        }

    def worker_memstats(self, *, settle_s: float = 0.05) -> list[dict]:
        """Per-worker memory snapshots (one dict per distinct worker pid).

        Starts the pool if needed.  Oversubscribes short probe tasks so
        every worker is sampled despite executor scheduling; the scale
        benchmark uses this to enforce the O(graph + ε) worker-memory gate.
        """
        if self.shards < 2:
            return []
        pool = self._ensure_pool()
        futures = [
            pool.submit(_worker_memstats, settle_s) for _ in range(4 * self.shards)
        ]
        by_pid: dict[int, dict] = {}
        for f in futures:
            snap = f.result()
            by_pid[snap["pid"]] = snap
        return [by_pid[pid] for pid in sorted(by_pid)]

    def close(self) -> None:
        """Shut down the shard worker pool and unlink the shared-memory
        segment (idempotent; also runs via atexit if forgotten).

        Serial queries keep working afterwards: unlink removes the segment
        *name*, while this process's mapping — and therefore the engine's
        graph views — stays valid until the process exits.
        """
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        if self._shared is not None:
            self._shared.destroy()
            self._shared = None

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
