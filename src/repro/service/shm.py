"""One physical copy of a graph's arrays, shared across shard workers.

:class:`SharedGraphBuffers` packs everything a shard worker touches into a
single named ``multiprocessing.shared_memory`` segment:

* the canonical edge arrays ``u``, ``v``, ``w`` (whatever dtype the graph
  holds — int32 artifacts stay int32), and
* the scipy CSR triplet ``data`` / ``indices`` / ``indptr`` of
  :meth:`~repro.graphs.graph.WeightedGraph.to_scipy`.

The CSR triplet is the load-bearing part: ``batched_sssp`` runs on the
scipy matrix, and without sharing it every worker would rebuild a private
copy about as large as the graph itself — exactly the O(shards × graph)
blowup this module removes.  Workers :meth:`attach` by name and rebuild a
zero-copy :class:`WeightedGraph` over the views
(``csr_matrix((data, indices, indptr), copy=False)`` shares all three
arrays verbatim, which is why the parent's own CSR arrays — already in
scipy's chosen dtypes — are what gets packed).

Lifecycle: the creating process owns the segment and must call
:meth:`destroy` (or rely on the atexit hook) to ``unlink`` it; attached
processes never unlink.  ``unlink`` removes the ``/dev/shm`` name — the
physical pages survive until every process unmaps, so live numpy views
stay valid after destroy.  ``SharedMemory.close`` refuses (BufferError)
while views are alive; :meth:`destroy` tolerates that, the mapping simply
dies with the process.
"""

from __future__ import annotations

import atexit
import os
import secrets
from multiprocessing import shared_memory

import numpy as np
from scipy import sparse

from ..graphs.graph import WeightedGraph

__all__ = ["SharedGraphBuffers", "shm_segments", "SHM_PREFIX"]

#: /dev/shm segment name prefix; tests sweep for leaks with this.
SHM_PREFIX = "repro-graph-"

_ALIGN = 64  # byte alignment of each packed array


class SharedGraphBuffers:
    """A named shared-memory segment holding one graph's arrays."""

    def __init__(self, shm: shared_memory.SharedMemory, n: int, layout, *, owner: bool):
        self._shm = shm
        self._n = int(n)
        # layout: list of (name, dtype_str, shape, byte_offset)
        self._layout = [(nm, dt, tuple(sh), int(off)) for nm, dt, sh, off in layout]
        self._owner = bool(owner)
        self._destroyed = False
        if owner:
            atexit.register(self.destroy)
        else:
            atexit.register(self._close_quiet)

    # ------------------------------------------------------------------
    # Creation / attachment
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, g: WeightedGraph) -> "SharedGraphBuffers":
        """Pack ``g``'s edge arrays + scipy CSR into a fresh segment."""
        arrays = {
            "u": np.ascontiguousarray(g.edges_u),
            "v": np.ascontiguousarray(g.edges_v),
            "w": np.ascontiguousarray(g.edges_w),
        }
        if g.m:
            mat = g.to_scipy()
            arrays["csr_data"] = np.ascontiguousarray(mat.data)
            arrays["csr_indices"] = np.ascontiguousarray(mat.indices)
            arrays["csr_indptr"] = np.ascontiguousarray(mat.indptr)
        layout = []
        offset = 0
        for name, arr in arrays.items():
            offset = (offset + _ALIGN - 1) & ~(_ALIGN - 1)
            layout.append((name, arr.dtype.str, arr.shape, offset))
            offset += arr.nbytes
        shm = shared_memory.SharedMemory(
            create=True, size=max(offset, 1), name=SHM_PREFIX + secrets.token_hex(6)
        )
        self = cls(shm, g.n, layout, owner=True)
        views = self._views()
        for name, arr in arrays.items():
            views[name][...] = arr
        return self

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedGraphBuffers":
        """Attach to a segment created elsewhere (see :meth:`descriptor`).

        Attaching re-registers the name with the (fork-shared) resource
        tracker; registrations are a set, so the owner's single ``unlink``
        still retires it cleanly.
        """
        shm = shared_memory.SharedMemory(name=descriptor["name"])
        return cls(shm, descriptor["n"], descriptor["layout"], owner=False)

    def descriptor(self) -> dict:
        """Picklable handle a worker passes to :meth:`attach`."""
        return {"name": self._shm.name, "n": self._n, "layout": list(self._layout)}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def _views(self) -> dict[str, np.ndarray]:
        return {
            name: np.ndarray(shape, dtype=np.dtype(dt), buffer=self._shm.buf, offset=off)
            for name, dt, shape, off in self._layout
        }

    def graph(self) -> WeightedGraph:
        """Zero-copy :class:`WeightedGraph` over the shared views, with the
        scipy CSR cache preloaded from the shared triplet."""
        views = self._views()
        mat = None
        if "csr_data" in views:
            mat = sparse.csr_matrix(
                (views["csr_data"], views["csr_indices"], views["csr_indptr"]),
                shape=(self._n, self._n),
                copy=False,
            )
        return WeightedGraph.from_canonical(
            self._n, views["u"], views["v"], views["w"], scipy_csr=mat
        )

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        """Total payload bytes (the one physical copy every process maps)."""
        return sum(
            int(np.prod(shape, dtype=np.int64)) * np.dtype(dt).itemsize
            for _, dt, shape, _ in self._layout
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _close_quiet(self) -> None:
        try:
            self._shm.close()
        except BufferError:
            # Live numpy views still reference the buffer; the mapping is
            # released when the process (or the views) go away.
            pass

    def destroy(self) -> None:
        """Owner-side teardown: unlink the segment name (idempotent).

        Safe while views are alive — the name disappears from /dev/shm
        immediately, the pages only once every mapping is gone.
        """
        if self._destroyed:
            return
        self._destroyed = True
        atexit.unregister(self.destroy)
        atexit.unregister(self._close_quiet)
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._close_quiet()

    def close(self) -> None:
        """Attached-side teardown: drop this process's mapping (idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        atexit.unregister(self._close_quiet)
        self._close_quiet()


def shm_segments() -> list[str]:
    """Names of live repro shared-memory segments (for leak checks)."""
    try:
        return sorted(
            name for name in os.listdir("/dev/shm") if name.startswith(SHM_PREFIX)
        )
    except OSError:  # pragma: no cover - non-Linux fallback
        return []
