"""Persist-then-serve query subsystem (the ROADMAP serving layer).

Build once (``repro sweep --persist`` or the serving CLI's ``--build``),
persist the query structures as versioned artifacts
(:class:`~repro.service.store.ArtifactStore`), then serve distance
queries from any process via :class:`~repro.service.engine.QueryEngine`
— with a bounded LRU row cache, batched query planning, and optional
process-pool sharding.  ``repro query`` / ``repro serve`` are the CLI
front ends.

:mod:`~repro.service.provider` unifies the three answer paths (exact
rows, oracle rows, sketch walks) behind the :class:`DistanceProvider`
protocol; ``bundle`` artifacts persist all three side by side and
:class:`PlannedProvider` routes each batch from a declarative
:class:`PlanTarget` (fixed backend, stretch cap, or latency SLO).
"""

from .engine import QueryEngine
from .provider import (
    BACKENDS,
    DistanceProvider,
    PlannedProvider,
    PlanTarget,
    ProviderBundle,
    RowProvider,
    SketchProvider,
    TieredProvider,
    build_providers,
)
from .server import AsyncClient, QueryServer, run_server, serve_pipe
from .shm import SharedGraphBuffers
from .store import ArtifactInfo, ArtifactStore, STORE_FORMAT_VERSION, config_key

__all__ = [
    "ArtifactInfo",
    "ArtifactStore",
    "AsyncClient",
    "BACKENDS",
    "DistanceProvider",
    "PlanTarget",
    "PlannedProvider",
    "ProviderBundle",
    "QueryEngine",
    "QueryServer",
    "RowProvider",
    "SharedGraphBuffers",
    "SketchProvider",
    "STORE_FORMAT_VERSION",
    "TieredProvider",
    "build_providers",
    "config_key",
    "run_server",
    "serve_pipe",
]
