"""Persist-then-serve query subsystem (the ROADMAP serving layer).

Build once (``repro sweep --persist`` or the serving CLI's ``--build``),
persist the query structures as versioned artifacts
(:class:`~repro.service.store.ArtifactStore`), then serve distance
queries from any process via :class:`~repro.service.engine.QueryEngine`
— with a bounded LRU row cache, batched query planning, and optional
process-pool sharding.  ``repro query`` / ``repro serve`` are the CLI
front ends.
"""

from .engine import QueryEngine
from .server import AsyncClient, QueryServer, run_server, serve_pipe
from .shm import SharedGraphBuffers
from .store import ArtifactInfo, ArtifactStore, STORE_FORMAT_VERSION, config_key

__all__ = [
    "ArtifactInfo",
    "ArtifactStore",
    "AsyncClient",
    "QueryEngine",
    "QueryServer",
    "SharedGraphBuffers",
    "STORE_FORMAT_VERSION",
    "config_key",
    "run_server",
    "serve_pipe",
]
