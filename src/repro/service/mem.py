"""Process-memory accounting for the serving and benchmark layers.

Two complementary numbers, both cheap enough to sample inline:

``peak_rss_bytes``
    The high-water RSS of the calling process.  Monotone over the process
    lifetime, which makes it the right phase marker for the scale
    benchmark (sample it after build, after load, after query and read
    the deltas).  Prefers ``VmHWM`` from ``/proc/self/status``: Linux
    does **not** reset ``ru_maxrss`` across ``fork``/``exec``, so a
    freshly spawned subprocess inherits its parent's peak and
    ``getrusage`` overstates small children; ``VmHWM`` belongs to the
    process's own address space and resets on exec.  Falls back to
    ``getrusage`` where ``/proc`` is unavailable.

``private_bytes`` / ``pss_bytes`` / ``rss_bytes``
    Parsed from ``/proc/self/smaps_rollup`` (Linux).  RSS counts a shared
    page once *per mapping process*, so under shared-memory sharding the
    sum of worker RSS wildly overstates physical use; ``Private_Clean +
    Private_Dirty`` is the memory a worker actually adds beyond the shared
    segment, and is what the O(graph + shards·ε) gate measures.  ``None``
    on platforms without smaps_rollup.
"""

from __future__ import annotations

import os
import resource

__all__ = ["process_memory", "peak_rss_bytes"]

_SMAPS = "/proc/self/smaps_rollup"


def peak_rss_bytes() -> int:
    """High-water RSS of the calling process, in bytes.

    ``VmHWM`` from ``/proc/self/status`` when available (it resets on
    exec, unlike ``ru_maxrss``), else ``getrusage`` (reported in KiB).
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:  # pragma: no cover - non-Linux fallback
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def _smaps_rollup() -> dict[str, int] | None:
    try:
        with open(_SMAPS) as fh:
            lines = fh.readlines()
    except OSError:  # pragma: no cover - non-Linux fallback
        return None
    out: dict[str, int] = {}
    for line in lines:
        parts = line.split()
        if len(parts) >= 3 and parts[0].endswith(":") and parts[2] == "kB":
            out[parts[0][:-1]] = int(parts[1]) * 1024
    return out


def process_memory() -> dict:
    """Memory snapshot of the calling process (JSON-ready).

    Keys: ``pid``, ``peak_rss_bytes``, and — when smaps_rollup exists —
    ``rss_bytes``, ``pss_bytes`` and ``private_bytes`` (else ``None``).
    """
    snap: dict = {"pid": os.getpid(), "peak_rss_bytes": peak_rss_bytes()}
    rollup = _smaps_rollup()
    if rollup is None:  # pragma: no cover - non-Linux fallback
        snap.update({"rss_bytes": None, "pss_bytes": None, "private_bytes": None})
    else:
        snap["rss_bytes"] = rollup.get("Rss")
        snap["pss_bytes"] = rollup.get("Pss")
        private = rollup.get("Private_Clean"), rollup.get("Private_Dirty")
        snap["private_bytes"] = (
            None if private[0] is None and private[1] is None
            else (private[0] or 0) + (private[1] or 0)
        )
    return snap
