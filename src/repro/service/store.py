"""Versioned on-disk artifacts for built distance structures.

The paper's economics are *build once, query forever*: the expensive
parallel preprocessing (spanner construction, Thorup–Zwick bunches) runs
in a sweep, and the cheap query structures should then be loadable by any
serving process.  :class:`ArtifactStore` is that boundary — a directory of
self-contained artifacts, one per key::

    <root>/<key>/manifest.json       # format version, kind, metadata
    <root>/<key>/arrays/<name>.npy   # one raw aligned .npy per array

Arrays are stored as individual *uncompressed* ``.npy`` files (format v2;
v1 ``arrays.npz`` artifacts are still read), so :meth:`ArtifactStore.load`
defaults to handing back ``np.memmap`` views — opening an artifact costs
page-table entries, not a copy, and every process mapping the same
artifact shares physical pages through the OS page cache.  Pass
``mmap=False`` for the old eager, writable arrays.  Index arrays whose
values fit are downcast to int32 once, at save time (the serving layers
preserve the dtype end to end), halving the index footprint for every
graph with ``n < 2**31``.

Three artifact kinds:

``oracle``
    A built spanner graph plus its ``(k, t)`` parameters — everything a
    :class:`~repro.distances.oracle.SpannerDistanceOracle` replica needs
    (queries run Dijkstra *on the spanner*, so a reloaded oracle answers
    bit-identically to the freshly built one).
``sketch``
    The full Thorup–Zwick state of a
    :class:`~repro.distances.sketches.DistanceSketch`: hierarchy levels,
    pivot tables and the CSR bunch arrays, plus the (spanner) graph it was
    built on.  Reloading skips all preprocessing.
``bundle``
    All three answer paths side by side under one key: the *input* graph
    (exact Dijkstra rows), the built spanner + parameters (oracle rows),
    and the full sketch state (pivot walks) — loaded back as a
    :class:`~repro.service.provider.ProviderBundle` so one artifact
    serves ``exact``/``oracle``/``sketch``/``tiered`` and the planner can
    route between them (see :mod:`repro.service.provider`).
``graph``
    A bare :class:`~repro.graphs.graph.WeightedGraph` — the ingest path
    (``repro ingest``, :func:`~repro.graphs.io.read_edgelist_streaming`)
    lands real edge lists here, and a loaded graph serves exact rows
    through :class:`~repro.service.engine.QueryEngine` (shared-memory
    sharding included) or feeds a spanner/sketch build.

Keys default to a content hash of the artifact's build configuration
(:func:`config_key` — the same ``sha256(json)[:16]`` recipe as
:attr:`~repro.runner.plan.TrialSpec.trial_id`), so ``repro sweep
--persist`` output lands under the runner's own trial ids and a serving
process can resolve "the artifact for this configuration" without a
side channel.

Saves are atomic per artifact: the payload is written into a temporary
sibling directory and renamed into place, so a crashed writer never
leaves a half-written artifact behind a valid key.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..distances.oracle import SpannerDistanceOracle
from ..distances.sketches import DistanceSketch
from ..graphs.graph import WeightedGraph
from ..graphs.io import GRAPH_NPZ_VERSION

__all__ = ["ArtifactStore", "ArtifactInfo", "config_key", "STORE_FORMAT_VERSION"]

#: Manifest schema version; bumped on layout changes.
#: v1: one compressed ``arrays.npz``.  v2: raw per-array ``.npy`` files
#: under ``arrays/`` (memmap-able) with index arrays downcast to int32
#: when their values fit.
STORE_FORMAT_VERSION = 2

_KINDS = ("oracle", "sketch", "bundle", "graph")
_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"  # v1 payload, read-compatible
_ARRAYS_DIR = "arrays"

#: Arrays holding vertex ids / CSR offsets — eligible for the int32
#: downcast.  Float payloads and the format scalars are never touched.
#: ``sp_``/``sk_`` are the bundle kind's spanner/sketch namespaces.
_INDEX_ARRAYS = frozenset(
    {"u", "v", "levels_flat", "level_sizes", "pivot", "bunch_indptr", "bunch_centers"}
    | {"sp_u", "sp_v"}
    | {"sk_levels_flat", "sk_level_sizes", "sk_pivot", "sk_bunch_indptr",
       "sk_bunch_centers"}
)


def _downcast_index(arr: np.ndarray) -> np.ndarray:
    """int64 -> int32 when every value fits (the ``n < 2**31`` rule —
    endpoint/offset values are bounded by n and the arc count)."""
    if arr.dtype != np.int64 or arr.size == 0:
        return arr
    info = np.iinfo(np.int32)
    if int(arr.min()) < info.min or int(arr.max()) > info.max:
        return arr
    return arr.astype(np.int32, copy=False)


def _as_index(arr) -> np.ndarray:
    """Pass int32/int64 through untouched (no copy, memmaps preserved);
    normalize anything else to int64."""
    arr = np.asarray(arr)
    if arr.dtype in (np.int32, np.int64):
        return arr
    return arr.astype(np.int64, copy=False)


def config_key(config: dict) -> str:
    """Deterministic 16-hex-char content hash of a build configuration.

    Same recipe as the experiment runner's trial ids, so artifacts persisted
    by a sweep and artifacts resolved by the serving CLI agree on keys.
    """
    payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass(frozen=True)
class ArtifactInfo:
    """One store entry: key, kind, and the manifest metadata."""

    key: str
    kind: str
    meta: dict
    path: str


def _graph_payload(g: WeightedGraph) -> dict:
    return {
        "graph_version": np.int64(GRAPH_NPZ_VERSION),
        "n": np.int64(g.n),
        "u": g.edges_u,
        "v": g.edges_v,
        "w": g.edges_w,
    }


def _sketch_payload(sketch: DistanceSketch, *, prefix: str = "") -> dict:
    """The full Thorup–Zwick state as store arrays (``prefix`` namespaces
    the bundle kind's sketch arrays next to the graph/spanner payloads)."""
    return {
        f"{prefix}k": np.int64(sketch.k),
        f"{prefix}level_sizes": np.asarray(
            [lv.size for lv in sketch.levels], dtype=np.int64
        ),
        f"{prefix}levels_flat": (
            np.concatenate(sketch.levels)
            if sketch.levels
            else np.zeros(0, dtype=np.int64)
        ),
        f"{prefix}pivot": sketch.pivot,
        f"{prefix}pivot_dist": sketch.pivot_dist,
        f"{prefix}bunch_indptr": sketch.bunch_indptr,
        f"{prefix}bunch_centers": sketch.bunch_centers,
        f"{prefix}bunch_dists": sketch.bunch_dists,
    }


def _sketch_from_payload(g: WeightedGraph, data: dict, *, prefix: str = "") -> DistanceSketch:
    sizes = np.asarray(data[f"{prefix}level_sizes"])
    flat = _as_index(data[f"{prefix}levels_flat"])
    bounds = np.concatenate([[0], np.cumsum(sizes, dtype=np.int64)])
    levels = [flat[bounds[i] : bounds[i + 1]] for i in range(sizes.size)]
    return DistanceSketch.from_arrays(
        g,
        int(data[f"{prefix}k"]),
        levels,
        data[f"{prefix}pivot"],
        data[f"{prefix}pivot_dist"],
        data[f"{prefix}bunch_indptr"],
        data[f"{prefix}bunch_centers"],
        data[f"{prefix}bunch_dists"],
    )


def _graph_from_payload(data) -> WeightedGraph:
    # Saved arrays are already canonical (they came out of a WeightedGraph),
    # so adopt them without the dedupe sort/copy; int32 artifacts stay
    # int32, and memmap-backed views stay memmaps (copy=False throughout).
    return WeightedGraph.from_canonical(
        int(data["n"]),
        _as_index(data["u"]),
        _as_index(data["v"]),
        np.asarray(data["w"]).astype(np.float64, copy=False),
    )


class ArtifactStore:
    """A directory of versioned, self-contained query-structure artifacts."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Listing / lookup
    # ------------------------------------------------------------------
    def _dir(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"bad artifact key {key!r}")
        return self.root / key

    def __contains__(self, key: str) -> bool:
        try:
            return (self._dir(key) / _MANIFEST).is_file()
        except ValueError:
            return False

    def keys(self) -> list[str]:
        """Sorted keys of every complete artifact in the store."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name
            for p in self.root.iterdir()
            # Dot-prefixed names are in-flight/stale ``.tmp-*`` scratch
            # directories (a crashed writer can leave one holding a
            # manifest), never loadable artifacts.
            if p.is_dir() and not p.name.startswith(".") and (p / _MANIFEST).is_file()
        )

    def info(self, key: str) -> ArtifactInfo:
        """Manifest of one artifact (raises ``KeyError`` when absent)."""
        path = self._dir(key)
        manifest_path = path / _MANIFEST
        if not manifest_path.is_file():
            raise KeyError(f"no artifact {key!r} under {self.root}")
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ValueError(f"{manifest_path}: unreadable manifest: {exc}") from exc
        version = manifest.get("format_version")
        if not isinstance(version, int) or version > STORE_FORMAT_VERSION:
            raise ValueError(
                f"{manifest_path}: format_version {version!r} unsupported "
                f"(this build reads <= v{STORE_FORMAT_VERSION})"
            )
        kind = manifest.get("kind")
        if kind not in _KINDS:
            raise ValueError(f"{manifest_path}: unknown artifact kind {kind!r}")
        return ArtifactInfo(
            key=key, kind=kind, meta=dict(manifest.get("meta", {})), path=str(path)
        )

    # ------------------------------------------------------------------
    # Saving
    # ------------------------------------------------------------------
    def _write(self, key: str, kind: str, arrays: dict, meta: dict) -> str:
        target = self._dir(key)
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".tmp-{key}-{os.getpid()}"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        try:
            adir = tmp / _ARRAYS_DIR
            adir.mkdir()
            names = []
            for name, value in arrays.items():
                arr = np.asarray(value)
                if name in _INDEX_ARRAYS:
                    arr = _downcast_index(arr)
                np.save(adir / f"{name}.npy", arr)
                names.append(name)
            manifest = {
                "format_version": STORE_FORMAT_VERSION,
                "kind": kind,
                "key": key,
                "meta": meta,
                "arrays": _ARRAYS_DIR,
                "array_names": sorted(names),
            }
            (tmp / _MANIFEST).write_text(
                json.dumps(manifest, indent=2, sort_keys=True) + "\n"
            )
            if target.exists():
                shutil.rmtree(target)
            tmp.replace(target)
        finally:
            if tmp.exists():  # pragma: no cover - crash-path cleanup
                shutil.rmtree(tmp, ignore_errors=True)
        return key

    def save_spanner(
        self,
        spanner: WeightedGraph,
        *,
        k: int,
        t: int | None = None,
        t_effective: int | None = None,
        key: str | None = None,
        meta: dict | None = None,
    ) -> str:
        """Persist a built spanner as an ``oracle`` artifact; returns the key."""
        meta = dict(meta or {})
        meta.update(
            {
                "k": int(k),
                "t": None if t is None else int(t),
                "t_effective": int(t_effective if t_effective is not None else (t or k)),
                "n": spanner.n,
                "spanner_edges": spanner.m,
            }
        )
        if key is None:
            key = config_key({"kind": "oracle", **{k_: meta[k_] for k_ in sorted(meta)}})
        return self._write(key, "oracle", _graph_payload(spanner), meta)

    def save_oracle(
        self,
        oracle: SpannerDistanceOracle,
        *,
        key: str | None = None,
        meta: dict | None = None,
    ) -> str:
        """Persist the serving state of a built oracle; returns the key."""
        return self.save_spanner(
            oracle.spanner,
            k=oracle.k,
            t=oracle.t,
            t_effective=oracle.t_effective,
            key=key,
            meta=meta,
        )

    def save_graph(
        self,
        g: WeightedGraph,
        *,
        key: str | None = None,
        meta: dict | None = None,
    ) -> str:
        """Persist a bare graph as a ``graph`` artifact; returns the key.

        This is the ingest landing zone: edge arrays only (int32-downcast
        where values fit, memmap-served on load), so a million-node road
        network persists once and every serving process maps it lazily.
        """
        meta = dict(meta or {})
        meta.update({"n": g.n, "graph_edges": g.m})
        if key is None:
            key = config_key({"kind": "graph", **{k_: meta[k_] for k_ in sorted(meta)}})
        return self._write(key, "graph", _graph_payload(g), meta)

    def save_sketch(
        self,
        sketch: DistanceSketch,
        *,
        key: str | None = None,
        meta: dict | None = None,
    ) -> str:
        """Persist the full Thorup–Zwick state; returns the key."""
        meta = dict(meta or {})
        meta.update(
            {
                "k": sketch.k,
                "n": sketch.g.n,
                "sketch_words": sketch.size_words,
            }
        )
        arrays = _graph_payload(sketch.g)
        arrays.update(_sketch_payload(sketch))
        if key is None:
            key = config_key({"kind": "sketch", **{k_: meta[k_] for k_ in sorted(meta)}})
        return self._write(key, "sketch", arrays, meta)

    def save_bundle(
        self,
        g: WeightedGraph,
        spanner: WeightedGraph,
        sketch: DistanceSketch,
        *,
        k: int,
        t: int | None = None,
        t_effective: int | None = None,
        key: str | None = None,
        meta: dict | None = None,
    ) -> str:
        """Persist all three answer paths under one key; returns the key.

        ``g`` is the input graph (exact rows), ``spanner`` the built
        spanner with its ``(k, t)`` parameters (oracle rows), ``sketch``
        a :class:`DistanceSketch` built on ``g`` (pivot walks answer with
        their own ``2 k_sketch - 1`` bound).
        """
        if spanner.n != g.n or sketch.g.n != g.n:
            raise ValueError("bundle parts must span the same vertex set")
        meta = dict(meta or {})
        meta.update(
            {
                "k": int(k),
                "t": None if t is None else int(t),
                "t_effective": int(t_effective if t_effective is not None else (t or k)),
                "n": g.n,
                "graph_edges": g.m,
                "spanner_edges": spanner.m,
                "sketch_k": sketch.k,
                "sketch_words": sketch.size_words,
            }
        )
        arrays = _graph_payload(g)
        arrays.update({"sp_u": spanner.edges_u, "sp_v": spanner.edges_v,
                       "sp_w": spanner.edges_w})
        arrays.update(_sketch_payload(sketch, prefix="sk_"))
        if key is None:
            key = config_key({"kind": "bundle", **{k_: meta[k_] for k_ in sorted(meta)}})
        return self._write(key, "bundle", arrays, meta)

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def _read_arrays(self, info: ArtifactInfo, *, mmap: bool) -> dict:
        """The artifact's array payload as a name -> array dict.

        v2 artifacts come back as lazy ``np.memmap`` views when ``mmap``
        (one physical copy across all loading processes, courtesy of the
        page cache); v1 ``arrays.npz`` payloads are compressed and load
        eagerly regardless.
        """
        path = Path(info.path)
        legacy = path / _ARRAYS
        if legacy.is_file():
            with np.load(legacy) as data:
                return {name: data[name] for name in data.files}
        mode = "r" if mmap else None
        return {
            p.stem: np.load(p, mmap_mode=mode)
            for p in sorted((path / _ARRAYS_DIR).glob("*.npy"))
        }

    def load(self, key: str, *, cache_rows: int | None = None, mmap: bool = True):
        """Reconstruct the query structure behind ``key``.

        Returns a :class:`SpannerDistanceOracle` (``oracle`` artifacts),
        a :class:`DistanceSketch` (``sketch`` artifacts), a
        :class:`~repro.service.provider.ProviderBundle` (``bundle``
        artifacts) or a bare :class:`WeightedGraph` (``graph``
        artifacts); all answer queries bit-identically to the objects
        that were saved.

        With ``mmap=True`` (default) the arrays are read-only memmap views
        over the artifact files — loading is lazy and N serving processes
        share one physical copy.  ``mmap=False`` materializes private,
        writable arrays (the old eager behaviour).
        """
        info = self.info(key)
        data = self._read_arrays(info, mmap=mmap)
        g = _graph_from_payload(data)
        if info.kind == "graph":
            return g
        if info.kind == "oracle":
            kwargs = {}
            if cache_rows is not None:
                kwargs["cache_rows"] = cache_rows
            t = info.meta.get("t")
            return SpannerDistanceOracle.from_spanner(
                g,
                int(info.meta["k"]),
                None if t is None else int(t),
                t_effective=int(info.meta["t_effective"]),
                **kwargs,
            )
        if info.kind == "bundle":
            from .provider import ProviderBundle

            spanner = WeightedGraph.from_canonical(
                g.n,
                _as_index(data["sp_u"]),
                _as_index(data["sp_v"]),
                np.asarray(data["sp_w"]).astype(np.float64, copy=False),
            )
            t = info.meta.get("t")
            return ProviderBundle(
                graph=g,
                spanner=spanner,
                k=int(info.meta["k"]),
                t=None if t is None else int(t),
                t_effective=int(info.meta["t_effective"]),
                sketch=_sketch_from_payload(g, data, prefix="sk_"),
                meta=dict(info.meta),
            )
        return _sketch_from_payload(g, data)

    def load_oracle(self, key: str, *, cache_rows: int | None = None, mmap: bool = True):
        obj = self.load(key, cache_rows=cache_rows, mmap=mmap)
        if not isinstance(obj, SpannerDistanceOracle):
            raise ValueError(f"artifact {key!r} is a {self.info(key).kind}, not an oracle")
        return obj

    def load_graph(self, key: str, *, mmap: bool = True) -> WeightedGraph:
        obj = self.load(key, mmap=mmap)
        if not isinstance(obj, WeightedGraph):
            raise ValueError(f"artifact {key!r} is a {self.info(key).kind}, not a graph")
        return obj

    def load_sketch(self, key: str, *, mmap: bool = True):
        obj = self.load(key, mmap=mmap)
        if not isinstance(obj, DistanceSketch):
            raise ValueError(f"artifact {key!r} is a {self.info(key).kind}, not a sketch")
        return obj

    def load_bundle(self, key: str, *, mmap: bool = True):
        from .provider import ProviderBundle

        obj = self.load(key, mmap=mmap)
        if not isinstance(obj, ProviderBundle):
            raise ValueError(f"artifact {key!r} is a {self.info(key).kind}, not a bundle")
        return obj

    def delete(self, key: str) -> None:
        path = self._dir(key)
        if path.exists():
            shutil.rmtree(path)
