"""Unified distance answering: the :class:`DistanceProvider` contract and
the budget-aware planner over it.

The repo has three answer paths with wildly different cost/accuracy
profiles:

* **exact** — Dijkstra rows on the *input* graph: stretch 1, a full
  ``O(m log n)`` row solve per cold source.
* **oracle** — Dijkstra rows on a built spanner
  (:class:`~repro.distances.oracle.SpannerDistanceOracle`): stretch
  ``2 k^s`` (Theorem 5.11), row solves touch only the spanner's
  ``O(n^{1+1/k} (t + log k))`` edges.
* **sketch** — Thorup–Zwick pivot walks
  (:class:`~repro.distances.sketches.DistanceSketch`): stretch
  ``2k - 1``, ``O(k)`` per query, no rows at all.

Before this module, callers hand-picked one path and the serving layer
hard-coded the oracle.  Here every path implements one small protocol —
``query`` / ``query_many`` / ``cost_model`` / ``stretch_bound`` — and
:class:`PlannedProvider` routes each batch from a declarative
:class:`PlanTarget`:

* ``backend="exact" | "oracle" | "sketch" | "tiered"`` — fixed routing;
* ``backend="auto"`` — pick the cheapest backend (by observed per-query
  latency EWMAs, the same accounting ``QueryEngine.stats()["timing"]``
  reports) whose declared stretch bound satisfies ``max_stretch``; with a
  ``p99_ms`` latency target the planner instead picks the *most accurate*
  backend whose observed p99 meets the target, falling back to the
  fastest when nothing does.
* ``backend="tiered"`` — answer from the sketch immediately and refine
  via oracle rows already hot in the LRU (a ``peek``, never a new row
  solve): both answers upper-bound the true distance, so the elementwise
  minimum is a strictly tighter answer at sketch cost.

Every provider reply is an **upper bound** on the true distance and at
most ``stretch_bound`` times it — the PR 3 conformance claims as a
runtime contract.  ``benchmarks/bench_provider.py`` records the achieved
accuracy/latency Pareto frontier and gates the ``auto`` planner against
the declared bound.
"""

from __future__ import annotations

import math
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.cache import LRURowCache, answer_pairs_cached
from ..core.params import stretch_bound as general_stretch_bound
from ..distances.oracle import SpannerDistanceOracle
from ..distances.sketches import DistanceSketch
from ..graphs.distances import batched_sssp
from ..graphs.graph import WeightedGraph

__all__ = [
    "DistanceProvider",
    "RowProvider",
    "SketchProvider",
    "TieredProvider",
    "PlanTarget",
    "PlannedProvider",
    "ProviderBundle",
    "build_providers",
    "BACKENDS",
]

#: The fixed backends every :class:`ProviderBundle` serves, cheapest
#: (per query) first — also the planner's probe order.
BACKENDS = ("sketch", "oracle", "exact")

#: Ring size for observed per-query latencies (p99 estimation).
_LATENCY_RING = 512


@runtime_checkable
class DistanceProvider(Protocol):
    """One way of answering approximate-distance queries.

    Implementations promise: answers are upper bounds on the true
    distance, at most :attr:`stretch_bound` times it for connected pairs
    (``inf`` exactly when disconnected), and ``query``/``query_many``
    are bit-identical on the same pairs.
    """

    name: str

    def query(self, u: int, v: int) -> float: ...

    def query_many(self, pairs) -> np.ndarray: ...

    def cost_model(self) -> dict: ...

    @property
    def stretch_bound(self) -> float: ...


class _TimedProvider:
    """Shared accounting: queries/batches served, wall time, and the
    observed per-query latency EWMA + ring the planner routes on."""

    name = "?"

    def __init__(self) -> None:
        self.queries_served = 0
        self.batches = 0
        self.wall_s = 0.0
        self.ewma_s: float | None = None  # per-query, alpha below
        self._ewma_alpha = 0.2
        self._lat_ring: deque[float] = deque(maxlen=_LATENCY_RING)

    def _record(self, npairs: int, wall: float) -> None:
        self.queries_served += npairs
        self.batches += 1
        self.wall_s += wall
        per_query = wall / max(npairs, 1)
        a = self._ewma_alpha
        self.ewma_s = (
            per_query if self.ewma_s is None else a * per_query + (1 - a) * self.ewma_s
        )
        self._lat_ring.append(per_query)

    def observed_p99_s(self) -> float | None:
        """p99 of recent per-query latencies (per-call means), or ``None``
        before the first routed call."""
        if not self._lat_ring:
            return None
        return float(np.percentile(np.asarray(self._lat_ring), 99.0))

    def stats(self) -> dict:
        """Serving counters + observed latency (JSON-ready)."""
        p99 = self.observed_p99_s()
        return {
            "queries_served": self.queries_served,
            "batches": self.batches,
            "wall_s": round(self.wall_s, 6),
            "stretch_bound": _json_stretch(self.stretch_bound),
            "ewma_us_per_query": (
                None if self.ewma_s is None else round(self.ewma_s * 1e6, 3)
            ),
            "observed_p99_us": None if p99 is None else round(p99 * 1e6, 3),
        }

    @property
    def stretch_bound(self) -> float:  # pragma: no cover - overridden
        raise NotImplementedError


def _json_stretch(value: float) -> float | None:
    return None if not math.isfinite(value) else round(float(value), 6)


class RowProvider(_TimedProvider):
    """Cached Dijkstra rows over a graph — the exact and oracle paths.

    ``name="exact"`` serves rows on the input graph (stretch 1);
    ``name="oracle"`` serves rows on a built spanner with the paper's
    ``2 k^s`` guarantee.  Row planning is the shared
    :func:`~repro.core.cache.answer_pairs_cached` discipline: pairs group
    by source, missing sources go to *one* ``batched_sssp`` dispatch, and
    rows land in a bounded LRU.  ``solve_rows`` lets a serving engine
    substitute its sharded solver for the default in-process one.
    """

    def __init__(
        self,
        name: str,
        graph: WeightedGraph,
        *,
        stretch: float,
        cache_rows: int = SpannerDistanceOracle.DEFAULT_CACHE_ROWS,
        solve_rows=None,
    ) -> None:
        super().__init__()
        self.name = name
        self.graph = graph
        self.n = graph.n
        self._stretch = float(stretch)
        self.cache = LRURowCache(cache_rows)
        self._solve_rows = solve_rows or (
            lambda missing: batched_sssp(self.graph, missing)
        )
        self.rows_solved = 0

    @property
    def stretch_bound(self) -> float:
        return self._stretch

    def cost_model(self) -> dict:
        return {
            "kind": "rows",
            "graph_m": self.graph.m,
            "row_cost": "dijkstra over graph_m edges per cold source",
            "query_cost": "O(1) on a cached row",
            "cache_rows": self.cache.capacity,
        }

    def _solve(self, missing: np.ndarray) -> np.ndarray:
        self.rows_solved += int(missing.size)
        return self._solve_rows(missing)

    def peek_row(self, source: int):
        """The cached row for ``source`` or ``None`` — never solves, never
        touches recency (the tiered refinement hook)."""
        return self.cache.peek(source)

    def query(self, u: int, v: int) -> float:
        if not (0 <= u < self.n and 0 <= v < self.n):
            raise ValueError("vertex out of range")
        start = time.perf_counter()
        row = self.cache.get(u)
        if row is None:
            row = self._solve(np.asarray([u], dtype=np.int64))[0].copy()
            self.cache.put(u, row)
        out = float(row[v])
        self._record(1, time.perf_counter() - start)
        return out

    def query_many(self, pairs) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return np.zeros(0)
        pairs = pairs.reshape(-1, 2)
        if pairs.min() < 0 or pairs.max() >= self.n:
            raise ValueError("vertex out of range")
        start = time.perf_counter()
        out = answer_pairs_cached(self.cache, pairs, self._solve)
        self._record(int(pairs.shape[0]), time.perf_counter() - start)
        return out

    def stats(self) -> dict:
        return {
            **super().stats(),
            "rows_solved": self.rows_solved,
            "cache": self.cache.stats(),
        }


class SketchProvider(_TimedProvider):
    """O(k) Thorup–Zwick pivot walks: stretch ``2k - 1``, no rows.

    ``stretch`` overrides the declared bound (a sketch preprocessed *on a
    spanner* answers with ``(2k-1) x spanner_stretch``, see
    :func:`~repro.distances.sketches.sketch_on_spanner`).
    """

    name = "sketch"

    def __init__(self, sketch: DistanceSketch, *, stretch: float | None = None) -> None:
        super().__init__()
        self.sketch = sketch
        self.n = sketch.g.n
        self._stretch = float(stretch) if stretch is not None else 2.0 * sketch.k - 1.0

    @property
    def stretch_bound(self) -> float:
        return self._stretch

    def cost_model(self) -> dict:
        return {
            "kind": "sketch",
            "sketch_words": self.sketch.size_words,
            "query_cost": f"O(k) pivot walk, k={self.sketch.k}",
            "row_cost": "none",
        }

    def query(self, u: int, v: int) -> float:
        start = time.perf_counter()
        out = self.sketch.query(u, v)
        self._record(1, time.perf_counter() - start)
        return out

    def query_many(self, pairs) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return np.zeros(0)
        pairs = pairs.reshape(-1, 2)
        start = time.perf_counter()
        out = self.sketch.query_many(pairs)
        self._record(int(pairs.shape[0]), time.perf_counter() - start)
        return out


class TieredProvider(_TimedProvider):
    """Sketch answer immediately, oracle refinement on cache hit.

    Every query is answered by the sketch walk; pairs whose source row is
    already *hot* in the refiner's LRU (a ``peek`` — refinement never
    triggers a row solve, so the cost stays at sketch level) are tightened
    to the elementwise minimum of the two answers.  Both paths
    overestimate the true distance, so the minimum is still a valid upper
    bound; the declared stretch stays the sketch's (the refinement only
    ever improves on it).
    """

    name = "tiered"

    def __init__(self, sketch: SketchProvider, refiner: RowProvider) -> None:
        super().__init__()
        self.sketch_provider = sketch
        self.refiner = refiner
        self.n = sketch.n
        self.refined = 0

    @property
    def stretch_bound(self) -> float:
        return self.sketch_provider.stretch_bound

    def cost_model(self) -> dict:
        return {
            "kind": "tiered",
            "query_cost": "sketch walk + row peek; refinement on LRU hit only",
            "refiner": self.refiner.name,
            "row_cost": "none (hot rows only)",
        }

    def query(self, u: int, v: int) -> float:
        start = time.perf_counter()
        out = self.sketch_provider.sketch.query(u, v)
        row = self.refiner.peek_row(u)
        if row is not None:
            refined = float(row[v])
            if refined < out:
                out = refined
                self.refined += 1
        self._record(1, time.perf_counter() - start)
        return out

    def query_many(self, pairs) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return np.zeros(0)
        pairs = pairs.reshape(-1, 2)
        start = time.perf_counter()
        out = self.sketch_provider.sketch.query_many(pairs)
        for s in np.unique(pairs[:, 0]).tolist():
            row = self.refiner.peek_row(s)
            if row is None:
                continue
            idx = np.flatnonzero(pairs[:, 0] == s)
            refined = np.asarray(row)[pairs[idx, 1]]
            better = refined < out[idx]
            self.refined += int(better.sum())
            out[idx] = np.minimum(out[idx], refined)
        self._record(int(pairs.shape[0]), time.perf_counter() - start)
        return out


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanTarget:
    """Declarative routing target for :class:`PlannedProvider`.

    ``backend``
        A fixed backend name, ``"tiered"``, or ``"auto"``.
    ``max_stretch``
        Only backends whose *declared* stretch bound is <= this are
        eligible under ``auto`` (``None`` = no accuracy constraint).
    ``p99_ms``
        Latency SLO per query: ``auto`` picks the most accurate eligible
        backend whose observed p99 meets it (``None`` = route for speed).
    """

    backend: str = "auto"
    max_stretch: float | None = None
    p99_ms: float | None = None

    def __post_init__(self) -> None:
        if self.max_stretch is not None and self.max_stretch < 1.0:
            raise ValueError(f"max_stretch must be >= 1, got {self.max_stretch}")
        if self.p99_ms is not None and self.p99_ms <= 0:
            raise ValueError(f"p99_ms must be > 0, got {self.p99_ms}")

    def describe(self) -> str:
        parts = [f"backend={self.backend}"]
        if self.max_stretch is not None:
            parts.append(f"stretch<={self.max_stretch:g}")
        if self.p99_ms is not None:
            parts.append(f"p99<{self.p99_ms:g}ms")
        return " ".join(parts)


class PlannedProvider(_TimedProvider):
    """Route each batch to one of several providers from a :class:`PlanTarget`.

    Routing state is the per-backend latency accounting the providers
    themselves keep (EWMA + p99 ring of per-query wall time); unsampled
    backends are probed cheapest-first so the EWMAs converge without a
    separate warmup phase.
    """

    name = "planned"

    def __init__(self, providers: dict, target: PlanTarget | None = None) -> None:
        super().__init__()
        if not providers:
            raise ValueError("PlannedProvider needs at least one provider")
        self.providers = dict(providers)
        self.target = target or PlanTarget()
        if self.target.backend != "auto" and self.target.backend not in self.providers:
            raise ValueError(
                f"unknown backend {self.target.backend!r} "
                f"(have: {', '.join(sorted(self.providers))})"
            )
        self.n = next(iter(self.providers.values())).n
        self.routed: dict[str, int] = {name: 0 for name in self.providers}

    @property
    def stretch_bound(self) -> float:
        """The declared bound of the worst backend the target can route to."""
        return max(p.stretch_bound for p in self._eligible())

    def cost_model(self) -> dict:
        return {
            "kind": "planned",
            "target": self.target.describe(),
            "backends": {n: p.cost_model() for n, p in self.providers.items()},
        }

    # -- routing --------------------------------------------------------
    def _eligible(self) -> list:
        """Providers the target allows, most accurate first."""
        if self.target.backend != "auto":
            return [self.providers[self.target.backend]]
        pool = [
            p
            for name, p in self.providers.items()
            if name != "tiered"  # tiered is an explicit mode, not an auto stop
        ]
        if self.target.max_stretch is not None:
            ok = [p for p in pool if p.stretch_bound <= self.target.max_stretch + 1e-9]
            # Nothing declared tight enough: serve the most accurate we have
            # rather than silently violating the target.
            pool = ok or [min(pool, key=lambda p: p.stretch_bound)]
        return sorted(pool, key=lambda p: p.stretch_bound)

    def choose(self) -> str:
        """The backend the next batch routes to (also used by the server
        to label micro-batches)."""
        candidates = self._eligible()
        if len(candidates) == 1:
            return candidates[0].name
        # Probe unsampled backends cheapest-declared-cost-first so the
        # latency model converges.
        order = {name: i for i, name in enumerate(BACKENDS)}
        unsampled = [p for p in candidates if p.ewma_s is None]
        if unsampled:
            return min(unsampled, key=lambda p: order.get(p.name, 99)).name
        if self.target.p99_ms is not None:
            budget = self.target.p99_ms / 1e3
            for p in candidates:  # most accurate first
                p99 = p.observed_p99_s()
                if p99 is not None and p99 <= budget:
                    return p.name
            # SLO unreachable: degrade to the fastest answer we can give.
        return min(candidates, key=lambda p: p.ewma_s).name

    def query(self, u: int, v: int, *, backend: str | None = None) -> float:
        name = backend or self.choose()
        if name not in self.providers:
            raise ValueError(
                f"unknown backend {name!r} (have: {', '.join(sorted(self.providers))})"
            )
        start = time.perf_counter()
        out = self.providers[name].query(u, v)
        self.routed[name] += 1
        self._record(1, time.perf_counter() - start)
        return out

    def query_many(self, pairs, *, backend: str | None = None) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return np.zeros(0)
        pairs = pairs.reshape(-1, 2)
        name = backend or self.choose()
        if name not in self.providers:
            raise ValueError(
                f"unknown backend {name!r} (have: {', '.join(sorted(self.providers))})"
            )
        start = time.perf_counter()
        out = self.providers[name].query_many(pairs)
        self.routed[name] += int(pairs.shape[0])
        self._record(int(pairs.shape[0]), time.perf_counter() - start)
        return out

    def stats(self) -> dict:
        return {
            **super().stats(),
            "target": self.target.describe(),
            "routed": dict(self.routed),
            "backends": {n: p.stats() for n, p in self.providers.items()},
        }


# ----------------------------------------------------------------------
# Bundles: one artifact, all three backends
# ----------------------------------------------------------------------
@dataclass
class ProviderBundle:
    """Everything one serving replica needs for all three answer paths:
    the input graph (exact rows), the built spanner + its parameters
    (oracle rows), and the full Thorup–Zwick state (sketch walks).
    Persisted side by side under one key by
    :meth:`~repro.service.store.ArtifactStore.save_bundle`.
    """

    graph: WeightedGraph
    spanner: WeightedGraph
    k: int
    t: int | None
    t_effective: int
    sketch: DistanceSketch
    meta: dict = field(default_factory=dict)

    @property
    def n(self) -> int:
        return self.graph.n

    @property
    def oracle_stretch(self) -> float:
        return general_stretch_bound(self.k, self.t_effective)


def build_providers(
    bundle: ProviderBundle,
    *,
    cache_rows: int = SpannerDistanceOracle.DEFAULT_CACHE_ROWS,
    oracle_solve_rows=None,
) -> dict:
    """The provider set a :class:`ProviderBundle` serves.

    ``oracle_solve_rows`` substitutes the serving engine's (possibly
    sharded) row solver for the oracle path; the exact path always solves
    in-process (its rows are on the full input graph, which the shared
    spanner segment does not hold).
    """
    exact = RowProvider("exact", bundle.graph, stretch=1.0, cache_rows=cache_rows)
    oracle = RowProvider(
        "oracle",
        bundle.spanner,
        stretch=bundle.oracle_stretch,
        cache_rows=cache_rows,
        solve_rows=oracle_solve_rows,
    )
    sketch = SketchProvider(bundle.sketch)
    return {
        "exact": exact,
        "oracle": oracle,
        "sketch": sketch,
        "tiered": TieredProvider(sketch, oracle),
    }
