"""Cross-algorithm benchmark suite: the perf trajectory's spine.

Every algorithm in the registry — all spanner constructions and both APSP
pipelines — is swept through a fixed graph-family × size protocol, and the
wall time, edges/second throughput, and spanner size land in one
JSON-ready record (committed as ``BENCH_suite.json`` at the repo root, see
EXPERIMENTS.md for the protocol).  Two consumers:

* ``repro bench`` (CLI) runs the suite, writes the snapshot, and — given a
  baseline — fails on a >2x per-algorithm slowdown, with explicit
  timer-noise skips so CI on slow shared runners never flags phantom
  regressions (mirroring :func:`benchmarks.bench_runner.speedup_gate`).
* ``scripts/bench_snapshot.py --suite full`` regenerates every BENCH file
  and prints the trajectory diff.

The record also carries a **hot-loop before/after harness**: the
vectorized streaming pass processing and unweighted ball collection are
timed against the frozen pre-vectorization references
(:func:`~repro.streaming.spanner_stream.streaming_spanner_reference`,
:func:`~repro.core.unweighted.unweighted_spanner_reference`) on the same
inputs, asserting bit-identical outputs — the measured speedups are the
numbers the acceptance gates (≥5x pass processing, ≥3x ball collection at
n=2048) defend.
"""

from __future__ import annotations

import os
import time

import numpy as np

__all__ = [
    "run_suite",
    "format_table",
    "slowdown_gate",
    "hot_loop_gates",
    "SLOWDOWN_GATE",
    "NOISE_FLOOR_S",
    "STREAMING_PASS_GATE",
    "UNWEIGHTED_BALLS_GATE",
]

#: A tracked algorithm may not get more than this factor slower than the
#: committed snapshot.
SLOWDOWN_GATE = 2.0

#: Baseline timings below this are timer noise; the slowdown gate skips
#: them instead of flagging phantom regressions.
NOISE_FLOOR_S = 0.02

#: Acceptance floors for the hot-loop before/after harness (full size).
STREAMING_PASS_GATE = 5.0
UNWEIGHTED_BALLS_GATE = 3.0

#: Per-algorithm sweep configuration.  Spanners run at one size per mode;
#: the APSP pipelines (which simulate collection on top) use a smaller n.
FULL_CONFIG = {
    "spanner_graph": "er:2048:0.01",
    "apsp_graph": "er:512:0.05",
    "k": 6,
    "seed": 0,
    "trials": 2,
    "hot_n": 2048,
    "hot_p": 0.01,
}
#: Smoke sizes are chosen so the slower algorithms (mpc, cc, streaming,
#: unweighted, the APSP pipelines) land *above* the timer-noise floor —
#: the CI slowdown gate then has real coverage while the fast in-memory
#: constructions are skipped with an explicit reason.
SMOKE_CONFIG = {
    "spanner_graph": "er:1024:0.03",
    "apsp_graph": "er:256:0.08",
    "k": 4,
    "seed": 0,
    "trials": 1,
    "hot_n": 256,
    "hot_p": 0.08,
}


def _best_of(fn, trials: int) -> tuple[float, object]:
    best = None
    result = None
    for _ in range(max(trials, 1)):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return float(best), result


def _sweep_algorithms(cfg: dict) -> dict:
    """Run every registered algorithm once per protocol cell."""
    from .graphs.specs import GraphSpec
    from .registry import iter_algorithms

    out: dict[str, dict] = {}
    graphs: dict[tuple[str, str], object] = {}
    for spec in iter_algorithms():
        graph_spec = cfg["apsp_graph"] if spec.kind == "apsp" else cfg["spanner_graph"]
        weights = "uniform" if spec.weighted else "unit"
        key = (graph_spec, weights)
        if key not in graphs:
            graphs[key] = GraphSpec.parse(graph_spec).build(
                weights=weights, seed=cfg["seed"]
            )
        g = graphs[key]
        g.csr  # exclude one-time adjacency construction from the timings
        k = None if spec.kind == "apsp" else cfg["k"]
        spec.run(g, k=k, t=None, rng=cfg["seed"])  # untimed warmup: lazy imports
        wall, res = _best_of(
            lambda: spec.run(g, k=k, t=None, rng=cfg["seed"]), cfg["trials"]
        )
        record = {
            "graph": graph_spec,
            "weights": weights,
            "n": g.n,
            "m": g.m,
            "k": k,
            "kind": spec.kind,
            "model": spec.model,
            "trials": cfg["trials"],
            "wall_s": round(wall, 5),
            "edges_per_s": round(g.m / max(wall, 1e-9), 1),
        }
        if spec.kind == "spanner":
            record["spanner_edges"] = int(res.num_edges)
        else:
            record["spanner_edges"] = int(res.spanner.m)
            record["rounds"] = int(res.rounds)
        out[spec.name] = record
    return out


def _hot_loop_harness(cfg: dict) -> dict:
    """Before/after timings of the vectorized hot loops vs the frozen
    references, with bit-identical-output checks on the same seeds."""
    from .core.unweighted import (
        _capped_bfs,
        unweighted_spanner,
        unweighted_spanner_reference,
    )
    from .graphs.distances import batched_capped_bfs
    from .graphs.generators import erdos_renyi
    from .streaming import EdgeStream, streaming_spanner, streaming_spanner_reference
    from .streaming.spanner_stream import (
        _pass_group_minima,
        _pass_group_minima_reference,
    )

    n, p, seed = cfg["hot_n"], cfg["hot_p"], cfg["seed"]
    k = cfg["k"]
    out: dict[str, dict] = {}

    # --- Streaming pass processing (the per-epoch stream reduction) -------
    g = erdos_renyi(n, p, weights="uniform", rng=seed)
    g.csr
    labels = np.arange(g.n)
    alive = np.ones(g.n, dtype=bool)

    def one_pass(fn):
        stream = EdgeStream(g, chunk=4096)
        return lambda: fn(stream, labels, alive, [])

    vec_s, _ = _best_of(one_pass(_pass_group_minima), 3)
    ref_s, _ = _best_of(one_pass(_pass_group_minima_reference), 3)
    res_vec = streaming_spanner(g, k, rng=seed)
    res_ref = streaming_spanner_reference(g, k, rng=seed)
    stream_identical = bool(np.array_equal(res_vec.edge_ids, res_ref.edge_ids))
    e2e_vec, _ = _best_of(lambda: streaming_spanner(g, k, rng=seed), 2)
    e2e_ref, _ = _best_of(lambda: streaming_spanner_reference(g, k, rng=seed), 2)
    out["streaming_pass"] = {
        "n": g.n,
        "m": g.m,
        "k": k,
        "reference_s": round(ref_s, 5),
        "vectorized_s": round(vec_s, 5),
        "speedup": round(ref_s / max(vec_s, 1e-9), 2),
        "identical": stream_identical,
        "end_to_end_reference_s": round(e2e_ref, 5),
        "end_to_end_vectorized_s": round(e2e_vec, 5),
        "end_to_end_speedup": round(e2e_ref / max(e2e_vec, 1e-9), 2),
    }

    # --- Unweighted ball collection (capped multi-source BFS) -------------
    gu = erdos_renyi(n, p, weights="unit", rng=seed)
    gu.csr
    cap = max(4, int(np.ceil(gu.n ** 0.25)))  # the gamma=0.5 default cap
    hops = 4 * k
    sources = np.arange(gu.n, dtype=np.int64)

    def scalar_balls():
        for v in range(gu.n):
            _capped_bfs(gu, v, hops, cap)

    vec_s, _ = _best_of(lambda: batched_capped_bfs(gu, sources, hops, cap), 3)
    ref_s, _ = _best_of(scalar_balls, 3)
    u_vec = unweighted_spanner(gu, k, rng=seed)
    u_ref = unweighted_spanner_reference(gu, k, rng=seed)
    balls_identical = bool(np.array_equal(u_vec.edge_ids, u_ref.edge_ids))
    e2e_vec, _ = _best_of(lambda: unweighted_spanner(gu, k, rng=seed), 2)
    e2e_ref, _ = _best_of(lambda: unweighted_spanner_reference(gu, k, rng=seed), 2)
    out["unweighted_balls"] = {
        "n": gu.n,
        "m": gu.m,
        "hops": hops,
        "cap": cap,
        "reference_s": round(ref_s, 5),
        "vectorized_s": round(vec_s, 5),
        "speedup": round(ref_s / max(vec_s, 1e-9), 2),
        "identical": balls_identical,
        "end_to_end_reference_s": round(e2e_ref, 5),
        "end_to_end_vectorized_s": round(e2e_vec, 5),
        "end_to_end_speedup": round(e2e_ref / max(e2e_vec, 1e-9), 2),
    }
    return out


def run_suite(*, smoke: bool = False, with_smoke_ref: bool | None = None) -> dict:
    """Execute the cross-algorithm protocol; returns the JSON-ready record.

    Full runs embed a ``smoke_ref`` section (the smoke-scale sweep), so a
    CI smoke run always has same-scale baseline timings to gate against in
    the committed full snapshot.
    """
    cfg = SMOKE_CONFIG if smoke else FULL_CONFIG
    if with_smoke_ref is None:
        with_smoke_ref = not smoke
    record = {
        "suite": "cross-algorithm",
        "smoke": smoke,
        "cpu_count": os.cpu_count(),
        "config": dict(cfg),
        "algorithms": _sweep_algorithms(cfg),
        "hot_loops": _hot_loop_harness(cfg),
    }
    if with_smoke_ref and not smoke:
        record["smoke_ref"] = {
            "config": dict(SMOKE_CONFIG),
            "algorithms": _sweep_algorithms(SMOKE_CONFIG),
        }
    return record


def _baseline_algorithms(record: dict, baseline: dict) -> tuple[dict | None, str]:
    """The baseline's per-algorithm table comparable to ``record``'s."""
    if record.get("smoke") == baseline.get("smoke"):
        return baseline.get("algorithms"), "same-mode baseline"
    if record.get("smoke") and "smoke_ref" in baseline:
        return baseline["smoke_ref"].get("algorithms"), "full baseline's smoke_ref"
    return None, "baseline has no comparable-mode timings"


def slowdown_gate(
    record: dict,
    baseline: dict,
    *,
    factor: float = SLOWDOWN_GATE,
    noise_floor_s: float = NOISE_FLOOR_S,
) -> tuple[bool, list[str]]:
    """Per-algorithm >``factor``x slowdown gate against a snapshot.

    Returns ``(ok, reasons)``.  Gracefully skips (with an explicit reason)
    when the baseline has no comparable-mode timings, and per algorithm
    when the baseline wall time sits under the timer-noise floor — a 3ms
    cell that doubles is scheduler jitter, not a regression.

    Ratios are normalized by their median before gating: the snapshot may
    have been recorded on different hardware (CI runner vs dev box), and a
    uniformly slower machine shifts *every* ratio by the same factor —
    that common mode is machine speed, not a regression.  A genuine
    per-algorithm regression still sticks out against the median.
    """
    base, how = _baseline_algorithms(record, baseline)
    if base is None:
        return True, [f"skipped: {how}"]
    reasons: list[str] = []
    cells: list[tuple[str, float, float, float]] = []
    for name, rec in sorted(record.get("algorithms", {}).items()):
        old = base.get(name)
        if old is None:
            reasons.append(f"{name}: new algorithm, no baseline — skipped")
            continue
        if old.get("graph") != rec.get("graph") or old.get("k") != rec.get("k"):
            reasons.append(f"{name}: protocol changed, baseline not comparable — skipped")
            continue
        old_s = float(old.get("wall_s", 0.0))
        new_s = float(rec.get("wall_s", 0.0))
        if old_s < noise_floor_s:
            reasons.append(
                f"{name}: baseline {old_s*1000:.1f}ms under the "
                f"{noise_floor_s*1000:.0f}ms noise floor — skipped"
            )
            continue
        cells.append((name, old_s, new_s, new_s / max(old_s, 1e-9)))
    if len(cells) < 3:
        reasons.append(
            f"skipped: only {len(cells)} gate-eligible cells — too few for a "
            "machine-speed-normalized verdict"
        )
        return True, reasons
    med = float(np.median([c[3] for c in cells]))
    reasons.append(f"machine-speed factor (median ratio): {med:.2f}x")
    ok = True
    for name, old_s, new_s, ratio in cells:
        norm = ratio / max(med, 1e-9)
        if norm > factor:
            ok = False
            reasons.append(
                f"{name}: {old_s:.3f}s -> {new_s:.3f}s ({ratio:.2f}x raw, "
                f"{norm:.2f}x normalized) exceeds the {factor:.1f}x slowdown gate"
            )
        else:
            reasons.append(
                f"{name}: {old_s:.3f}s -> {new_s:.3f}s ({norm:.2f}x normalized) ok"
            )
    return ok, reasons


def hot_loop_gates(record: dict) -> tuple[bool, list[str]]:
    """The acceptance floors for the vectorized hot loops (full size only).

    Smoke-scale runs skip with an explicit reason — at tiny n the numpy
    constant factors swamp the asymptotics and the numbers are noise.
    """
    hot = record.get("hot_loops", {})
    reasons: list[str] = []
    ok = True
    smoke = bool(record.get("smoke"))
    for key, floor in (
        ("streaming_pass", STREAMING_PASS_GATE),
        ("unweighted_balls", UNWEIGHTED_BALLS_GATE),
    ):
        rec = hot.get(key)
        if rec is None:
            ok = False
            reasons.append(f"{key}: missing from record")
            continue
        # Bit-identity is scale-independent — enforced even at smoke size.
        if not rec.get("identical", False):
            ok = False
            reasons.append(f"{key}: vectorized output NOT bit-identical to reference")
            continue
        if smoke:
            reasons.append(
                f"{key}: identical; speedup floor skipped (smoke-scale "
                "timings are noise)"
            )
            continue
        speedup = float(rec.get("speedup", 0.0))
        if speedup < floor:
            ok = False
            reasons.append(f"{key}: {speedup:.2f}x below the {floor:.0f}x floor")
        else:
            reasons.append(f"{key}: {speedup:.2f}x meets the {floor:.0f}x floor")
    return ok, reasons


def format_table(record: dict) -> str:
    mode = "smoke" if record.get("smoke") else "full"
    lines = [
        f"cross-algorithm suite ({mode}, cpu_count={record.get('cpu_count')})",
        f"  {'algorithm':<16} {'graph':<14} {'wall':>9} {'edges/s':>12} {'spanner':>8}",
    ]
    for name, rec in sorted(record.get("algorithms", {}).items()):
        lines.append(
            f"  {name:<16} {rec['graph']:<14} {rec['wall_s']:>8.3f}s "
            f"{rec['edges_per_s']:>12,.0f} {rec['spanner_edges']:>8}"
        )
    hot = record.get("hot_loops", {})
    for key, rec in sorted(hot.items()):
        lines.append(
            f"  hot-loop {key}: {rec['reference_s']*1000:.1f}ms -> "
            f"{rec['vectorized_s']*1000:.1f}ms ({rec['speedup']:.1f}x, "
            f"identical={rec['identical']})"
        )
    return "\n".join(lines)
