"""Multi-pass streaming substrate and the streaming spanner (Section 2.4)."""

from .spanner_stream import streaming_spanner, streaming_spanner_reference
from .stream import EdgeStream, StreamStats

__all__ = ["EdgeStream", "StreamStats", "streaming_spanner", "streaming_spanner_reference"]
