"""The paper's contraction spanner as a multi-pass streaming algorithm.

Section 2.4: the ``t = 1`` algorithm runs in ``log k`` *passes* over a
stream (one pass per epoch — each pass computes the per-cluster-pair
minimum edges the epoch needs) and achieves stretch ``O(k^{log 3})`` on
*weighted* graphs, versus [AGM12]'s ``k^{log 5}`` in the same ``log k``
passes for unweighted dynamic streams.

Cross-pass state is ``O(n log k)``: the cluster label per vertex, the
alive flag per cluster, the sampling coins, and — per epoch — a label
snapshot plus the set of *discarded cluster-pair groups* (the streaming
stand-in for the in-memory engine's per-edge ``alive`` bits: a later pass
must not re-select an edge whose group was already consumed, or the
Theorem 5.11 radius argument breaks).  The per-pass working set — one
running minimum per adjacent cluster pair — is measured and reported (the
dynamic-stream literature compresses it with linear sketches; see
DESIGN.md).

Because a stream cannot mark individual edges dead, cluster adjacency is
re-derived from labels each pass; this makes the algorithm exactly the
Section 5 general algorithm with ``t = 1`` (where Step C's contraction
keeps the minimum edge per super-node pair and everything re-enters), so
the Theorem 5.11/5.15 guarantees apply verbatim.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.results import IterationStats, SpannerResult, StreamStats
from ..graphs.graph import WeightedGraph, sorted_lookup
from .stream import EdgeStream

__all__ = ["streaming_spanner"]


def _pass_group_minima(
    stream: EdgeStream,
    labels: np.ndarray,
    alive: np.ndarray,
    discarded: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[dict[tuple[int, int], tuple[float, int]], int]:
    """One pass: min-weight edge per *ordered* adjacent cluster pair.

    Skips edges that are intra-cluster, touch a dead cluster, or belong to
    a cluster-pair group a previous epoch discarded (``discarded`` holds
    one ``(labels snapshot, sorted dead-pair keys)`` record per epoch —
    the streaming stand-in for the in-memory engine's per-edge ``alive``
    bits; without it a later pass can pick an already-consumed edge as a
    pair minimum and void the Theorem 5.11 radius argument).  Returns the
    group-minimum dict and the peak working-set size.
    """
    n = labels.size
    best: dict[tuple[int, int], tuple[float, int]] = {}
    for eu, ev, ew, eid in stream.passes():
        cu = labels[eu]
        cv = labels[ev]
        ok = (cu != cv) & alive[cu] & alive[cv]
        for old_labels, dead_keys in discarded:
            if dead_keys.size == 0:
                continue
            ou = old_labels[eu]
            ov = old_labels[ev]
            # An edge died if either direction of its then-current group
            # was discarded.
            for a, b in ((ou, ov), (ov, ou)):
                dead, _ = sorted_lookup(dead_keys, a * np.int64(n) + b)
                ok &= ~dead
        # Vectorize within the chunk: one leader per ordered pair, then a
        # small dict merge (running minima across chunks).
        a = np.concatenate([cu[ok], cv[ok]])
        b = np.concatenate([cv[ok], cu[ok]])
        w = np.concatenate([ew[ok], ew[ok]])
        e = np.concatenate([eid[ok], eid[ok]])
        if a.size == 0:
            continue
        order = np.lexsort((e, w, b, a))
        a, b, w, e = a[order], b[order], w[order], e[order]
        lead = np.ones(a.size, dtype=bool)
        lead[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
        for aa, bb, ww, ee in zip(a[lead], b[lead], w[lead], e[lead]):
            key = (int(aa), int(bb))
            cand = (float(ww), int(ee))
            if key not in best or cand < best[key]:
                best[key] = cand
    return best, len(best)


def streaming_spanner(
    g: WeightedGraph,
    k: int,
    *,
    rng=None,
    chunk: int = 4096,
    order_seed: int = 0,
) -> SpannerResult:
    """Build the ``t = 1`` contraction spanner in ``ceil(log2 k) + 1``
    stream passes.

    Returns a :class:`SpannerResult` whose ``extra['stream']`` holds the
    pass/working-set accounting.

    Examples
    --------
    >>> from repro.graphs import erdos_renyi, edge_stretch
    >>> g = erdos_renyi(128, 0.2, weights="uniform", rng=1)
    >>> res = streaming_spanner(g, 4, rng=1)
    >>> res.extra["stream"]["passes"] <= 3   # ceil(log2 4) + 1
    True
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = np.random.default_rng(rng) if not isinstance(rng, np.random.Generator) else rng

    if k == 1 or g.m == 0:
        res = SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="streaming-spanner",
            k=k,
            t=1,
            iterations=0,
        )
        res.stream_stats = StreamStats(passes=1 if g.m else 0)
        return res

    n = g.n
    stream = EdgeStream(g, chunk=chunk, order_seed=order_seed)
    epochs = max(1, math.ceil(math.log2(k)))
    labels = np.arange(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    spanner: set[int] = set()
    stats: list[IterationStats] = []
    # Per-epoch discard records: (labels snapshot, sorted dead-pair keys).
    discarded: list[tuple[np.ndarray, np.ndarray]] = []

    for epoch in range(1, epochs + 1):
        p = float(n) ** (-(2.0 ** (epoch - 1)) / k)
        best, working = _pass_group_minima(stream, labels, alive, discarded)
        stream.end_pass(working)
        if not best:
            break

        live_ids = np.flatnonzero(alive)
        # Only clusters with vertices matter; restrict to ones seen adjacent
        # plus all alive (harmless).
        sampled = np.zeros(n, dtype=bool)
        sampled[live_ids] = rng.random(live_ids.size) < p
        num_added = 0

        # Per unsampled alive cluster: neighbors from the pass summary.
        neighbors: dict[int, list[tuple[float, int, int]]] = {}
        for (a, b), (w, e) in best.items():
            if alive[a] and not sampled[a]:
                neighbors.setdefault(a, []).append((w, e, b))
        merge_target = np.full(n, -1, dtype=np.int64)
        died = np.zeros(n, dtype=bool)
        dead_keys: list[int] = []
        for c, nbrs in neighbors.items():
            nbrs.sort()
            samp = [(w, e, b) for (w, e, b) in nbrs if sampled[b]]
            if samp:
                wj, ej, bj = samp[0]
                spanner.add(ej)
                num_added += 1
                merge_target[c] = bj
                dead_keys.append(c * n + bj)  # the join group is consumed
                for w, e, b in nbrs:
                    if w < wj and b != bj:
                        spanner.add(e)
                        num_added += 1
                        dead_keys.append(c * n + b)
            else:
                for _, e, _ in nbrs:
                    spanner.add(e)
                    num_added += 1
                died[c] = True
                dead_keys.extend(c * n + b for (_, _, b) in nbrs)
        # Unsampled alive clusters with no neighbors retire silently.
        seen = np.zeros(n, dtype=bool)
        seen[list(neighbors.keys())] = True
        idle = alive & ~sampled & ~seen
        died |= idle

        discarded.append(
            (labels.copy(), np.unique(np.asarray(dead_keys, dtype=np.int64)))
        )

        merged = np.flatnonzero(merge_target >= 0)
        if merged.size:
            relabel = np.arange(n, dtype=np.int64)
            relabel[merged] = merge_target[merged]
            labels = relabel[labels]
            alive[merged] = False
        alive[died] = False

        stats.append(
            IterationStats(
                epoch=epoch,
                iteration=1,
                num_clusters=int(live_ids.size),
                num_sampled=int(sampled[live_ids].sum()),
                num_alive_edges=len(best) // 2,
                num_added=num_added,
                sampling_probability=p,
                max_radius_bound=0.0,
            )
        )

    # Final pass: remaining inter-cluster minima join the spanner.
    best, working = _pass_group_minima(stream, labels, alive, discarded)
    stream.end_pass(working)
    phase2 = {e for (_, e) in best.values()}
    spanner |= phase2

    eids = np.array(sorted(spanner), dtype=np.int64)
    res = SpannerResult(
        edge_ids=eids,
        algorithm="streaming-spanner",
        k=k,
        t=1,
        iterations=len(stats),
        stats=stats,
        phase2_added=len(phase2),
    )
    res.stream_stats = StreamStats(
        passes=stream.stats.passes,
        peak_working_records=stream.stats.peak_working_records,
        per_pass_working=list(stream.stats.per_pass_working),
        edges_streamed=stream.stats.edges_streamed,
    )
    return res
