"""The paper's contraction spanner as a multi-pass streaming algorithm.

Section 2.4: the ``t = 1`` algorithm runs in ``log k`` *passes* over a
stream (one pass per epoch — each pass computes the per-cluster-pair
minimum edges the epoch needs) and achieves stretch ``O(k^{log 3})`` on
*weighted* graphs, versus [AGM12]'s ``k^{log 5}`` in the same ``log k``
passes for unweighted dynamic streams.

Cross-pass state is ``O(n log k)``: the cluster label per vertex, the
alive flag per cluster, the sampling coins, and — per epoch — a label
snapshot plus the set of *discarded cluster-pair groups* (the streaming
stand-in for the in-memory engine's per-edge ``alive`` bits: a later pass
must not re-select an edge whose group was already consumed, or the
Theorem 5.11 radius argument breaks).  The per-pass working set — one
running minimum per adjacent cluster pair — is measured and reported (the
dynamic-stream literature compresses it with linear sketches; see
DESIGN.md).

Because a stream cannot mark individual edges dead, cluster adjacency is
re-derived from labels each pass; this makes the algorithm exactly the
Section 5 general algorithm with ``t = 1`` (where Step C's contraction
keeps the minimum edge per super-node pair and everything re-enters), so
the Theorem 5.11/5.15 guarantees apply verbatim.

Vectorization strategy: every pass consumes the stream through
:meth:`~repro.streaming.stream.EdgeStream.passes_chunked` and applies the
same ``np.lexsort`` + segment-minima grouping the in-memory engine uses
(the paper's own Section 6 MPC sort) — chunks are filtered as arrays and
folded into the running per-pair minima a few chunks at a time, so pass
work is O(chunk) numpy operations per chunk, memory stays at the
streaming working set O(chunk + pairs), and no Python loop ever touches
edges or cluster pairs.
Epoch decisions (join / connect-closer / retire) are segment operations
over the pair-minima arrays, and the discarded-group records are
structured cluster-pair CSRs (:class:`_DiscardRecord`) — not ``c * n + b``
integer keys, whose O(n²) range needed ``n`` threaded everywhere.

:func:`streaming_spanner_reference` preserves the pre-vectorization
implementation verbatim (dict-of-pairs running minima, scalar epoch loop,
integer-encoded dead keys).  The equivalence tests and the benchmark
suite's before/after harness certify the two emit bit-identical spanners
on every seed.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.params import coerce_rng
from ..core.results import IterationStats, SpannerResult, StreamStats
from ..graphs.graph import WeightedGraph, lockstep_run_lookup, sorted_lookup
from .stream import EdgeStream

__all__ = ["streaming_spanner", "streaming_spanner_reference"]


class _DiscardRecord:
    """One epoch's discarded cluster-pair groups as a structured mask.

    Stores the epoch's label snapshot plus a CSR over *cluster pairs*: for
    cluster ``a``, the discarded partner clusters live (sorted) in
    ``dead_b[indptr[a]:indptr[a+1]]``.  This replaces the previous
    ``c * n + b`` integer dead-key encoding — same semantics, but keyed on
    the pair itself (no O(n²)-range keys, no ``n`` threaded through the
    lookups), and probed with an O(1) indptr gather plus a lockstep binary
    search instead of per-key arithmetic.
    """

    __slots__ = ("labels", "indptr", "dead_b")

    def __init__(self, labels: np.ndarray, dead_a: np.ndarray, dead_b: np.ndarray):
        # (dead_a, dead_b) arrive lexsorted by (a, b).
        self.labels = labels
        counts = np.bincount(dead_a, minlength=labels.size)
        self.indptr = np.zeros(labels.size + 1, dtype=np.int64)
        np.cumsum(counts, out=self.indptr[1:])
        self.dead_b = dead_b

    @property
    def num_pairs(self) -> int:
        return int(self.dead_b.size)

    def probe(self, qa: np.ndarray, qb: np.ndarray) -> np.ndarray:
        """Vectorized: is the *ordered* pair ``(qa, qb)`` discarded?

        The ``a``-runs come straight from the CSR indptr; the ``b`` search
        within each run is the shared lockstep binary-search kernel.
        """
        return lockstep_run_lookup(
            self.dead_b, self.indptr[qa], self.indptr[qa + 1], qb
        )


def _pass_group_minima(
    stream: EdgeStream,
    labels: np.ndarray,
    alive: np.ndarray,
    discarded: list[_DiscardRecord],
) -> tuple[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray], int]:
    """One pass: min-weight edge per *ordered* adjacent cluster pair.

    Skips edges that are intra-cluster, touch a dead cluster, or belong to
    a cluster-pair group a previous epoch discarded (``discarded`` holds
    one ``(labels snapshot, dead pair a-keys, dead pair b-keys)`` record
    per epoch — the streaming stand-in for the in-memory engine's per-edge
    ``alive`` bits; without it a later pass can pick an already-consumed
    edge as a pair minimum and void the Theorem 5.11 radius argument).

    Returns ``((a, b, w, eid), working)``: per ordered adjacent pair
    ``a -> b`` the minimum ``(w, eid)`` edge, plus the peak working-set
    size (one record per ordered pair).  The minimum edge of ``E(a, b)``
    and of ``E(b, a)`` is the same record, so the pass reduces surviving
    *unordered* pairs and mirrors the minima into both directions at the
    end.  Filtered chunk rows are buffered and folded into the running
    pair minima (one lexsort + segment leaders per fold) whenever the
    buffer reaches a few chunks, so per-pass memory stays O(chunk + pairs)
    — the streaming-model working set, not O(m).
    """
    run_lo = np.zeros(0, dtype=np.int64)
    run_hi = np.zeros(0, dtype=np.int64)
    run_w = np.zeros(0)
    run_e = np.zeros(0, dtype=np.int64)
    buf: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
    buffered = 0
    fold_budget = 8 * stream.chunk

    def fold() -> None:
        nonlocal run_lo, run_hi, run_w, run_e, buf, buffered
        if not buf:
            return
        lo = np.concatenate([run_lo] + [t[0] for t in buf])
        hi = np.concatenate([run_hi] + [t[1] for t in buf])
        w = np.concatenate([run_w] + [t[2] for t in buf])
        e = np.concatenate([run_e] + [t[3] for t in buf])
        order = np.lexsort((e, w, hi, lo))
        lo, hi, w, e = lo[order], hi[order], w[order], e[order]
        lead = np.ones(lo.size, dtype=bool)
        lead[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
        run_lo, run_hi, run_w, run_e = lo[lead], hi[lead], w[lead], e[lead]
        buf = []
        buffered = 0

    for eu, ev, ew, eid in stream.passes_chunked():
        cu = labels[eu]
        cv = labels[ev]
        idx = np.flatnonzero((cu != cv) & alive[cu] & alive[cv])
        for rec in discarded:
            if rec.num_pairs == 0 or idx.size == 0:
                continue
            ou = rec.labels[eu[idx]]
            ov = rec.labels[ev[idx]]
            # An edge died if either direction of its then-current group
            # was discarded; only still-surviving rows are probed.
            dead = rec.probe(ou, ov)
            dead |= rec.probe(ov, ou)
            idx = idx[~dead]
        cu, cv = cu[idx], cv[idx]
        buf.append((np.minimum(cu, cv), np.maximum(cu, cv), ew[idx], eid[idx]))
        buffered += idx.size
        if buffered >= fold_budget:
            fold()
    fold()
    if run_lo.size == 0:
        z = np.zeros(0, dtype=np.int64)
        return (z, z, np.zeros(0), z), 0
    a = np.concatenate([run_lo, run_hi])
    b = np.concatenate([run_hi, run_lo])
    return (
        (a, b, np.concatenate([run_w, run_w]), np.concatenate([run_e, run_e])),
        int(a.size),
    )


def streaming_spanner(
    g: WeightedGraph,
    k: int,
    *,
    rng=None,
    chunk: int = 4096,
    order_seed: int = 0,
) -> SpannerResult:
    """Build the ``t = 1`` contraction spanner in ``ceil(log2 k) + 1``
    stream passes.

    Returns a :class:`SpannerResult` whose ``extra['stream']`` holds the
    pass/working-set accounting.

    Examples
    --------
    >>> from repro.graphs import erdos_renyi, edge_stretch
    >>> g = erdos_renyi(128, 0.2, weights="uniform", rng=1)
    >>> res = streaming_spanner(g, 4, rng=1)
    >>> res.extra["stream"]["passes"] <= 3   # ceil(log2 4) + 1
    True
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = coerce_rng(rng)

    if k == 1 or g.m == 0:
        res = SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="streaming-spanner",
            k=k,
            t=1,
            iterations=0,
        )
        res.stream_stats = StreamStats(passes=1 if g.m else 0)
        return res

    n = g.n
    stream = EdgeStream(g, chunk=chunk, order_seed=order_seed)
    epochs = max(1, math.ceil(math.log2(k)))
    labels = np.arange(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    spanner_parts: list[np.ndarray] = []
    stats: list[IterationStats] = []
    # Per-epoch discard records: label snapshot + CSR of dead cluster pairs.
    discarded: list[_DiscardRecord] = []

    for epoch in range(1, epochs + 1):
        p = float(n) ** (-(2.0 ** (epoch - 1)) / k)
        (pa, pb, pw, pe), working = _pass_group_minima(stream, labels, alive, discarded)
        stream.end_pass(working)
        if pa.size == 0:
            break

        live_ids = np.flatnonzero(alive)
        # Only clusters with vertices matter; restrict to ones seen adjacent
        # plus all alive (harmless).
        sampled = np.zeros(n, dtype=bool)
        sampled[live_ids] = rng.random(live_ids.size) < p

        # --- Per unsampled alive cluster: decide from the pass summary -----
        # Sort its pair minima by (sampled-first, w, eid, b); the segment's
        # first row is then either the join target (sampled) or proof that
        # no neighboring cluster was sampled (retire).
        proc = alive[pa] & ~sampled[pa]
        a = pa[proc]
        b = pb[proc]
        w = pw[proc]
        e = pe[proc]
        merge_target = np.full(n, -1, dtype=np.int64)
        died = np.zeros(n, dtype=bool)
        num_added = 0
        dead_a = np.zeros(0, dtype=np.int64)
        dead_b = np.zeros(0, dtype=np.int64)
        if a.size:
            nbr_sampled = sampled[b]
            order = np.lexsort((b, e, w, ~nbr_sampled, a))
            a, b, w, e = a[order], b[order], w[order], e[order]
            nbr_sampled = nbr_sampled[order]
            seg = np.ones(a.size, dtype=bool)
            seg[1:] = a[1:] != a[:-1]
            seg_id = np.cumsum(seg) - 1
            first_idx = np.flatnonzero(seg)
            joins = nbr_sampled[first_idx]  # per segment: has a sampled nbr
            join_w = np.where(joins, w[first_idx], np.inf)
            join_b = np.where(joins, b[first_idx], np.int64(-1))
            # A neighboring group is connected-and-discarded iff strictly
            # closer than the join edge (everything, when retiring).
            selected = (w < join_w[seg_id]) & (b != join_b[seg_id])
            selected[first_idx[joins]] = True  # the join group itself
            merge_target[a[first_idx[joins]]] = b[first_idx[joins]]
            died[a[first_idx[~joins]]] = True
            spanner_parts.append(e[selected])
            num_added = int(selected.sum())
            # Selected groups are exactly the consumed (discarded) ones.
            dead_a = a[selected]
            dead_b = b[selected]
            dorder = np.lexsort((dead_b, dead_a))
            dead_a, dead_b = dead_a[dorder], dead_b[dorder]
        # Unsampled alive clusters with no neighbors retire silently.
        seen = np.zeros(n, dtype=bool)
        seen[a] = True
        idle = alive & ~sampled & ~seen
        died |= idle

        discarded.append(_DiscardRecord(labels.copy(), dead_a, dead_b))

        merged = np.flatnonzero(merge_target >= 0)
        if merged.size:
            relabel = np.arange(n, dtype=np.int64)
            relabel[merged] = merge_target[merged]
            labels = relabel[labels]
            alive[merged] = False
        alive[died] = False

        stats.append(
            IterationStats(
                epoch=epoch,
                iteration=1,
                num_clusters=int(live_ids.size),
                num_sampled=int(sampled[live_ids].sum()),
                num_alive_edges=int(pa.size) // 2,
                num_added=num_added,
                sampling_probability=p,
                max_radius_bound=0.0,
            )
        )

    # Final pass: remaining inter-cluster minima join the spanner.
    (pa, pb, pw, pe), working = _pass_group_minima(stream, labels, alive, discarded)
    stream.end_pass(working)
    phase2 = np.unique(pe)
    spanner_parts.append(phase2)

    eids = (
        np.unique(np.concatenate(spanner_parts))
        if spanner_parts
        else np.zeros(0, dtype=np.int64)
    )
    res = SpannerResult(
        edge_ids=eids,
        algorithm="streaming-spanner",
        k=k,
        t=1,
        iterations=len(stats),
        stats=stats,
        phase2_added=int(phase2.size),
    )
    res.stream_stats = StreamStats(
        passes=stream.stats.passes,
        peak_working_records=stream.stats.peak_working_records,
        per_pass_working=list(stream.stats.per_pass_working),
        edges_streamed=stream.stats.edges_streamed,
    )
    return res


# ---------------------------------------------------------------------------
# Frozen pre-vectorization implementation.
#
# Kept verbatim (dict-of-pairs running minima, scalar per-cluster epoch loop,
# ``c * n + b`` integer-encoded dead keys) as the reference the equivalence
# tests and the benchmark suite's before/after harness compare against —
# the same role :func:`repro.graphs.distances.sssp_reference` plays for the
# distance layer.  Do not optimize this code.
# ---------------------------------------------------------------------------


def _pass_group_minima_reference(
    stream: EdgeStream,
    labels: np.ndarray,
    alive: np.ndarray,
    discarded: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[dict[tuple[int, int], tuple[float, int]], int]:
    """Pre-vectorization pass: dict of running pair minima (reference)."""
    n = labels.size
    best: dict[tuple[int, int], tuple[float, int]] = {}
    for eu, ev, ew, eid in stream.passes():
        cu = labels[eu]
        cv = labels[ev]
        ok = (cu != cv) & alive[cu] & alive[cv]
        for old_labels, dead_keys in discarded:
            if dead_keys.size == 0:
                continue
            ou = old_labels[eu]
            ov = old_labels[ev]
            for a, b in ((ou, ov), (ov, ou)):
                dead, _ = sorted_lookup(dead_keys, a * np.int64(n) + b)
                ok &= ~dead
        a = np.concatenate([cu[ok], cv[ok]])
        b = np.concatenate([cv[ok], cu[ok]])
        w = np.concatenate([ew[ok], ew[ok]])
        e = np.concatenate([eid[ok], eid[ok]])
        if a.size == 0:
            continue
        order = np.lexsort((e, w, b, a))
        a, b, w, e = a[order], b[order], w[order], e[order]
        lead = np.ones(a.size, dtype=bool)
        lead[1:] = (a[1:] != a[:-1]) | (b[1:] != b[:-1])
        for aa, bb, ww, ee in zip(a[lead], b[lead], w[lead], e[lead]):
            key = (int(aa), int(bb))
            cand = (float(ww), int(ee))
            if key not in best or cand < best[key]:
                best[key] = cand
    return best, len(best)


def streaming_spanner_reference(
    g: WeightedGraph,
    k: int,
    *,
    rng=None,
    chunk: int = 4096,
    order_seed: int = 0,
) -> SpannerResult:
    """Pre-vectorization :func:`streaming_spanner`, frozen as a reference.

    Bit-identical to :func:`streaming_spanner` on every ``(graph, k, rng,
    order_seed)`` — the equivalence tests assert it, and the benchmark
    suite measures the speedup of the vectorized path against this one.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rng = coerce_rng(rng)

    if k == 1 or g.m == 0:
        res = SpannerResult(
            edge_ids=np.arange(g.m, dtype=np.int64),
            algorithm="streaming-spanner",
            k=k,
            t=1,
            iterations=0,
        )
        res.stream_stats = StreamStats(passes=1 if g.m else 0)
        return res

    n = g.n
    stream = EdgeStream(g, chunk=chunk, order_seed=order_seed)
    epochs = max(1, math.ceil(math.log2(k)))
    labels = np.arange(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    spanner: set[int] = set()
    stats: list[IterationStats] = []
    discarded: list[tuple[np.ndarray, np.ndarray]] = []

    for epoch in range(1, epochs + 1):
        p = float(n) ** (-(2.0 ** (epoch - 1)) / k)
        best, working = _pass_group_minima_reference(stream, labels, alive, discarded)
        stream.end_pass(working)
        if not best:
            break

        live_ids = np.flatnonzero(alive)
        sampled = np.zeros(n, dtype=bool)
        sampled[live_ids] = rng.random(live_ids.size) < p
        num_added = 0

        neighbors: dict[int, list[tuple[float, int, int]]] = {}
        for (a, b), (w, e) in best.items():
            if alive[a] and not sampled[a]:
                neighbors.setdefault(a, []).append((w, e, b))
        merge_target = np.full(n, -1, dtype=np.int64)
        died = np.zeros(n, dtype=bool)
        dead_keys: list[int] = []
        for c, nbrs in neighbors.items():
            nbrs.sort()
            samp = [(w, e, b) for (w, e, b) in nbrs if sampled[b]]
            if samp:
                wj, ej, bj = samp[0]
                spanner.add(ej)
                num_added += 1
                merge_target[c] = bj
                dead_keys.append(c * n + bj)  # the join group is consumed
                for w, e, b in nbrs:
                    if w < wj and b != bj:
                        spanner.add(e)
                        num_added += 1
                        dead_keys.append(c * n + b)
            else:
                for _, e, _ in nbrs:
                    spanner.add(e)
                    num_added += 1
                died[c] = True
                dead_keys.extend(c * n + b for (_, _, b) in nbrs)
        seen = np.zeros(n, dtype=bool)
        seen[list(neighbors.keys())] = True
        idle = alive & ~sampled & ~seen
        died |= idle

        discarded.append(
            (labels.copy(), np.unique(np.asarray(dead_keys, dtype=np.int64)))
        )

        merged = np.flatnonzero(merge_target >= 0)
        if merged.size:
            relabel = np.arange(n, dtype=np.int64)
            relabel[merged] = merge_target[merged]
            labels = relabel[labels]
            alive[merged] = False
        alive[died] = False

        stats.append(
            IterationStats(
                epoch=epoch,
                iteration=1,
                num_clusters=int(live_ids.size),
                num_sampled=int(sampled[live_ids].sum()),
                num_alive_edges=len(best) // 2,
                num_added=num_added,
                sampling_probability=p,
                max_radius_bound=0.0,
            )
        )

    best, working = _pass_group_minima_reference(stream, labels, alive, discarded)
    stream.end_pass(working)
    phase2 = {e for (_, e) in best.values()}
    spanner |= phase2

    eids = np.array(sorted(spanner), dtype=np.int64)
    res = SpannerResult(
        edge_ids=eids,
        algorithm="streaming-spanner",
        k=k,
        t=1,
        iterations=len(stats),
        stats=stats,
        phase2_added=len(phase2),
    )
    res.stream_stats = StreamStats(
        passes=stream.stats.passes,
        peak_working_records=stream.stats.peak_working_records,
        per_pass_working=list(stream.stats.per_pass_working),
        edges_streamed=stream.stats.edges_streamed,
    )
    return res
