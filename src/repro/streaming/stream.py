"""Multi-pass edge-stream substrate.

Section 2.4 of the paper compares its contraction framework against
contraction-based *dynamic stream* spanner algorithms ([AGM12]): "a pass
corresponds to one round of communication in MPC".  This module provides
the pass-accounting machinery: an :class:`EdgeStream` that replays a
graph's edges in a fixed arbitrary order, chunk by chunk, counting passes;
and a :class:`StreamStats` record of passes and peak per-pass working
memory.

The cross-pass state an algorithm may keep must be ``O(n)``-ish (cluster
labels); the per-pass working set (e.g. running group minima) is measured
and reported rather than enforced — the sketching machinery that squeezes
it into ``O(n^{1+1/k})`` in the dynamic-stream literature is out of scope
and documented as a substitution in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import membudget
from ..core.params import coerce_rng
from ..graphs.graph import WeightedGraph

__all__ = ["EdgeStream", "StreamStats"]

# Per-edge working cost of one streamed chunk: the four yielded arrays
# (u, v, w, eid — 8 bytes each) plus a comparable allowance for the
# consumer's fold scratch (group keys, minima, masks).
_EDGE_BYTES = 64


@dataclass
class StreamStats:
    """Accounting for one streaming execution."""

    passes: int = 0
    edges_streamed: int = 0
    peak_working_records: int = 0
    per_pass_working: list[int] = field(default_factory=list)

    def record_pass(self, working_records: int) -> None:
        self.passes += 1
        self.peak_working_records = max(self.peak_working_records, working_records)
        self.per_pass_working.append(working_records)


class EdgeStream:
    """Replays a graph's edge list in a fixed pseudo-random order.

    Parameters
    ----------
    g:
        The underlying graph.
    chunk:
        Edges yielded per chunk (models the stream buffer).  ``None``
        (the default) autotunes through the memory budget resolver
        (:mod:`repro.core.membudget`); passing an explicit chunk pins the
        historical fixed-size behaviour.
    order_seed:
        Seed for the arbitrary-but-fixed stream order; the same stream
        must present edges in the same order on every pass.
    """

    def __init__(
        self, g: WeightedGraph, *, chunk: int | None = None, order_seed: int = 0
    ) -> None:
        if chunk is None:
            chunk = membudget.chunk_edges(entry_bytes=_EDGE_BYTES)
        if chunk < 1:
            raise ValueError("chunk must be positive")
        self.g = g
        self.chunk = chunk
        rng = coerce_rng(order_seed)
        self._order = rng.permutation(g.m)
        self.stats = StreamStats()

    def __len__(self) -> int:
        return self.g.m

    def passes_chunked(self, chunk_size: int | None = None):
        """Yield ``(u, v, w, eid)`` chunk arrays for one full pass.

        This is the primary pass API: each yield hands the consumer a whole
        chunk of edges as numpy arrays, so per-pass work is O(chunk) array
        operations rather than O(m) Python iterations.  ``chunk_size``
        overrides the stream's configured chunk for this pass only (the
        stream order is unchanged — only the batching granularity moves).

        Callers iterate this once per pass; pass accounting happens via
        :meth:`end_pass` so the caller can report its working-set size.
        """
        if chunk_size is None:
            chunk_size = self.chunk
        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        g = self.g
        membudget.note(
            "streaming.EdgeStream.passes_chunked",
            min(chunk_size, self._order.size) * _EDGE_BYTES,
        )
        for start in range(0, self._order.size, chunk_size):
            idx = self._order[start : start + chunk_size]
            self.stats.edges_streamed += idx.size
            yield g.edges_u[idx], g.edges_v[idx], g.edges_w[idx], idx
        if self._order.size == 0:
            return

    def passes(self, chunk_size: int | None = None):
        """Compatibility alias for :meth:`passes_chunked`.

        Kept so existing callers (and the pass-count accounting contract:
        one :meth:`end_pass` per full iteration) are untouched.
        """
        yield from self.passes_chunked(chunk_size)

    def end_pass(self, working_records: int) -> None:
        """Close the books on one pass."""
        self.stats.record_pass(int(working_records))
