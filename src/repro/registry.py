"""Unified algorithm registry: every construction in the repo, one API.

The paper's point is that *one* growth engine instantiates many algorithms
across many compute models (in-memory, streaming, MPC, Congested Clique,
PRAM).  This module is the discoverable surface for that claim: every
spanner construction and APSP pipeline registers an :class:`AlgorithmSpec`
here, and the CLI, the experiment runner, and library users all resolve
algorithms by name through :func:`get_algorithm`.

Registration is *lazy*: a spec stores a loader that imports the implementing
module only when the algorithm is first resolved, so ``import repro.registry``
(and therefore ``repro --help``) stays cheap no matter how many heavyweight
model simulators the repo grows.

Every resolved algorithm has the uniform signature ``run(g, k, t, rng)``
(``t`` and ``rng`` may be ``None``); model-specific knobs (``gamma``,
``quantize_eps``, ...) keep their library entry points.

Examples
--------
>>> from repro.registry import get_algorithm
>>> from repro.graphs import erdos_renyi
>>> spec = get_algorithm("cluster-merging")
>>> res = spec.run(erdos_renyi(64, 0.2, rng=0), k=3, rng=0)
>>> res.algorithm
'cluster-merging'
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "AlgorithmSpec",
    "register_spanner",
    "register_apsp",
    "get_algorithm",
    "iter_algorithms",
    "algorithm_names",
    "resolve_name",
    "ALIASES",
]

#: Compute models an algorithm can target.
MODELS = ("in-memory", "streaming", "mpc", "congested-clique", "pram")


@dataclass
class AlgorithmSpec:
    """One registered algorithm.

    Attributes
    ----------
    name:
        Canonical registry key (also the CLI ``--algorithm`` choice).
    model:
        Compute model the construction is analysed in (one of
        :data:`MODELS`).
    kind:
        ``"spanner"`` (returns a :class:`~repro.core.results.SpannerResult`)
        or ``"apsp"`` (returns an APSP pipeline result with ``.rounds``,
        ``.spanner``, ``.all_pairs()``).
    loader:
        Zero-argument callable returning the uniform ``run(g, k, t, rng)``
        callable; imported lazily and cached.
    requires_t:
        Whether the algorithm consumes the growth parameter ``t``
        (``t=None`` always falls back to the paper's default choice).
    weighted:
        Whether the construction handles weighted graphs (``False`` means
        unit weights are forced, e.g. Theorem 1.3's unweighted algorithm).
    description:
        One line for ``repro list``.
    """

    name: str
    model: str
    kind: str
    loader: Callable[[], Callable]
    requires_t: bool = False
    weighted: bool = True
    description: str = ""
    _resolved: Callable | None = field(default=None, repr=False, compare=False)

    def resolve(self) -> Callable:
        """Import (once) and return the uniform ``run(g, k, t, rng)``."""
        if self._resolved is None:
            self._resolved = self.loader()
        return self._resolved

    def run(self, g, k: int | None = None, t: int | None = None, rng=None):
        """Build on ``g`` with the uniform argument set.

        ``k`` is required for spanner constructions; APSP pipelines default
        ``k``/``t`` to the Section 7 parameters for ``g.n`` when omitted.
        """
        if k is None and self.kind == "spanner":
            raise ValueError(f"algorithm {self.name!r} requires k")
        return self.resolve()(g, k, t, rng)


_REGISTRY: dict[str, AlgorithmSpec] = {}

#: Alias -> canonical name.  Covers the historical CLI names and the
#: ``SpannerResult.algorithm`` strings the implementations report, so a
#: result can always be mapped back to its registry entry.
ALIASES: dict[str, str] = {}


def _register(spec: AlgorithmSpec, aliases: tuple[str, ...]) -> AlgorithmSpec:
    if spec.model not in MODELS:
        raise ValueError(f"unknown model {spec.model!r} (expected one of {MODELS})")
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate algorithm name {spec.name!r}")
    _REGISTRY[spec.name] = spec
    for alias in aliases:
        if alias != spec.name:
            ALIASES[alias] = spec.name
    return spec


def _register_kind(
    kind: str,
    name: str,
    *,
    model: str,
    requires_t: bool,
    weighted: bool,
    description: str,
    aliases: tuple[str, ...],
    loader: Callable[[], Callable] | None,
):
    """Shared decorator/direct plumbing behind :func:`register_spanner`
    and :func:`register_apsp`."""

    def _spec(ldr):
        return _register(
            AlgorithmSpec(
                name=name,
                model=model,
                kind=kind,
                loader=ldr,
                requires_t=requires_t,
                weighted=weighted,
                description=description,
            ),
            aliases,
        )

    if loader is not None:
        return _spec(loader)

    def deco(fn):
        _spec(lambda: fn)
        return fn

    return deco


def register_spanner(
    name: str,
    *,
    model: str = "in-memory",
    requires_t: bool = False,
    weighted: bool = True,
    description: str = "",
    aliases: tuple[str, ...] = (),
    loader: Callable[[], Callable] | None = None,
):
    """Register a spanner construction under ``name``.

    Two forms:

    * decorator — ``@register_spanner("mine", model="in-memory")`` above a
      function with the uniform ``(g, k, t, rng)`` signature;
    * direct — pass ``loader=`` (a zero-arg callable returning the uniform
      callable) for lazy built-in registration.
    """
    return _register_kind(
        "spanner",
        name,
        model=model,
        requires_t=requires_t,
        weighted=weighted,
        description=description,
        aliases=aliases,
        loader=loader,
    )


def register_apsp(
    name: str,
    *,
    model: str,
    requires_t: bool = True,
    weighted: bool = True,
    description: str = "",
    aliases: tuple[str, ...] = (),
    loader: Callable[[], Callable] | None = None,
):
    """Register an APSP pipeline (same forms as :func:`register_spanner`)."""
    return _register_kind(
        "apsp",
        name,
        model=model,
        requires_t=requires_t,
        weighted=weighted,
        description=description,
        aliases=aliases,
        loader=loader,
    )


def resolve_name(name: str) -> str:
    """Map ``name`` (canonical or alias) to the canonical registry key."""
    if name in _REGISTRY:
        return name
    if name in ALIASES:
        return ALIASES[name]
    known = ", ".join(sorted(_REGISTRY))
    raise KeyError(f"unknown algorithm {name!r} (known: {known})")


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up an :class:`AlgorithmSpec` by canonical name or alias."""
    return _REGISTRY[resolve_name(name)]


def iter_algorithms(kind: str | None = None) -> list[AlgorithmSpec]:
    """All registered specs (optionally filtered by kind), sorted by name."""
    return [
        _REGISTRY[n]
        for n in sorted(_REGISTRY)
        if kind is None or _REGISTRY[n].kind == kind
    ]


def algorithm_names(kind: str | None = None) -> list[str]:
    """Sorted canonical names (optionally filtered by kind)."""
    return [s.name for s in iter_algorithms(kind)]


def _lazy(module: str, build: Callable) -> Callable[[], Callable]:
    """Loader that imports ``module`` (relative to this package) on demand
    and asks ``build`` to wrap it into the uniform signature."""

    def loader():
        mod = importlib.import_module(module, package=__package__)
        return build(mod)

    return loader


# --------------------------------------------------------------------------
# Built-in registrations.  All lazy: nothing below imports numpy-heavy
# algorithm modules until the algorithm is actually resolved.
# --------------------------------------------------------------------------

register_spanner(
    "baswana-sen",
    model="in-memory",
    description="Classic (2k-1)-spanner baseline (t = k-1 extreme).",
    aliases=("bs",),
    loader=_lazy(".core", lambda m: lambda g, k, t, rng: m.baswana_sen(g, k, rng=rng)),
)

register_spanner(
    "cluster-merging",
    model="in-memory",
    description="Section 4: O(log k) iterations, stretch O(k^{log 3}).",
    loader=_lazy(
        ".core", lambda m: lambda g, k, t, rng: m.cluster_merging(g, k, rng=rng)
    ),
)

register_spanner(
    "two-phase",
    model="in-memory",
    description="Section 3: O(sqrt(k)) iterations, stretch O(k).",
    aliases=("two-phase-contraction",),
    loader=_lazy(
        ".core", lambda m: lambda g, k, t, rng: m.two_phase_contraction(g, k, rng=rng)
    ),
)

register_spanner(
    "general",
    model="in-memory",
    requires_t=True,
    description="Section 5 / Theorem 1.1: full t-vs-stretch tradeoff.",
    aliases=("general-tradeoff",),
    loader=_lazy(
        ".core", lambda m: lambda g, k, t, rng: m.general_tradeoff(g, k, t, rng=rng)
    ),
)

register_spanner(
    "unweighted",
    model="in-memory",
    weighted=False,
    description="Appendix B / Theorem 1.3: unweighted O(k) stretch in O(log k) rounds.",
    aliases=("unweighted-py18",),
    loader=_lazy(
        ".core", lambda m: lambda g, k, t, rng: m.unweighted_spanner(g, k, rng=rng)
    ),
)

register_spanner(
    "streaming",
    model="streaming",
    description="Section 2.4: t=1 contraction spanner in ceil(log2 k)+1 passes.",
    aliases=("streaming-spanner",),
    loader=_lazy(
        ".streaming", lambda m: lambda g, k, t, rng: m.streaming_spanner(g, k, rng=rng)
    ),
)

register_spanner(
    "mpc",
    model="mpc",
    requires_t=True,
    description="Section 6: general algorithm under sublinear-memory MPC accounting.",
    aliases=("spanner-mpc", "mpc-sublinear"),
    loader=_lazy(
        ".mpc_impl", lambda m: lambda g, k, t, rng: m.spanner_mpc(g, k, t, rng=rng)
    ),
)

register_spanner(
    "mpc-nearlinear",
    model="mpc",
    requires_t=True,
    description="Near-linear MPC regime: O(1) rounds per logical iteration.",
    aliases=("spanner-mpc-nearlinear",),
    loader=_lazy(
        ".mpc_impl",
        lambda m: lambda g, k, t, rng: m.spanner_mpc_nearlinear(g, k, t, rng=rng),
    ),
)

register_spanner(
    "cc",
    model="congested-clique",
    requires_t=True,
    description="Theorem 8.1: spanner under Congested Clique accounting.",
    aliases=("spanner-cc", "congested-clique"),
    loader=_lazy(
        ".cc_impl", lambda m: lambda g, k, t, rng: m.spanner_cc(g, k, t, rng=rng)
    ),
)

register_spanner(
    "pram",
    model="pram",
    requires_t=True,
    description="Section 6 PRAM claim: depth/work accounting for the general algorithm.",
    aliases=("spanner-pram",),
    loader=_lazy(
        ".pram", lambda m: lambda g, k, t, rng: m.spanner_pram(g, k, t, rng=rng)
    ),
)

register_apsp(
    "apsp-mpc",
    model="mpc",
    description="Corollary 1.4: spanner + collection APSP pipeline under MPC.",
    aliases=("mpc-apsp",),
    loader=_lazy(
        ".mpc_impl", lambda m: lambda g, k, t, rng: m.apsp_mpc(g, k=k, t=t, rng=rng)
    ),
)

register_apsp(
    "apsp-cc",
    model="congested-clique",
    description="Corollary 1.5: spanner + collection APSP pipeline on the clique.",
    aliases=("cc-apsp",),
    loader=_lazy(
        ".cc_impl", lambda m: lambda g, k, t, rng: m.apsp_cc(g, k=k, t=t, rng=rng)
    ),
)
