"""Unified algorithm registry: every construction in the repo, one API.

The paper's point is that *one* growth engine instantiates many algorithms
across many compute models (in-memory, streaming, MPC, Congested Clique,
PRAM).  This module is the discoverable surface for that claim: every
spanner construction and APSP pipeline registers an :class:`AlgorithmSpec`
here, and the CLI, the experiment runner, and library users all resolve
algorithms by name through :func:`get_algorithm`.

Registration is *lazy*: a spec stores a loader that imports the implementing
module only when the algorithm is first resolved, so ``import repro.registry``
(and therefore ``repro --help``) stays cheap no matter how many heavyweight
model simulators the repo grows.

Every resolved algorithm has the uniform signature ``run(g, k, t, rng)``
(``t`` and ``rng`` may be ``None``); model-specific knobs (``gamma``,
``quantize_eps``, ...) keep their library entry points.

Besides the loader, every spec carries its *theoretical claims* — the
stretch bound, expected-size bound, and round/pass/depth budgets the paper
proves for the construction — as an :class:`AlgorithmClaims` record of
closed-form callables over a :class:`ClaimContext`.  The certification
subsystem (:mod:`repro.verify`) evaluates these against measured runs, so
"the paper's guarantee" lives in exactly one place per algorithm.  Claim
callables late-import :mod:`repro.core.params`, keeping registry import as
cheap as before.

Examples
--------
>>> from repro.registry import get_algorithm
>>> from repro.graphs import erdos_renyi
>>> spec = get_algorithm("cluster-merging")
>>> res = spec.run(erdos_renyi(64, 0.2, rng=0), k=3, rng=0)
>>> res.algorithm
'cluster-merging'
"""

from __future__ import annotations

import importlib
import math
from dataclasses import dataclass, field
from typing import Callable

__all__ = [
    "ClaimContext",
    "AlgorithmClaims",
    "AlgorithmSpec",
    "register_spanner",
    "register_apsp",
    "get_algorithm",
    "iter_algorithms",
    "algorithm_names",
    "resolve_name",
    "ALIASES",
]

#: Compute models an algorithm can target.
MODELS = ("in-memory", "streaming", "mpc", "congested-clique", "pram")


@dataclass(frozen=True)
class ClaimContext:
    """Everything a claimed bound may depend on, gathered from one run.

    ``n``/``m`` describe the input graph, ``k``/``t`` are the parameters the
    run actually used (``t`` may be ``None`` for algorithms that pick the
    paper default), and the remaining fields are instrumentation the round
    and depth budgets reference (``gamma`` for the sublinear-MPC ``O(1/γ)``
    factor, measured logical ``iterations``/``epochs``/``contractions``).
    """

    n: int
    m: int
    k: int
    t: int | None = None
    gamma: float | None = None
    iterations: int = 0
    epochs: int = 0
    contractions: int = 0

    @property
    def t_eff(self) -> int:
        """The effective growth parameter: the paper default ``t = log2 k``
        when ``t`` is ``None``, clamped into ``[1, k-1]`` (the algorithms
        never run more growth iterations per epoch than ``k - 1``)."""
        t = self.t
        if t is None:
            t = max(1, int(round(math.log2(max(self.k, 2)))))
        return min(max(t, 1), max(self.k - 1, 1))


@dataclass(frozen=True)
class AlgorithmClaims:
    """The paper guarantees one algorithm claims, as evaluable bounds.

    Each field is a callable mapping a :class:`ClaimContext` to a numeric
    bound (or ``None`` when the paper makes no such claim for the
    construction):

    ``stretch``
        Worst-case stretch bound — deterministic, checked without slack.
    ``size``
        *Expected* spanner size in edges (w.h.p. for the Congested Clique
        variant); the certifier multiplies it by a configurable slack.
    ``rounds``
        Simulated round budget (MPC / Congested Clique / near-linear) for
        the recorded ``extra['rounds']``.
    ``passes``
        Streaming pass budget for the recorded ``StreamStats.passes``.
    ``depth``
        PRAM depth budget for the recorded ``extra['pram']['depth']``.
    ``source``
        The theorem(s) the numbers come from, for certificates and docs.
    """

    stretch: Callable[[ClaimContext], float] | None = None
    size: Callable[[ClaimContext], float] | None = None
    rounds: Callable[[ClaimContext], float] | None = None
    passes: Callable[[ClaimContext], float] | None = None
    depth: Callable[[ClaimContext], float] | None = None
    source: str = ""

    def names(self) -> list[str]:
        """Which claim kinds this record actually declares."""
        return [
            name
            for name in ("stretch", "size", "rounds", "passes", "depth")
            if getattr(self, name) is not None
        ]


@dataclass
class AlgorithmSpec:
    """One registered algorithm.

    Attributes
    ----------
    name:
        Canonical registry key (also the CLI ``--algorithm`` choice).
    model:
        Compute model the construction is analysed in (one of
        :data:`MODELS`).
    kind:
        ``"spanner"`` (returns a :class:`~repro.core.results.SpannerResult`)
        or ``"apsp"`` (returns an APSP pipeline result with ``.rounds``,
        ``.spanner``, ``.all_pairs()``).
    loader:
        Zero-argument callable returning the uniform ``run(g, k, t, rng)``
        callable; imported lazily and cached.
    requires_t:
        Whether the algorithm consumes the growth parameter ``t``
        (``t=None`` always falls back to the paper's default choice).
    weighted:
        Whether the construction handles weighted graphs (``False`` means
        unit weights are forced, e.g. Theorem 1.3's unweighted algorithm).
    description:
        One line for ``repro list``.
    claims:
        The paper's guarantees as evaluable bounds (see
        :class:`AlgorithmClaims`); consumed by :mod:`repro.verify`.
    """

    name: str
    model: str
    kind: str
    loader: Callable[[], Callable]
    requires_t: bool = False
    weighted: bool = True
    description: str = ""
    claims: AlgorithmClaims | None = None
    _resolved: Callable | None = field(default=None, repr=False, compare=False)

    def resolve(self) -> Callable:
        """Import (once) and return the uniform ``run(g, k, t, rng)``."""
        if self._resolved is None:
            self._resolved = self.loader()
        return self._resolved

    def run(self, g, k: int | None = None, t: int | None = None, rng=None):
        """Build on ``g`` with the uniform argument set.

        ``k`` is required for spanner constructions; APSP pipelines default
        ``k``/``t`` to the Section 7 parameters for ``g.n`` when omitted.
        """
        if k is None and self.kind == "spanner":
            raise ValueError(f"algorithm {self.name!r} requires k")
        return self.resolve()(g, k, t, rng)


_REGISTRY: dict[str, AlgorithmSpec] = {}

#: Alias -> canonical name.  Covers the historical CLI names and the
#: ``SpannerResult.algorithm`` strings the implementations report, so a
#: result can always be mapped back to its registry entry.
ALIASES: dict[str, str] = {}


def _register(spec: AlgorithmSpec, aliases: tuple[str, ...]) -> AlgorithmSpec:
    if spec.model not in MODELS:
        raise ValueError(f"unknown model {spec.model!r} (expected one of {MODELS})")
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate algorithm name {spec.name!r}")
    _REGISTRY[spec.name] = spec
    for alias in aliases:
        if alias != spec.name:
            ALIASES[alias] = spec.name
    return spec


def _register_kind(
    kind: str,
    name: str,
    *,
    model: str,
    requires_t: bool,
    weighted: bool,
    description: str,
    aliases: tuple[str, ...],
    loader: Callable[[], Callable] | None,
    claims: AlgorithmClaims | None,
):
    """Shared decorator/direct plumbing behind :func:`register_spanner`
    and :func:`register_apsp`."""

    def _spec(ldr):
        return _register(
            AlgorithmSpec(
                name=name,
                model=model,
                kind=kind,
                loader=ldr,
                requires_t=requires_t,
                weighted=weighted,
                description=description,
                claims=claims,
            ),
            aliases,
        )

    if loader is not None:
        return _spec(loader)

    def deco(fn):
        _spec(lambda: fn)
        return fn

    return deco


def register_spanner(
    name: str,
    *,
    model: str = "in-memory",
    requires_t: bool = False,
    weighted: bool = True,
    description: str = "",
    aliases: tuple[str, ...] = (),
    loader: Callable[[], Callable] | None = None,
    claims: AlgorithmClaims | None = None,
):
    """Register a spanner construction under ``name``.

    Two forms:

    * decorator — ``@register_spanner("mine", model="in-memory")`` above a
      function with the uniform ``(g, k, t, rng)`` signature;
    * direct — pass ``loader=`` (a zero-arg callable returning the uniform
      callable) for lazy built-in registration.
    """
    return _register_kind(
        "spanner",
        name,
        model=model,
        requires_t=requires_t,
        weighted=weighted,
        description=description,
        aliases=aliases,
        loader=loader,
        claims=claims,
    )


def register_apsp(
    name: str,
    *,
    model: str,
    requires_t: bool = True,
    weighted: bool = True,
    description: str = "",
    aliases: tuple[str, ...] = (),
    loader: Callable[[], Callable] | None = None,
    claims: AlgorithmClaims | None = None,
):
    """Register an APSP pipeline (same forms as :func:`register_spanner`)."""
    return _register_kind(
        "apsp",
        name,
        model=model,
        requires_t=requires_t,
        weighted=weighted,
        description=description,
        aliases=aliases,
        loader=loader,
        claims=claims,
    )


def resolve_name(name: str) -> str:
    """Map ``name`` (canonical or alias) to the canonical registry key."""
    if name in _REGISTRY:
        return name
    if name in ALIASES:
        return ALIASES[name]
    known = ", ".join(sorted(_REGISTRY))
    raise KeyError(f"unknown algorithm {name!r} (known: {known})")


def get_algorithm(name: str) -> AlgorithmSpec:
    """Look up an :class:`AlgorithmSpec` by canonical name or alias."""
    return _REGISTRY[resolve_name(name)]


def iter_algorithms(kind: str | None = None) -> list[AlgorithmSpec]:
    """All registered specs (optionally filtered by kind), sorted by name."""
    return [
        _REGISTRY[n]
        for n in sorted(_REGISTRY)
        if kind is None or _REGISTRY[n].kind == kind
    ]


def algorithm_names(kind: str | None = None) -> list[str]:
    """Sorted canonical names (optionally filtered by kind)."""
    return [s.name for s in iter_algorithms(kind)]


def _lazy(module: str, build: Callable) -> Callable[[], Callable]:
    """Loader that imports ``module`` (relative to this package) on demand
    and asks ``build`` to wrap it into the uniform signature."""

    def loader():
        mod = importlib.import_module(module, package=__package__)
        return build(mod)

    return loader


# --------------------------------------------------------------------------
# Claim formulas.  Thin closures over repro.core.params (late-imported so
# registry import stays cheap); the proof constants match the ones the
# long-standing theorem tests assert.
# --------------------------------------------------------------------------


def _general_stretch(ctx: ClaimContext) -> float:
    from .core.params import stretch_bound

    return stretch_bound(ctx.k, ctx.t_eff)


def _general_size(ctx: ClaimContext) -> float:
    from .core.params import size_bound

    return size_bound(ctx.n, ctx.k, ctx.t_eff)


def _t1_stretch(ctx: ClaimContext) -> float:
    """Theorem 4.10 proof constant: ``k^{log2 3}`` (the ``t = 1`` extreme)."""
    return float(ctx.k) ** math.log2(3)


def _t1_size(ctx: ClaimContext) -> float:
    from .core.params import size_bound

    return size_bound(ctx.n, ctx.k, 1)


def _linear_stretch(ctx: ClaimContext) -> float:
    """``O(k)`` with the proofs' constant 4 (Theorems 3.4 and 1.3)."""
    return 4.0 * max(ctx.k, 1)


def _two_phase_size(ctx: ClaimContext) -> float:
    """Theorem 3.1: ``O(sqrt(k) n^{1+1/k})`` (constant 4, as the benches)."""
    return 4.0 * math.sqrt(max(ctx.k, 1)) * float(ctx.n) ** (1.0 + 1.0 / max(ctx.k, 1))


def _unweighted_size(ctx: ClaimContext) -> float:
    """Theorem 1.3: ``O(k n^{1+1/k})`` spanner edges plus ``O(k n)`` stored
    dense-vertex paths."""
    k = max(ctx.k, 1)
    return 4.0 * k * float(ctx.n) ** (1.0 + 1.0 / k) + 4.0 * k * ctx.n


def _bs_stretch(ctx: ClaimContext) -> float:
    from .core.params import bs_stretch_bound

    return bs_stretch_bound(ctx.k)


def _bs_size(ctx: ClaimContext) -> float:
    from .core.params import bs_size_bound

    return bs_size_bound(ctx.n, ctx.k)


def _stream_passes(ctx: ClaimContext) -> float:
    """Section 2.4: one pass per epoch plus the final clean-up pass."""
    return math.ceil(math.log2(max(ctx.k, 2))) + 1


def _mpc_rounds(ctx: ClaimContext) -> float:
    """Theorem 1.1 under ``O(1/γ)``-rounds-per-iteration accounting (the
    constant 16 matches the Section 6 simulator tests)."""
    from .core.params import mpc_rounds_bound

    return mpc_rounds_bound(ctx.k, ctx.t_eff, ctx.gamma or 0.5, constant=16.0)


def _nearlinear_rounds(ctx: ClaimContext) -> float:
    """Θ(n)-memory regime: 3 message exchanges per executed iteration plus
    one label exchange per contraction (one extra constant of headroom)."""
    return 3.0 * ctx.iterations + ctx.contractions + 4.0


def _cc_rounds(ctx: ClaimContext) -> float:
    """Theorem 8.1: O(1) rounds per iteration (coin broadcast + counter
    aggregation + Lenzen-routed merges) plus one broadcast per epoch."""
    from .core.params import num_epochs, total_iterations

    return 8.0 * (total_iterations(ctx.k, ctx.t_eff) + num_epochs(ctx.k, ctx.t_eff)) + 8.0


def _pram_depth(ctx: ClaimContext) -> float:
    """Section 6 PRAM claim: depth ``O(iterations · log* n)`` (each
    iteration costs a constant number of log*-depth primitives)."""
    from .pram.tracker import log_star

    return 8.0 * max(log_star(ctx.n), 1) * (ctx.iterations + 2)


def _collection_rounds(ctx: ClaimContext) -> float:
    """Round budget for shipping a bound-respecting spanner: Lenzen routing
    moves its ``O(size_bound)`` words at ``Θ(n)`` words per round."""
    from .core.params import size_bound

    words = 3.0 * size_bound(ctx.n, ctx.k, ctx.t_eff)
    return 2.0 * math.ceil(words / max(ctx.n - 1, 1)) + 2.0


def _apsp_mpc_rounds(ctx: ClaimContext) -> float:
    return _mpc_rounds(ctx) + _collection_rounds(ctx)


def _apsp_cc_rounds(ctx: ClaimContext) -> float:
    return _cc_rounds(ctx) + _collection_rounds(ctx)


# --------------------------------------------------------------------------
# Built-in registrations.  All lazy: nothing below imports numpy-heavy
# algorithm modules until the algorithm is actually resolved.
# --------------------------------------------------------------------------

register_spanner(
    "baswana-sen",
    model="in-memory",
    description="Classic (2k-1)-spanner baseline (t = k-1 extreme).",
    aliases=("bs",),
    loader=_lazy(".core", lambda m: lambda g, k, t, rng: m.baswana_sen(g, k, rng=rng)),
    claims=AlgorithmClaims(
        stretch=_bs_stretch,
        size=_bs_size,
        source="Baswana–Sen 2007 (the paper's t = k-1 baseline)",
    ),
)

register_spanner(
    "cluster-merging",
    model="in-memory",
    description="Section 4: O(log k) iterations, stretch O(k^{log 3}).",
    loader=_lazy(
        ".core", lambda m: lambda g, k, t, rng: m.cluster_merging(g, k, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_t1_stretch,
        size=_t1_size,
        source="Theorems 4.10 (stretch) and 4.13 (size)",
    ),
)

register_spanner(
    "two-phase",
    model="in-memory",
    description="Section 3: O(sqrt(k)) iterations, stretch O(k).",
    aliases=("two-phase-contraction",),
    loader=_lazy(
        ".core", lambda m: lambda g, k, t, rng: m.two_phase_contraction(g, k, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_linear_stretch,
        size=_two_phase_size,
        source="Theorems 3.1 (size) and 3.4 (stretch)",
    ),
)

register_spanner(
    "general",
    model="in-memory",
    requires_t=True,
    description="Section 5 / Theorem 1.1: full t-vs-stretch tradeoff.",
    aliases=("general-tradeoff",),
    loader=_lazy(
        ".core", lambda m: lambda g, k, t, rng: m.general_tradeoff(g, k, t, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_general_stretch,
        size=_general_size,
        source="Theorem 5.11 (stretch) and Lemma 5.14 (size) — Theorem 1.1",
    ),
)

register_spanner(
    "unweighted",
    model="in-memory",
    weighted=False,
    description="Appendix B / Theorem 1.3: unweighted O(k) stretch in O(log k) rounds.",
    aliases=("unweighted-py18",),
    loader=_lazy(
        ".core", lambda m: lambda g, k, t, rng: m.unweighted_spanner(g, k, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_linear_stretch,
        size=_unweighted_size,
        source="Theorem 1.3 / Appendix B ([PY18] adaptation)",
    ),
)

register_spanner(
    "streaming",
    model="streaming",
    description="Section 2.4: t=1 contraction spanner in ceil(log2 k)+1 passes.",
    aliases=("streaming-spanner",),
    loader=_lazy(
        ".streaming", lambda m: lambda g, k, t, rng: m.streaming_spanner(g, k, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_t1_stretch,
        size=_t1_size,
        passes=_stream_passes,
        source="Section 2.4 (t = 1 general algorithm; Theorem 5.11 applies verbatim)",
    ),
)

register_spanner(
    "mpc",
    model="mpc",
    requires_t=True,
    description="Section 6: general algorithm under sublinear-memory MPC accounting.",
    aliases=("spanner-mpc", "mpc-sublinear"),
    loader=_lazy(
        ".mpc_impl", lambda m: lambda g, k, t, rng: m.spanner_mpc(g, k, t, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_general_stretch,
        size=_general_size,
        rounds=_mpc_rounds,
        source="Theorem 1.1 / Section 6 ([GSZ11] primitive accounting)",
    ),
)

register_spanner(
    "mpc-nearlinear",
    model="mpc",
    requires_t=True,
    description="Near-linear MPC regime: O(1) rounds per logical iteration.",
    aliases=("spanner-mpc-nearlinear",),
    loader=_lazy(
        ".mpc_impl",
        lambda m: lambda g, k, t, rng: m.spanner_mpc_nearlinear(g, k, t, rng=rng),
    ),
    claims=AlgorithmClaims(
        stretch=_general_stretch,
        size=_general_size,
        rounds=_nearlinear_rounds,
        source="Section 6, Θ(n)-memory paragraph",
    ),
)

register_spanner(
    "cc",
    model="congested-clique",
    requires_t=True,
    description="Theorem 8.1: spanner under Congested Clique accounting.",
    aliases=("spanner-cc", "congested-clique"),
    loader=_lazy(
        ".cc_impl", lambda m: lambda g, k, t, rng: m.spanner_cc(g, k, t, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_general_stretch,
        size=_general_size,
        rounds=_cc_rounds,
        source="Theorem 8.1 (w.h.p. size via parallel repetitions)",
    ),
)

register_spanner(
    "pram",
    model="pram",
    requires_t=True,
    description="Section 6 PRAM claim: depth/work accounting for the general algorithm.",
    aliases=("spanner-pram",),
    loader=_lazy(
        ".pram", lambda m: lambda g, k, t, rng: m.spanner_pram(g, k, t, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_general_stretch,
        size=_general_size,
        depth=_pram_depth,
        source="Section 6 PRAM claim ([BS07] CRCW primitives)",
    ),
)

register_apsp(
    "apsp-mpc",
    model="mpc",
    description="Corollary 1.4: spanner + collection APSP pipeline under MPC.",
    aliases=("mpc-apsp",),
    loader=_lazy(
        ".mpc_impl", lambda m: lambda g, k, t, rng: m.apsp_mpc(g, k=k, t=t, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_general_stretch,
        size=_general_size,
        rounds=_apsp_mpc_rounds,
        source="Corollary 1.4 / Section 7",
    ),
)

register_apsp(
    "apsp-cc",
    model="congested-clique",
    description="Corollary 1.5: spanner + collection APSP pipeline on the clique.",
    aliases=("cc-apsp",),
    loader=_lazy(
        ".cc_impl", lambda m: lambda g, k, t, rng: m.apsp_cc(g, k=k, t=t, rng=rng)
    ),
    claims=AlgorithmClaims(
        stretch=_general_stretch,
        size=_general_size,
        rounds=_apsp_cc_rounds,
        source="Corollary 1.5 / Section 8",
    ),
)
