"""Repo-specific static analysis: machine-enforced correctness invariants.

``repro lint`` walks the repo's own source with :mod:`ast` and enforces
the invariants nine PRs of this reproduction installed to fix real bugs —
zero-copy memmap discipline, the ``coerce_rng`` seed contract, int64
widening of index-key arithmetic, shared-memory lifecycles, non-blocking
async serving, ``_json_safe`` CLI output, and content-pinned frozen
reference baselines.  See :mod:`repro.analysis.framework` for the checker
machinery and :mod:`repro.analysis.rules` for the rule battery.
"""

from .framework import (
    Finding,
    Rule,
    check_source,
    iter_python_files,
    lint_paths,
    module_relpath,
)
from .frozen import FROZEN_HASHES, compute_frozen_hashes, format_manifest
from .rules import all_rules

__all__ = [
    "Finding",
    "Rule",
    "check_source",
    "lint_paths",
    "iter_python_files",
    "module_relpath",
    "all_rules",
    "FROZEN_HASHES",
    "compute_frozen_hashes",
    "format_manifest",
]
