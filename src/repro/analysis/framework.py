"""The checker framework behind ``repro lint``.

This is a *repo-specific* static analyzer, not a style linter: every rule
in :mod:`repro.analysis.rules` encodes a correctness invariant this
codebase installed to fix a real bug (zero-copy memmap discipline, the
``coerce_rng`` seeding idiom, int64 widening of key arithmetic, ...), and
the linter makes those invariants machine-enforced instead of reviewer
folklore.

Pieces:

* :class:`Finding` — one violation: rule id, path, line/col, message and
  a remediation hint.  ``repro lint --json`` serializes these verbatim.
* :class:`Rule` — base class.  Subclasses declare ``id``/``description``/
  ``hint``, optional path scoping (``include``/``exclude`` fnmatch
  patterns over the module path *inside* the ``repro`` package, e.g.
  ``service/*`` or ``cli.py``), and either ``visit_<NodeType>`` methods
  (dispatched over one :func:`ast.walk` of the file) or a custom
  :meth:`Rule.check` for whole-file analyses.  Visitors yield
  ``(node, message)`` pairs; the framework attaches locations, hints and
  suppression filtering.
* Inline suppressions — a ``# repro: allow(rule-id)`` comment anywhere
  within a flagged node's line span silences that rule for that node
  (``allow(a, b)`` lists several ids).  Suppressions are deliberate,
  visible escape hatches; the zero-violation baseline stays meaningful
  because every one is grep-able.
* :func:`lint_paths` — the runner: walk ``.py`` files, parse once, apply
  every applicable rule, return sorted deduplicated findings.

:func:`check_source` lints an in-memory snippet under a caller-chosen
virtual path, which is how the per-rule fixture tests exercise path
scoping without touching the real tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "Rule",
    "FileContext",
    "check_source",
    "lint_paths",
    "iter_python_files",
    "module_relpath",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def module_relpath(path) -> str:
    """Path of a file *inside* the ``repro`` package, POSIX-separated.

    ``src/repro/service/server.py`` -> ``service/server.py``; files outside
    any ``repro`` directory fall back to their bare filename.  Rule scoping
    patterns match against this, so the linter behaves identically whether
    invoked on ``src/``, ``src/repro/`` or a single file.
    """
    parts = Path(path).parts
    if "repro" in parts:
        i = len(parts) - 1 - parts[::-1].index("repro")
        rel = parts[i + 1 :]
        if rel:
            return "/".join(rel)
    return Path(path).name


def parse_suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids allowed by ``# repro: allow(...)``."""
    allowed: dict[int, set[str]] = {}
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type != tokenize.COMMENT:
                continue
            m = _ALLOW_RE.search(tok.string)
            if m:
                ids = {t.strip() for t in m.group(1).split(",") if t.strip()}
                allowed.setdefault(tok.start[0], set()).update(ids)
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass
    return allowed


class FileContext:
    """Everything a rule may need about one parsed file."""

    def __init__(self, path: str, rel: str, source: str, tree: ast.Module):
        self.path = str(path)  # as given on the command line (clickable)
        self.rel = rel  # package-relative, what scoping matches
        self.source = source
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        self._parents: dict[ast.AST, ast.AST] | None = None

    def parent_map(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def enclosing_function(self, node: ast.AST):
        """Innermost (async) function def containing ``node``, or None."""
        parents = self.parent_map()
        cur = parents.get(node)
        while cur is not None:
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
            cur = parents.get(cur)
        return None

    def suppressed(self, rule_id: str, node: ast.AST | None) -> bool:
        if node is None or not self.suppressions:
            return False
        start = getattr(node, "lineno", None)
        if start is None:
            return False
        end = getattr(node, "end_lineno", start) or start
        return any(
            rule_id in self.suppressions.get(line, ())
            for line in range(start, end + 1)
        )


class Rule:
    """Base class for one invariant checker.

    Subclasses set ``id`` (the ``repro: allow(...)`` / ``--rule`` handle),
    ``description`` (one line for ``--list-rules`` and the README table),
    ``hint`` (the remediation attached to every finding), and optionally
    ``include``/``exclude`` fnmatch patterns over the package-relative
    path.  The default :meth:`check` dispatches ``visit_<NodeType>``
    methods over one AST walk; override it for whole-file analyses.
    Visitors yield ``(node, message)`` or ``(node, message, hint)``.
    """

    id: str = ""
    description: str = ""
    hint: str = ""
    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()

    def applies_to(self, rel: str) -> bool:
        return any(fnmatch(rel, pat) for pat in self.include) and not any(
            fnmatch(rel, pat) for pat in self.exclude
        )

    def check(self, ctx: FileContext) -> Iterator[tuple]:
        for node in ast.walk(ctx.tree):
            visitor = getattr(self, "visit_" + type(node).__name__, None)
            if visitor is not None:
                yield from visitor(node, ctx)

    def run(self, ctx: FileContext) -> Iterator[Finding]:
        for item in self.check(ctx):
            node, message = item[0], item[1]
            hint = item[2] if len(item) > 2 else self.hint
            if ctx.suppressed(self.id, node):
                continue
            yield Finding(
                rule=self.id,
                path=ctx.path,
                line=getattr(node, "lineno", 1) if node is not None else 1,
                col=getattr(node, "col_offset", 0) if node is not None else 0,
                message=message,
                hint=hint,
            )


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths`` (files pass through), sorted,
    skipping hidden directories and ``__pycache__``."""
    for raw in paths:
        p = Path(raw)
        if p.is_file():
            if p.suffix == ".py":
                yield p
            continue
        if not p.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for f in sorted(p.rglob("*.py")):
            if any(
                part.startswith(".") or part == "__pycache__" for part in f.parts
            ):
                continue
            yield f


def check_source(
    source: str,
    rules: Iterable[Rule],
    *,
    rel: str = "module.py",
    path: str | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet as if it lived at package path ``rel``."""
    tree = ast.parse(source)
    ctx = FileContext(path or rel, rel, source, tree)
    findings: list[Finding] = []
    for rule in rules:
        if rule.applies_to(rel):
            findings.extend(rule.run(ctx))
    return _finalize(findings)


def lint_paths(
    paths: Iterable[str],
    rules: Iterable[Rule] | None = None,
    *,
    rule_ids: Iterable[str] | None = None,
) -> list[Finding]:
    """Run rules over every ``.py`` file under ``paths``; sorted findings.

    Unparseable files surface as ``syntax-error`` findings rather than
    crashing the run — a broken file must fail the lint gate, not hide
    from it.
    """
    if rules is None:
        from .rules import all_rules

        rules = all_rules()
    rules = list(rules)
    if rule_ids is not None:
        wanted = set(rule_ids)
        known = {r.id for r in rules}
        missing = wanted - known
        if missing:
            raise KeyError(
                f"unknown rule id(s): {', '.join(sorted(missing))} "
                f"(have: {', '.join(sorted(known))})"
            )
        rules = [r for r in rules if r.id in wanted]
    findings: list[Finding] = []
    for file in iter_python_files(paths):
        source = file.read_text()
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule="syntax-error",
                    path=str(file),
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"cannot parse: {exc.msg}",
                    hint="fix the syntax error; the linter needs a valid AST",
                )
            )
            continue
        ctx = FileContext(str(file), module_relpath(file), source, tree)
        for rule in rules:
            if rule.applies_to(ctx.rel):
                findings.extend(rule.run(ctx))
    return _finalize(findings)


def _finalize(findings: list[Finding]) -> list[Finding]:
    """Dedupe (nested AST walks can revisit a node) and sort for stable,
    diffable output."""
    unique = {(f.rule, f.path, f.line, f.col, f.message): f for f in findings}
    return sorted(unique.values(), key=lambda f: (f.path, f.line, f.col, f.rule))
