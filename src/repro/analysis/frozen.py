"""Content-hash pinning of the frozen scalar reference implementations.

The repo keeps pre-vectorization scalar implementations in-tree
(``sssp_reference``, ``streaming_spanner_reference``,
``grow_balls_mpc_reference``, ...) as the bit-identity baselines the hot
paths are tested against.  Their whole value is that they *don't change*:
an accidental edit silently moves the baseline and the identity tests
start certifying the wrong thing.  :data:`FROZEN_HASHES` pins each
``*_reference`` function to a hash of its source text; the
``frozen-reference`` lint rule fails when a pinned function drifts, when
a new ``*_reference`` function appears unpinned, or when a pinned one
disappears.

Deliberate changes re-pin explicitly::

    PYTHONPATH=src python -m repro.analysis.frozen

prints the manifest computed from the current tree — after re-validating
bit-identity (the hot-loop equivalence tests), paste it over
:data:`FROZEN_HASHES` in the same PR that changes the reference.

Hashes cover the exact source segment of the function (comments and
formatting included): pinning the text, not the semantics, is the point —
any edit to a frozen baseline must be visible and deliberate.
"""

from __future__ import annotations

import ast
import hashlib
from pathlib import Path

__all__ = ["FROZEN_HASHES", "hash_function", "compute_frozen_hashes", "format_manifest"]

#: ``"<package-relative path>::<function name>" -> sha256(source)[:16]``.
#: Regenerate with ``python -m repro.analysis.frozen`` (see module docs).
FROZEN_HASHES: dict[str, str] = {
    "core/unweighted.py::unweighted_spanner_reference": "62608f7f615173a8",
    "distances/sketches.py::build_bunches_reference": "dc47e6b49ed185de",
    "graphs/distances.py::sssp_reference": "5c296686cbb98f36",
    "mpc_impl/ball_growing.py::grow_balls_mpc_reference": "013e180a01ae7bb4",
    "streaming/spanner_stream.py::_pass_group_minima_reference": "9d9898602b56b584",
    "streaming/spanner_stream.py::streaming_spanner_reference": "b7938ab3470b997d",
}


def hash_function(node: ast.FunctionDef, source: str) -> str:
    """Hash of a function's exact source segment (16 hex chars)."""
    segment = ast.get_source_segment(source, node) or ast.unparse(node)
    return hashlib.sha256(segment.encode()).hexdigest()[:16]


def reference_functions(tree: ast.Module) -> list[ast.FunctionDef]:
    """Every ``*_reference`` function def in a module, any nesting level."""
    return [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef) and node.name.endswith("_reference")
    ]


def compute_frozen_hashes(root: str | Path) -> dict[str, str]:
    """The manifest the current tree under ``root`` would pin."""
    from .framework import iter_python_files, module_relpath

    manifest: dict[str, str] = {}
    for file in iter_python_files([str(root)]):
        source = file.read_text()
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        rel = module_relpath(file)
        for node in reference_functions(tree):
            manifest[f"{rel}::{node.name}"] = hash_function(node, source)
    return manifest


def format_manifest(manifest: dict[str, str]) -> str:
    """The manifest as a paste-ready ``FROZEN_HASHES`` dict literal."""
    lines = ["FROZEN_HASHES: dict[str, str] = {"]
    for key in sorted(manifest):
        lines.append(f'    "{key}": "{manifest[key]}",')
    lines.append("}")
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover - regeneration helper
    src_root = Path(__file__).resolve().parents[1]
    print(format_manifest(compute_frozen_hashes(src_root)))
