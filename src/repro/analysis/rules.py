"""The invariant battery: one rule per hard-won correctness discipline.

Each rule names the PR that installed the invariant it enforces; the
README's "Static analysis" table is generated from these docstrings'
first lines.  Rules are deliberately *narrow* — they encode exactly the
bug class that was fixed, scoped to the paths where it bites, so a
finding is a regression signal rather than style noise.  False positives
take a visible ``# repro: allow(rule-id)`` with the justification living
in review history.
"""

from __future__ import annotations

import ast

from .framework import FileContext, Rule, dotted_name

__all__ = [
    "MemmapCopyRule",
    "RngDisciplineRule",
    "Int32WideningRule",
    "ShmLifecycleRule",
    "AsyncBlockingRule",
    "JsonSafetyRule",
    "FrozenReferenceRule",
    "all_rules",
]


class MemmapCopyRule(Rule):
    """``.astype(...)`` without an explicit ``copy=`` on memmap-visible paths.

    Origin: PR 6's zero-copy serving discipline.  ``arr.astype(dt)``
    defaults to ``copy=True`` — on a served ``np.memmap`` view that
    silently materializes the whole artifact into private RSS, exactly
    the O(shards x graph) blowup the shared-memory layer removed.  Every
    dtype normalization on a path that can see memmap/shared views must
    say ``copy=False`` (same-dtype passthrough) or justify the copy with
    an explicit ``copy=True``.
    """

    id = "memmap-copy"
    description = (
        "astype() without copy= on memmap-visible paths silently materializes views"
    )
    hint = (
        "pass copy=False (no-op when the dtype already matches; a dtype "
        "change still copies) or an explicit copy=True if the copy is the point"
    )
    include = (
        "service/*",
        "distances/*",
        "graphs/graph.py",
        "graphs/io.py",
        "graphs/distances.py",
        "mpc_impl/ball_growing.py",
    )

    def visit_Call(self, node: ast.Call, ctx: FileContext):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "astype":
            if not any(kw.arg == "copy" for kw in node.keywords):
                yield node, (
                    ".astype(...) without copy= defaults to copying — on a "
                    "memmap view this materializes the whole array"
                )


class RngDisciplineRule(Rule):
    """Bare ``np.random.default_rng(...)`` outside the one blessed definition.

    Origin: PR 5 deduplicated the 13-site ``default_rng(rng) if not
    isinstance(...)`` idiom into :func:`repro.core.params.coerce_rng` —
    the single definition of the seed-or-generator contract (None, int,
    SeedSequence, or Generator passed through).  A bare ``default_rng``
    re-forks that contract: it silently *reseeds* when handed a
    Generator-threading caller's int, breaking cross-construction seed
    threading.  Algorithm entry points must route seeds through
    ``coerce_rng``.
    """

    id = "rng-discipline"
    description = "bare np.random.default_rng() bypasses the coerce_rng seed contract"
    hint = "route the seed through repro.core.params.coerce_rng instead"
    exclude = ("core/params.py",)

    _NAMES = {
        "np.random.default_rng",
        "numpy.random.default_rng",
        "random.default_rng",
        "default_rng",
    }

    def visit_Call(self, node: ast.Call, ctx: FileContext):
        if dotted_name(node.func) in self._NAMES:
            yield node, (
                "bare default_rng(...) call — seeds must go through coerce_rng "
                "so generator threading and the None/int/Generator contract hold"
            )


class Int32WideningRule(Rule):
    """Multiply-add key encodings used as indices without an explicit int64.

    Origin: the ``c*n + b`` overflow class removed in PRs 4/6 — flat
    ``(slot, vertex) -> slot*n + vertex`` key encodings overflow int32
    whenever ``n**2 >= 2**31``, which int32-indexed graphs (``n < 2**31``)
    routinely hit.  Any ``a*b + c`` expression used as a subscript index
    must carry an explicit widening (``np.int64(n)`` as the multiplier,
    or an ``.astype(np.int64, ...)`` inside the product) so the promotion
    to int64 is visible and dtype-mode independent.
    """

    id = "int32-widening"
    description = "a*b+c subscript key encoding without an explicit int64 widening"
    hint = (
        "multiply by np.int64(n) (or .astype(np.int64, copy=False) a factor) "
        "so the key arithmetic is int64 in every index mode"
    )

    @staticmethod
    def _has_int64(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                name = dotted_name(sub.func)
                if name in {"np.int64", "numpy.int64", "int64"}:
                    return True
                if isinstance(sub.func, ast.Attribute) and sub.func.attr == "astype":
                    if any(
                        (dotted_name(a) or "").endswith("int64")
                        or (isinstance(a, ast.Constant) and a.value == "int64")
                        for a in sub.args
                    ):
                        return True
        return False

    def visit_Subscript(self, node: ast.Subscript, ctx: FileContext):
        for sub in ast.walk(node.slice):
            if not (isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Add)):
                continue
            mult = next(
                (
                    side
                    for side in (sub.left, sub.right)
                    if isinstance(side, ast.BinOp) and isinstance(side.op, ast.Mult)
                ),
                None,
            )
            if mult is None or self._has_int64(mult):
                continue
            yield sub, (
                "multiply-add index key without an explicit int64 widening — "
                "overflows int32 once n**2 >= 2**31"
            )


class ShmLifecycleRule(Rule):
    """``SharedMemory(...)`` with no paired close/unlink cleanup path.

    Origin: PR 6's shared-memory lifecycle — every segment needs an
    owner that ``unlink``s and attachers that ``close``, or /dev/shm
    leaks survive the process (the resource-tracker warnings and leaked-
    segment sweeps in test_shm_lifecycle exist because this happened).
    A function constructing ``SharedMemory`` must either sit in a module
    that registers an ``atexit`` cleanup or pair the construction with
    ``close``/``unlink``/``destroy`` in a ``finally`` block.
    """

    id = "shm-lifecycle"
    description = "SharedMemory creation without a finally/atexit close+unlink path"
    hint = (
        "pair the segment with close()/unlink() in a finally block, or "
        "register an atexit teardown like service.shm.SharedGraphBuffers"
    )

    _CLEANUP_ATTRS = {"close", "unlink", "destroy"}

    def _has_finally_cleanup(self, scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if isinstance(node, ast.Try) and node.finalbody:
                for inner in node.finalbody:
                    for call in ast.walk(inner):
                        if (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr in self._CLEANUP_ATTRS
                        ):
                            return True
        return False

    def check(self, ctx: FileContext):
        creations = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
            and (
                (dotted_name(node.func) or "").split(".")[-1] == "SharedMemory"
            )
        ]
        if not creations:
            return
        module_has_atexit = any(
            isinstance(node, ast.Call)
            and (dotted_name(node.func) or "").startswith("atexit.")
            for node in ast.walk(ctx.tree)
        )
        for call in creations:
            scope = ctx.enclosing_function(call) or ctx.tree
            if module_has_atexit or self._has_finally_cleanup(scope):
                continue
            yield call, (
                "SharedMemory segment created with no close()/unlink() in a "
                "finally block and no atexit teardown in this module — "
                "/dev/shm leaks survive the process"
            )


class AsyncBlockingRule(Rule):
    """Blocking calls inside ``async def`` in the serving layer.

    Origin: PR 7's micro-batching server — the event loop must keep
    admitting and coalescing requests while a batch solves, so every
    blocking operation (sleeps, subprocesses, and above all direct
    engine solves) belongs in the dedicated solver thread via
    ``run_in_executor``.  One synchronous ``engine.query_many`` on the
    loop stalls every connected client for the whole solve.
    """

    id = "async-blocking"
    description = "blocking call (sleep/subprocess/engine solve) inside async def"
    hint = (
        "await asyncio.sleep(...) for sleeps; dispatch engine solves through "
        "loop.run_in_executor(executor, partial(engine.query_many, ...))"
    )
    include = ("service/*",)

    _BLOCKING = {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "os.system",
        "os.waitpid",
    }
    _SOLVES = {"query", "query_many", "solve_rows", "batched_sssp"}

    def check(self, ctx: FileContext):
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._scan(node, ctx)

    def _scan(self, fn: ast.AsyncFunctionDef, ctx: FileContext):
        stack = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.Lambda)):
                # A nested sync def/lambda may legitimately run in an
                # executor; only the async bodies themselves are policed
                # (nested async defs are visited by check()).
                continue
            if isinstance(node, ast.AsyncFunctionDef):
                continue
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in self._BLOCKING:
                    yield node, (
                        f"blocking {name}(...) inside async def {fn.name} "
                        "stalls the event loop"
                    )
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in self._SOLVES
                    and self._is_engine(node.func.value)
                ):
                    yield node, (
                        f"direct engine .{node.func.attr}(...) inside async "
                        f"def {fn.name} — solves must go through the solver "
                        "thread/executor"
                    )
            stack.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _is_engine(node: ast.AST) -> bool:
        name = dotted_name(node) or ""
        last = name.split(".")[-1] if name else ""
        return last == "engine" or last.endswith("_engine")


class JsonSafetyRule(Rule):
    """CLI JSON emission not routed through ``_json_safe``.

    Origin: PR 8 — ``json.dumps`` serializes non-finite floats as the
    spec-invalid bare ``Infinity``/``NaN`` tokens, which broke consumers
    of ``repro query --json`` on disconnected pairs.  Every ``json.dumps``
    / ``json.dump`` in the CLI must wrap its payload in ``_json_safe`` so
    unreachable distances serialize as ``null`` (the socket protocol's
    ``{"d": null}`` contract).
    """

    id = "json-safety"
    description = "json.dumps in the CLI without the _json_safe non-finite guard"
    hint = "wrap the payload: json.dumps(_json_safe(payload), ...)"
    include = ("cli.py",)

    def visit_Call(self, node: ast.Call, ctx: FileContext):
        if dotted_name(node.func) not in {"json.dumps", "json.dump"}:
            return
        if node.args:
            payload = node.args[0]
            if isinstance(payload, ast.Call):
                name = dotted_name(payload.func) or ""
                if name.split(".")[-1] == "_json_safe":
                    return
        yield node, (
            "json.dumps/json.dump payload not wrapped in _json_safe — "
            "non-finite floats serialize as spec-invalid bare Infinity/NaN"
        )


class FrozenReferenceRule(Rule):
    """Drift in the pinned ``*_reference`` scalar baselines.

    Origin: PRs 1/4 kept pre-vectorization scalar implementations
    in-tree as frozen bit-identity baselines.  Their hashes are pinned in
    :data:`repro.analysis.frozen.FROZEN_HASHES`; an edited, added, or
    deleted reference function must re-pin explicitly (see that module's
    docs) in the same PR, after re-validating bit-identity.
    """

    id = "frozen-reference"
    description = "*_reference baseline changed/added/removed without re-pinning"
    hint = (
        "re-validate bit-identity, then regenerate the manifest with "
        "`python -m repro.analysis.frozen` and update FROZEN_HASHES"
    )

    def check(self, ctx: FileContext):
        from .frozen import FROZEN_HASHES, hash_function, reference_functions

        seen: dict[str, ast.FunctionDef] = {}
        for node in reference_functions(ctx.tree):
            seen[f"{ctx.rel}::{node.name}"] = node
        for key, node in seen.items():
            pinned = FROZEN_HASHES.get(key)
            current = hash_function(node, ctx.source)
            if pinned is None:
                yield node, (
                    f"reference implementation {key} is not pinned in "
                    "FROZEN_HASHES — frozen baselines must be content-hashed"
                )
            elif pinned != current:
                yield node, (
                    f"pinned reference {key} drifted: manifest has {pinned}, "
                    f"source hashes to {current}"
                )
        prefix = ctx.rel + "::"
        for key in FROZEN_HASHES:
            if key.startswith(prefix) and key not in seen:
                yield None, (
                    f"pinned reference {key} is missing from this module — "
                    "remove the pin deliberately if the baseline moved"
                )


def all_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, stable order."""
    return [
        MemmapCopyRule(),
        RngDisciplineRule(),
        Int32WideningRule(),
        ShmLifecycleRule(),
        AsyncBlockingRule(),
        JsonSafetyRule(),
        FrozenReferenceRule(),
    ]
