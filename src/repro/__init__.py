"""repro: reproduction of "Massively Parallel Algorithms for Distance
Approximation and Spanners" (Biswas, Dory, Ghaffari, Mitrovic, Nazari;
SPAA 2021, arXiv:2003.01254).

Public API overview
-------------------
``repro.graphs``
    Weighted graph substrate: CSR graphs, generators, exact distances,
    spanner validation.
``repro.core``
    The paper's spanner algorithms (Sections 3-5, Appendix B) plus the
    Baswana-Sen baseline and closed-form parameter bounds.
``repro.mpc`` / ``repro.mpc_impl``
    A faithful MPC simulator (machines, memory limits, round accounting)
    and Section 6's machine-level implementation of the general algorithm.
``repro.congest`` / ``repro.cc_impl``
    Congested Clique simulator (Lenzen routing) and Section 8's APSP.
``repro.pram``
    PRAM depth/work accounting for the Section 6 PRAM claim.
``repro.distances``
    Spanner-based distance oracles (Corollary 1.4).
``repro.registry``
    The unified algorithm registry: every spanner construction and APSP
    pipeline as a lazily-resolved :class:`~repro.registry.AlgorithmSpec`.
``repro.runner``
    Declarative experiment plans executed on a process pool with
    content-hash resume (``repro sweep``).
``repro.verify``
    Certification subsystem: every registered algorithm's declared paper
    bounds checked against measured runs, one certificate per cell of an
    algorithms x graph-families conformance matrix (``repro verify``).
"""

__version__ = "1.0.0"
