"""Command-line interface: ``repro <command> ...`` (or ``python -m repro``).

Commands
--------
``spanner``
    Build a spanner with any registered algorithm and report
    size/stretch/iterations.
``apsp``
    Run the Corollary 1.4 (MPC) or Corollary 1.5 (Congested Clique)
    APSP pipeline and report rounds + approximation quality.
``tradeoff``
    Print the closed-form Theorem 1.1 tradeoff table for a given ``k``.
``mpc``
    Run the Section 6 machine-level implementation and report the
    simulated cluster accounting.
``list``
    Show every registered algorithm and graph-spec family.
``lint``
    Run the repo-invariant static analysis checks (:mod:`repro.analysis`)
    over source trees: ``repro lint src/ --strict`` exits nonzero on any
    finding, ``--json`` emits machine-readable findings, ``--rule ID``
    restricts to one rule, ``--list-rules`` prints the rule table.
``sweep``
    Execute an :class:`~repro.runner.plan.ExperimentPlan` (JSON file) on a
    process pool, with content-hash resume and JSON/CSV artifacts.
``verify``
    Certify algorithms against their declared paper bounds — one run
    (``repro verify --algorithm ... --graph ...``) or a full conformance
    matrix over algorithms x graph families x seeds (``repro verify
    --matrix``).
``bench``
    Run the cross-algorithm benchmark suite (every registered algorithm +
    the hot-loop before/after harness), write ``BENCH_suite.json``, and —
    given ``--baseline`` — fail on a >2x per-algorithm slowdown (with
    graceful timer-noise skips).
``query``
    Answer distance queries from a persisted artifact store
    (:mod:`repro.service`): resolve the artifact for a build
    configuration (``--build`` constructs + persists it when missing, so
    ``build -> persist -> load -> query`` is one command), then run a
    pair workload through the batched/cached/sharded query engine.
``ingest``
    Convert a real SNAP/whitespace edge list (road networks, social
    graphs; ``.gz`` accepted) into a ``graph`` artifact via the
    streaming chunked parser — the artifact then serves exact rows
    through ``repro query --key ...`` (shared-memory sharding included)
    without ever materializing the text file.
``serve``
    Same artifact resolution, then serve queries.  ``--socket HOST:PORT``
    runs the concurrent micro-batching asyncio server (newline-delimited
    JSON protocol, latency SLO stats, graceful drain on SIGINT/SIGTERM —
    see :mod:`repro.service.server`); without it, the legacy pipe mode
    answers ``u v`` pairs line-by-line from stdin to stdout, replying to
    malformed lines with line-numbered JSON errors.

Algorithms come from :mod:`repro.registry`; graphs are generated on the fly
from ``--graph`` specs like ``er:512:0.06`` or loaded from disk with
``file:<path>`` (see :mod:`repro.graphs.specs`; ``repro list`` shows every
family).  ``spanner`` and ``apsp`` take ``--json`` for machine-readable
output.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from .registry import algorithm_names, get_algorithm, iter_algorithms, ALIASES

__all__ = ["main", "build_graph"]


def _json_safe(obj):
    """Recursively map non-finite floats to ``None`` for JSON output.

    ``json.dumps`` emits the spec-invalid bare ``Infinity``/``NaN`` tokens
    for non-finite floats; every CLI JSON path routes through this so
    unreachable distances and unbounded stretches serialize as ``null``,
    matching the socket protocol's ``{"d": null}`` contract.
    """
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {k: _json_safe(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_json_safe(v) for v in obj]
    return obj


def build_graph(spec: str, *, weights: str = "uniform", seed: int = 0):
    """Parse a ``family:arg1:arg2`` graph spec and build the graph.

    Thin compatibility wrapper over :class:`repro.graphs.specs.GraphSpec`
    that reports spec problems as ``SystemExit`` (CLI semantics).
    """
    from .graphs.specs import GraphSpec, GraphSpecError

    try:
        return GraphSpec.parse(spec).build(weights=weights, seed=seed)
    except GraphSpecError as exc:
        raise SystemExit(f"bad graph spec: {exc}") from exc


def _spanner_algorithm_choices() -> list[str]:
    """Canonical spanner names plus their aliases (old names keep working)."""
    names = algorithm_names("spanner")
    aliases = sorted(
        a for a, target in ALIASES.items() if get_algorithm(target).kind == "spanner"
    )
    return names + aliases


def _cmd_spanner(args) -> int:
    algo = get_algorithm(args.algorithm)
    weights = args.weights if algo.weighted else "unit"
    g = build_graph(args.graph, weights=weights, seed=args.seed)
    res = algo.run(g, k=args.k, t=args.t, rng=args.seed)
    h = res.subgraph(g)

    from .graphs import edge_stretch

    rep = edge_stretch(g, h)
    if args.json:
        record = res.to_record()
        record.update(
            {
                "algorithm": algo.name,
                "graph": args.graph,
                "graph_n": g.n,
                "graph_m": g.m,
                "seed": args.seed,
                "weights": weights,
                "max_stretch": float(rep.max_stretch),
                "mean_stretch": float(rep.mean_stretch),
            }
        )
        print(json.dumps(_json_safe(record), indent=2, sort_keys=True))
        return 0

    print(f"graph: n={g.n} m={g.m}")
    print(f"algorithm: {res.algorithm}  k={args.k}  t={res.t}")
    print(f"spanner: {h.m} edges ({100 * h.m / max(g.m, 1):.1f}% kept)")
    print(f"iterations: {res.iterations}")
    print(f"stretch: max {rep.max_stretch:.3f}  mean {rep.mean_stretch:.4f}")
    if algo.name == "general":
        from .core import stretch_bound

        print(f"guarantee: {stretch_bound(args.k, args.t):.1f}")
    stream = res.stream_stats
    if stream is not None:
        print(f"stream passes: {stream.passes}")
    mpc = res.mpc_stats
    if mpc is not None:
        print(f"simulated rounds: {mpc.rounds}  peak load: {mpc.peak_machine_load}")
    return 0


def _cmd_apsp(args) -> int:
    import numpy as np

    g = build_graph(args.graph, weights=args.weights, seed=args.seed)
    pipeline = get_algorithm("apsp-mpc" if args.model == "mpc" else "apsp-cc")
    res = pipeline.run(g, rng=args.seed)

    from .graphs import apsp as exact_apsp

    d = exact_apsp(g)
    a = res.all_pairs()
    iu = np.triu_indices(g.n, k=1)
    base = d[iu]
    mask = np.isfinite(base) & (base > 0)
    ratios = a[iu][mask] / base[mask]
    if args.json:
        record = {
            "model": args.model,
            "graph": args.graph,
            "graph_n": g.n,
            "graph_m": g.m,
            "seed": args.seed,
            "k": res.k,
            "t": res.t,
            "rounds": res.rounds,
            "collection_rounds": res.collection_rounds,
            "spanner_edges": res.spanner.m,
            "guaranteed_stretch": float(res.guaranteed_stretch),
        }
        if mask.any():
            record["max_approximation"] = float(ratios.max())
            record["mean_approximation"] = float(ratios.mean())
        print(json.dumps(_json_safe(record), indent=2, sort_keys=True))
        return 0

    print(f"graph: n={g.n} m={g.m}  model={args.model}")
    print(f"parameters: k={res.k} t={res.t}")
    print(f"rounds: {res.rounds} (collection {res.collection_rounds})")
    print(f"spanner size: {res.spanner.m}")
    if mask.any():
        print(
            f"approximation: max x{ratios.max():.3f} mean x{ratios.mean():.4f} "
            f"(guarantee x{res.guaranteed_stretch:.1f})"
        )
    return 0


def _cmd_tradeoff(args) -> int:
    from .core import tradeoff_table

    print(f"Theorem 1.1 tradeoff for k={args.k}:")
    for row in tradeoff_table(args.k):
        print(
            f"  t={row.t:<4} epochs={row.epochs:<3} iterations={row.iterations:<5} "
            f"stretch<=2k^{row.stretch_exponent:.3f}={row.stretch:9.1f}  "
            f"size~n^(1+1/k)*{row.size_factor:.1f}  [{row.label}]"
        )
    return 0


def _cmd_mpc(args) -> int:
    from .mpc_impl import spanner_mpc

    g = build_graph(args.graph, weights=args.weights, seed=args.seed)
    res = spanner_mpc(g, args.k, args.t, gamma=args.gamma, rng=args.seed)
    mpc = res.mpc_stats
    print(f"graph: n={g.n} m={g.m}   gamma={args.gamma}")
    print(f"machines: {mpc.num_machines}  local memory: {mpc.machine_memory} words")
    print(f"peak machine load: {mpc.peak_machine_load} words")
    print(f"simulated rounds: {mpc.rounds}  messages: {mpc.total_messages}")
    print(f"spanner: {res.num_edges} edges in {res.iterations} iterations")
    return 0


def _cmd_list(args) -> int:
    from .graphs.specs import GRAPH_FAMILIES

    if args.json:
        payload = {
            "algorithms": [
                {
                    "name": s.name,
                    "model": s.model,
                    "kind": s.kind,
                    "requires_t": s.requires_t,
                    "weighted": s.weighted,
                    "description": s.description,
                }
                for s in iter_algorithms()
            ],
            "aliases": dict(sorted(ALIASES.items())),
            "graph_families": [
                {
                    "name": f.name,
                    "signature": f.signature,
                    "example": f.example,
                    "description": f.description,
                }
                for _, f in sorted(GRAPH_FAMILIES.items())
            ],
        }
        print(json.dumps(_json_safe(payload), indent=2))
        return 0

    print("algorithms:")
    for spec in iter_algorithms():
        flags = [spec.model, spec.kind]
        if spec.requires_t:
            flags.append("uses-t")
        if not spec.weighted:
            flags.append("unweighted-only")
        print(f"  {spec.name:<16} [{', '.join(flags)}] {spec.description}")
    print("aliases:")
    for alias, target in sorted(ALIASES.items()):
        print(f"  {alias:<24} -> {target}")
    print("graph families:")
    for _, fam in sorted(GRAPH_FAMILIES.items()):
        print(f"  {fam.signature:<28} e.g. {fam.example:<18} {fam.description}")
    return 0


def _cmd_sweep(args) -> int:
    from .runner import ExperimentPlan, run_plan

    try:
        plan = ExperimentPlan.load(args.plan)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot load plan {args.plan!r}: {exc}") from exc
    try:
        trials = plan.trials()
    except (KeyError, ValueError) as exc:
        raise SystemExit(f"bad plan {args.plan!r}: {exc}") from exc

    if args.dry_run:
        print(f"plan {plan.name!r}: {len(trials)} trials")
        for trial in trials:
            print(
                f"  {trial.trial_id}  {trial.algorithm:<16} {trial.graph:<20} "
                f"k={trial.k} t={trial.t} seed={trial.seed} weights={trial.weights}"
            )
        return 0

    def progress(record, done, total):
        status = record.get("error") or (
            f"{record.get('num_edges', '?')} edges in {record.get('elapsed_s', 0):.3f}s"
        )
        print(f"[{done}/{total}] {record['algorithm']} {record['graph']} "
              f"seed={record['seed']}: {status}")

    if args.persist and not args.out:
        raise SystemExit("sweep: --persist requires --out")
    result = run_plan(
        plan,
        jobs=args.jobs,
        out_dir=args.out,
        resume=not args.no_resume,
        progress=None if args.json else progress,
        persist=args.persist,
    )
    errors = sum(1 for r in result.records if "error" in r)
    if args.json:
        print(
            json.dumps(
                _json_safe(
                    {
                        "plan": plan.name,
                        "trials": result.total,
                        "executed": result.executed,
                        "skipped": result.skipped,
                        "errors": errors,
                        "wall_seconds": round(result.wall_seconds, 3),
                        "out_dir": result.out_dir,
                    }
                ),
                indent=2,
            )
        )
    else:
        print(
            f"sweep {plan.name!r}: {result.total} trials "
            f"({result.executed} executed, {result.skipped} resumed, "
            f"{errors} errors) in {result.wall_seconds:.2f}s"
        )
        if result.out_dir:
            print(f"artifacts: {result.out_dir}/results.json, {result.out_dir}/results.csv")
    return 1 if errors else 0


def _cmd_verify(args) -> int:
    from .verify import certify, conformance_plan, format_matrix_markdown, run_matrix

    if not args.matrix:
        if not args.algorithm:
            raise SystemExit("verify: --algorithm is required without --matrix")
        from .graphs.specs import GraphSpecError

        try:
            cert = certify(
                args.algorithm,
                args.graph or "er:512:0.06",
                k=args.k,
                t=args.t,
                seed=args.seed or 0,
                weights=args.weights or "uniform",
                slack=args.slack,
            )
        except (KeyError, ValueError, GraphSpecError) as exc:
            raise SystemExit(f"verify: {exc}") from exc
        if args.out:
            from pathlib import Path

            out = Path(args.out)
            if out.is_dir():  # accept the --matrix directory form too
                out = out / "certificate.json"
            cert.save(out)
        if args.json:
            print(json.dumps(_json_safe(cert.to_json()), indent=2, sort_keys=True))
        else:
            print(
                f"{cert.algorithm} on {cert.graph} "
                f"(n={cert.n} m={cert.m} k={cert.k} t={cert.t} seed={cert.seed}): "
                f"{cert.summary()}"
            )
            for c in cert.checks:
                mark = "ok  " if c.passed else "FAIL"
                bound = "" if c.bound is None else f"  <=  {c.bound:.3f}"
                print(f"  [{mark}] {c.name:<18} {c.measured:.3f}{bound}  ({c.detail})")
            if cert.source:
                print(f"  claims: {cert.source}")
        return 0 if cert.ok else 1

    def split(text, conv=str):
        return [conv(tok) for tok in text.split(",") if tok] if text else None

    # The singular flags narrow the matrix too, so `--matrix --graph g`
    # certifies g rather than silently reverting to the default families.
    plan = conformance_plan(
        algorithms=split(args.algorithms),
        graphs=split(args.graphs) or ([args.graph] if args.graph else None),
        ks=split(args.ks, int) or ([args.k] if args.k is not None else None),
        ts=[args.t] if args.t is not None else None,
        seeds=split(args.seeds, int)
        or ([args.seed] if args.seed is not None else None),
        weights=[args.weights] if args.weights else None,
        slack=args.slack,
    )
    try:
        plan.trials()
    except (KeyError, ValueError) as exc:  # GraphSpecError is a ValueError
        raise SystemExit(f"verify: bad matrix plan: {exc}") from exc

    def progress(record, done, total):
        status = record.get("error") or (
            "certified" if record.get("cert_ok") else
            f"VIOLATED: {record.get('cert_violations', '?')}"
        )
        print(f"[{done}/{total}] {record['algorithm']} {record['graph']} "
              f"k={record.get('k')} seed={record['seed']}: {status}")

    # Unlike `repro sweep`, certification defaults to a fresh run: a resumed
    # cell re-reports a certificate computed against whatever bounds were
    # registered when it was first written, which is stale evidence after a
    # registry claim changes.  --resume opts back in for interrupted sweeps.
    result = run_matrix(
        plan,
        jobs=args.jobs,
        out_dir=args.out,
        resume=args.resume,
        progress=None if args.json else progress,
    )
    if args.json:
        print(json.dumps(_json_safe(result.to_json()), indent=2, sort_keys=True))
    else:
        print(format_matrix_markdown(result))
        if result.out_dir:
            print(f"artifacts: {result.out_dir}/matrix.json, {result.out_dir}/matrix.md")
    return 0 if result.ok else 1


def _service_config(args) -> dict:
    """The canonical build configuration a service artifact is keyed by."""
    from .graphs.specs import GraphSpec, GraphSpecError
    from .registry import resolve_name

    try:
        graph = GraphSpec.parse(args.graph).format()
    except GraphSpecError as exc:
        raise SystemExit(f"bad graph spec: {exc}") from exc
    try:
        algorithm = resolve_name(args.algorithm)
    except KeyError as exc:
        raise SystemExit(f"unknown algorithm {args.algorithm!r}") from exc
    # Unweighted-only algorithms always build with unit weights; normalize
    # before hashing so the weight model cannot split identical artifacts
    # into distinct keys (mirrors the runner's trial normalization).
    weights = args.weights if get_algorithm(algorithm).weighted else "unit"
    return {
        "algorithm": algorithm,
        "graph": graph,
        "k": args.k,
        "t": args.t,
        "seed": args.seed,
        "weights": weights,
        "kind": args.kind,
    }


def _build_service_artifact(store, key: str, config: dict) -> None:
    """Build the configured structure and persist it under ``key``."""
    algo = get_algorithm(config["algorithm"])
    if algo.kind != "spanner":
        raise SystemExit(
            f"--build needs a spanner algorithm, got {config['algorithm']!r} "
            f"({algo.kind}); APSP pipelines persist via `repro sweep --persist`"
        )
    g = build_graph(config["graph"], weights=config["weights"], seed=config["seed"])
    res = algo.run(g, k=config["k"], t=config["t"], rng=config["seed"])
    meta = {**config, "graph_n": g.n, "graph_m": g.m}
    if config["kind"] == "sketch":
        from .distances.sketches import sketch_on_spanner

        sk, accounting = sketch_on_spanner(g, res, config["k"], rng=config["seed"])
        meta.update(accounting)
        store.save_sketch(sk, key=key, meta=meta)
    elif config["kind"] == "bundle":
        # Graph + spanner + sketch side by side under one key: the
        # multi-backend artifact the provider planner serves.  The sketch
        # is preprocessed on the *input* graph, so its declared stretch
        # stays the clean 2k-1.
        from .distances.sketches import DistanceSketch

        sk = DistanceSketch(g, config["k"], rng=config["seed"])
        store.save_bundle(
            g,
            res.subgraph(g),
            sk,
            k=res.k,
            t=res.t,
            t_effective=res.extra.get("t_effective", res.t),
            key=key,
            meta=meta,
        )
    else:
        store.save_spanner(
            res.subgraph(g),
            k=res.k,
            t=res.t,
            t_effective=res.extra.get("t_effective", res.t),
            key=key,
            meta=meta,
        )


def _plan_target(args):
    """The :class:`~repro.service.provider.PlanTarget` the planner flags
    declare, or ``None`` when every flag is at its default."""
    backend = getattr(args, "backend", "auto")
    stretch = getattr(args, "stretch", None)
    latency = getattr(args, "latency_target", None)
    if backend == "auto" and stretch is None and latency is None:
        return None
    from .service.provider import PlanTarget

    try:
        return PlanTarget(backend=backend, max_stretch=stretch, p99_ms=latency)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _resolve_engine(args):
    """Resolve (and optionally build) the artifact; return (key, built, engine)."""
    from .service import ArtifactStore, QueryEngine, config_key

    store = ArtifactStore(args.store)
    built = False
    if args.key:
        key = args.key
        if key not in store:
            known = ", ".join(store.keys()) or "<empty>"
            raise SystemExit(f"no artifact {key!r} in {args.store} (have: {known})")
    else:
        key = config_key(_service_config(args))
        if key not in store:
            if not args.build:
                raise SystemExit(
                    f"no artifact {key!r} for this configuration in {args.store}; "
                    "pass --build to construct and persist it"
                )
            _build_service_artifact(store, key, _service_config(args))
            built = True
    target = _plan_target(args)
    if target is not None and store.info(key).kind != "bundle":
        raise SystemExit(
            f"--backend/--stretch/--latency-target route between backends, but "
            f"artifact {key!r} is kind {store.info(key).kind!r}; build with "
            f"--kind bundle to serve all of them"
        )
    engine = QueryEngine.from_store(
        store,
        key,
        cache_rows=args.cache_rows,
        shards=args.shards,
        mmap=not args.eager,
        target=target,
    )
    return key, built, engine


def _workload_pairs(args, n: int):
    """The query workload: explicit ``--pairs`` or a generated mix."""
    import numpy as np

    if args.pairs:
        try:
            flat = [
                (int(a), int(b))
                for a, b in (tok.split(":") for tok in args.pairs.split(",") if tok)
            ]
        except ValueError as exc:
            raise SystemExit(f"bad --pairs (expected 'u:v,u:v,...'): {exc}") from exc
        return np.asarray(flat, dtype=np.int64).reshape(-1, 2)
    from .core.params import coerce_rng

    rng = coerce_rng(args.pair_seed)
    r = args.num_pairs
    if args.zipf and args.zipf <= 1.0:
        raise SystemExit(f"--zipf must be > 1 (got {args.zipf}); use 0 for uniform")
    if args.zipf:
        # Zipf-ranked sources over a fixed permutation of the vertex ids —
        # the skewed "hot sources" traffic the row cache is for.
        perm = rng.permutation(n)
        sources = perm[(rng.zipf(args.zipf, size=r) - 1) % n]
    else:
        sources = rng.integers(0, n, size=r)
    targets = rng.integers(0, n, size=r)
    return np.stack([sources, targets], axis=1)


def _cmd_query(args) -> int:
    import numpy as np

    key, built, engine = _resolve_engine(args)
    with engine:
        pairs = _workload_pairs(args, engine.n)
        if pairs.size and (pairs.min() < 0 or pairs.max() >= engine.n):
            raise SystemExit(f"pair vertex out of range for n={engine.n}")
        answers = np.concatenate(
            [
                engine.query_many(pairs[lo : lo + args.batch])
                for lo in range(0, pairs.shape[0], args.batch)
            ]
        ) if pairs.size else np.zeros(0)
        stats = engine.stats()

    finite = np.isfinite(answers)
    if args.json:
        # _json_safe maps disconnected answers (float inf) to null — the
        # socket protocol's {"d": null} contract, not the spec-invalid
        # bare `Infinity` token json.dumps would emit.
        print(
            json.dumps(
                _json_safe(
                    {
                        "store": args.store,
                        "key": key,
                        "built": built,
                        "num_pairs": int(pairs.shape[0]),
                        "finite": int(finite.sum()),
                        "mean_distance": (
                            float(answers[finite].mean()) if finite.any() else None
                        ),
                        "answers": answers.tolist(),
                        "stats": stats,
                    }
                ),
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    status = "built + persisted" if built else "loaded"
    print(f"artifact {key} ({status}) from {args.store}")
    for (u, v), d in zip(pairs.tolist(), answers.tolist()):
        print(f"{u} {v} {d}")
    cache = stats["cache"]
    print(
        f"served {stats['queries_served']} queries in {stats['batches']} batches: "
        f"{stats['rows_solved']} rows solved, cache hit rate {cache['hit_rate']:.2%}"
    )
    if "planner" in stats:
        planner = stats["planner"]
        routed = ", ".join(
            f"{name}={count}" for name, count in sorted(planner["routed"].items())
        )
        print(f"planner [{planner['target']}] routed: {routed}")
    return 0


def _cmd_serve(args) -> int:
    key, built, engine = _resolve_engine(args)
    status = "built + persisted" if built else "loaded"

    if args.socket:
        from .service.server import parse_hostport, run_server

        try:
            host, port = parse_hostport(args.socket)
        except ValueError as exc:
            engine.close()
            raise SystemExit(str(exc)) from exc
        if args.window_ms < 0:
            engine.close()
            raise SystemExit(f"--window-ms must be >= 0, got {args.window_ms}")
        stats = run_server(
            engine,
            host=host,
            port=port,
            max_batch=args.max_batch,
            window_s=args.window_ms / 1e3,
            max_pending=args.max_pending,
            announce=lambda h, p: print(
                f"serving artifact {key} ({status}) on {h}:{p} "
                f"(micro-batch window {args.window_ms}ms, max batch "
                f"{args.max_batch}, max pending {args.max_pending}); "
                f"SIGINT/SIGTERM drains",
                file=sys.stderr,
                flush=True,
            ),
        )
        print(json.dumps(_json_safe(stats), sort_keys=True), file=sys.stderr)
        return 0

    from .service.server import serve_pipe

    print(
        f"serving artifact {key} ({status}); one 'u v' pair per line on stdin",
        file=sys.stderr,
    )
    with engine:
        result = serve_pipe(engine, sys.stdin, sys.stdout)
        print(json.dumps(_json_safe(result["stats"]), sort_keys=True), file=sys.stderr)
    return 1 if result["errors"] else 0


def _cmd_ingest(args) -> int:
    import time

    from .graphs.io import read_edgelist_streaming
    from .service import ArtifactStore
    from .service.mem import peak_rss_bytes

    t0 = time.perf_counter()
    try:
        g, report = read_edgelist_streaming(
            args.path,
            num_nodes=args.num_nodes,
            relabel=args.relabel,
            chunk_lines=args.chunk_lines,
        )
    except (OSError, ValueError) as exc:
        raise SystemExit(f"ingest: {exc}") from exc
    parse_s = time.perf_counter() - t0
    store = ArtifactStore(args.store)
    meta = {"source": report.pop("path"), **report}
    key = store.save_graph(g, key=args.key, meta=meta)
    total_s = time.perf_counter() - t0
    record = {
        "store": args.store,
        "key": key,
        "n": g.n,
        "edges": g.m,
        "self_loops_dropped": report["self_loops_dropped"],
        "duplicates_merged": report["duplicates_merged"],
        "parse_s": round(parse_s, 3),
        "total_s": round(total_s, 3),
        "edges_per_s": round(report["lines"] / parse_s, 1) if parse_s > 0 else None,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    if args.json:
        print(json.dumps(_json_safe(record), indent=2, sort_keys=True))
        return 0
    print(f"ingested {args.path}: n={g.n} m={g.m} -> artifact {key} in {args.store}")
    print(
        f"  {report['lines']} lines in {parse_s:.2f}s "
        f"({record['edges_per_s'] or 0:.0f} lines/s), "
        f"{report['self_loops_dropped']} self loops dropped, "
        f"{report['duplicates_merged']} duplicates merged"
    )
    print(f"  query it: repro query --store {args.store} --key {key}")
    return 0


def _cmd_bench(args) -> int:
    from .bench import format_table, hot_loop_gates, run_suite, slowdown_gate

    record = run_suite(smoke=args.smoke)

    gate_ok = True
    gate_lines: list[str] = []
    hot_ok, hot_reasons = hot_loop_gates(record)
    gate_ok &= hot_ok
    gate_lines += [f"hot-loop gate: {r}" for r in hot_reasons]
    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"bench: cannot load baseline {args.baseline!r}: {exc}")
        slow_ok, slow_reasons = slowdown_gate(record, baseline)
        gate_ok &= slow_ok
        gate_lines += [f"slowdown gate: {r}" for r in slow_reasons]

    if args.out:
        import os

        parent = os.path.dirname(os.path.abspath(args.out))
        os.makedirs(parent, exist_ok=True)
        with open(args.out, "w") as fh:
            json.dump(_json_safe(record), fh, indent=2, sort_keys=True)
            fh.write("\n")

    if args.json:
        print(
            json.dumps(
                _json_safe({"record": record, "gates_ok": gate_ok, "gates": gate_lines}),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(format_table(record))
        for line in gate_lines:
            print(line)
        if args.out:
            print(f"wrote {args.out}")
    return 0 if gate_ok else 1


def _cmd_lint(args) -> int:
    from .analysis import all_rules, lint_paths

    rules = all_rules()
    if args.list_rules:
        width = max(len(r.id) for r in rules)
        for rule in rules:
            print(f"{rule.id:<{width}}  {rule.description}")
        return 0

    try:
        findings = lint_paths(args.paths, rule_ids=args.rule or None)
    except KeyError as exc:
        raise SystemExit(f"lint: {exc.args[0]}")
    except FileNotFoundError as exc:
        raise SystemExit(f"lint: {exc}")

    if args.json:
        print(json.dumps(_json_safe([f.to_json() for f in findings]), indent=2))
    else:
        for finding in findings:
            print(finding.format())
            if finding.hint:
                print(f"    hint: {finding.hint}")
        n = len(findings)
        print(f"lint: {n} finding{'s' if n != 1 else ''}" if n else "lint: clean")
    return 1 if findings and args.strict else 0


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Spanners and distance approximation (SPAA 2021 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--graph", default="er:512:0.06", help="family:args spec")
        sp.add_argument("--weights", default="uniform", help="weight model")
        sp.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser("spanner", help="build one spanner")
    common(sp)
    sp.add_argument(
        "--algorithm",
        choices=_spanner_algorithm_choices(),
        default="general",
        metavar="ALGO",
        help="registry name or alias (see `repro list`)",
    )
    sp.add_argument("-k", type=int, default=8)
    sp.add_argument("-t", type=int, default=2)
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.set_defaults(fn=_cmd_spanner)

    sp = sub.add_parser("apsp", help="run an APSP pipeline")
    common(sp)
    sp.add_argument("--model", choices=["mpc", "cc"], default="mpc")
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.set_defaults(fn=_cmd_apsp)

    sp = sub.add_parser("tradeoff", help="print the closed-form tradeoff table")
    sp.add_argument("-k", type=int, default=16)
    sp.set_defaults(fn=_cmd_tradeoff)

    sp = sub.add_parser("mpc", help="machine-level MPC run")
    common(sp)
    sp.add_argument("-k", type=int, default=8)
    sp.add_argument("-t", type=int, default=3)
    sp.add_argument("--gamma", type=float, default=0.5)
    sp.set_defaults(fn=_cmd_mpc)

    sp = sub.add_parser("list", help="show registered algorithms + graph families")
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.set_defaults(fn=_cmd_list)

    sp = sub.add_parser(
        "lint",
        help="run the repo-invariant static analysis checks",
        description=(
            "AST-based checks for repo-specific correctness invariants "
            "(memmap copy discipline, rng seeding, int64 index widening, "
            "shared-memory lifecycles, async blocking calls, JSON safety, "
            "frozen reference baselines).  See repro.analysis."
        ),
    )
    sp.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    sp.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any finding is reported",
    )
    sp.add_argument("--json", action="store_true", help="emit findings as JSON")
    sp.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule (repeatable; default: all rules)",
    )
    sp.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    sp.set_defaults(fn=_cmd_lint)

    sp = sub.add_parser("sweep", help="run an experiment plan (JSON) in parallel")
    sp.add_argument("--plan", required=True, help="path to an ExperimentPlan JSON file")
    sp.add_argument("--jobs", type=int, default=1, help="worker processes")
    sp.add_argument("--out", default=None, help="artifact directory (enables resume)")
    sp.add_argument(
        "--no-resume", action="store_true", help="re-run trials even if artifacts exist"
    )
    sp.add_argument(
        "--persist",
        action="store_true",
        help="save every trial's built spanner under OUT/store as a serving "
        "artifact keyed by the trial id (see `repro query --store OUT/store`)",
    )
    sp.add_argument("--dry-run", action="store_true", help="list trials, run nothing")
    sp.add_argument("--json", action="store_true", help="summary as JSON")
    sp.set_defaults(fn=_cmd_sweep)

    sp = sub.add_parser(
        "bench", help="run the cross-algorithm benchmark suite"
    )
    sp.add_argument("--smoke", action="store_true", help="tiny sizes, single trial")
    sp.add_argument(
        "--out", default=None, help="write the suite record JSON to this path"
    )
    sp.add_argument(
        "--baseline",
        default=None,
        help="committed BENCH_suite.json to gate against (>2x slowdown fails; "
        "timer-noise cells are skipped with a reason)",
    )
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.set_defaults(fn=_cmd_bench)

    sp = sub.add_parser(
        "ingest",
        help="convert a SNAP/whitespace edge list into a graph artifact "
        "(streaming parse, bounded memory)",
    )
    sp.add_argument(
        "path", help="edge-list file: 'u v [w]' per line, '#' comments, .gz ok"
    )
    sp.add_argument("--store", required=True, help="artifact store directory")
    sp.add_argument(
        "--key", default=None, help="artifact key (default: content hash of the meta)"
    )
    sp.add_argument(
        "--num-nodes",
        type=int,
        default=None,
        help="declared vertex count (default max endpoint + 1)",
    )
    sp.add_argument(
        "--relabel",
        action="store_true",
        help="compress sparse/non-contiguous node ids to 0..n-1",
    )
    sp.add_argument(
        "--chunk-lines",
        type=int,
        default=None,
        help="data lines parsed per chunk (default: memory-budget autotuned)",
    )
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.set_defaults(fn=_cmd_ingest)

    def service_common(sp):
        sp.add_argument("--store", required=True, help="artifact store directory")
        sp.add_argument(
            "--key",
            default=None,
            help="explicit artifact key (e.g. a sweep trial id); skips the "
            "configuration-hash resolution",
        )
        sp.add_argument("--graph", default="er:512:0.06", help="family:args spec")
        sp.add_argument(
            "--algorithm",
            default="general",
            metavar="ALGO",
            help="spanner algorithm used when building (see `repro list`)",
        )
        sp.add_argument("-k", type=int, default=8)
        sp.add_argument("-t", type=int, default=2)
        sp.add_argument("--seed", type=int, default=0)
        sp.add_argument("--weights", default="uniform", help="weight model")
        sp.add_argument(
            "--kind",
            choices=["oracle", "sketch", "bundle"],
            default="oracle",
            help="artifact kind: spanner oracle rows, a Thorup-Zwick sketch, "
            "or a bundle (graph + spanner + sketch) serving every backend",
        )
        sp.add_argument(
            "--backend",
            choices=["auto", "exact", "oracle", "sketch", "tiered"],
            default="auto",
            help="answer path for bundle artifacts: a fixed backend, 'tiered' "
            "(sketch answer refined by hot oracle rows), or 'auto' planner "
            "routing on observed latency",
        )
        sp.add_argument(
            "--stretch",
            type=float,
            default=None,
            metavar="S",
            help="auto planner accuracy target: only backends whose declared "
            "stretch bound is <= S are eligible",
        )
        sp.add_argument(
            "--latency-target",
            type=float,
            default=None,
            metavar="MS",
            help="auto planner latency SLO: route to the most accurate backend "
            "whose observed p99 per query is under MS milliseconds",
        )
        sp.add_argument(
            "--build",
            action="store_true",
            help="build + persist the artifact when the store lacks it",
        )
        sp.add_argument(
            "--cache-rows",
            type=int,
            default=4096,
            help="LRU bound on cached per-source distance rows",
        )
        sp.add_argument(
            "--shards",
            type=int,
            default=0,
            help=">=2 partitions row solves across that many worker processes "
            "(all attached to one shared-memory copy of the spanner)",
        )
        sp.add_argument(
            "--eager",
            action="store_true",
            help="materialize artifact arrays instead of memmapping them",
        )

    sp = sub.add_parser(
        "query", help="answer distance queries from a persisted artifact store"
    )
    service_common(sp)
    sp.add_argument(
        "--pairs", default=None, help="explicit workload: 'u:v,u:v,...'"
    )
    sp.add_argument(
        "--num-pairs", type=int, default=16, help="generated workload size"
    )
    sp.add_argument("--pair-seed", type=int, default=0, help="workload rng seed")
    sp.add_argument(
        "--zipf",
        type=float,
        default=0.0,
        help="draw sources zipf(a)-ranked over a vertex permutation "
        "(hot-source traffic); 0 = uniform",
    )
    sp.add_argument(
        "--batch", type=int, default=1024, help="queries dispatched per engine batch"
    )
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.set_defaults(fn=_cmd_query)

    sp = sub.add_parser(
        "serve",
        help="serve distance queries: --socket HOST:PORT runs the "
        "micro-batching asyncio server, default is the stdin/stdout pipe",
    )
    service_common(sp)
    sp.add_argument(
        "--socket",
        default=None,
        metavar="HOST:PORT",
        help="run the concurrent NDJSON socket server instead of the pipe "
        "(port 0 picks a free port, announced on stderr)",
    )
    sp.add_argument(
        "--max-batch",
        type=int,
        default=256,
        help="flush the micro-batch window at this many coalesced requests",
    )
    sp.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="micro-batch window deadline in milliseconds (solver-idle case)",
    )
    sp.add_argument(
        "--max-pending",
        type=int,
        default=8192,
        help="admission bound: queued requests beyond this are rejected "
        "with an explicit 'overloaded' error",
    )
    sp.set_defaults(fn=_cmd_serve)

    sp = sub.add_parser(
        "verify", help="certify algorithms against their declared paper bounds"
    )
    # Not common(): defaults stay None so --matrix can tell whether the
    # singular flags were actually given and narrow the sweep accordingly.
    sp.add_argument(
        "--graph",
        default=None,
        help="family:args spec (default er:512:0.06; narrows --matrix)",
    )
    sp.add_argument("--weights", default=None, help="weight model (default uniform)")
    sp.add_argument("--seed", type=int, default=None, help="rng seed (default 0)")
    sp.add_argument(
        "--algorithm",
        default=None,
        metavar="ALGO",
        help="registry name or alias to certify (single-run mode)",
    )
    sp.add_argument("-k", type=int, default=None, help="stretch parameter")
    sp.add_argument("-t", type=int, default=None, help="growth parameter")
    sp.add_argument(
        "--slack",
        type=float,
        default=1.0,
        help="constant-factor slack on the expected-size bound (default 1.0)",
    )
    sp.add_argument(
        "--matrix",
        action="store_true",
        help="sweep a conformance matrix instead of certifying one run",
    )
    sp.add_argument(
        "--algorithms",
        default=None,
        help="comma-separated registry names for --matrix (default: all)",
    )
    sp.add_argument(
        "--graphs",
        default=None,
        help="comma-separated graph specs for --matrix (default: representative set)",
    )
    sp.add_argument("--ks", default=None, help="comma-separated k values for --matrix")
    sp.add_argument("--seeds", default=None, help="comma-separated seeds for --matrix")
    sp.add_argument("--jobs", type=int, default=1, help="worker processes for --matrix")
    sp.add_argument(
        "--out",
        default=None,
        help="certificate JSON path (single run) or artifact directory (--matrix)",
    )
    sp.add_argument(
        "--resume",
        action="store_true",
        help="reuse finished cell artifacts under --out (for interrupted "
        "sweeps; default recertifies, so verdicts always reflect the "
        "currently registered claims)",
    )
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.set_defaults(fn=_cmd_verify)
    return p


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
