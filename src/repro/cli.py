"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``spanner``
    Build a spanner with any of the paper's algorithms and report
    size/stretch/iterations.
``apsp``
    Run the Corollary 1.4 (MPC) or Corollary 1.5 (Congested Clique)
    APSP pipeline and report rounds + approximation quality.
``tradeoff``
    Print the closed-form Theorem 1.1 tradeoff table for a given ``k``.
``mpc``
    Run the Section 6 machine-level implementation and report the
    simulated cluster accounting.

Graphs are generated on the fly from ``--graph`` specs like ``er:512:0.06``
(Erdős–Rényi), ``ba:512:3`` (Barabási–Albert), ``grid:20:25``,
``geo:512:0.1`` (random geometric), or ``cliques:16:8``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core import (
    baswana_sen,
    cluster_merging,
    general_tradeoff,
    stretch_bound,
    tradeoff_table,
    two_phase_contraction,
    unweighted_spanner,
)
from .graphs import (
    WeightedGraph,
    barabasi_albert,
    edge_stretch,
    erdos_renyi,
    grid_graph,
    random_geometric,
    ring_of_cliques,
)

__all__ = ["main", "build_graph"]

ALGORITHMS = {
    "baswana-sen": lambda g, k, t, rng: baswana_sen(g, k, rng=rng),
    "cluster-merging": lambda g, k, t, rng: cluster_merging(g, k, rng=rng),
    "two-phase": lambda g, k, t, rng: two_phase_contraction(g, k, rng=rng),
    "general": lambda g, k, t, rng: general_tradeoff(g, k, t, rng=rng),
    "unweighted": lambda g, k, t, rng: unweighted_spanner(g, k, rng=rng),
    "streaming": None,  # resolved lazily to avoid import cost
}


def build_graph(spec: str, *, weights: str = "uniform", seed: int = 0) -> WeightedGraph:
    """Parse a ``family:arg1:arg2`` graph spec."""
    parts = spec.split(":")
    fam = parts[0]
    try:
        if fam == "er":
            return erdos_renyi(int(parts[1]), float(parts[2]), weights=weights, rng=seed)
        if fam == "ba":
            return barabasi_albert(int(parts[1]), int(parts[2]), weights=weights, rng=seed)
        if fam == "grid":
            return grid_graph(int(parts[1]), int(parts[2]), weights=weights, rng=seed)
        if fam == "geo":
            return random_geometric(int(parts[1]), float(parts[2]), weights=weights, rng=seed)
        if fam == "cliques":
            return ring_of_cliques(int(parts[1]), int(parts[2]), weights=weights, rng=seed)
    except (IndexError, ValueError) as exc:
        raise SystemExit(f"bad graph spec {spec!r}: {exc}") from exc
    raise SystemExit(f"unknown graph family {fam!r} (er|ba|grid|geo|cliques)")


def _cmd_spanner(args) -> int:
    weights = "unit" if args.algorithm == "unweighted" else args.weights
    g = build_graph(args.graph, weights=weights, seed=args.seed)
    if args.algorithm == "streaming":
        from .streaming import streaming_spanner

        res = streaming_spanner(g, args.k, rng=args.seed)
    else:
        res = ALGORITHMS[args.algorithm](g, args.k, args.t, args.seed)
    h = res.subgraph(g)
    rep = edge_stretch(g, h)
    print(f"graph: n={g.n} m={g.m}")
    print(f"algorithm: {res.algorithm}  k={args.k}  t={res.t}")
    print(f"spanner: {h.m} edges ({100 * h.m / max(g.m, 1):.1f}% kept)")
    print(f"iterations: {res.iterations}")
    print(f"stretch: max {rep.max_stretch:.3f}  mean {rep.mean_stretch:.4f}")
    if args.algorithm == "general":
        print(f"guarantee: {stretch_bound(args.k, args.t):.1f}")
    if "stream" in res.extra:
        print(f"stream passes: {res.extra['stream']['passes']}")
    return 0


def _cmd_apsp(args) -> int:
    g = build_graph(args.graph, weights=args.weights, seed=args.seed)
    if args.model == "mpc":
        from .mpc_impl import apsp_mpc

        res = apsp_mpc(g, rng=args.seed)
    else:
        from .cc_impl import apsp_cc

        res = apsp_cc(g, rng=args.seed)
    from .graphs import apsp as exact_apsp

    d = exact_apsp(g)
    a = res.all_pairs()
    iu = np.triu_indices(g.n, k=1)
    base = d[iu]
    mask = np.isfinite(base) & (base > 0)
    ratios = a[iu][mask] / base[mask]
    print(f"graph: n={g.n} m={g.m}  model={args.model}")
    print(f"parameters: k={res.k} t={res.t}")
    print(f"rounds: {res.rounds} (collection {res.collection_rounds})")
    print(f"spanner size: {res.spanner.m}")
    if mask.any():
        print(
            f"approximation: max x{ratios.max():.3f} mean x{ratios.mean():.4f} "
            f"(guarantee x{res.guaranteed_stretch:.1f})"
        )
    return 0


def _cmd_tradeoff(args) -> int:
    print(f"Theorem 1.1 tradeoff for k={args.k}:")
    for row in tradeoff_table(args.k):
        print(
            f"  t={row.t:<4} epochs={row.epochs:<3} iterations={row.iterations:<5} "
            f"stretch<=2k^{row.stretch_exponent:.3f}={row.stretch:9.1f}  "
            f"size~n^(1+1/k)*{row.size_factor:.1f}  [{row.label}]"
        )
    return 0


def _cmd_mpc(args) -> int:
    from .mpc_impl import spanner_mpc

    g = build_graph(args.graph, weights=args.weights, seed=args.seed)
    res = spanner_mpc(g, args.k, args.t, gamma=args.gamma, rng=args.seed)
    mpc = res.extra["mpc"]
    print(f"graph: n={g.n} m={g.m}   gamma={args.gamma}")
    print(f"machines: {mpc['num_machines']}  local memory: {mpc['machine_memory']} words")
    print(f"peak machine load: {mpc['peak_machine_load']} words")
    print(f"simulated rounds: {mpc['rounds']}  messages: {mpc['total_messages']}")
    print(f"spanner: {res.num_edges} edges in {res.iterations} iterations")
    return 0


def make_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="Spanners and distance approximation (SPAA 2021 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("--graph", default="er:512:0.06", help="family:args spec")
        sp.add_argument("--weights", default="uniform", help="weight model")
        sp.add_argument("--seed", type=int, default=0)

    sp = sub.add_parser("spanner", help="build one spanner")
    common(sp)
    sp.add_argument("--algorithm", choices=sorted(ALGORITHMS), default="general")
    sp.add_argument("-k", type=int, default=8)
    sp.add_argument("-t", type=int, default=2)
    sp.set_defaults(fn=_cmd_spanner)

    sp = sub.add_parser("apsp", help="run an APSP pipeline")
    common(sp)
    sp.add_argument("--model", choices=["mpc", "cc"], default="mpc")
    sp.set_defaults(fn=_cmd_apsp)

    sp = sub.add_parser("tradeoff", help="print the closed-form tradeoff table")
    sp.add_argument("-k", type=int, default=16)
    sp.set_defaults(fn=_cmd_tradeoff)

    sp = sub.add_parser("mpc", help="machine-level MPC run")
    common(sp)
    sp.add_argument("-k", type=int, default=8)
    sp.add_argument("-t", type=int, default=3)
    sp.add_argument("--gamma", type=float, default=0.5)
    sp.set_defaults(fn=_cmd_mpc)
    return p


def main(argv: list[str] | None = None) -> int:
    args = make_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
