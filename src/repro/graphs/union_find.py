"""Array-backed union-find with path compression and union by size.

Used by the PRAM merge primitive (Section 6 describes cluster merging "like
a union find data structure, where each set has a leader node") and by the
quotient-graph construction, where contracting a clustering is exactly a
bulk union.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Disjoint-set forest over elements ``0..n-1``.

    Supports vectorized bulk operations (:meth:`union_edges`,
    :meth:`labels`) alongside the scalar API.

    Examples
    --------
    >>> uf = UnionFind(4)
    >>> uf.union(0, 1)
    True
    >>> uf.connected(0, 1), uf.connected(0, 2)
    (True, False)
    """

    __slots__ = ("_parent", "_size", "num_sets")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = np.arange(n, dtype=np.int64)
        self._size = np.ones(n, dtype=np.int64)
        self.num_sets = n

    def __len__(self) -> int:
        return int(self._parent.size)

    def find(self, x: int) -> int:
        """Root of ``x``'s set, with full path compression."""
        root = x
        p = self._parent
        while p[root] != root:
            root = p[root]
        while p[x] != root:
            p[x], x = root, p[x]
        return int(root)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns False if already same."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self.num_sets -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        """True if ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, x: int) -> int:
        """Size of the set containing ``x``."""
        return int(self._size[self.find(x)])

    def union_edges(self, u: np.ndarray, v: np.ndarray) -> int:
        """Union along each edge ``(u[i], v[i])``; returns number of merges."""
        merges = 0
        for a, b in zip(np.asarray(u).ravel(), np.asarray(v).ravel()):
            if self.union(int(a), int(b)):
                merges += 1
        return merges

    def labels(self, *, compact: bool = False) -> np.ndarray:
        """Root label per element.

        With ``compact=True`` labels are renumbered ``0..num_sets-1`` in
        order of first appearance, which is the form quotient-graph
        construction needs.
        """
        n = len(self)
        roots = np.empty(n, dtype=np.int64)
        for x in range(n):
            roots[x] = self.find(x)
        if not compact:
            return roots
        _, inv = np.unique(roots, return_inverse=True)
        # np.unique sorts by root id; remap to order of first appearance so
        # labels are stable under permutations of the input edges.
        first = {}
        out = np.empty(n, dtype=np.int64)
        nxt = 0
        for x in range(n):
            r = int(roots[x])
            if r not in first:
                first[r] = nxt
                nxt += 1
            out[x] = first[r]
        return out
