"""Quotient (super-) graph construction.

Definition 5.1 of the paper: given a graph ``G`` and a clustering ``C``, the
quotient graph ``G/C`` has the clusters as vertices and an edge between two
clusters whenever some original edge joins them.  Step C of the general
algorithm additionally keeps only the *minimum-weight* edge between each
pair of super-nodes; we implement that as the default because the stretch
proof relies on it, and we track which original edge id realizes each
super-edge so spanner output always refers to original edges.

Everything here is a numpy ``lexsort`` pipeline: label endpoints, sort edge
records by (super-u, super-v, weight), keep group leaders.  This mirrors how
the MPC implementation (Section 6) does it with a distributed sort, which is
also why the machine-level implementation in :mod:`repro.mpc_impl` can share
the same logic shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QuotientEdges", "quotient_edges", "relabel_clustering"]


@dataclass(frozen=True)
class QuotientEdges:
    """Edge list of a quotient graph with provenance.

    Attributes
    ----------
    num_nodes:
        Number of super-nodes (= number of clusters).
    u, v:
        Super-node endpoints, canonical ``u < v``, one entry per surviving
        super-edge.
    w:
        Weight of the kept (minimum) original edge.
    rep_edge_id:
        For each super-edge, the id (into the *original* edge arrays passed
        in) of the minimum-weight original edge realizing it.
    """

    num_nodes: int
    u: np.ndarray
    v: np.ndarray
    w: np.ndarray
    rep_edge_id: np.ndarray

    @property
    def m(self) -> int:
        return int(self.u.size)


def quotient_edges(
    labels: np.ndarray,
    u: np.ndarray,
    v: np.ndarray,
    w: np.ndarray,
    edge_ids: np.ndarray | None = None,
) -> QuotientEdges:
    """Contract a clustering over an edge list.

    Parameters
    ----------
    labels:
        Cluster label per vertex, values in ``0..C-1`` (use
        :func:`relabel_clustering` to compact arbitrary labels first).
    u, v, w:
        Edge arrays over the original vertex ids.
    edge_ids:
        Optional provenance ids carried per edge (defaults to positional).

    Intra-cluster edges are dropped; parallel super-edges are collapsed to
    the minimum weight with deterministic tie-breaking by provenance id.
    """
    labels = np.asarray(labels, dtype=np.int64)
    u = np.asarray(u, dtype=np.int64)
    v = np.asarray(v, dtype=np.int64)
    w = np.asarray(w, dtype=np.float64)
    if edge_ids is None:
        edge_ids = np.arange(u.size, dtype=np.int64)
    else:
        edge_ids = np.asarray(edge_ids, dtype=np.int64)
    num_nodes = int(labels.max()) + 1 if labels.size else 0

    cu = labels[u]
    cv = labels[v]
    lo = np.minimum(cu, cv)
    hi = np.maximum(cu, cv)
    keep = lo != hi
    lo, hi, w2, ids = lo[keep], hi[keep], w[keep], edge_ids[keep]
    if lo.size == 0:
        z = np.zeros(0, dtype=np.int64)
        return QuotientEdges(num_nodes, z, z, np.zeros(0), z.copy())
    order = np.lexsort((ids, w2, hi, lo))
    lo, hi, w2, ids = lo[order], hi[order], w2[order], ids[order]
    leader = np.ones(lo.size, dtype=bool)
    leader[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
    return QuotientEdges(num_nodes, lo[leader], hi[leader], w2[leader], ids[leader])


def relabel_clustering(labels: np.ndarray) -> tuple[np.ndarray, int]:
    """Compact arbitrary integer labels to ``0..C-1`` (first-appearance
    order) and return ``(new_labels, C)``."""
    labels = np.asarray(labels, dtype=np.int64)
    uniq, inv = np.unique(labels, return_inverse=True)
    # np.unique orders by value; re-map to first-appearance order so label 0
    # is the cluster of vertex 0 etc. — handy for deterministic tests.
    first_pos = np.full(uniq.size, labels.size, dtype=np.int64)
    np.minimum.at(first_pos, inv, np.arange(labels.size))
    rank = np.argsort(np.argsort(first_pos, kind="stable"), kind="stable")
    return rank[inv], int(uniq.size)
