"""Graph specs: every generator family reachable from one string format.

A *graph spec* is a colon-separated string ``family:arg1:arg2`` naming one
of the generator families in :mod:`repro.graphs.generators` (or an on-disk
edge list via ``file:<path>``).  :class:`GraphSpec` parses, validates,
builds, and re-formats specs, giving the CLI and the experiment runner one
shared vocabulary for workloads::

    er:512:0.06      Erdős–Rényi G(512, 0.06)
    gnm:512:4000     uniform random graph with exactly 4000 edges
    ba:512:3         Barabási–Albert, attach 3
    geo:512:0.1      random geometric, radius 0.1
    grid:20:25       20 x 25 grid
    torus:20:25      grid with wraparound
    cliques:16:8     ring of 16 cliques of size 8
    complete:64      K_64
    cycle:128        one 128-cycle
    double-cycle:128 two disjoint 64-cycles
    path:128         a path
    star:128         a star
    tree:256         uniform random recursive tree
    girth:256:4      near-girth-conjecture-density hard instance (unit weights)
    file:g.edges     weighted edge list loaded via repro.graphs.io

Parsing and formatting round-trip: ``GraphSpec.parse(s).format() == s`` for
canonical specs, and re-parsing a formatted spec yields an equal
:class:`GraphSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

__all__ = [
    "GraphSpecError",
    "GraphFamily",
    "GraphSpec",
    "GRAPH_FAMILIES",
    "graph_family_names",
    "build_graph_from_spec",
]


class GraphSpecError(ValueError):
    """A graph spec failed to parse, validate, or build."""


@dataclass(frozen=True)
class GraphFamily:
    """One spec family: argument schema + builder.

    ``params`` is a tuple of ``(name, converter)`` pairs; converters raise
    ``ValueError`` on malformed input.  ``build(args, weights, seed)``
    returns a :class:`~repro.graphs.graph.WeightedGraph`; families that
    ignore ``weights``/``seed`` (``girth``, ``file``) say so in their
    description.
    """

    name: str
    params: tuple[tuple[str, Callable], ...]
    build: Callable
    description: str
    example: str

    @property
    def signature(self) -> str:
        """Human-readable spec shape, e.g. ``er:<n>:<p>``."""
        parts = [self.name] + [f"<{p}>" for p, _ in self.params]
        return ":".join(parts)


def _format_arg(value) -> str:
    """Canonical text for one spec argument (floats via repr round-trip)."""
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class GraphSpec:
    """A parsed, validated graph spec (family + typed arguments)."""

    family: str
    args: tuple

    @classmethod
    def parse(cls, text: str) -> "GraphSpec":
        """Parse ``family:arg1:...`` into a validated :class:`GraphSpec`.

        Raises :class:`GraphSpecError` on an unknown family, wrong arity,
        or an argument that fails its converter.
        """
        text = text.strip()
        if not text:
            raise GraphSpecError("empty graph spec")
        head, _, rest = text.partition(":")
        if head not in GRAPH_FAMILIES:
            known = "|".join(graph_family_names())
            raise GraphSpecError(f"unknown graph family {head!r} ({known})")
        fam = GRAPH_FAMILIES[head]
        if head == "file":
            # Paths may themselves contain ':'; everything after the first
            # separator is the path.
            if not rest:
                raise GraphSpecError("file spec needs a path: file:<path>")
            return cls(family=head, args=(rest,))
        raw = rest.split(":") if rest else []
        if len(raw) != len(fam.params):
            raise GraphSpecError(
                f"{head} expects {len(fam.params)} args ({fam.signature}), "
                f"got {len(raw)} in {text!r}"
            )
        args = []
        for (pname, conv), token in zip(fam.params, raw):
            try:
                args.append(conv(token))
            except ValueError as exc:
                raise GraphSpecError(
                    f"bad {pname}={token!r} in graph spec {text!r}: {exc}"
                ) from exc
        return cls(family=head, args=tuple(args))

    def format(self) -> str:
        """Canonical spec string; ``GraphSpec.parse`` round-trips it."""
        return ":".join([self.family] + [_format_arg(a) for a in self.args])

    def build(self, *, weights: str = "unit", seed=0):
        """Build the graph (validated arguments can still fail semantic
        checks inside the generator, reported as :class:`GraphSpecError`)."""
        fam = GRAPH_FAMILIES[self.family]
        try:
            return fam.build(self.args, weights, seed)
        except (ValueError, OSError) as exc:
            raise GraphSpecError(f"cannot build {self.format()!r}: {exc}") from exc


def _gen(maker):
    """Adapt ``generator(*args, weights=..., rng=seed)`` to the family
    builder signature."""

    def build(args, weights, seed):
        return maker(*args, weights=weights, rng=seed)

    return build


def _positive_int(token: str) -> int:
    value = int(token)
    if value <= 0:
        raise ValueError("must be a positive integer")
    return value


def _nonneg_int(token: str) -> int:
    value = int(token)
    if value < 0:
        raise ValueError("must be a non-negative integer")
    return value


def _probability(token: str) -> float:
    value = float(token)
    if not 0.0 <= value <= 1.0:
        raise ValueError("must be in [0, 1]")
    return value


def _positive_float(token: str) -> float:
    value = float(token)
    if value <= 0:
        raise ValueError("must be positive")
    return value


def _build_girth(args, weights, seed):
    from .generators import hard_girth_instance

    return hard_girth_instance(*args, rng=seed)


def _build_file(args, weights, seed):
    from .io import read_edgelist

    return read_edgelist(args[0])


def _families() -> dict[str, GraphFamily]:
    from . import generators as g  # late import: keeps module import order flexible

    fams = [
        GraphFamily(
            "er",
            (("n", _positive_int), ("p", _probability)),
            _gen(g.erdos_renyi),
            "Erdős–Rényi G(n, p) random graph.",
            "er:512:0.06",
        ),
        GraphFamily(
            "gnm",
            (("n", _positive_int), ("m", _nonneg_int)),
            _gen(g.gnm_random),
            "Uniform random graph with exactly m distinct edges.",
            "gnm:512:4000",
        ),
        GraphFamily(
            "ba",
            (("n", _positive_int), ("attach", _positive_int)),
            _gen(g.barabasi_albert),
            "Barabási–Albert preferential attachment (skewed degrees).",
            "ba:512:3",
        ),
        GraphFamily(
            "geo",
            (("n", _positive_int), ("radius", _positive_float)),
            _gen(g.random_geometric),
            "Random geometric graph on the unit square (road-network-like).",
            "geo:512:0.1",
        ),
        GraphFamily(
            "grid",
            (("rows", _positive_int), ("cols", _positive_int)),
            _gen(g.grid_graph),
            "rows x cols grid — high girth, spanners must keep almost all.",
            "grid:20:25",
        ),
        GraphFamily(
            "torus",
            (("rows", _positive_int), ("cols", _positive_int)),
            _gen(g.torus_graph),
            "Grid with wraparound edges in both dimensions.",
            "torus:20:25",
        ),
        GraphFamily(
            "cliques",
            (("num_cliques", _positive_int), ("clique_size", _positive_int)),
            _gen(g.ring_of_cliques),
            "Ring of cliques joined by bridges — contraction's best case.",
            "cliques:16:8",
        ),
        GraphFamily(
            "complete",
            (("n", _positive_int),),
            _gen(g.complete_graph),
            "Complete graph K_n — spanners discard almost everything.",
            "complete:64",
        ),
        GraphFamily(
            "cycle",
            (("n", _positive_int),),
            _gen(g.cycle_graph),
            "A single n-cycle (n >= 3).",
            "cycle:128",
        ),
        GraphFamily(
            "double-cycle",
            (("n", _positive_int),),
            _gen(g.double_cycle),
            "Two disjoint n/2-cycles — the conditional-lower-bound instance.",
            "double-cycle:128",
        ),
        GraphFamily(
            "path",
            (("n", _positive_int),),
            _gen(g.path_graph),
            "A simple path.",
            "path:128",
        ),
        GraphFamily(
            "star",
            (("n", _positive_int),),
            _gen(g.star_graph),
            "Star graph — the ball-growing request-explosion example.",
            "star:128",
        ),
        GraphFamily(
            "tree",
            (("n", _positive_int),),
            _gen(g.random_tree),
            "Uniform random recursive tree (its own unique spanner).",
            "tree:256",
        ),
        GraphFamily(
            "girth",
            (("n", _positive_int), ("k", _positive_int)),
            _build_girth,
            "Near-girth-conjecture-density hard instance (unit weights only).",
            "girth:256:4",
        ),
        GraphFamily(
            "file",
            (("path", str),),
            _build_file,
            "Weighted edge list loaded via repro.graphs.io (weights/seed ignored).",
            "file:graph.edges",
        ),
    ]
    return {f.name: f for f in fams}


#: Family name -> :class:`GraphFamily`; every generator in
#: :mod:`repro.graphs.generators` is reachable from here.
GRAPH_FAMILIES: dict[str, GraphFamily] = _families()


def graph_family_names() -> list[str]:
    """Sorted spec family names."""
    return sorted(GRAPH_FAMILIES)


def build_graph_from_spec(text: str, *, weights: str = "unit", seed=0):
    """One-shot convenience: parse + build."""
    return GraphSpec.parse(text).build(weights=weights, seed=seed)
