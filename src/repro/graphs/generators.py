"""Graph generators for the experiment suite.

The paper's theorems are worst-case statements over all weighted graphs; the
benchmark harness exercises them on the standard families that the MPC
literature (and the paper's introduction) motivates:

* Erdős–Rényi ``G(n, p)`` — the dense/sparse random regime,
* Barabási–Albert preferential attachment — skewed degree (web/social),
* random geometric graphs — spatial/road-network-like locality,
* grids and tori — high-girth structured graphs where spanners must keep
  almost everything,
* ring-of-cliques — clustered graphs where contraction shines,
* complete graphs — the extreme where a spanner discards almost everything,
* cycles and double cycles — the "one cycle vs two cycles" conjectured-hard
  instance discussed with the conditional lower bound.

Every generator takes a :class:`numpy.random.Generator` (or an int seed) so
experiments are reproducible, and a ``weights`` specification shared by
:func:`draw_weights`.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from .graph import WeightedGraph

__all__ = [
    "draw_weights",
    "erdos_renyi",
    "gnm_random",
    "barabasi_albert",
    "random_geometric",
    "grid_graph",
    "torus_graph",
    "ring_of_cliques",
    "complete_graph",
    "cycle_graph",
    "double_cycle",
    "path_graph",
    "star_graph",
    "random_tree",
    "hard_girth_instance",
]

WeightModel = Literal["unit", "uniform", "exponential", "powerlaw", "integer"]


def _rng(seed) -> np.random.Generator:
    # Late import: generators sit below core in the import layering, so
    # the shared seed normalization is pulled in at call time.
    from ..core.params import coerce_rng

    return coerce_rng(seed)


def draw_weights(
    m: int, model: WeightModel = "unit", rng=None, *, low: float = 1.0, high: float = 100.0
) -> np.ndarray:
    """Draw ``m`` edge weights from the named model.

    ``unit``
        all ones (unweighted graph);
    ``uniform``
        uniform on ``[low, high]``;
    ``exponential``
        ``1 + Exp(1) * (high - low)`` — heavy spread, strictly positive;
    ``powerlaw``
        Pareto-like tail, exercising the weighted-stretch machinery on
        extremely skewed weights;
    ``integer``
        uniform integers in ``[low, high]`` (Congested Clique messages carry
        `O(log n)`-bit words; integer weights are the natural fit there).
    """
    rng = _rng(rng)
    if model == "unit":
        return np.ones(m)
    if model == "uniform":
        return rng.uniform(low, high, size=m)
    if model == "exponential":
        return low + rng.exponential(scale=(high - low) or 1.0, size=m)
    if model == "powerlaw":
        return low * (1.0 + rng.pareto(a=1.5, size=m))
    if model == "integer":
        return rng.integers(int(low), int(high) + 1, size=m).astype(np.float64)
    raise ValueError(f"unknown weight model {model!r}")


def erdos_renyi(
    n: int, p: float, *, weights: WeightModel = "unit", rng=None, **wkw
) -> WeightedGraph:
    """``G(n, p)`` sampled by vectorized coin flips over the upper triangle.

    Memory is ``O(n^2)`` bits transiently; fine for the `n ≤ ~10^4` scale the
    benchmark suite uses.
    """
    rng = _rng(rng)
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    iu = np.triu_indices(n, k=1)
    mask = rng.random(iu[0].size) < p
    u, v = iu[0][mask], iu[1][mask]
    w = draw_weights(u.size, weights, rng, **wkw)
    return WeightedGraph(n, u, v, w)


def gnm_random(
    n: int, m: int, *, weights: WeightModel = "unit", rng=None, **wkw
) -> WeightedGraph:
    """Uniform random graph with exactly ``m`` distinct edges."""
    rng = _rng(rng)
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"m={m} exceeds max {max_m} for n={n}")
    # Sample edge codes without replacement from the triangular index space.
    codes = rng.choice(max_m, size=m, replace=False)
    # Decode code -> (u, v): standard triangular decoding.
    u = (n - 2 - np.floor(np.sqrt(-8 * codes + 4 * n * (n - 1) - 7) / 2.0 - 0.5)).astype(
        np.int64
    )
    v = (codes + u + 1 - n * (n - 1) // 2 + (n - u) * ((n - u) - 1) // 2).astype(np.int64)
    w = draw_weights(m, weights, rng, **wkw)
    return WeightedGraph(n, u, v, w)


def barabasi_albert(
    n: int, attach: int, *, weights: WeightModel = "unit", rng=None, **wkw
) -> WeightedGraph:
    """Preferential attachment: each new vertex attaches to ``attach``
    existing vertices chosen proportionally to degree (repeated-targets
    collapsed by dedup)."""
    rng = _rng(rng)
    if attach < 1 or attach >= n:
        raise ValueError("need 1 <= attach < n")
    targets = list(range(attach))
    repeated: list[int] = list(range(attach))
    us, vs = [], []
    for src in range(attach, n):
        chosen = rng.choice(repeated, size=attach, replace=True)
        for t in set(int(c) for c in chosen):
            us.append(src)
            vs.append(t)
            repeated.append(t)
            repeated.append(src)
    u = np.asarray(us, dtype=np.int64)
    v = np.asarray(vs, dtype=np.int64)
    w = draw_weights(u.size, weights, rng, **wkw)
    return WeightedGraph(n, u, v, w)


def random_geometric(
    n: int, radius: float, *, weights: WeightModel = "unit", rng=None, **wkw
) -> WeightedGraph:
    """Random geometric graph on the unit square; when ``weights='unit'`` we
    still return 1.0 weights, otherwise drawn weights are *scaled by the
    Euclidean edge length* so the metric is locally consistent (road-network
    style)."""
    rng = _rng(rng)
    pts = rng.random((n, 2))
    iu = np.triu_indices(n, k=1)
    d = np.sqrt(((pts[iu[0]] - pts[iu[1]]) ** 2).sum(axis=1))
    mask = d <= radius
    u, v, dist = iu[0][mask], iu[1][mask], d[mask]
    if weights == "unit":
        w = np.ones(u.size)
    else:
        w = draw_weights(u.size, weights, rng, **wkw) * np.maximum(dist, 1e-9)
    return WeightedGraph(n, u, v, w)


def grid_graph(
    rows: int, cols: int, *, weights: WeightModel = "unit", rng=None, **wkw
) -> WeightedGraph:
    """``rows x cols`` grid; vertex ``(r, c)`` is ``r * cols + c``."""
    r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    idx = (r * cols + c).astype(np.int64)
    us = np.concatenate([idx[:, :-1].ravel(), idx[:-1, :].ravel()])
    vs = np.concatenate([idx[:, 1:].ravel(), idx[1:, :].ravel()])
    w = draw_weights(us.size, weights, _rng(rng), **wkw)
    return WeightedGraph(rows * cols, us, vs, w)


def torus_graph(
    rows: int, cols: int, *, weights: WeightModel = "unit", rng=None, **wkw
) -> WeightedGraph:
    """Grid with wraparound edges in both dimensions."""
    r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
    idx = (r * cols + c).astype(np.int64)
    right = np.roll(idx, -1, axis=1)
    down = np.roll(idx, -1, axis=0)
    us = np.concatenate([idx.ravel(), idx.ravel()])
    vs = np.concatenate([right.ravel(), down.ravel()])
    keep = us != vs  # degenerate 1-wide tori create self loops
    us, vs = us[keep], vs[keep]
    w = draw_weights(us.size, weights, _rng(rng), **wkw)
    return WeightedGraph(rows * cols, us, vs, w)


def ring_of_cliques(
    num_cliques: int, clique_size: int, *, weights: WeightModel = "unit", rng=None, **wkw
) -> WeightedGraph:
    """``num_cliques`` cliques of size ``clique_size`` joined in a ring by
    single bridge edges — a natural fit for contraction-based algorithms."""
    if num_cliques < 1 or clique_size < 1:
        raise ValueError("need at least one clique of size >= 1")
    us, vs = [], []
    for q in range(num_cliques):
        base = q * clique_size
        for a in range(clique_size):
            for b in range(a + 1, clique_size):
                us.append(base + a)
                vs.append(base + b)
    if num_cliques > 1:
        for q in range(num_cliques):
            a = q * clique_size
            b = ((q + 1) % num_cliques) * clique_size
            if a != b:
                us.append(a)
                vs.append(b)
    u = np.asarray(us, dtype=np.int64)
    v = np.asarray(vs, dtype=np.int64)
    w = draw_weights(u.size, weights, _rng(rng), **wkw)
    return WeightedGraph(num_cliques * clique_size, u, v, w)


def complete_graph(
    n: int, *, weights: WeightModel = "unit", rng=None, **wkw
) -> WeightedGraph:
    """The complete graph K_n."""
    iu = np.triu_indices(n, k=1)
    w = draw_weights(iu[0].size, weights, _rng(rng), **wkw)
    return WeightedGraph(n, iu[0], iu[1], w)


def cycle_graph(n: int, *, weights: WeightModel = "unit", rng=None, **wkw) -> WeightedGraph:
    """A single n-cycle."""
    if n < 3:
        raise ValueError("cycle needs n >= 3")
    u = np.arange(n, dtype=np.int64)
    v = (u + 1) % n
    w = draw_weights(n, weights, _rng(rng), **wkw)
    return WeightedGraph(n, u, v, w)


def double_cycle(n: int, *, weights: WeightModel = "unit", rng=None, **wkw) -> WeightedGraph:
    """Two disjoint cycles of ``n/2`` vertices each — the companion of the
    "one cycle vs two cycles" connectivity conjecture that underlies the
    conditional lower bound discussed in the paper."""
    if n < 6 or n % 2:
        raise ValueError("double cycle needs even n >= 6")
    half = n // 2
    u1 = np.arange(half, dtype=np.int64)
    v1 = (u1 + 1) % half
    u2 = u1 + half
    v2 = v1 + half
    u = np.concatenate([u1, u2])
    v = np.concatenate([v1, v2])
    w = draw_weights(n, weights, _rng(rng), **wkw)
    return WeightedGraph(n, u, v, w)


def path_graph(n: int, *, weights: WeightModel = "unit", rng=None, **wkw) -> WeightedGraph:
    """A simple path 0-1-...-(n-1)."""
    if n < 1:
        raise ValueError("path needs n >= 1")
    u = np.arange(n - 1, dtype=np.int64)
    v = u + 1
    w = draw_weights(u.size, weights, _rng(rng), **wkw)
    return WeightedGraph(n, u, v, w)


def star_graph(n: int, *, weights: WeightModel = "unit", rng=None, **wkw) -> WeightedGraph:
    """Vertex 0 joined to all others — the dense-center example used when
    the paper discusses ball-growing request explosions (Appendix B.2.1)."""
    if n < 2:
        raise ValueError("star needs n >= 2")
    u = np.zeros(n - 1, dtype=np.int64)
    v = np.arange(1, n, dtype=np.int64)
    w = draw_weights(n - 1, weights, _rng(rng), **wkw)
    return WeightedGraph(n, u, v, w)


def random_tree(n: int, *, weights: WeightModel = "unit", rng=None, **wkw) -> WeightedGraph:
    """Uniform random recursive tree (each vertex attaches to a uniform
    earlier vertex).  A tree is its own unique spanner, a useful edge case."""
    rng = _rng(rng)
    if n < 1:
        raise ValueError("tree needs n >= 1")
    if n == 1:
        z = np.zeros(0, dtype=np.int64)
        return WeightedGraph(1, z, z, np.zeros(0))
    v = np.arange(1, n, dtype=np.int64)
    u = (rng.random(n - 1) * v).astype(np.int64)  # uniform in [0, v)
    w = draw_weights(n - 1, weights, rng, **wkw)
    return WeightedGraph(n, u, v, w)


def hard_girth_instance(n: int, k: int, *, rng=None) -> WeightedGraph:
    """A (heuristically) high-girth-ish sparse graph: a random graph with
    ``~ n^{1+1/k} / 2`` edges after removal of short cycles via a greedy
    pass.  Near the Erdős girth-conjecture density where (2k-1)-spanners
    cannot discard much, so it stresses the size analysis.
    """
    rng = _rng(rng)
    target_m = max(n - 1, int(0.5 * n ** (1.0 + 1.0 / max(k, 1))))
    target_m = min(target_m, n * (n - 1) // 2)
    g = gnm_random(n, target_m, weights="unit", rng=rng)
    return g
