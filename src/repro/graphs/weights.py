"""Weight quantization for bounded-word models.

The Congested Clique (and, strictly, MPC) carry ``O(log n)``-bit words, so
real-valued weights must be quantized.  The standard trick: round every
weight *up* to the next integer power of ``1 + ε``.  Each edge — and hence
each path and each shortest-path distance — is distorted by a factor of at
most ``1 + ε``, and only ``O(log_{1+ε}(W_max / W_min))`` distinct values
remain, each representable by its integer exponent.

:func:`quantize_weights` applies the rounding and reports how many bits a
message word needs; :func:`QuantizationReport.max_distortion` is checked by
the tests against the ``1 + ε`` guarantee.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .graph import WeightedGraph

__all__ = ["QuantizationReport", "quantize_weights"]


@dataclass(frozen=True)
class QuantizationReport:
    """Outcome of a weight quantization.

    Attributes
    ----------
    graph:
        The reweighted graph (weights are exact powers of ``1 + epsilon``).
    exponents:
        Integer exponent per edge: ``w' = w_min * (1+ε)^exponent``.
    epsilon:
        The distortion parameter used.
    bits_per_word:
        Bits needed to transmit one exponent (what a clique message
        carries).
    max_distortion:
        Measured ``max(w' / w)`` over edges — guaranteed ``<= 1 + ε``.
    """

    graph: WeightedGraph
    exponents: np.ndarray
    epsilon: float
    bits_per_word: int
    max_distortion: float


def quantize_weights(g: WeightedGraph, epsilon: float) -> QuantizationReport:
    """Round weights up to powers of ``1 + epsilon`` (relative to the
    minimum weight).

    Every distance in the returned graph is within a multiplicative
    ``1 + epsilon`` of the original (and never smaller), so a ``σ``-stretch
    spanner of the quantized graph is a ``σ(1+ε)``-stretch spanner of the
    original.

    Raises
    ------
    ValueError
        If ``epsilon <= 0`` or the graph has no edges.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if g.m == 0:
        raise ValueError("cannot quantize an edgeless graph")
    w = g.edges_w
    w_min = float(w.min())
    base = 1.0 + epsilon
    # Exponent of the smallest power of (1+eps) >= w / w_min.
    ratios = w / w_min
    exps = np.ceil(np.log(ratios) / math.log(base) - 1e-12).astype(np.int64)
    exps = np.maximum(exps, 0)
    new_w = w_min * base ** exps.astype(np.float64)
    # Guard against float rounding pushing a weight below the original.
    low = new_w < w
    if low.any():
        exps[low] += 1
        new_w = w_min * base ** exps.astype(np.float64)
    quantized = g.reweighted(new_w)
    bits = max(1, int(np.max(exps)).bit_length())
    distortion = float((new_w / w).max())
    return QuantizationReport(
        graph=quantized,
        exponents=exps,
        epsilon=epsilon,
        bits_per_word=bits,
        max_distortion=distortion,
    )
