"""Weighted graph data structures backed by numpy arrays.

The whole reproduction works on simple undirected weighted graphs.  The
canonical in-memory representation is :class:`WeightedGraph`, which stores a
de-duplicated, canonically ordered edge list (``u < v`` per edge) together
with a lazily built CSR adjacency structure.  Edge ids index into the edge
list, which lets spanner algorithms return *edge id sets* that always refer
to edges of the original input graph even after several rounds of cluster
contraction.

Design notes
------------
* Vertices are ``0 .. n-1`` integers; there is no vertex-relabelling layer.
* Edges are stored column-wise (``u``, ``v``, ``w`` arrays) which keeps all
  per-edge operations vectorized — the guides for this domain emphasize
  avoiding per-element Python loops, so every bulk operation here is a numpy
  expression.
* Graphs are immutable after construction.  Algorithms build *new* graphs
  (e.g. quotient graphs) instead of mutating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np
from scipy import sparse

__all__ = [
    "WeightedGraph",
    "canonical_edges",
    "dedupe_edges",
    "lockstep_run_lookup",
    "sorted_lookup",
    "sorted_pair_lookup",
]


def lockstep_run_lookup(
    values: np.ndarray, lo: np.ndarray, hi: np.ndarray, queries: np.ndarray
) -> np.ndarray:
    """Is ``queries[i]`` present in the sorted run ``values[lo[i]:hi[i]]``?

    Lower-bound binary search advanced in lockstep for every query at once
    (``O(log max-run)`` numpy passes) — the shared kernel behind
    :func:`sorted_pair_lookup` and the streaming discard-record probes.
    """
    l = lo.copy()
    r = hi.copy()
    active = l < r
    while active.any():
        mid = (l + r) >> 1
        less = np.zeros(l.size, dtype=bool)
        less[active] = values[mid[active]] < queries[active]
        go = active & less
        l[go] = mid[go] + 1
        stay = active & ~less
        r[stay] = mid[stay]
        active = l < r
    found = np.zeros(queries.size, dtype=bool)
    cand = l < hi
    found[cand] = values[l[cand]] == queries[cand]
    return found


def sorted_lookup(haystack: np.ndarray, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized membership of ``keys`` in the ascending ``haystack``.

    Returns ``(found, pos)`` where ``found`` flags keys present in the
    haystack and ``pos`` is the (clipped) searchsorted index — valid as the
    match position wherever ``found`` is true.  Shared by every sorted-key
    index in the repo (edge lookups, bunch membership, stream discard
    records) so the clip-guard subtlety lives in one place.
    """
    keys = np.asarray(keys)
    if haystack.size == 0:
        return np.zeros(keys.shape, dtype=bool), np.zeros(keys.shape, dtype=np.int64)
    pos = np.searchsorted(haystack, keys)
    clipped = np.minimum(pos, haystack.size - 1)
    return (pos < haystack.size) & (haystack[clipped] == keys), clipped


def sorted_pair_lookup(
    hay_a: np.ndarray, hay_b: np.ndarray, qa: np.ndarray, qb: np.ndarray
) -> np.ndarray:
    """Vectorized membership of ``(qa, qb)`` pairs in a lexsorted pair set.

    ``(hay_a, hay_b)`` is a set of integer pairs sorted by
    ``np.lexsort((hay_b, hay_a))`` order.  Unlike packing pairs into a
    single ``a * n + b`` integer key (whose range is O(n²) and whose ``n``
    must be threaded everywhere), this keys directly on the structured
    pair: one ``searchsorted`` on the first key locates each query's
    ``a``-run, then a vectorized binary search (lockstep over all queries,
    ``O(log |haystack|)`` numpy passes) finds ``b`` inside the run.
    """
    qa = np.asarray(qa).ravel()
    qb = np.asarray(qb).ravel()
    if hay_a.size == 0 or qa.size == 0:
        return np.zeros(qa.shape, dtype=bool)
    lo = np.searchsorted(hay_a, qa, side="left")
    hi = np.searchsorted(hay_a, qa, side="right")
    return lockstep_run_lookup(hay_b, lo, hi, qb)


def canonical_edges(
    u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return edge arrays with endpoints swapped so that ``u < v`` holds.

    Self loops are rejected with :class:`ValueError` — spanners of simple
    graphs never need them and silently dropping them would hide input bugs.

    Endpoint arrays that arrive as int32 (the store's downcast index mode
    for ``n < 2**31``) stay int32; everything else is normalized to int64.
    """
    u = np.asarray(u)
    v = np.asarray(v)
    if not (u.dtype == np.int32 and v.dtype == np.int32):
        u = u.astype(np.int64, copy=False)
        v = v.astype(np.int64, copy=False)
    w = np.asarray(w, dtype=np.float64)
    if u.shape != v.shape or u.shape != w.shape:
        raise ValueError(
            f"edge arrays must have equal shapes; got {u.shape}, {v.shape}, {w.shape}"
        )
    if np.any(u == v):
        raise ValueError("self loops are not allowed")
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    return lo, hi, w


def dedupe_edges(
    u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonicalize and remove parallel edges, keeping the minimum weight.

    Ties are broken deterministically (stable sort), so results are
    reproducible across runs.
    """
    lo, hi, w = canonical_edges(u, v, w)
    if lo.size == 0:
        return lo, hi, w
    # Sort by (lo, hi, w); the first edge of each (lo, hi) group is minimal.
    order = np.lexsort((w, hi, lo))
    lo, hi, w = lo[order], hi[order], w[order]
    keep = np.ones(lo.size, dtype=bool)
    keep[1:] = (lo[1:] != lo[:-1]) | (hi[1:] != hi[:-1])
    return lo[keep], hi[keep], w[keep]


@dataclass(frozen=True)
class _CSR:
    """Compact adjacency: for vertex ``x``, neighbors live in
    ``indices[indptr[x]:indptr[x+1]]`` with matching ``weights`` and the id
    of the underlying undirected edge in ``edge_ids``."""

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray
    edge_ids: np.ndarray


class WeightedGraph:
    """An immutable simple undirected weighted graph.

    Parameters
    ----------
    n:
        Number of vertices (vertices are ``0..n-1``).
    u, v, w:
        Parallel arrays describing edges.  Parallel edges are collapsed to
        the minimum weight; self loops raise.
    validate:
        When true (default) endpoints are range-checked and weights checked
        for positivity/finiteness.  Spanner stretch arguments assume
        non-negative weights; we require strictly positive finite weights.

    Examples
    --------
    >>> g = WeightedGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
    >>> g.n, g.m
    (3, 2)
    >>> list(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("n", "_u", "_v", "_w", "_csr", "_scipy", "_edge_keys")

    def __init__(
        self,
        n: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        *,
        validate: bool = True,
    ) -> None:
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n}")
        lo, hi, w = dedupe_edges(u, v, w)
        if validate and lo.size:
            if lo.min() < 0 or hi.max() >= n:
                raise ValueError("edge endpoint out of range")
            if not np.all(np.isfinite(w)) or np.any(w <= 0):
                raise ValueError("edge weights must be positive and finite")
        self.n = int(n)
        self._u = lo
        self._v = hi
        self._w = w
        self._csr: _CSR | None = None
        self._scipy: sparse.csr_matrix | None = None
        self._edge_keys: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int, float]]
    ) -> "WeightedGraph":
        """Build from an iterable of ``(u, v, weight)`` triples."""
        edges = list(edges)
        if not edges:
            z = np.zeros(0, dtype=np.int64)
            return cls(n, z, z, np.zeros(0))
        arr = np.asarray(edges, dtype=np.float64)
        return cls(
            n,
            arr[:, 0].astype(np.int64, copy=False),
            arr[:, 1].astype(np.int64, copy=False),
            arr[:, 2],
        )

    @classmethod
    def from_unweighted_edges(
        cls, n: int, edges: Iterable[tuple[int, int]]
    ) -> "WeightedGraph":
        """Build an unweighted graph (all weights 1.0)."""
        edges = list(edges)
        if not edges:
            z = np.zeros(0, dtype=np.int64)
            return cls(n, z, z, np.zeros(0))
        arr = np.asarray(edges, dtype=np.int64)
        return cls(n, arr[:, 0], arr[:, 1], np.ones(arr.shape[0]))

    @classmethod
    def from_canonical(
        cls,
        n: int,
        u: np.ndarray,
        v: np.ndarray,
        w: np.ndarray,
        *,
        scipy_csr: "sparse.csr_matrix | None" = None,
    ) -> "WeightedGraph":
        """Adopt already-canonical edge arrays without copying them.

        ``u``, ``v``, ``w`` must be exactly what :attr:`edges_u` /
        :attr:`edges_v` / :attr:`edges_w` of some graph held: deduplicated,
        ``u < v`` per edge, lexsorted by ``(u, v)``.  That is what the
        artifact store persists and what shared-memory attach hands back,
        so the zero-copy load paths use this instead of re-running
        :func:`dedupe_edges` (which would sort and copy every array).
        The arrays may be read-only views (``np.memmap``, shared-memory
        buffers); the graph never writes to them.

        ``scipy_csr`` optionally preloads the :meth:`to_scipy` cache with an
        externally shared matrix, so workers never rebuild it privately.
        """
        self = cls.__new__(cls)
        self.n = int(n)
        self._u = np.asarray(u)
        self._v = np.asarray(v)
        self._w = np.asarray(w)
        self._csr = None
        self._scipy = scipy_csr
        self._edge_keys = None
        return self

    @classmethod
    def from_networkx(cls, g) -> "WeightedGraph":
        """Convert a ``networkx`` graph (nodes must be 0..n-1 ints)."""
        n = g.number_of_nodes()
        us, vs, ws = [], [], []
        for a, b, data in g.edges(data=True):
            us.append(a)
            vs.append(b)
            ws.append(float(data.get("weight", 1.0)))
        return cls(
            n,
            np.asarray(us, dtype=np.int64),
            np.asarray(vs, dtype=np.int64),
            np.asarray(ws, dtype=np.float64),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def m(self) -> int:
        """Number of (undirected, de-duplicated) edges."""
        return int(self._u.size)

    @property
    def edges_u(self) -> np.ndarray:
        """Lower endpoints, shape ``(m,)``; read-only view."""
        return self._u

    @property
    def edges_v(self) -> np.ndarray:
        """Upper endpoints, shape ``(m,)``."""
        return self._v

    @property
    def edges_w(self) -> np.ndarray:
        """Edge weights, shape ``(m,)``."""
        return self._w

    @property
    def is_unweighted(self) -> bool:
        """True if every weight equals 1."""
        return bool(np.all(self._w == 1.0))

    def total_weight(self) -> float:
        """Sum of edge weights."""
        return float(self._w.sum())

    def edge_tuples(self) -> Iterator[tuple[int, int, float]]:
        """Iterate ``(u, v, w)`` triples (u < v)."""
        for a, b, c in zip(self._u, self._v, self._w):
            yield int(a), int(b), float(c)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        kind = "unweighted" if self.is_unweighted else "weighted"
        return f"WeightedGraph(n={self.n}, m={self.m}, {kind})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WeightedGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self._u, other._u)
            and np.array_equal(self._v, other._v)
            and np.array_equal(self._w, other._w)
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self.n, self.m, self._w.sum()))

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def _build_csr(self) -> _CSR:
        m = self.m
        # Each undirected edge contributes two directed arcs.
        src = np.concatenate([self._u, self._v])
        dst = np.concatenate([self._v, self._u])
        wt = np.concatenate([self._w, self._w])
        eid = np.concatenate([np.arange(m), np.arange(m)])
        order = np.lexsort((dst, src))
        src, dst, wt, eid = src[order], dst[order], wt[order], eid[order]
        # int32 graphs keep an int32 indptr too (2m + 1 always fits there:
        # int32 endpoints imply n < 2**31, and the arc count is bounded by
        # the edge arrays we could address to begin with).
        idx_dtype = (
            np.int32
            if self._u.dtype == np.int32 and 2 * m < np.iinfo(np.int32).max
            else np.int64
        )
        indptr = np.zeros(self.n + 1, dtype=idx_dtype)
        np.add.at(indptr, src + 1, 1)
        np.cumsum(indptr, out=indptr)
        return _CSR(indptr=indptr, indices=dst, weights=wt, edge_ids=eid)

    @property
    def csr(self) -> _CSR:
        """CSR adjacency (built lazily, cached)."""
        if self._csr is None:
            self._csr = self._build_csr()
        return self._csr

    def degree(self, x: int | None = None):
        """Degree of vertex ``x``, or the full degree array if ``x is None``."""
        c = self.csr
        degs = np.diff(c.indptr)
        if x is None:
            return degs
        return int(degs[x])

    def neighbors(self, x: int) -> np.ndarray:
        """Neighbor array of vertex ``x``."""
        c = self.csr
        return c.indices[c.indptr[x] : c.indptr[x + 1]]

    def incident_weights(self, x: int) -> np.ndarray:
        """Weights parallel to :meth:`neighbors`."""
        c = self.csr
        return c.weights[c.indptr[x] : c.indptr[x + 1]]

    def incident_edge_ids(self, x: int) -> np.ndarray:
        """Edge ids parallel to :meth:`neighbors`."""
        c = self.csr
        return c.edge_ids[c.indptr[x] : c.indptr[x + 1]]

    # ------------------------------------------------------------------
    # Conversions / derived graphs
    # ------------------------------------------------------------------
    def to_scipy(self) -> sparse.csr_matrix:
        """Symmetric scipy CSR matrix of weights (for shortest paths).

        Built lazily and cached: graphs are immutable, and every shortest-path
        entry point (``sssp``/``apsp``/``pairwise_distances``/stretch checks)
        hits this, so repeated calls must not rebuild the matrix.  Callers
        must treat the returned matrix as read-only.
        """
        if self._scipy is None:
            row = np.concatenate([self._u, self._v])
            col = np.concatenate([self._v, self._u])
            dat = np.concatenate([self._w, self._w])
            self._scipy = sparse.csr_matrix((dat, (row, col)), shape=(self.n, self.n))
        return self._scipy

    def to_networkx(self):
        """Convert to a ``networkx.Graph`` with ``weight`` attributes."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        g.add_weighted_edges_from(
            zip(self._u.tolist(), self._v.tolist(), self._w.tolist())
        )
        return g

    def subgraph_from_edge_ids(self, edge_ids: Sequence[int] | np.ndarray) -> "WeightedGraph":
        """The spanning subgraph induced by a set of edge ids.

        The vertex set is unchanged (all ``n`` vertices), which is exactly
        what a spanner is: a spanning subgraph.
        """
        ids = np.asarray(sorted(set(int(i) for i in np.asarray(edge_ids).ravel())), dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.m):
            raise ValueError("edge id out of range")
        return WeightedGraph(
            self.n, self._u[ids], self._v[ids], self._w[ids], validate=False
        )

    def _sorted_edge_keys(self) -> np.ndarray:
        """Edges encoded as sorted int64 keys ``u * n + v``.

        ``dedupe_edges`` leaves the edge list sorted by ``(u, v)``, so the key
        array is ascending and the position of a key *is* the edge id — which
        makes every ``(u, v) -> id`` lookup a vectorized ``searchsorted``.
        """
        if self._edge_keys is None:
            # Force int64: u * n overflows int32 whenever n**2 >= 2**31,
            # which int32-indexed graphs (n < 2**31) routinely hit.
            self._edge_keys = (
                self._u.astype(np.int64, copy=False) * np.int64(self.n) + self._v
            )
        return self._edge_keys

    def edge_ids_for(self, us, vs, *, missing: int = -1) -> np.ndarray:
        """Vectorized ``(u, v) -> edge id`` lookup; ``missing`` for absent edges.

        Endpoint order does not matter (pairs are canonicalized internally).
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        lo = np.minimum(us, vs)
        hi = np.maximum(us, vs)
        keys = lo * np.int64(self.n) + hi
        found, pos = sorted_lookup(self._sorted_edge_keys(), keys)
        return np.where(found, pos, np.int64(missing))

    def has_edge_subset(self, other: "WeightedGraph") -> bool:
        """True if ``other``'s edge set (with weights) is a subset of ours."""
        if other.n != self.n:
            return False
        if other.m == 0:
            return True
        ids = self.edge_ids_for(other._u, other._v)
        if np.any(ids < 0):
            return False
        return bool(np.array_equal(self._w[ids], other._w))

    def edge_index_map(self) -> dict[tuple[int, int], int]:
        """Map ``(u, v)`` (u < v) to edge id.

        For bulk lookups prefer the vectorized :meth:`edge_ids_for`; this
        dict view exists for hand-written tests and small-scale inspection.
        """
        return {
            (int(a), int(b)): i
            for i, (a, b) in enumerate(zip(self._u.tolist(), self._v.tolist()))
        }

    def reweighted(self, weights: np.ndarray) -> "WeightedGraph":
        """Same topology with new weights."""
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != self._w.shape:
            raise ValueError("weight array shape mismatch")
        return WeightedGraph(self.n, self._u, self._v, w)
