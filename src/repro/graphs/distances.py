"""Exact shortest-path computation used as ground truth.

Spanner quality is always judged against exact distances.  For the problem
sizes the benchmark harness uses (up to a few thousand vertices) scipy's
compiled Dijkstra is the right tool; a pure-Python binary-heap Dijkstra is
kept as an independently-verified reference implementation (the property
tests cross-check the two).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np
from scipy.sparse import csgraph

from .graph import WeightedGraph

__all__ = [
    "sssp",
    "sssp_reference",
    "apsp",
    "pairwise_distances",
    "bfs_hops",
    "connected_components",
    "same_components",
    "eccentricity",
    "k_hop_ball",
]

_INF = np.inf


def sssp(g: WeightedGraph, source: int) -> np.ndarray:
    """Single-source shortest path distances from ``source`` (scipy Dijkstra).

    Unreachable vertices get ``inf``.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    if g.m == 0:
        d = np.full(g.n, _INF)
        d[source] = 0.0
        return d
    return csgraph.dijkstra(g.to_scipy(), directed=False, indices=source)


def sssp_reference(g: WeightedGraph, source: int) -> np.ndarray:
    """Pure-Python Dijkstra with a binary heap; used to cross-validate
    :func:`sssp` in tests."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    dist = np.full(g.n, _INF)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    csr = g.csr
    done = np.zeros(g.n, dtype=bool)
    while heap:
        d, x = heapq.heappop(heap)
        if done[x]:
            continue
        done[x] = True
        lo, hi = csr.indptr[x], csr.indptr[x + 1]
        for y, w in zip(csr.indices[lo:hi], csr.weights[lo:hi]):
            nd = d + w
            if nd < dist[y]:
                dist[y] = nd
                heapq.heappush(heap, (nd, int(y)))
    return dist


def apsp(g: WeightedGraph) -> np.ndarray:
    """Exact all-pairs shortest paths, ``(n, n)`` matrix.

    ``O(n (m + n log n))`` via repeated Dijkstra; only call at benchmark
    scale (n up to a few thousand).
    """
    if g.m == 0:
        d = np.full((g.n, g.n), _INF)
        np.fill_diagonal(d, 0.0)
        return d
    return csgraph.dijkstra(g.to_scipy(), directed=False)


def pairwise_distances(
    g: WeightedGraph, pairs: Sequence[tuple[int, int]] | np.ndarray
) -> np.ndarray:
    """Exact distances for selected ``(u, v)`` pairs.

    Runs one Dijkstra per distinct source, so it is efficient when sources
    repeat (the sampled-pair stretch measurement does exactly that).
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.zeros(0)
    out = np.empty(pairs.shape[0])
    mat = g.to_scipy() if g.m else None
    for s in np.unique(pairs[:, 0]):
        mask = pairs[:, 0] == s
        if mat is None:
            d = np.full(g.n, _INF)
            d[s] = 0.0
        else:
            d = csgraph.dijkstra(mat, directed=False, indices=int(s))
        out[mask] = d[pairs[mask, 1]]
    return out


def bfs_hops(g: WeightedGraph, source: int) -> np.ndarray:
    """Hop distances (ignoring weights) from ``source``; ``-1`` means
    unreachable.  Vectorized frontier BFS."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range")
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    csr = g.csr
    level = 0
    while frontier.size:
        level += 1
        # Gather all neighbors of the frontier at once.
        starts = csr.indptr[frontier]
        stops = csr.indptr[frontier + 1]
        total = int((stops - starts).sum())
        if total == 0:
            break
        nbrs = np.concatenate(
            [csr.indices[a:b] for a, b in zip(starts, stops)]
        )
        nbrs = np.unique(nbrs)
        new = nbrs[dist[nbrs] == -1]
        dist[new] = level
        frontier = new
    return dist


def k_hop_ball(g: WeightedGraph, source: int, hops: int, *, cap: int | None = None) -> np.ndarray:
    """Vertices within ``hops`` hops of ``source`` (including it), BFS order.

    ``cap`` truncates exploration once that many vertices are collected —
    this is the ``Θ(n^{γ/2})``-capped ball-growing of Appendix B.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    seen = {int(source)}
    order = [int(source)]
    frontier = [int(source)]
    csr = g.csr
    for _ in range(hops):
        nxt: list[int] = []
        for x in frontier:
            for y in csr.indices[csr.indptr[x] : csr.indptr[x + 1]]:
                y = int(y)
                if y not in seen:
                    seen.add(y)
                    order.append(y)
                    nxt.append(y)
                    if cap is not None and len(order) >= cap:
                        return np.asarray(order, dtype=np.int64)
        if not nxt:
            break
        frontier = nxt
    return np.asarray(order, dtype=np.int64)


def connected_components(g: WeightedGraph) -> np.ndarray:
    """Component label per vertex (labels are arbitrary but consistent)."""
    if g.m == 0:
        return np.arange(g.n, dtype=np.int64)
    _, labels = csgraph.connected_components(g.to_scipy(), directed=False)
    return labels.astype(np.int64)


def same_components(a: WeightedGraph, b: WeightedGraph) -> bool:
    """True if the two graphs (on the same vertex set) induce the same
    partition into connected components.  A spanner must preserve the
    component structure of its input."""
    if a.n != b.n:
        return False
    la, lb = connected_components(a), connected_components(b)
    # Same partition iff the label pairs biject.
    pa = {}
    pb = {}
    for x in range(a.n):
        if la[x] in pa and pa[la[x]] != lb[x]:
            return False
        if lb[x] in pb and pb[lb[x]] != la[x]:
            return False
        pa[la[x]] = lb[x]
        pb[lb[x]] = la[x]
    return True


def eccentricity(g: WeightedGraph, source: int) -> float:
    """Max finite distance from ``source`` (0 for isolated vertices)."""
    d = sssp(g, source)
    finite = d[np.isfinite(d)]
    return float(finite.max()) if finite.size else 0.0
