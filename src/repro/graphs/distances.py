"""Exact shortest-path computation used as ground truth.

Spanner quality is always judged against exact distances.  For the problem
sizes the benchmark harness uses (up to a few thousand vertices) scipy's
compiled Dijkstra is the right tool; a pure-Python binary-heap Dijkstra is
kept as an independently-verified reference implementation (the property
tests cross-check the two).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np
from scipy.sparse import csgraph

from .graph import WeightedGraph

__all__ = [
    "sssp",
    "sssp_reference",
    "batched_sssp",
    "iter_sssp_chunks",
    "apsp",
    "pairwise_distances",
    "bfs_hops",
    "connected_components",
    "same_components",
    "eccentricity",
    "k_hop_ball",
]

_INF = np.inf

# Batched Dijkstra runs are chunked so the dense (sources, n) distance block
# stays below ~32 MB regardless of how many distinct sources a caller asks
# for at once.
_CHUNK_ENTRIES = 4_000_000


def _gather_neighbors(csr, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat CSR indices of every arc leaving ``frontier``, plus the frontier
    slot each arc came from — one ``np.repeat``-based gather, no Python loop
    over frontier vertices."""
    starts = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    reps = np.repeat(np.arange(frontier.size), counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return starts[reps] + within, reps


def iter_sssp_chunks(g: WeightedGraph, sources: np.ndarray):
    """Yield ``(offset, rows)`` blocks of a multi-source Dijkstra.

    Each block holds at most ``_CHUNK_ENTRIES`` distance entries (~32 MB),
    so callers that reduce blocks immediately (stretch checks, pairwise
    lookups) keep peak memory bounded no matter how many sources they ask
    for.  Rows match :func:`sssp` exactly.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if sources.size and (sources.min() < 0 or sources.max() >= g.n):
        raise ValueError("source out of range")
    mat = g.to_scipy() if g.m else None
    chunk = max(1, _CHUNK_ENTRIES // max(g.n, 1))
    for lo in range(0, sources.size, chunk):
        block = sources[lo : lo + chunk]
        if mat is None:
            rows = np.full((block.size, g.n), _INF)
            rows[np.arange(block.size), block] = 0.0
        else:
            rows = np.atleast_2d(
                csgraph.dijkstra(mat, directed=False, indices=block)
            )
        yield lo, rows


def batched_sssp(g: WeightedGraph, sources: np.ndarray) -> np.ndarray:
    """Dijkstra from many sources at once: ``(len(sources), n)`` distances.

    One chunked ``csgraph.dijkstra(indices=sources)`` call instead of a
    Python loop of single-source runs; rows match :func:`sssp` exactly.
    The *returned* matrix is dense ``O(len(sources) · n)`` — callers with
    many sources that only need a reduction per row should stream
    :func:`iter_sssp_chunks` instead of materializing this.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    out = np.empty((sources.size, g.n))
    for lo, rows in iter_sssp_chunks(g, sources):
        out[lo : lo + rows.shape[0]] = rows
    return out


def sssp(g: WeightedGraph, source: int) -> np.ndarray:
    """Single-source shortest path distances from ``source`` (scipy Dijkstra).

    Unreachable vertices get ``inf``.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    if g.m == 0:
        d = np.full(g.n, _INF)
        d[source] = 0.0
        return d
    return csgraph.dijkstra(g.to_scipy(), directed=False, indices=source)


def sssp_reference(g: WeightedGraph, source: int) -> np.ndarray:
    """Pure-Python Dijkstra with a binary heap; used to cross-validate
    :func:`sssp` in tests."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    dist = np.full(g.n, _INF)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    csr = g.csr
    done = np.zeros(g.n, dtype=bool)
    while heap:
        d, x = heapq.heappop(heap)
        if done[x]:
            continue
        done[x] = True
        lo, hi = csr.indptr[x], csr.indptr[x + 1]
        for y, w in zip(csr.indices[lo:hi], csr.weights[lo:hi]):
            nd = d + w
            if nd < dist[y]:
                dist[y] = nd
                heapq.heappush(heap, (nd, int(y)))
    return dist


def apsp(g: WeightedGraph) -> np.ndarray:
    """Exact all-pairs shortest paths, ``(n, n)`` matrix.

    ``O(n (m + n log n))`` via repeated Dijkstra; only call at benchmark
    scale (n up to a few thousand).
    """
    if g.m == 0:
        d = np.full((g.n, g.n), _INF)
        np.fill_diagonal(d, 0.0)
        return d
    return csgraph.dijkstra(g.to_scipy(), directed=False)


def pairwise_distances(
    g: WeightedGraph, pairs: Sequence[tuple[int, int]] | np.ndarray
) -> np.ndarray:
    """Exact distances for selected ``(u, v)`` pairs.

    One *batched* Dijkstra over the distinct sources (chunked to bound the
    dense distance block), so it is efficient when sources repeat — the
    sampled-pair stretch measurement does exactly that.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.zeros(0)
    sources, inv = np.unique(pairs[:, 0], return_inverse=True)
    out = np.empty(pairs.shape[0])
    for lo, rows in iter_sssp_chunks(g, sources):
        sel = (inv >= lo) & (inv < lo + rows.shape[0])
        out[sel] = rows[inv[sel] - lo, pairs[sel, 1]]
    return out


def bfs_hops(g: WeightedGraph, source: int) -> np.ndarray:
    """Hop distances (ignoring weights) from ``source``; ``-1`` means
    unreachable.  Vectorized frontier BFS."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range")
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    csr = g.csr
    level = 0
    while frontier.size:
        level += 1
        # Gather all neighbors of the frontier at once (repeat-based gather
        # straight from the cached CSR — no per-vertex slicing).
        flat, _ = _gather_neighbors(csr, frontier)
        if flat.size == 0:
            break
        nbrs = np.unique(csr.indices[flat])
        new = nbrs[dist[nbrs] == -1]
        dist[new] = level
        frontier = new
    return dist


def k_hop_ball(g: WeightedGraph, source: int, hops: int, *, cap: int | None = None) -> np.ndarray:
    """Vertices within ``hops`` hops of ``source`` (including it), BFS order.

    ``cap`` truncates exploration once that many vertices are collected —
    this is the ``Θ(n^{γ/2})``-capped ball-growing of Appendix B.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    seen = np.zeros(g.n, dtype=bool)
    seen[source] = True
    frontier = np.asarray([int(source)], dtype=np.int64)
    parts = [frontier]
    count = 1
    csr = g.csr
    for _ in range(hops):
        # Scan order matches the old per-vertex loop: frontier order crossed
        # with CSR neighbor order, keeping only first occurrences.
        flat, _ = _gather_neighbors(csr, frontier)
        cand = csr.indices[flat]
        cand = cand[~seen[cand]]
        if cand.size == 0:
            break
        _, first = np.unique(cand, return_index=True)
        new = cand[np.sort(first)]
        seen[new] = True
        if cap is not None and count + new.size >= cap:
            # The scan stops right after the vertex that reaches the cap, so
            # at least one vertex is always taken even when cap <= count.
            parts.append(new[: max(cap - count, 1)])
            return np.concatenate(parts)
        parts.append(new)
        count += new.size
        frontier = new
    return np.concatenate(parts)


def connected_components(g: WeightedGraph) -> np.ndarray:
    """Component label per vertex (labels are arbitrary but consistent)."""
    if g.m == 0:
        return np.arange(g.n, dtype=np.int64)
    _, labels = csgraph.connected_components(g.to_scipy(), directed=False)
    return labels.astype(np.int64)


def same_components(a: WeightedGraph, b: WeightedGraph) -> bool:
    """True if the two graphs (on the same vertex set) induce the same
    partition into connected components.  A spanner must preserve the
    component structure of its input."""
    if a.n != b.n:
        return False
    la, lb = connected_components(a), connected_components(b)
    # Same partition iff the label pairs biject.
    pa = {}
    pb = {}
    for x in range(a.n):
        if la[x] in pa and pa[la[x]] != lb[x]:
            return False
        if lb[x] in pb and pb[lb[x]] != la[x]:
            return False
        pa[la[x]] = lb[x]
        pb[lb[x]] = la[x]
    return True


def eccentricity(g: WeightedGraph, source: int) -> float:
    """Max finite distance from ``source`` (0 for isolated vertices)."""
    d = sssp(g, source)
    finite = d[np.isfinite(d)]
    return float(finite.max()) if finite.size else 0.0
