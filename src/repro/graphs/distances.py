"""Exact shortest-path computation used as ground truth.

Spanner quality is always judged against exact distances.  For the problem
sizes the benchmark harness uses (up to a few thousand vertices) scipy's
compiled Dijkstra is the right tool; a pure-Python binary-heap Dijkstra is
kept as an independently-verified reference implementation (the property
tests cross-check the two).
"""

from __future__ import annotations

import heapq
from typing import Sequence

import numpy as np
from scipy.sparse import csgraph

from .graph import WeightedGraph

__all__ = [
    "sssp",
    "sssp_reference",
    "batched_sssp",
    "iter_sssp_chunks",
    "apsp",
    "pairwise_distances",
    "bfs_hops",
    "batched_capped_bfs",
    "connected_components",
    "same_components",
    "eccentricity",
    "k_hop_ball",
]

_INF = np.inf

# Batched runs are chunked so the dense (sources, n) scratch block stays
# within the memory budget resolved by :mod:`repro.core.membudget`
# (explicit ``REPRO_MEM_BUDGET`` beats a fraction of available RAM).
# Setting ``_CHUNK_ENTRIES`` to an integer pins the historical
# fixed-entry-count chunking instead — tests monkeypatch it to force
# tiny chunks deterministically.
_CHUNK_ENTRIES: int | None = None


def _chunk_rows(n: int, site: str) -> int:
    """Sources per chunk for a dense ``(rows, n)`` float64 scratch block."""
    if _CHUNK_ENTRIES is not None:
        return max(1, _CHUNK_ENTRIES // max(n, 1))
    from ..core import membudget  # lazy: core imports this module

    return membudget.chunk_rows(n, entry_bytes=8)


def _note_alloc(site: str, nbytes: int) -> None:
    from ..core import membudget

    membudget.note(site, nbytes)


def _gather_neighbors(csr, frontier: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Flat CSR indices of every arc leaving ``frontier``, plus the frontier
    slot each arc came from — one ``np.repeat``-based gather, no Python loop
    over frontier vertices."""
    starts = csr.indptr[frontier]
    counts = csr.indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty
    reps = np.repeat(np.arange(frontier.size), counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    return starts[reps] + within, reps


def iter_sssp_chunks(g: WeightedGraph, sources: np.ndarray):
    """Yield ``(offset, rows)`` blocks of a multi-source Dijkstra.

    Each block's dense distance scratch stays within the resolved memory
    budget (:mod:`repro.core.membudget`), so callers that reduce blocks
    immediately (stretch checks, pairwise lookups) keep peak memory
    bounded no matter how many sources they ask for.  Rows match
    :func:`sssp` exactly — the chunk size only moves batching granularity,
    never values.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if sources.size and (sources.min() < 0 or sources.max() >= g.n):
        raise ValueError("source out of range")
    mat = g.to_scipy() if g.m else None
    site = "graphs.distances.iter_sssp_chunks"
    chunk = _chunk_rows(g.n, site)
    for lo in range(0, sources.size, chunk):
        block = sources[lo : lo + chunk]
        if mat is None:
            rows = np.full((block.size, g.n), _INF)
            rows[np.arange(block.size), block] = 0.0
        else:
            rows = np.atleast_2d(
                csgraph.dijkstra(mat, directed=False, indices=block)
            )
        _note_alloc(site, rows.nbytes)
        yield lo, rows


def batched_sssp(g: WeightedGraph, sources: np.ndarray) -> np.ndarray:
    """Dijkstra from many sources at once: ``(len(sources), n)`` distances.

    One chunked ``csgraph.dijkstra(indices=sources)`` call instead of a
    Python loop of single-source runs; rows match :func:`sssp` exactly.
    The *returned* matrix is dense ``O(len(sources) · n)`` — callers with
    many sources that only need a reduction per row should stream
    :func:`iter_sssp_chunks` instead of materializing this.
    """
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    out = np.empty((sources.size, g.n))
    for lo, rows in iter_sssp_chunks(g, sources):
        out[lo : lo + rows.shape[0]] = rows
    return out


def sssp(g: WeightedGraph, source: int) -> np.ndarray:
    """Single-source shortest path distances from ``source`` (scipy Dijkstra).

    Unreachable vertices get ``inf``.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    if g.m == 0:
        d = np.full(g.n, _INF)
        d[source] = 0.0
        return d
    return csgraph.dijkstra(g.to_scipy(), directed=False, indices=source)


def sssp_reference(g: WeightedGraph, source: int) -> np.ndarray:
    """Pure-Python Dijkstra with a binary heap; used to cross-validate
    :func:`sssp` in tests."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range for n={g.n}")
    dist = np.full(g.n, _INF)
    dist[source] = 0.0
    heap: list[tuple[float, int]] = [(0.0, source)]
    csr = g.csr
    done = np.zeros(g.n, dtype=bool)
    while heap:
        d, x = heapq.heappop(heap)
        if done[x]:
            continue
        done[x] = True
        lo, hi = csr.indptr[x], csr.indptr[x + 1]
        for y, w in zip(csr.indices[lo:hi], csr.weights[lo:hi]):
            nd = d + w
            if nd < dist[y]:
                dist[y] = nd
                heapq.heappush(heap, (nd, int(y)))
    return dist


def apsp(g: WeightedGraph) -> np.ndarray:
    """Exact all-pairs shortest paths, ``(n, n)`` matrix.

    ``O(n (m + n log n))`` via repeated Dijkstra; only call at benchmark
    scale (n up to a few thousand).
    """
    if g.m == 0:
        d = np.full((g.n, g.n), _INF)
        np.fill_diagonal(d, 0.0)
        return d
    return csgraph.dijkstra(g.to_scipy(), directed=False)


def pairwise_distances(
    g: WeightedGraph, pairs: Sequence[tuple[int, int]] | np.ndarray
) -> np.ndarray:
    """Exact distances for selected ``(u, v)`` pairs.

    One *batched* Dijkstra over the distinct sources (chunked to bound the
    dense distance block), so it is efficient when sources repeat — the
    sampled-pair stretch measurement does exactly that.
    """
    pairs = np.asarray(pairs, dtype=np.int64)
    if pairs.size == 0:
        return np.zeros(0)
    sources, inv = np.unique(pairs[:, 0], return_inverse=True)
    out = np.empty(pairs.shape[0])
    for lo, rows in iter_sssp_chunks(g, sources):
        sel = (inv >= lo) & (inv < lo + rows.shape[0])
        out[sel] = rows[inv[sel] - lo, pairs[sel, 1]]
    return out


def bfs_hops(g: WeightedGraph, source: int) -> np.ndarray:
    """Hop distances (ignoring weights) from ``source``; ``-1`` means
    unreachable.  Vectorized frontier BFS."""
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range")
    dist = np.full(g.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    csr = g.csr
    level = 0
    while frontier.size:
        level += 1
        # Gather all neighbors of the frontier at once (repeat-based gather
        # straight from the cached CSR — no per-vertex slicing).
        flat, _ = _gather_neighbors(csr, frontier)
        if flat.size == 0:
            break
        nbrs = np.unique(csr.indices[flat])
        new = nbrs[dist[nbrs] == -1]
        dist[new] = level
        frontier = new
    return dist


def k_hop_ball(g: WeightedGraph, source: int, hops: int, *, cap: int | None = None) -> np.ndarray:
    """Vertices within ``hops`` hops of ``source`` (including it), BFS order.

    ``cap`` truncates exploration once that many vertices are collected —
    this is the ``Θ(n^{γ/2})``-capped ball-growing of Appendix B.
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    seen = np.zeros(g.n, dtype=bool)
    seen[source] = True
    frontier = np.asarray([int(source)], dtype=np.int64)
    parts = [frontier]
    count = 1
    csr = g.csr
    for _ in range(hops):
        # Scan order matches the old per-vertex loop: frontier order crossed
        # with CSR neighbor order, keeping only first occurrences.
        flat, _ = _gather_neighbors(csr, frontier)
        cand = csr.indices[flat]
        cand = cand[~seen[cand]]
        if cand.size == 0:
            break
        _, first = np.unique(cand, return_index=True)
        new = cand[np.sort(first)]
        seen[new] = True
        if cap is not None and count + new.size >= cap:
            # The scan stops right after the vertex that reaches the cap, so
            # at least one vertex is always taken even when cap <= count.
            parts.append(new[: max(cap - count, 1)])
            return np.concatenate(parts)
        parts.append(new)
        count += new.size
        frontier = new
    return np.concatenate(parts)


def _batched_capped_bfs_block(g: WeightedGraph, src: np.ndarray, hops: int, cap: int):
    """One block of :func:`batched_capped_bfs`: all sources advance one BFS
    level per numpy step (frontier arrays + segment counting for the cap).

    Like the scalar BFS — and unlike the sort-based frontier helpers — no
    per-level sort is needed: candidates arrive slot-grouped in scan order
    (the frontier is slot-grouped and the CSR gather preserves order), so
    per-(slot, vertex) first occurrences fall out of one reversed scatter
    into a scratch mark array, and the cap is enforced by segment counting.
    Each level consumes its frontier in doubling per-slot windows, so a
    slot stops gathering arcs (almost) as soon as its cap is reached —
    the vectorized analogue of the scalar loop's mid-scan early exit,
    without which dense slots would gather whole frontier neighborhoods
    only to discard all but ``cap`` vertices.
    """
    n = g.n
    s = src.size
    csr = g.csr
    seen = np.zeros(s * n, dtype=bool)  # flat (slot, vertex) bitmap
    slots = np.arange(s, dtype=np.int64)
    seen[slots * np.int64(n) + src] = True
    counts = np.ones(s, dtype=np.int64)  # ball sizes so far (the source)
    capped = np.zeros(s, dtype=bool)

    # Flat ball entries, accumulated level by level.
    p_slot = [slots]
    p_vtx = [src.astype(np.int64, copy=False)]
    p_edge = [np.full(s, -1, dtype=np.int64)]
    p_ppos = [np.zeros(s, dtype=np.int64)]  # local position of the parent
    p_lpos = [np.zeros(s, dtype=np.int64)]  # local position of the entry

    # --- Level 1: the source's own CSR row, clipped to the cap ------------
    # Neighbors of a source are distinct and unseen, so no dedupe is needed
    # and only the first min(degree, cap - 1) arcs are ever gathered (the
    # append-then-check scalar loop takes at least one).
    if hops >= 1 and s:
        deg = csr.indptr[src + 1] - csr.indptr[src]
        room = np.maximum(cap - 1, 1)
        take_n = np.minimum(deg, room)
        capped |= deg >= room
        total = int(take_n.sum())
        if total:
            reps = np.repeat(slots, take_n)
            within = np.arange(total) - np.repeat(np.cumsum(take_n) - take_n, take_n)
            flatpos = csr.indptr[src][reps] + within
            new_v = csr.indices[flatpos].astype(np.int64, copy=False)
            new_lpos = within + 1  # after the source at local position 0
            seen[reps * np.int64(n) + new_v] = True
            counts += take_n
            p_slot.append(reps)
            p_vtx.append(new_v)
            p_edge.append(csr.edge_ids[flatpos].astype(np.int64, copy=False))
            p_ppos.append(np.zeros(total, dtype=np.int64))
            p_lpos.append(new_lpos)
            carry = ~capped[reps]
            f_slot, f_vtx, f_lpos = reps[carry], new_v[carry], new_lpos[carry]
        else:
            f_slot = f_vtx = f_lpos = np.zeros(0, dtype=np.int64)
    else:
        f_slot = f_vtx = f_lpos = np.zeros(0, dtype=np.int64)

    # Frontier: (slot, vertex, local position), slot-grouped in scan order.
    for _ in range(max(hops - 1, 0)):
        if f_vtx.size == 0:
            break
        # Rank of each frontier entry within its slot's segment.
        seg = np.ones(f_slot.size, dtype=bool)
        seg[1:] = f_slot[1:] != f_slot[:-1]
        seg_start = np.flatnonzero(seg)
        seg_len = np.diff(np.append(seg_start, f_slot.size))
        frank = np.arange(f_slot.size) - np.repeat(seg_start, seg_len)
        fcur = np.zeros(s, dtype=np.int64)  # frontier entries consumed
        window = 1
        nxt: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        while True:
            rem = ~capped[f_slot] & (frank >= fcur[f_slot])
            if not rem.any():
                break
            sub = np.flatnonzero(rem & (frank < fcur[f_slot] + window))
            fcur += np.bincount(f_slot[sub], minlength=s)
            window = min(window * 2, 1 << 20)
            sub_slot = f_slot[sub]
            sub_ppos = f_lpos[sub]
            flat, rep = _gather_neighbors(csr, f_vtx[sub])
            if flat.size == 0:
                continue
            cand_v = csr.indices[flat]
            cand_e = csr.edge_ids[flat]
            cand_slot = sub_slot[rep]
            cand_ppos = sub_ppos[rep]
            unseen = ~seen[cand_slot * np.int64(n) + cand_v]
            if not unseen.any():
                continue
            cand_v, cand_e, cand_slot, cand_ppos = (
                cand_v[unseen], cand_e[unseen], cand_slot[unseen], cand_ppos[unseen],
            )
            # First occurrence per (slot, vertex) in scan order.  Windows
            # are small (a few entries per live slot), so a per-window
            # stable sort is cheap — no O(s·n) scratch array needed.  The
            # tiebreak key stays int32 (window sizes always fit), halving
            # the widest lexsort key.
            scan_dt = np.int32 if cand_v.size < 2**31 else np.int64
            scan = np.arange(cand_v.size, dtype=scan_dt)
            order = np.lexsort((scan, cand_v, cand_slot))
            cs, cv = cand_slot[order], cand_v[order]
            lead = np.ones(order.size, dtype=bool)
            lead[1:] = (cs[1:] != cs[:-1]) | (cv[1:] != cv[:-1])
            first = np.sort(order[lead])  # back to scan order, slot-grouped
            new_v, new_e, new_slot, new_ppos = (
                cand_v[first], cand_e[first], cand_slot[first], cand_ppos[first],
            )
            # Cap by segment counting: rank within the slot's new vertices
            # vs the room left under the cap.  The scalar loop appends,
            # then checks, so it always takes at least one vertex (cf.
            # k_hop_ball).
            nseg = np.ones(new_slot.size, dtype=bool)
            nseg[1:] = new_slot[1:] != new_slot[:-1]
            nstart = np.flatnonzero(nseg)
            nlen = np.diff(np.append(nstart, new_slot.size))
            rank = np.arange(new_slot.size) - np.repeat(nstart, nlen)
            room = np.maximum(cap - counts[new_slot], 1)
            take = rank < room
            now_capped = nlen >= np.maximum(cap - counts[new_slot[nstart]], 1)
            capped[new_slot[nstart[now_capped]]] = True

            new_v, new_e, new_slot, new_ppos, rank = (
                new_v[take], new_e[take], new_slot[take], new_ppos[take], rank[take],
            )
            new_lpos = counts[new_slot] + rank
            seen[new_slot * np.int64(n) + new_v] = True
            counts += np.bincount(new_slot, minlength=s)

            p_slot.append(new_slot)
            p_vtx.append(new_v)
            p_edge.append(new_e)
            p_ppos.append(new_ppos)
            p_lpos.append(new_lpos)

            # Capped sources stop exploring; the rest carry the new
            # vertices into the next level.
            carry = ~capped[new_slot]
            nxt.append((new_slot[carry], new_v[carry], new_lpos[carry]))
        if nxt:
            f_slot = np.concatenate([x[0] for x in nxt])
            f_vtx = np.concatenate([x[1] for x in nxt])
            f_lpos = np.concatenate([x[2] for x in nxt])
            # Windows interleave slots across rounds; restore slot grouping
            # (stable, so per-slot discovery order is untouched).
            order = np.argsort(f_slot, kind="stable")
            f_slot, f_vtx, f_lpos = f_slot[order], f_vtx[order], f_lpos[order]
        else:
            f_slot = f_vtx = f_lpos = np.zeros(0, dtype=np.int64)

    # Assemble without sorting: each entry's flat destination is known
    # directly from its slot and local position.
    indptr = np.zeros(s + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    slot_all = np.concatenate(p_slot)
    dest = indptr[slot_all] + np.concatenate(p_lpos)
    total = int(indptr[-1])
    ball = np.empty(total, dtype=np.int64)
    parent_edge = np.empty(total, dtype=np.int64)
    parent_pos = np.empty(total, dtype=np.int64)
    ball[dest] = np.concatenate(p_vtx)
    parent_edge[dest] = np.concatenate(p_edge)
    parent_pos[dest] = indptr[slot_all] + np.concatenate(p_ppos)
    return indptr, ball, parent_edge, parent_pos, ~capped


def batched_capped_bfs(
    g: WeightedGraph, sources: np.ndarray, hops: int, cap: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Capped BFS from many sources at once, over the cached CSR.

    The batched equivalent of growing one capped ball per source with a
    scalar BFS: every source's ball is explored in the same scan order as
    the per-vertex loop (frontier order crossed with CSR neighbor order,
    first occurrences kept), and exploration stops for a source the moment
    its ball reaches ``cap`` vertices.  Sources are processed in chunks so
    the ``(sources, n)`` visited bitmap stays bounded.

    Returns ``(indptr, ball, parent_edge, parent_pos, complete)``:

    * ``ball[indptr[i]:indptr[i+1]]`` — BFS order of ``sources[i]``;
    * ``parent_edge`` — per entry, the edge id used to reach it (-1 for
      the source itself);
    * ``parent_pos`` — per entry, the *flat index into ball* of its BFS
      parent (its own index for the source), so root-ward path walks are
      lockstep array gathers;
    * ``complete[i]`` — False iff the cap stopped the exploration (the
      vertex is *dense* in the Appendix B sense).
    """
    if hops < 0:
        raise ValueError("hops must be non-negative")
    if cap < 1:
        raise ValueError("cap must be positive")
    sources = np.atleast_1d(np.asarray(sources, dtype=np.int64))
    if sources.size and (sources.min() < 0 or sources.max() >= g.n):
        raise ValueError("source out of range")
    site = "graphs.distances.batched_capped_bfs"
    chunk = _chunk_rows(g.n, site)
    parts = []
    for lo in range(0, sources.size, chunk):
        block = sources[lo : lo + chunk]
        _note_alloc(site, block.size * g.n)  # the (slot, vertex) bitmap
        parts.append(_batched_capped_bfs_block(g, block, hops, cap))
    if len(parts) == 1:
        return parts[0]
    if not parts:
        z = np.zeros(0, dtype=np.int64)
        return np.zeros(1, dtype=np.int64), z, z, z, np.zeros(0, dtype=bool)
    sizes = [p[1].size for p in parts]
    offsets = np.cumsum([0] + sizes[:-1])
    indptr = np.concatenate(
        [parts[0][0]] + [p[0][1:] + off for p, off in zip(parts[1:], offsets[1:])]
    )
    ball = np.concatenate([p[1] for p in parts])
    parent_edge = np.concatenate([p[2] for p in parts])
    parent_pos = np.concatenate([p[3] + off for p, off in zip(parts, offsets)])
    complete = np.concatenate([p[4] for p in parts])
    return indptr, ball, parent_edge, parent_pos, complete


def connected_components(g: WeightedGraph) -> np.ndarray:
    """Component label per vertex (labels are arbitrary but consistent)."""
    if g.m == 0:
        return np.arange(g.n, dtype=np.int64)
    _, labels = csgraph.connected_components(g.to_scipy(), directed=False)
    return labels.astype(np.int64, copy=False)


def same_components(a: WeightedGraph, b: WeightedGraph) -> bool:
    """True if the two graphs (on the same vertex set) induce the same
    partition into connected components.  A spanner must preserve the
    component structure of its input."""
    if a.n != b.n:
        return False
    la, lb = connected_components(a), connected_components(b)
    # Same partition iff the label pairs biject.
    pa = {}
    pb = {}
    for x in range(a.n):
        if la[x] in pa and pa[la[x]] != lb[x]:
            return False
        if lb[x] in pb and pb[lb[x]] != la[x]:
            return False
        pa[la[x]] = lb[x]
        pb[lb[x]] = la[x]
    return True


def eccentricity(g: WeightedGraph, source: int) -> float:
    """Max finite distance from ``source`` (0 for isolated vertices)."""
    d = sssp(g, source)
    finite = d[np.isfinite(d)]
    return float(finite.max()) if finite.size else 0.0
