"""Spanner validation: subgraph checks and stretch measurement.

A *k-spanner* of ``G`` is a spanning subgraph ``H`` such that
``d_H(u, v) <= k * d_G(u, v)`` for all pairs.  A classic and convenient fact
(used by every stretch proof in the paper) is that it suffices to check the
inequality on the *edges* of ``G``: if every edge ``(u,v) in G`` satisfies
``d_H(u,v) <= k * w(u,v)`` then every pair does, because an arbitrary
shortest path can be replaced edge-by-edge.  :func:`edge_stretch` exploits
this to measure the exact worst-case stretch in ``O(n (m + n log n))``
instead of requiring full APSP on both graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .distances import apsp, iter_sssp_chunks, pairwise_distances
from .graph import WeightedGraph

__all__ = [
    "StretchReport",
    "is_spanning_subgraph",
    "edge_stretch",
    "pair_stretch",
    "sampled_pair_stretch",
    "verify_spanner",
]


@dataclass(frozen=True)
class StretchReport:
    """Measured stretch statistics of a candidate spanner.

    Attributes
    ----------
    max_stretch:
        Worst ``d_H / d_G`` observed (1.0 for a perfect spanner; ``inf`` if
        some checked pair became disconnected in H).
    mean_stretch:
        Mean over the checked pairs/edges.
    num_checked:
        How many pairs/edges the statistics cover.
    method:
        ``"edges"`` (exact, via the edge-sufficiency lemma),
        ``"all-pairs"`` (exact), or ``"sampled-pairs"``.
    """

    max_stretch: float
    mean_stretch: float
    num_checked: int
    method: str

    def within(self, bound: float) -> bool:
        """True if the observed worst stretch is within ``bound``."""
        return self.max_stretch <= bound + 1e-9


def is_spanning_subgraph(g: WeightedGraph, h: WeightedGraph) -> bool:
    """True if ``h`` has the same vertex set and its edges (with weights)
    all appear in ``g``."""
    return h.n == g.n and g.has_edge_subset(h)


def edge_stretch(g: WeightedGraph, h: WeightedGraph) -> StretchReport:
    """Exact worst-case stretch of ``h`` w.r.t. ``g``.

    Uses the edge-sufficiency lemma: computes ``d_H(u, v) / w_G(u, v)`` for
    every edge of ``g``.  The max over edges equals the max over all pairs.
    """
    if h.n != g.n:
        raise ValueError("graphs must share a vertex set")
    if g.m == 0:
        return StretchReport(1.0, 1.0, 0, "edges")
    # One batched Dijkstra on H over the distinct sources among g's edges,
    # consumed chunk by chunk so peak memory stays O(chunk), not O(n^2).
    sources, inv = np.unique(g.edges_u, return_inverse=True)
    ratios = np.empty(g.m)
    for lo, dh in iter_sssp_chunks(h, sources):
        sel = (inv >= lo) & (inv < lo + dh.shape[0])
        ratios[sel] = dh[inv[sel] - lo, g.edges_v[sel]] / g.edges_w[sel]
    finite = ratios[np.isfinite(ratios)]
    max_s = float(ratios.max()) if ratios.size else 1.0
    mean_s = float(finite.mean()) if finite.size else np.inf
    # Stretch is at least 1 by definition; tiny float noise can dip below.
    return StretchReport(max(max_s, 1.0), max(mean_s, 1.0), int(g.m), "edges")


def pair_stretch(g: WeightedGraph, h: WeightedGraph) -> StretchReport:
    """Exact stretch over *all* connected pairs (O(n^2) memory)."""
    if h.n != g.n:
        raise ValueError("graphs must share a vertex set")
    dg = apsp(g)
    dh = apsp(h)
    iu = np.triu_indices(g.n, k=1)
    base = dg[iu]
    mask = np.isfinite(base) & (base > 0)
    if not mask.any():
        return StretchReport(1.0, 1.0, 0, "all-pairs")
    ratios = dh[iu][mask] / base[mask]
    return StretchReport(
        max(float(ratios.max()), 1.0),
        max(float(ratios.mean()), 1.0),
        int(mask.sum()),
        "all-pairs",
    )


def sampled_pair_stretch(
    g: WeightedGraph, h: WeightedGraph, num_pairs: int, rng=None
) -> StretchReport:
    """Stretch over ``num_pairs`` random connected pairs — the scalable
    estimator for larger graphs."""
    # Late import: graphs is the layer below core, so the shared seed
    # normalization is pulled in at call time rather than at module scope.
    from ..core.params import coerce_rng

    rng = coerce_rng(rng)
    if g.n < 2:
        return StretchReport(1.0, 1.0, 0, "sampled-pairs")
    us = rng.integers(0, g.n, size=num_pairs)
    vs = rng.integers(0, g.n, size=num_pairs)
    keep = us != vs
    pairs = np.stack([us[keep], vs[keep]], axis=1)
    if pairs.size == 0:
        return StretchReport(1.0, 1.0, 0, "sampled-pairs")
    dg = pairwise_distances(g, pairs)
    dh = pairwise_distances(h, pairs)
    mask = np.isfinite(dg) & (dg > 0)
    if not mask.any():
        return StretchReport(1.0, 1.0, 0, "sampled-pairs")
    ratios = dh[mask] / dg[mask]
    return StretchReport(
        max(float(ratios.max()), 1.0),
        max(float(ratios.mean()), 1.0),
        int(mask.sum()),
        "sampled-pairs",
    )


def verify_spanner(
    g: WeightedGraph,
    h: WeightedGraph,
    *,
    stretch_bound: float | None = None,
    size_bound: float | None = None,
) -> StretchReport:
    """Full validity check, raising ``AssertionError`` on violation.

    Checks, in order: spanning-subgraph property; component preservation
    (implied by a finite stretch bound, but cheap and gives better error
    messages); optional exact stretch bound; optional size bound.
    Returns the stretch report for further inspection.
    """
    assert is_spanning_subgraph(g, h), "spanner is not a subgraph of the input"
    report = edge_stretch(g, h)
    assert np.isfinite(report.max_stretch), (
        "spanner disconnects some edge's endpoints "
        f"(max stretch {report.max_stretch})"
    )
    if stretch_bound is not None:
        assert report.within(stretch_bound), (
            f"stretch {report.max_stretch:.3f} exceeds bound {stretch_bound:.3f}"
        )
    if size_bound is not None:
        assert h.m <= size_bound, f"size {h.m} exceeds bound {size_bound:.1f}"
    return report
