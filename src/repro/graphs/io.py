"""Graph persistence: a plain weighted edge-list format.

One line per edge: ``u v w`` (whitespace separated), with an optional
header comment carrying the vertex count (``# n=<count>``) so isolated
vertices survive a round trip.  The format is deliberately the least
surprising thing possible — it loads into numpy with one call and is
compatible with the edge lists most graph repositories ship.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np

from .graph import WeightedGraph

__all__ = ["write_edgelist", "read_edgelist"]


def write_edgelist(g: WeightedGraph, path) -> None:
    """Write ``g`` to ``path`` as ``# n=<n>`` + one ``u v w`` line per edge."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# n={g.n}\n")
        for u, v, w in g.edge_tuples():
            fh.write(f"{u} {v} {w!r}\n")


def read_edgelist(path) -> WeightedGraph:
    """Read a graph written by :func:`write_edgelist` (or any ``u v [w]``
    edge list; missing weights default to 1, missing header to
    ``max(endpoint) + 1`` vertices).

    Raises
    ------
    ValueError
        On malformed lines (wrong column count, non-numeric fields).
    """
    path = Path(path)
    n_header: int | None = None
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.startswith("n="):
                    try:
                        n_header = int(body[2:])
                    except ValueError as exc:
                        raise ValueError(f"{path}:{lineno}: bad header {line!r}") from exc
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"{path}:{lineno}: expected 'u v [w]', got {line!r}"
                )
            try:
                us.append(int(parts[0]))
                vs.append(int(parts[1]))
                ws.append(float(parts[2]) if len(parts) == 3 else 1.0)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: non-numeric field in {line!r}") from exc
    if n_header is None:
        n_header = (max(max(us), max(vs)) + 1) if us else 0
    return WeightedGraph(
        n_header,
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws, dtype=np.float64),
    )
