"""Graph persistence: a plain weighted edge-list format plus a binary form.

One line per edge: ``u v w`` (whitespace separated), with an optional
header comment carrying the vertex count (``# n=<count>``) so isolated
vertices survive a round trip.  The format is deliberately the least
surprising thing possible — it loads into numpy with one call and is
compatible with the edge lists most graph repositories ship.

Malformed input is rejected *here*, with ``path:line:`` prefixed errors,
rather than crashing (or silently mis-loading) deeper in
:class:`~repro.graphs.graph.WeightedGraph` construction: negative or
non-finite weights, endpoints outside the declared ``# n=`` header, and
unparseable headers all name the offending line.

For the artifact layer (:mod:`repro.service.store`) there is also a binary
round trip — :func:`write_graph_npz` / :func:`read_graph_npz` — that
preserves the edge arrays bit-exactly (float64 weights survive without a
repr/parse cycle) and loads without per-line Python work.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from .graph import WeightedGraph

__all__ = [
    "write_edgelist",
    "read_edgelist",
    "read_edgelist_streaming",
    "write_graph_npz",
    "read_graph_npz",
    "GRAPH_NPZ_VERSION",
]

#: Schema version embedded in every ``.npz`` graph payload.
GRAPH_NPZ_VERSION = 1


def write_edgelist(g: WeightedGraph, path) -> None:
    """Write ``g`` to ``path`` as ``# n=<n>`` + one ``u v w`` line per edge."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# n={g.n}\n")
        for u, v, w in g.edge_tuples():
            fh.write(f"{u} {v} {w!r}\n")


def _parse_header(path: Path, lineno: int, line: str) -> int | None:
    """Parse a ``# n=<count>`` header comment; ``None`` for other comments.

    Accepts whitespace around the ``=`` (``# n = 12``); anything that
    *looks* like an ``n=`` header but does not carry a valid non-negative
    integer raises with the line number, instead of being skipped as a
    generic comment and silently shrinking the vertex set.
    """
    body = line[1:].strip()
    if re.match(r"n\s*=", body) is None:
        return None
    _, _, value = body.partition("=")
    value = value.strip()
    try:
        n = int(value)
    except ValueError as exc:
        raise ValueError(f"{path}:{lineno}: bad header {line!r}") from exc
    if n < 0:
        raise ValueError(f"{path}:{lineno}: header vertex count must be >= 0, got {n}")
    return n


def read_edgelist(path) -> WeightedGraph:
    """Read a graph written by :func:`write_edgelist` (or any ``u v [w]``
    edge list; missing weights default to 1, missing header to
    ``max(endpoint) + 1`` vertices).

    Raises
    ------
    ValueError
        With a ``path:line:`` prefix, on malformed lines: wrong column
        count, non-numeric fields, negative endpoints, endpoints at or
        above the declared ``# n=`` header, self loops, and weights that
        are NaN, infinite, or not strictly positive (the graph layer
        requires positive finite weights).
    """
    path = Path(path)
    n_header: int | None = None
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parsed = _parse_header(path, lineno, line)
                if parsed is not None:
                    n_header = parsed
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"{path}:{lineno}: expected 'u v [w]', got {line!r}"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
                w = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: non-numeric field in {line!r}") from exc
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{lineno}: negative endpoint in {line!r}")
            if n_header is not None and (u >= n_header or v >= n_header):
                raise ValueError(
                    f"{path}:{lineno}: endpoint out of range for header "
                    f"n={n_header} in {line!r}"
                )
            if u == v:
                raise ValueError(f"{path}:{lineno}: self loop in {line!r}")
            if not np.isfinite(w) or w <= 0:
                raise ValueError(
                    f"{path}:{lineno}: weight must be positive and finite, "
                    f"got {w!r} in {line!r}"
                )
            us.append(u)
            vs.append(v)
            ws.append(w)
    if n_header is None:
        n_header = (max(max(us), max(vs)) + 1) if us else 0
    return WeightedGraph(
        n_header,
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws, dtype=np.float64),
    )


def _open_text(path: Path):
    """Open a (possibly gzip-compressed) edge-list file for text reading."""
    if path.suffix == ".gz":
        import gzip

        return gzip.open(path, "rt")
    return path.open()


def read_edgelist_streaming(
    path,
    *,
    num_nodes: int | None = None,
    relabel: bool = False,
    chunk_lines: int | None = None,
    comments: str = "#",
) -> tuple[WeightedGraph, dict]:
    """Read a SNAP-style whitespace edge list without materializing the file.

    Real road/social graph dumps (SNAP, KONECT, DIMACS exports) are
    multi-gigabyte text files; the seed :func:`read_edgelist` parses them
    one Python ``str.split`` at a time into Python lists — two orders of
    magnitude slower than numpy's C parser and several times the file size
    in peak memory.  This reader streams the file through
    ``np.loadtxt(max_rows=...)`` in bounded chunks (sized through
    :mod:`repro.core.membudget` unless ``chunk_lines`` is given), so peak
    memory is the final edge arrays plus one chunk, never the parsed text.

    Format: ``u v`` (weight 1) or ``u v w`` per line, ``#``-prefixed
    comment lines ignored (``comments`` overrides the marker), gzip
    transparently decompressed for ``.gz`` paths.  Self loops — which SNAP
    graphs routinely contain and :class:`WeightedGraph` rejects — are
    dropped and counted; duplicate and reverse edges are merged by the
    graph's canonicalization (minimum weight wins).

    Parameters
    ----------
    num_nodes:
        Declared vertex count (ids must be ``< num_nodes``); defaults to
        ``max(endpoint) + 1``.
    relabel:
        Compress arbitrary (sparse, non-contiguous) node ids to
        ``0..n_distinct-1`` by first appearance in sorted id order —
        required for SNAP graphs whose ids are hash-like.
    chunk_lines:
        Data lines parsed per chunk; defaults through the memory budget.

    Returns
    -------
    (graph, report):
        The loaded :class:`WeightedGraph` plus an ingest report dict
        (lines parsed, self loops dropped, duplicates merged, chunks).
    """
    from ..core import membudget  # lazy: core imports this package

    path = Path(path)
    if chunk_lines is None:
        # A parsed line costs 3 float64 plus the int64 accumulation copy.
        chunk_lines = membudget.chunk_edges(entry_bytes=80)
    if chunk_lines < 1:
        raise ValueError("chunk_lines must be positive")

    us: list[np.ndarray] = []
    vs: list[np.ndarray] = []
    ws: list[np.ndarray] = []
    ncols: int | None = None
    lines = 0
    loops_dropped = 0
    chunks = 0
    import warnings

    with _open_text(path) as fh:
        while True:
            with warnings.catch_warnings():
                # loadtxt warns once per call that comment/blank lines do
                # not count towards max_rows (exactly the behaviour this
                # chunk loop wants) and again on an exhausted file.
                warnings.filterwarnings(
                    "ignore", message=".*no data.*", category=UserWarning
                )
                block = np.loadtxt(
                    fh, comments=comments, max_rows=chunk_lines, ndmin=2,
                    dtype=np.float64,
                )
            if block.size == 0:
                break
            chunks += 1
            lines += block.shape[0]
            if ncols is None:
                ncols = block.shape[1]
                if ncols not in (2, 3):
                    raise ValueError(
                        f"{path}: expected 2 ('u v') or 3 ('u v w') columns, "
                        f"got {ncols}"
                    )
            elif block.shape[1] != ncols:
                raise ValueError(
                    f"{path}: inconsistent column count "
                    f"({block.shape[1]} after {ncols})"
                )
            u = block[:, 0].astype(np.int64, copy=False)
            v = block[:, 1].astype(np.int64, copy=False)
            if not (np.array_equal(u, block[:, 0]) and np.array_equal(v, block[:, 1])):
                raise ValueError(f"{path}: non-integer endpoint in chunk {chunks}")
            if u.size and (u.min() < 0 or v.min() < 0):
                raise ValueError(f"{path}: negative endpoint in chunk {chunks}")
            w = block[:, 2].copy() if ncols == 3 else np.ones(u.size)
            if not np.all(np.isfinite(w)) or np.any(w <= 0):
                raise ValueError(
                    f"{path}: weights must be positive and finite "
                    f"(chunk {chunks})"
                )
            keep = u != v
            loops_dropped += int(u.size - keep.sum())
            us.append(u[keep])
            vs.append(v[keep])
            ws.append(w[keep])
            if block.shape[0] < chunk_lines:
                break

    u = np.concatenate(us) if us else np.zeros(0, dtype=np.int64)
    v = np.concatenate(vs) if vs else np.zeros(0, dtype=np.int64)
    w = np.concatenate(ws) if ws else np.zeros(0)
    del us, vs, ws

    if relabel:
        ids, inverse = np.unique(np.concatenate([u, v]), return_inverse=True)
        u, v = inverse[: u.size], inverse[u.size :]
        n = ids.size
        if num_nodes is not None:
            if num_nodes < n:
                raise ValueError(
                    f"{path}: num_nodes={num_nodes} below the {n} distinct ids"
                )
            n = num_nodes
    else:
        max_id = int(max(u.max(), v.max())) if u.size else -1
        if num_nodes is not None:
            if max_id >= num_nodes:
                raise ValueError(
                    f"{path}: endpoint {max_id} out of range for "
                    f"num_nodes={num_nodes} (pass relabel=True for sparse ids)"
                )
            n = num_nodes
        else:
            n = max_id + 1

    raw_edges = u.size
    g = WeightedGraph(n, u, v, w)
    report = {
        "path": str(path),
        "lines": int(lines),
        "n": g.n,
        "edges": g.m,
        "self_loops_dropped": int(loops_dropped),
        "duplicates_merged": int(raw_edges - g.m),
        "relabeled": bool(relabel),
        "weighted": ncols == 3,
        "chunks": int(chunks),
        "chunk_lines": int(chunk_lines),
    }
    return g, report


def write_graph_npz(g: WeightedGraph, path, *, compressed: bool = False) -> None:
    """Write ``g`` to ``path`` as an ``.npz`` payload.

    The edge arrays round-trip bit-exactly (no float repr/parse cycle),
    which is what lets persisted spanners answer queries bit-identically
    to the in-memory originals.  Uncompressed by default so the members
    are plain stored ``.npy`` blocks that :func:`read_graph_npz` can open
    as lazy memmaps; pass ``compressed=True`` to trade that for size.
    """
    path = Path(path)
    save = np.savez_compressed if compressed else np.savez
    with path.open("wb") as fh:
        save(
            fh,
            format_version=np.int64(GRAPH_NPZ_VERSION),
            n=np.int64(g.n),
            u=g.edges_u,
            v=g.edges_v,
            w=g.edges_w,
        )


def _npz_member_memmaps(path: Path, names: tuple[str, ...], mmap_mode: str):
    """Memmap stored (uncompressed) ``.npy`` members of an npz directly.

    ``np.load`` silently ignores ``mmap_mode`` for npz files, so the lazy
    path is built by hand: locate each member's data inside the zip (local
    file header + npy header) and hand back an ``np.memmap`` at that file
    offset.  Returns ``None`` when any member cannot be mapped (deflated
    payloads, Fortran order, exotic npy versions) — callers fall back to
    the eager load.
    """
    import struct
    import zipfile

    from numpy.lib import format as npy_format

    out: dict[str, np.ndarray] = {}
    with zipfile.ZipFile(path) as zf:
        infos = {zi.filename: zi for zi in zf.infolist()}
        with path.open("rb") as fh:
            for name in names:
                zinfo = infos.get(name + ".npy")
                if zinfo is None or zinfo.compress_type != zipfile.ZIP_STORED:
                    return None
                # The central directory does not record the local header's
                # exact extra-field length; parse the local header itself.
                fh.seek(zinfo.header_offset)
                local = fh.read(30)
                if len(local) != 30 or local[:4] != b"PK\x03\x04":
                    return None
                fnlen, extralen = struct.unpack("<HH", local[26:30])
                fh.seek(zinfo.header_offset + 30 + fnlen + extralen)
                version = npy_format.read_magic(fh)
                if version == (1, 0):
                    shape, fortran, dtype = npy_format.read_array_header_1_0(fh)
                elif version == (2, 0):
                    shape, fortran, dtype = npy_format.read_array_header_2_0(fh)
                else:
                    return None
                if fortran or dtype.hasobject:
                    return None
                out[name] = np.memmap(
                    path, dtype=dtype, mode=mmap_mode, offset=fh.tell(), shape=shape
                )
    return out


def read_graph_npz(path, *, mmap_mode: str | None = None) -> WeightedGraph:
    """Read a graph written by :func:`write_graph_npz`.

    With ``mmap_mode`` (e.g. ``"r"``), the edge arrays of an uncompressed
    payload are returned as lazy read-only memmap views — opening a
    file-backed graph costs no copy, and processes mapping the same file
    share physical pages.  Compressed payloads silently fall back to the
    eager load (zip-deflated bytes cannot be mapped).

    Raises
    ------
    ValueError
        On a missing/foreign payload or an unsupported ``format_version``.
    """
    path = Path(path)
    with np.load(path) as data:
        keys = set(data.files)
        if not {"format_version", "n", "u", "v", "w"} <= keys:
            raise ValueError(f"{path}: not a graph npz payload (keys: {sorted(keys)})")
        version = int(data["format_version"])
        if version > GRAPH_NPZ_VERSION:
            raise ValueError(
                f"{path}: graph npz format v{version} is newer than the "
                f"supported v{GRAPH_NPZ_VERSION}"
            )
        n = int(data["n"])
        arrays = None
        if mmap_mode is not None:
            arrays = _npz_member_memmaps(path, ("u", "v", "w"), mmap_mode)
        if arrays is not None:
            # Our own writer emits canonical (deduped, sorted) edge arrays;
            # adopt the views without the dedupe sort/copy.
            return WeightedGraph.from_canonical(
                n,
                arrays["u"],
                arrays["v"],
                np.asarray(arrays["w"]).astype(np.float64, copy=False),
            )
        return WeightedGraph(
            n,
            data["u"].astype(np.int64, copy=False),
            data["v"].astype(np.int64, copy=False),
            data["w"].astype(np.float64, copy=False),
            validate=False,
        )
