"""Graph persistence: a plain weighted edge-list format plus a binary form.

One line per edge: ``u v w`` (whitespace separated), with an optional
header comment carrying the vertex count (``# n=<count>``) so isolated
vertices survive a round trip.  The format is deliberately the least
surprising thing possible — it loads into numpy with one call and is
compatible with the edge lists most graph repositories ship.

Malformed input is rejected *here*, with ``path:line:`` prefixed errors,
rather than crashing (or silently mis-loading) deeper in
:class:`~repro.graphs.graph.WeightedGraph` construction: negative or
non-finite weights, endpoints outside the declared ``# n=`` header, and
unparseable headers all name the offending line.

For the artifact layer (:mod:`repro.service.store`) there is also a binary
round trip — :func:`write_graph_npz` / :func:`read_graph_npz` — that
preserves the edge arrays bit-exactly (float64 weights survive without a
repr/parse cycle) and loads without per-line Python work.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np

from .graph import WeightedGraph

__all__ = [
    "write_edgelist",
    "read_edgelist",
    "write_graph_npz",
    "read_graph_npz",
    "GRAPH_NPZ_VERSION",
]

#: Schema version embedded in every ``.npz`` graph payload.
GRAPH_NPZ_VERSION = 1


def write_edgelist(g: WeightedGraph, path) -> None:
    """Write ``g`` to ``path`` as ``# n=<n>`` + one ``u v w`` line per edge."""
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"# n={g.n}\n")
        for u, v, w in g.edge_tuples():
            fh.write(f"{u} {v} {w!r}\n")


def _parse_header(path: Path, lineno: int, line: str) -> int | None:
    """Parse a ``# n=<count>`` header comment; ``None`` for other comments.

    Accepts whitespace around the ``=`` (``# n = 12``); anything that
    *looks* like an ``n=`` header but does not carry a valid non-negative
    integer raises with the line number, instead of being skipped as a
    generic comment and silently shrinking the vertex set.
    """
    body = line[1:].strip()
    if re.match(r"n\s*=", body) is None:
        return None
    _, _, value = body.partition("=")
    value = value.strip()
    try:
        n = int(value)
    except ValueError as exc:
        raise ValueError(f"{path}:{lineno}: bad header {line!r}") from exc
    if n < 0:
        raise ValueError(f"{path}:{lineno}: header vertex count must be >= 0, got {n}")
    return n


def read_edgelist(path) -> WeightedGraph:
    """Read a graph written by :func:`write_edgelist` (or any ``u v [w]``
    edge list; missing weights default to 1, missing header to
    ``max(endpoint) + 1`` vertices).

    Raises
    ------
    ValueError
        With a ``path:line:`` prefix, on malformed lines: wrong column
        count, non-numeric fields, negative endpoints, endpoints at or
        above the declared ``# n=`` header, self loops, and weights that
        are NaN, infinite, or not strictly positive (the graph layer
        requires positive finite weights).
    """
    path = Path(path)
    n_header: int | None = None
    us: list[int] = []
    vs: list[int] = []
    ws: list[float] = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                parsed = _parse_header(path, lineno, line)
                if parsed is not None:
                    n_header = parsed
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"{path}:{lineno}: expected 'u v [w]', got {line!r}"
                )
            try:
                u = int(parts[0])
                v = int(parts[1])
                w = float(parts[2]) if len(parts) == 3 else 1.0
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: non-numeric field in {line!r}") from exc
            if u < 0 or v < 0:
                raise ValueError(f"{path}:{lineno}: negative endpoint in {line!r}")
            if n_header is not None and (u >= n_header or v >= n_header):
                raise ValueError(
                    f"{path}:{lineno}: endpoint out of range for header "
                    f"n={n_header} in {line!r}"
                )
            if u == v:
                raise ValueError(f"{path}:{lineno}: self loop in {line!r}")
            if not np.isfinite(w) or w <= 0:
                raise ValueError(
                    f"{path}:{lineno}: weight must be positive and finite, "
                    f"got {w!r} in {line!r}"
                )
            us.append(u)
            vs.append(v)
            ws.append(w)
    if n_header is None:
        n_header = (max(max(us), max(vs)) + 1) if us else 0
    return WeightedGraph(
        n_header,
        np.asarray(us, dtype=np.int64),
        np.asarray(vs, dtype=np.int64),
        np.asarray(ws, dtype=np.float64),
    )


def write_graph_npz(g: WeightedGraph, path) -> None:
    """Write ``g`` to ``path`` as a compressed ``.npz`` payload.

    The edge arrays round-trip bit-exactly (no float repr/parse cycle),
    which is what lets persisted spanners answer queries bit-identically
    to the in-memory originals.
    """
    path = Path(path)
    with path.open("wb") as fh:
        np.savez_compressed(
            fh,
            format_version=np.int64(GRAPH_NPZ_VERSION),
            n=np.int64(g.n),
            u=g.edges_u,
            v=g.edges_v,
            w=g.edges_w,
        )


def read_graph_npz(path) -> WeightedGraph:
    """Read a graph written by :func:`write_graph_npz`.

    Raises
    ------
    ValueError
        On a missing/foreign payload or an unsupported ``format_version``.
    """
    path = Path(path)
    with np.load(path) as data:
        keys = set(data.files)
        if not {"format_version", "n", "u", "v", "w"} <= keys:
            raise ValueError(f"{path}: not a graph npz payload (keys: {sorted(keys)})")
        version = int(data["format_version"])
        if version > GRAPH_NPZ_VERSION:
            raise ValueError(
                f"{path}: graph npz format v{version} is newer than the "
                f"supported v{GRAPH_NPZ_VERSION}"
            )
        return WeightedGraph(
            int(data["n"]),
            data["u"].astype(np.int64),
            data["v"].astype(np.int64),
            data["w"].astype(np.float64),
            validate=False,
        )
