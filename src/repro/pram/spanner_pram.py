"""PRAM execution of the general spanner algorithm (Section 6, PRAM part).

Runs the logical algorithm and charges the :class:`PRAMTracker` the
primitives each iteration uses in [BS07]'s CRCW implementation: a hashing
pass to bucket edges, a semisort to group them by (node, cluster), a
generalized find-min per group, and a pointer-jumping merge to update
cluster leaders.  Measured depth is therefore
``Θ(iterations · log* n)`` — the paper's PRAM claim — and the bench
compares it against the MPC iteration count directly.
"""

from __future__ import annotations

import numpy as np

from ..core.general_tradeoff import general_tradeoff
from ..core.results import SpannerResult
from ..graphs.graph import WeightedGraph
from .tracker import PRAMTracker

__all__ = ["spanner_pram"]


def spanner_pram(
    g: WeightedGraph,
    k: int,
    t: int | None = None,
    *,
    rng=None,
) -> SpannerResult:
    """Build the Theorem 1.1 spanner with PRAM depth/work accounting.

    Returns the logical :class:`SpannerResult` with ``extra['pram']``
    holding the tracker summary (``depth ≈ iterations · log* n``).
    """
    res = general_tradeoff(g, k, t, rng=rng)
    tracker = PRAMTracker(max(g.n, 1))
    for s in res.stats:
        m = max(s.num_alive_edges, 1)
        tracker.charge("hash", items=m)
        tracker.charge("semisort", items=2 * m)
        tracker.charge("find_min", items=2 * m)
        tracker.charge("pointer_merge", items=s.num_clusters)
        tracker.charge("local", items=m)
    # Phase 2 is one more semisort + find-min over the leftovers.
    tracker.charge("semisort", items=max(res.phase2_added, 1))
    tracker.charge("find_min", items=max(res.phase2_added, 1))
    res.extra["pram"] = tracker.summary()
    res.algorithm = "spanner-pram"
    return res
