"""CRCW PRAM depth/work accounting (Section 6's PRAM claim).

The paper's PRAM result: the MPC round structure carries over with depth
equal to the MPC iteration count times a ``log* n`` factor from the
primitives Baswana–Sen's PRAM implementation uses (hashing, semisorting,
generalized find-min), plus an ``O(1)``-depth pointer-jumping merge.

:class:`PRAMTracker` charges depth and work per primitive so the
Section 6 bench can report measured depth ``O(iterations · log* n)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["log_star", "PRAMTracker", "PRAMLogEntry"]


def log_star(n: float) -> int:
    """Iterated logarithm (base 2); ``log*(2) = 1``, ``log*(65536) = 4``."""
    if n < 2:
        return 0
    c = 0
    x = float(n)
    while x >= 2:
        x = math.log2(x)
        c += 1
    return c


@dataclass
class PRAMLogEntry:
    name: str
    depth: int
    work: int


class PRAMTracker:
    """Depth/work accountant for a CRCW PRAM execution.

    Primitive costs follow [BS07]'s PRAM implementation as cited in
    Section 6: ``hash``, ``semisort`` and ``find_min`` cost ``O(log* n)``
    depth and linear work; ``pointer_merge`` (union of two leader-pointed
    sets) costs ``O(1)`` depth and work linear in the smaller side;
    ``local`` costs depth 1.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("n must be positive")
        self.n = n
        self.log_star_n = max(1, log_star(n))
        self.depth = 0
        self.work = 0
        self.log: list[PRAMLogEntry] = []

    def charge(self, primitive: str, *, items: int) -> None:
        """Charge one primitive over ``items`` elements."""
        if items < 0:
            raise ValueError("items must be non-negative")
        if primitive in {"hash", "semisort", "find_min"}:
            d = self.log_star_n
        elif primitive in {"pointer_merge", "local"}:
            d = 1
        else:
            raise KeyError(f"unknown PRAM primitive {primitive!r}")
        self.depth += d
        self.work += max(items, 1)
        self.log.append(PRAMLogEntry(primitive, d, max(items, 1)))

    def summary(self) -> dict:
        return {
            "n": self.n,
            "log_star_n": self.log_star_n,
            "depth": self.depth,
            "work": self.work,
            "primitive_calls": len(self.log),
        }
