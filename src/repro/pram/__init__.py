"""PRAM substrate: depth/work accounting for the Section 6 PRAM claim."""

from .spanner_pram import spanner_pram
from .tracker import PRAMLogEntry, PRAMTracker, log_star

__all__ = ["PRAMTracker", "PRAMLogEntry", "log_star", "spanner_pram"]
