"""MPC model configuration.

The MPC model [KSV10, GSZ11, BKS13]: input of ``N`` words distributed over
machines with local memory ``S = N^α`` (for graphs we parameterize by the
vertex count: ``S = Θ(n^γ)``), all-to-all synchronous communication, and the
per-round communication of each machine bounded by its memory.  The number
of machines is ``Θ(N / S)`` and global memory ``Õ(N)``.

:class:`MPCConfig` pins these quantities for a concrete run and provides the
round-cost model for the [GSZ11] primitives: an aggregation/sorting tree
with fan-out ``Θ(S)`` over ``P`` machines has
``ceil(log(max(N, P)) / log(S))`` levels — the ``O(1/γ)`` factor in every
bound of the paper's Section 6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["MPCConfig"]


@dataclass(frozen=True)
class MPCConfig:
    """Machine-model parameters for one simulated MPC deployment.

    Attributes
    ----------
    n:
        Number of graph vertices (defines the memory regime).
    gamma:
        Local-memory exponent: machines hold ``machine_memory =
        memory_constant * n^gamma`` words.
    total_words:
        Input size ``N`` in words (for a graph, ``Θ(m)``).
    memory_constant:
        Hidden constant in ``S = O(n^γ)``; the simulator *enforces*
        ``S`` as a hard cap, so the constant must cover the paper's
        constant-factor slack.
    slack_factor:
        Allowed global-memory blow-up (the ``Õ(m)`` tilde).
    """

    n: int
    gamma: float
    total_words: int
    memory_constant: float = 8.0
    slack_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("n must be positive")
        if not 0 < self.gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        if self.total_words < 0:
            raise ValueError("total_words must be non-negative")

    @property
    def machine_memory(self) -> int:
        """Local memory ``S`` in words (hard cap enforced by the simulator)."""
        return max(16, int(self.memory_constant * self.n**self.gamma))

    @property
    def num_machines(self) -> int:
        """``Θ(N / S)`` machines, enough to hold the input plus slack."""
        need = max(1, math.ceil(self.slack_factor * max(self.total_words, 1) / self.machine_memory))
        return need

    @property
    def global_memory(self) -> int:
        """Total memory across machines."""
        return self.num_machines * self.machine_memory

    def tree_levels(self) -> int:
        """Levels of an ``S``-ary aggregation tree spanning all machines —
        the ``O(1/γ)`` factor.  At least 1."""
        if self.num_machines <= 1:
            return 1
        fanout = max(2, self.machine_memory)
        return max(1, math.ceil(math.log(self.num_machines) / math.log(fanout)))

    def rounds_for(self, primitive: str) -> int:
        """Simulated round charge for one [GSZ11]-style primitive.

        ``sort``, ``reduce_by_key``, ``segment_broadcast``, ``join`` each
        cost one tree traversal plus one data-placement round;
        ``map`` is free (local computation);
        ``shuffle`` (pure repartition) costs one round.
        """
        if primitive == "map":
            return 0
        if primitive == "shuffle":
            return 1
        if primitive in {"sort", "reduce_by_key", "segment_broadcast", "join", "find_min"}:
            return self.tree_levels() + 1
        raise KeyError(f"unknown primitive {primitive!r}")
