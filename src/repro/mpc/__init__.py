"""MPC simulator: machine model, distributed tables, [GSZ11] primitives."""

from .config import MPCConfig
from .primitives import (
    broadcast_scalar,
    find_min_by_group,
    join_lookup,
    reduce_by_key,
    segment_broadcast,
    sort_table,
)
from .simulator import DistributedTable, MPCSimulator, MPCViolation, RoundLog

__all__ = [
    "MPCConfig",
    "MPCSimulator",
    "MPCViolation",
    "RoundLog",
    "DistributedTable",
    "sort_table",
    "find_min_by_group",
    "reduce_by_key",
    "segment_broadcast",
    "join_lookup",
    "broadcast_scalar",
]
